// Cross-domain adaptation: reuse labels from a completely different domain
// (movies) for a product matching task, comparing every Feature Aligner in
// the design space — the Table-4 scenario, for one source/target pair.
//
//   ./cross_domain_adaptation [--scale=smoke] [--source=RI] [--target=AB]

#include <cstdio>

#include "core/dader.h"
#include "util/flags.h"

using namespace dader;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("scale", "smoke", "experiment scale preset");
  flags.DefineString("source", "RI", "source dataset (e.g. RI = movies)");
  flags.DefineString("target", "AB", "target dataset (e.g. AB = products)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const core::ExperimentScale scale = core::ResolveScale(flags.GetString("scale"));
  const std::string source = flags.GetString("source");
  const std::string target = flags.GetString("target");

  auto src_spec = data::FindDatasetSpec(source);
  auto tgt_spec = data::FindDatasetSpec(target);
  if (!src_spec.ok() || !tgt_spec.ok()) {
    std::fprintf(stderr, "unknown dataset short name\n");
    return 1;
  }
  std::printf("== Cross-domain DA: %s (%s) -> %s (%s) ==\n",
              src_spec.ValueOrDie().full_name.c_str(),
              src_spec.ValueOrDie().domain.c_str(),
              tgt_spec.ValueOrDie().full_name.c_str(),
              tgt_spec.ValueOrDie().domain.c_str());

  auto task = core::BuildDaTask(source, target, scale).ValueOrDie();

  // Measure the domain distance first (the Figure-6 quantity).
  {
    auto probe =
        core::BuildModel(core::ExtractorKind::kLM, scale, true, 7).ValueOrDie();
    Rng rng(7);
    const double mmd = core::DatasetMmdDistance(
        probe.extractor.get(), task.source, task.target_test, 128, &rng);
    std::printf("pre-adaptation MMD(source, target) = %.4f\n\n", mmd);
  }

  std::printf("%-12s %8s %10s\n", "method", "test F1", "best epoch");
  double noda_f1 = 0.0;
  for (core::AlignMethod method :
       {core::AlignMethod::kNoDA, core::AlignMethod::kMMD,
        core::AlignMethod::kKOrder, core::AlignMethod::kGRL,
        core::AlignMethod::kInvGAN, core::AlignMethod::kInvGANKD,
        core::AlignMethod::kED}) {
    auto model =
        core::BuildModel(core::ExtractorKind::kLM, scale, true, 42).ValueOrDie();
    auto outcome = core::RunSingleDa(method, scale, task, &model).ValueOrDie();
    if (method == core::AlignMethod::kNoDA) noda_f1 = outcome.test_f1;
    std::printf("%-12s %8.1f %10d\n", core::AlignMethodName(method),
                outcome.test_f1 * 100, outcome.train.best_epoch);
  }
  std::printf("\n(NoDA baseline: %.1f — positive deltas above it show the\n"
              " benefit of reusing out-of-domain labels via DA)\n",
              noda_f1 * 100);
  return 0;
}
