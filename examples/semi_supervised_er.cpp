// Semi-supervised ER: how many target labels does each method need?
// Runs the Figure-11 protocol for one target dataset: max-entropy active
// labeling rounds, comparing DA-based methods (NoDA / InvGAN+KD fine-tuned
// on the labels) against supervised-only Ditto- and DeepMatcher-style
// baselines.
//
//   ./semi_supervised_er [--scale=smoke] [--source=WA] [--target=AB]

#include <cstdio>
#include <vector>

#include "core/dader.h"
#include "util/flags.h"

using namespace dader;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("scale", "smoke", "experiment scale preset");
  flags.DefineString("source", "WA", "source dataset for the DA methods");
  flags.DefineString("target", "AB", "target dataset");
  flags.DefineInt("labels_per_round", 24, "labels added per round");
  flags.DefineInt("rounds", 4, "active-learning rounds");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const core::ExperimentScale scale = core::ResolveScale(flags.GetString("scale"));
  const std::string source = flags.GetString("source");
  const std::string target = flags.GetString("target");
  const int64_t per_round = flags.GetInt("labels_per_round");
  const int64_t rounds = flags.GetInt("rounds");

  std::printf("== Semi-supervised ER on %s (source for DA: %s) ==\n",
              target.c_str(), source.c_str());
  std::printf("%-12s", "#labels");
  std::vector<core::SemiMethod> methods = {
      core::SemiMethod::kNoDA, core::SemiMethod::kInvGANKD,
      core::SemiMethod::kDitto, core::SemiMethod::kDeepMatcher};
  for (auto m : methods) std::printf(" %12s", core::SemiMethodName(m));
  std::printf("\n");

  std::vector<std::vector<core::SemiPoint>> series;
  for (auto m : methods) {
    auto r = core::RunSemiSupervised(source, target, m, scale, per_round,
                                     rounds, 42);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    series.push_back(std::move(r).ValueOrDie());
  }
  for (int64_t round = 0; round < rounds; ++round) {
    std::printf("%-12lld",
                static_cast<long long>(series[0][static_cast<size_t>(round)]
                                           .labels_used));
    for (const auto& s : series) {
      std::printf(" %12.1f", s[static_cast<size_t>(round)].test_f1 * 100);
    }
    std::printf("\n");
  }
  std::printf("\nDA-based methods start from transferred knowledge and stay\n"
              "ahead at small label budgets (the paper's Finding 7).\n");
  return 0;
}
