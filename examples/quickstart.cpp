// Quickstart: adapt an entity-resolution model from a labeled source
// dataset (Walmart-Amazon) to an unlabeled target dataset (Abt-Buy) with
// the MMD feature aligner, then compare against the NoDA baseline.
//
//   ./quickstart [--scale=smoke|small|full] [--source=WA] [--target=AB]

#include <cstdio>

#include "core/dader.h"
#include "util/flags.h"

using namespace dader;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("scale", "smoke", "experiment scale preset");
  flags.DefineString("source", "WA", "labeled source dataset (short name)");
  flags.DefineString("target", "AB", "unlabeled target dataset (short name)");
  flags.DefineInt("seed", 42, "training seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }

  const core::ExperimentScale scale = core::ResolveScale(flags.GetString("scale"));
  const std::string source = flags.GetString("source");
  const std::string target = flags.GetString("target");

  std::printf("== DADER quickstart: %s -> %s (scale=%s) ==\n", source.c_str(),
              target.c_str(), scale.name.c_str());

  // 1. Generate the benchmark datasets and the target's 1:9 valid:test split.
  auto task_result = core::BuildDaTask(source, target, scale);
  if (!task_result.ok()) {
    std::fprintf(stderr, "dataset error: %s\n",
                 task_result.status().ToString().c_str());
    return 1;
  }
  core::DaTask task = std::move(task_result).ValueOrDie();
  std::printf("source %s: %zu labeled pairs (%.0f%% matches)\n",
              task.source.name().c_str(), task.source.size(),
              task.source.MatchRate() * 100);
  std::printf("target %s: %zu unlabeled pairs, %zu valid / %zu test\n",
              task.target_test.name().c_str(), task.target_unlabeled.size(),
              task.target_valid.size(), task.target_test.size());

  // Show one serialized pair, the model's actual input (Example 1).
  const data::LabeledPair& sample = task.source.pair(0);
  std::printf("\nserialized sample pair (label=%d):\n  %s\n\n", sample.label,
              text::SerializePairToText(
                  sample.a.ToAttrValues(task.source.schema_a()),
                  sample.b.ToAttrValues(task.source.schema_b()))
                  .c_str());

  // 2. Build the pre-trained-LM extractor and matcher, run NoDA and MMD.
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  for (core::AlignMethod method :
       {core::AlignMethod::kNoDA, core::AlignMethod::kMMD}) {
    auto model =
        core::BuildModel(core::ExtractorKind::kLM, scale, true, seed);
    if (!model.ok()) {
      std::fprintf(stderr, "model error: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    core::DaModel m = std::move(model).ValueOrDie();
    std::printf("training %s ...\n", core::AlignMethodName(method));
    auto outcome = core::RunSingleDa(
        method, scale, task, &m, false, [](const core::EpochStats& s) {
          std::printf("  epoch %2d: L_M=%.3f L_A=%.3f valid F1=%.1f\n",
                      s.epoch, s.matching_loss, s.alignment_loss,
                      s.valid_f1 * 100);
        });
    if (!outcome.ok()) {
      std::fprintf(stderr, "training error: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: target test F1 = %.1f (best epoch %d)\n\n",
                core::AlignMethodName(method),
                outcome.ValueOrDie().test_f1 * 100,
                outcome.ValueOrDie().train.best_epoch);
  }
  return 0;
}
