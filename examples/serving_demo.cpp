// Serving demo: a fault-tolerant batched match server in action.
//
// Builds a small LM-extractor model plus an RNN fallback, stands up a
// MatchService, and walks through the failure modes it is designed to
// survive:
//
//   1. normal batched serving with per-request latency accounting
//   2. overload -> bounded queue sheds excess load (ResourceExhausted)
//   3. a streak of injected extractor faults -> circuit breaker trips and
//      traffic flows through the degraded fallback path (degraded=true)
//   4. the fault clears -> half-open probe closes the breaker again
//   5. hot model reload: a corrupt checkpoint is rejected and rolled back,
//      a valid one is swapped in with zero downtime
//
//   ./serving_demo [--seed=42] [--quantize]
//
// With --quantize the primary serves through the int8 path: the model is
// calibrated on a small synthetic pair set at startup, gated on fp32
// agreement, and hot reloads re-calibrate the staged weights before the
// canary (a bad calibration rolls the reload back).

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "util/fault.h"
#include "util/flags.h"

using namespace dader;

namespace {

core::DaderConfig DemoModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, DemoModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

// Synthetic product pairs for int8 calibration: near-duplicates and clear
// non-matches, enough batches to cover the activation ranges the demo
// traffic exercises.
data::ERDataset BuildCalibration(const data::Schema& schema) {
  data::ERDataset calib("demo-calib", "serve", schema, schema);
  const char* items[] = {"apple iphone 12 128gb", "makita cordless drill",
                         "sony wh-1000xm4 headphones", "canon eos r6 body",
                         "dell xps 13 laptop", "bosch rotary hammer",
                         "logitech mx master 3", "samsung galaxy s21"};
  const int n = static_cast<int>(sizeof(items) / sizeof(items[0]));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      calib.AddPair({data::Record({items[i], std::to_string(10 + i)}),
                     data::Record({std::string(items[j]) + " new",
                                   std::to_string(10 + j)}),
                     /*label=*/-1});
    }
  }
  return calib;
}

serve::MatchRequest Pair(const std::string& a, const std::string& b) {
  serve::MatchRequest request;
  request.a = data::Record({a, "99"});
  request.b = data::Record({b, "99"});
  return request;
}

void PrintResponse(const char* tag, const serve::MatchResponse& r) {
  if (r.status.ok()) {
    std::printf("  [%s] label=%d prob=%.3f degraded=%s attempts=%d "
                "queue=%.2fms total=%.2fms\n",
                tag, r.label, r.prob, r.degraded ? "yes" : "no", r.attempts,
                r.queue_ms, r.total_ms);
  } else {
    std::printf("  [%s] %s\n", tag, r.status.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("seed", 42, "model + serving seed");
  flags.DefineBool("quantize", false,
                   "serve the primary through the calibrated int8 path");
  flags.DefineInt("metrics_port",
                  0, "serve GET /metrics on 127.0.0.1:<port> while the demo "
                     "runs (0 = disabled; any other taken port fails)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  obs::HttpMetricsExporter exporter;
  if (flags.GetInt("metrics_port") != 0) {
    st = exporter.Start(static_cast<int>(flags.GetInt("metrics_port")));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("scrape endpoint: http://127.0.0.1:%d/metrics\n\n",
                exporter.port());
  }

  FaultInjector fault;
  serve::ServeConfig config;
  config.queue_capacity = 8;
  config.max_batch = 4;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 5000.0;
  config.retry.max_attempts = 2;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_ms = 50.0;
  config.breaker.half_open_successes = 1;
  config.seed = seed;
  config.fault = &fault;

  data::Schema schema({"title", "price"});
  const data::ERDataset calib = BuildCalibration(schema);
  if (flags.GetBool("quantize")) {
    config.quantize = true;
    config.quant_calib = &calib;
  }
  serve::MatchService service(
      config, schema, schema, MakeModel(core::ExtractorKind::kLM, seed),
      std::make_unique<core::DaModel>(
          MakeModel(core::ExtractorKind::kRNN, seed + 100)));

  std::printf("== 1. normal batched serving ==\n");
  std::vector<serve::MatchRequest> batch;
  batch.push_back(Pair("apple iphone 12 128gb", "apple iphone 12 128 gb"));
  batch.push_back(Pair("apple iphone 12 128gb", "makita cordless drill"));
  batch.push_back(Pair("sony wh-1000xm4 headphones", "sony wh1000xm4"));
  for (const auto& r : service.MatchBatch(batch)) PrintResponse("ok", r);

  std::printf("\n== 2. overload: bounded queue sheds excess load ==\n");
  std::vector<std::future<serve::MatchResponse>> burst;
  burst.reserve(64);
  for (int i = 0; i < 64; ++i) {
    burst.push_back(service.SubmitAsync(
        Pair("bulk item " + std::to_string(i), "bulk item x")));
  }
  int served = 0, shed = 0;
  for (auto& f : burst) {
    const serve::MatchResponse r = f.get();
    (r.status.code() == StatusCode::kResourceExhausted ? shed : served)++;
  }
  std::printf("  64 concurrent requests -> %d served, %d shed "
              "(queue capacity %zu)\n",
              served, shed, service.config().queue_capacity);

  std::printf("\n== 3. fault streak trips the breaker -> degraded mode ==\n");
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.probability = 1.0;
  spec.max_hits = 1000;  // every primary attempt fails until disarmed
  fault.Arm(spec);
  for (int i = 0; i < 4; ++i) {
    PrintResponse("degraded",
                  service.Match(Pair("canon eos r6 body", "canon eos r6")));
  }
  std::printf("  breaker state: %s, trips so far: %lld\n",
              serve::BreakerStateName(service.breaker_state()),
              static_cast<long long>(service.stats().breaker_trips));

  std::printf("\n== 4. fault clears -> half-open probe restores full "
              "quality ==\n");
  fault.Disarm(FaultKind::kExtractorFault);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // cooldown
  for (int i = 0; i < 3; ++i) {
    PrintResponse("recovered",
                  service.Match(Pair("canon eos r6 body", "canon eos r6")));
  }
  std::printf("  breaker state: %s\n",
              serve::BreakerStateName(service.breaker_state()));

  std::printf("\n== 5. hot model reload with rollback ==\n");
  const std::string dir = "/tmp/serving_demo";
  ::mkdir(dir.c_str(), 0755);
  const std::string good_path = dir + "/retrained.ckpt";
  const std::string bad_path = dir + "/corrupt.ckpt";
  core::DaModel donor = MakeModel(core::ExtractorKind::kLM, seed + 7);
  const std::vector<core::ModuleBinding> donor_modules = {
      {"F", donor.extractor.get()}, {"M", donor.matcher.get()}};
  st = core::SaveModules(good_path, donor_modules);
  if (st.ok()) st = core::SaveModules(bad_path, donor_modules);
  if (st.ok()) st = fault.CorruptByte(bad_path, 200);
  if (!st.ok()) {
    std::fprintf(stderr, "checkpoint setup error: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  Status bad = service.ReloadModel(bad_path);
  std::printf("  corrupt checkpoint: %s\n", bad.ToString().c_str());
  Status good = service.ReloadModel(good_path);
  std::printf("  valid checkpoint:   %s\n",
              good.ok() ? "swapped in with zero downtime" : good.ToString().c_str());
  PrintResponse("post-reload",
                service.Match(Pair("apple iphone 12", "apple iphone 12")));

  const serve::ServeStats stats = service.stats();
  std::printf("\n== serving stats ==\n");
  std::printf("  admitted=%lld shed=%lld completed=%lld degraded=%lld\n",
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.degraded));
  std::printf("  primary_failures=%lld retries=%lld breaker_trips=%lld "
              "reloads=%lld rollbacks=%lld\n",
              static_cast<long long>(stats.primary_failures),
              static_cast<long long>(stats.retries),
              static_cast<long long>(stats.breaker_trips),
              static_cast<long long>(stats.reloads),
              static_cast<long long>(stats.reload_rollbacks));
  if (flags.GetBool("quantize")) {
    std::printf("  int8: serving_quantized=%s calibrations=%lld "
                "quant_rollbacks=%lld\n",
                service.primary_quantized() ? "yes" : "no",
                static_cast<long long>(stats.quant_calibrations),
                static_cast<long long>(stats.quant_rollbacks));
  }

  // Exit-time metrics dump: everything the process observed, in the
  // Prometheus text exposition format (see docs/OBSERVABILITY.md).
  std::printf("\n== metrics (ScrapeText) ==\n%s",
              obs::MetricsRegistry::Default().ScrapeText().c_str());
  return 0;
}
