// Distributed serving demo: the control plane surviving a node failure.
//
// Stands up a 3-node fleet of WorkerNodes over real loopback TCP behind a
// Coordinator and walks the failure story end to end:
//
//   1. steady state: every pair routes to its ShardForPair home node
//   2. a seeded node-crash fault kills one worker mid-stream -> heartbeats
//      walk it ALIVE -> SUSPECT -> DEAD, its keys rescue deterministically
//      to survivors, and the stream keeps answering
//   3. the node restarts -> it re-enters through the warm-up canary
//      (CANARY -> ALIVE) before taking traffic again
//   4. a rolling model push lands on every node, one at a time
//
//   ./dist_demo [--seed=42] [--nodes=3]

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/guard.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "serve/router.h"
#include "util/fault.h"
#include "util/flags.h"

using namespace dader;

namespace {

core::DaderConfig DemoModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, DemoModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

serve::MatchRequest Pair(const std::string& a, const std::string& b) {
  serve::MatchRequest request;
  request.a = data::Record({a, "10"});
  request.b = data::Record({b, "10"});
  return request;
}

std::vector<serve::MatchRequest> DemoStream() {
  return {
      Pair("sony wh-1000xm4 headphones", "sony wh1000xm4"),
      Pair("apple iphone 12 128gb", "apple iphone 12 128 gb"),
      Pair("apple iphone 12 128gb", "makita cordless drill"),
      Pair("canon eos r6 body", "canon eos r6"),
      Pair("dell xps 13 9310", "dell xps13 9310 laptop"),
      Pair("logitech mx master 3", "logitech mx master 3s"),
      Pair("bosch gsr 12v drill", "canon eos r6"),
      Pair("samsung galaxy s21", "samsung galaxy s21 5g"),
  };
}

void PumpStream(dist::Coordinator& coordinator,
                const std::vector<serve::MatchRequest>& stream,
                const char* tag) {
  int ok = 0, rescued = 0, shed = 0;
  for (const auto& request : stream) {
    const dist::RouteDecision route = coordinator.Route(request);
    const serve::MatchResponse response = coordinator.Match(request);
    if (response.status.ok()) {
      ++ok;
      if (route.rescued) ++rescued;
    } else {
      ++shed;
    }
  }
  std::printf("  [%s] ok=%d rescued=%d shed=%d\n", tag, ok, rescued, shed);
}

void PrintMembership(const dist::Coordinator& coordinator) {
  std::printf("  membership:");
  for (int node = 0; node < coordinator.num_nodes(); ++node) {
    std::printf(" node%d=%s", node,
                dist::NodeStateName(coordinator.membership().state(node)));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("seed", 42, "model + fleet seed");
  flags.DefineInt("nodes", 3, "worker node count");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Help().c_str());
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const int nodes = flags.GetInt("nodes");

  const data::Schema schema({"title", "price"});
  FaultInjector fault;

  // --- fleet: N workers on bit-identical model replicas --------------------
  std::printf("== 1. fleet up: %d workers over loopback TCP ==\n", nodes);
  core::DaModel base = MakeModel(seed);
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  std::vector<int> ports;
  for (int node = 0; node < nodes; ++node) {
    auto replica = core::CloneModel(base, seed + 100 + node);
    if (!replica.ok()) {
      std::printf("clone failed: %s\n", replica.status().ToString().c_str());
      return 1;
    }
    dist::WorkerNodeConfig config;
    config.node_id = node;
    config.serve.queue_capacity = 64;
    config.serve.max_batch = 8;
    config.serve.batch_wait_ms = 0.5;
    config.fault = &fault;
    auto worker = dist::WorkerNode::Create(config, schema, schema,
                                           std::move(replica).ValueOrDie());
    if (!worker.ok()) {
      std::printf("worker failed: %s\n", worker.status().ToString().c_str());
      return 1;
    }
    workers.push_back(std::move(worker).ValueOrDie());
    if (!workers.back()->Start(0).ok()) return 1;
    ports.push_back(workers.back()->port());
    std::printf("  node %d listening on 127.0.0.1:%d\n", node, ports[node]);
  }

  dist::CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 500.0;
  cfg.membership.suspect_after_misses = 2;
  cfg.membership.dead_after_misses = 3;
  cfg.membership.readmit_canary_successes = 2;
  cfg.seed = seed;
  dist::Coordinator coordinator(cfg, ports);

  const auto stream = DemoStream();
  for (const auto& request : stream) {
    std::printf("  \"%s\" -> home node %d\n",
                request.a.values()[0].c_str(),
                serve::ShardForPair(request.a, request.b, nodes));
  }
  PumpStream(coordinator, stream, "steady state");

  // --- crash: a seeded fault kills one node mid-stream ---------------------
  const int victim = coordinator.Route(stream[0]).node;
  std::printf("== 2. node %d crashes (seeded kNodeCrash fault) ==\n", victim);
  FaultSpec crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.shard = victim;
  crash.max_hits = 1;
  fault.Arm(crash);
  PumpStream(coordinator, stream, "crash round");
  for (int tick = 0; tick < cfg.membership.dead_after_misses; ++tick) {
    coordinator.HeartbeatTick();
  }
  PrintMembership(coordinator);
  PumpStream(coordinator, stream, "degraded");
  std::printf("  totals: routed=%lld rescued=%lld shed=%lld\n",
              static_cast<long long>(coordinator.routed()),
              static_cast<long long>(coordinator.rescued()),
              static_cast<long long>(coordinator.shed()));

  // --- recovery: restart + canary re-admission -----------------------------
  std::printf("== 3. node %d restarts and earns its way back ==\n", victim);
  if (!workers[victim]->Restart().ok()) return 1;
  coordinator.HeartbeatTick();  // DEAD -> CANARY (pings answer again)
  PrintMembership(coordinator);
  for (int i = 0; i < cfg.membership.readmit_canary_successes; ++i) {
    coordinator.HeartbeatTick();  // canary probes; streak promotes
  }
  PrintMembership(coordinator);
  PumpStream(coordinator, stream, "recovered");

  // --- rolling reload ------------------------------------------------------
  std::printf("== 4. rolling model push across the fleet ==\n");
  const std::string dir = "/tmp/dader_dist_demo";
  ::mkdir(dir.c_str(), 0755);
  core::DaModel next = MakeModel(seed + 7);
  const Status saved = core::SaveModules(
      dir + "/push", {{"F", next.extractor.get()}, {"M", next.matcher.get()}});
  if (!saved.ok()) {
    std::printf("save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  const Status rolled = coordinator.RollingReload(dir + "/push");
  std::printf("  rolling reload: %s\n", rolled.ToString().c_str());
  for (int node = 0; node < nodes; ++node) {
    std::printf("  node %d reloads=%lld rollbacks=%lld\n", node,
                static_cast<long long>(workers[node]->service().stats().reloads),
                static_cast<long long>(
                    workers[node]->service().stats().reload_rollbacks));
  }

  coordinator.Stop();
  for (auto& worker : workers) worker->Stop();
  std::printf("done.\n");
  return 0;
}
