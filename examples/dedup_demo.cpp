// Dedup demo: raw records in, entity clusters out.
//
// The full src/block pipeline on a small generated corpus:
//
//   1. generate two dirty views of the same product catalog (tables A and
//      B with gold matches)
//   2. adapt a matcher for the target domain: labeled AB source, unlabeled
//      WA target, MMD alignment at smoke scale (the paper's scenario — no
//      target labels anywhere)
//   3. blocking — inverted index (df-capped, idf-scored probes) + MinHash/
//      LSH band buckets, merged into one deduplicated candidate stream
//      that flows through a bounded queue into a 2-shard
//      ShardedMatchService via a bounded in-flight window (backpressure,
//      never load-shed)
//   4. accepted matches union-find into entity clusters
//
// The demo prints the blocking win (pair-reduction ratio at measured
// candidate recall), the cluster output, and a few sample clusters with
// the underlying record text so the result is inspectable.
//
//   ./dedup_demo [--entities=400] [--seed=42]

#include <cstdio>
#include <string>

#include "block/pipeline.h"
#include "core/dader.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "serve/sharded_service.h"
#include "util/flags.h"

using namespace dader;

namespace {

std::string RecordText(const data::Table& table, size_t row) {
  std::string out;
  for (const auto& value : table.row(row).values()) {
    if (value.empty()) continue;
    if (!out.empty()) out += " | ";
    out += value;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt("entities", 400, "distinct entities behind the two tables");
  flags.DefineInt("seed", 42, "corpus + model seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const int64_t entities = flags.GetInt("entities");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf("== 1. two dirty views of one catalog ==\n");
  auto tables = data::GenerateTables("WA", entities, seed).ValueOrDie();
  std::printf("  table A: %zu records, table B: %zu records, "
              "%zu gold matches\n",
              tables.a.size(), tables.b.size(), tables.gold_matches.size());
  std::printf("  A[0]: %s\n", RecordText(tables.a, 0).c_str());
  std::printf("  B[0]: %s\n", RecordText(tables.b, 0).c_str());

  std::printf("\n== 2. adapt a matcher: AB (labeled) -> WA (unlabeled), "
              "MMD ==\n");
  const core::ExperimentScale scale = core::SmokeScale();
  auto task = core::BuildDaTask("AB", "WA", scale).ValueOrDie();
  auto model = core::BuildModel(core::ExtractorKind::kLM, scale,
                                /*pretrained=*/true, seed)
                   .ValueOrDie();
  auto outcome =
      core::RunSingleDa(core::AlignMethod::kMMD, scale, task, &model)
          .ValueOrDie();
  std::printf("  adapted; held-out target pair F1 %.1f (smoke scale)\n",
              outcome.test_f1 * 100);

  std::printf("\n== 3-4. block -> stream -> match -> cluster ==\n");
  serve::ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.queue_capacity = 128;
  serve_config.shard.max_batch = 16;
  serve_config.shard.batch_wait_ms = 0.2;
  serve_config.shard.default_deadline_ms = 60000.0;
  serve_config.shard.num_workers = 1;
  serve_config.shard.feature_cache_capacity = 1024;
  serve_config.shard.seed = seed;
  auto service = serve::ShardedMatchService::Create(
                     serve_config, tables.a.schema(), tables.b.schema(),
                     std::move(model))
                     .ValueOrDie();

  block::DedupConfig config;
  config.queue_capacity = 256;
  config.max_in_flight = 128;  // <= 2 shards x 128 queue slots: no shedding
  auto result = block::RunDedup(tables.a, tables.b, &tables.gold_matches,
                                service.get(), config)
                    .ValueOrDie();
  service->Stop();

  std::printf("  candidates: %lld of %lld possible pairs "
              "(%.0fx reduction, candidate recall %.3f)\n",
              static_cast<long long>(result.candidates.emitted),
              static_cast<long long>(tables.a.size()) *
                  static_cast<long long>(tables.b.size()),
              result.pair_reduction, result.candidate_recall);
  std::printf("  generator split: index=%lld lsh=%lld, duplicates "
              "suppressed=%lld\n",
              static_cast<long long>(result.candidates.index_candidates),
              static_cast<long long>(result.candidates.lsh_candidates),
              static_cast<long long>(result.candidates.duplicates));
  std::printf("  matcher: %lld responses, %lld accepted matches\n",
              static_cast<long long>(result.responses_ok),
              static_cast<long long>(result.matches));
  std::printf("  clusters: %zu entity clusters covering %zu records\n",
              result.clusters, result.clustered_records);
  std::printf("  timing: blocking %.1fms, total %.1fms\n", result.block_ms,
              result.match_ms);

  std::printf("\n== sample clusters ==\n");
  const uint32_t b_offset = static_cast<uint32_t>(tables.a.size());
  size_t shown = 0;
  for (const auto& cluster : result.entity_clusters) {
    if (shown == 3) break;
    std::printf("  cluster %zu:\n", shown);
    for (uint32_t id : cluster) {
      const bool from_a = id < b_offset;
      std::printf("    %s[%u]: %s\n", from_a ? "A" : "B",
                  from_a ? id : id - b_offset,
                  from_a ? RecordText(tables.a, id).c_str()
                         : RecordText(tables.b, id - b_offset).c_str());
    }
    ++shown;
  }
  if (result.entity_clusters.empty()) {
    std::printf("  (no clusters: the smoke-scale matcher accepted no pairs "
                "this run — try another --seed)\n");
  }

  // Exit-time dump of the block.* series this run produced (Prometheus
  // text exposition format; docs/OBSERVABILITY.md lists every name).
  std::printf("\n== block.* metrics ==\n");
  const std::string scrape = obs::MetricsRegistry::Default().ScrapeText();
  size_t pos = 0;
  while (pos < scrape.size()) {
    size_t end = scrape.find('\n', pos);
    if (end == std::string::npos) end = scrape.size();
    const std::string line = scrape.substr(pos, end - pos);
    if (line.rfind("block_", 0) == 0) std::printf("%s\n", line.c_str());
    pos = end + 1;
  }
  return 0;
}
