// The complete classical ER pipeline (Section 2): two raw tables ->
// blocking -> matching, where the matcher was trained by domain adaptation
// from a different labeled dataset — no target labels used for training.
//
//   ./er_pipeline [--scale=smoke] [--source=WA] [--target=AB] [--entities=400]

#include <cstdio>
#include <set>

#include "core/dader.h"
#include "util/flags.h"

using namespace dader;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("scale", "smoke", "experiment scale preset");
  flags.DefineString("source", "WA", "labeled source dataset for DA");
  flags.DefineString("target", "AB", "target tables to resolve");
  flags.DefineInt("entities", 400, "number of target entities to generate");
  flags.DefineString("dump_csv", "", "optional path to dump candidate pairs");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const core::ExperimentScale scale = core::ResolveScale(flags.GetString("scale"));
  const std::string source = flags.GetString("source");
  const std::string target = flags.GetString("target");

  // 1. Two raw target tables with hidden gold matches.
  auto tables_result =
      data::GenerateTables(target, flags.GetInt("entities"), /*seed=*/17);
  if (!tables_result.ok()) {
    std::fprintf(stderr, "%s\n", tables_result.status().ToString().c_str());
    return 1;
  }
  data::GeneratedTables tables = std::move(tables_result).ValueOrDie();
  std::printf("tables: A=%zu rows, B=%zu rows, %zu gold matches\n",
              tables.a.size(), tables.b.size(), tables.gold_matches.size());

  // 2. Blocking: prune the |A| x |B| cross product to candidates.
  data::OverlapBlocker blocker;
  const auto candidates = blocker.GenerateCandidates(tables.a, tables.b);
  const double recall =
      data::OverlapBlocker::Recall(candidates, tables.gold_matches);
  std::printf(
      "blocking: %zu candidates (%.2f%% of cross product), recall %.1f%%\n",
      candidates.size(),
      100.0 * static_cast<double>(candidates.size()) /
          (static_cast<double>(tables.a.size()) * tables.b.size()),
      recall * 100);

  // 3. Train the matcher with DA from the labeled source dataset.
  auto task = core::BuildDaTask(source, target, scale).ValueOrDie();
  auto model =
      core::BuildModel(core::ExtractorKind::kLM, scale, true, 42).ValueOrDie();
  std::printf("adapting matcher %s -> %s with MMD ...\n", source.c_str(),
              target.c_str());
  auto outcome =
      core::RunSingleDa(core::AlignMethod::kMMD, scale, task, &model)
          .ValueOrDie();
  std::printf("held-out target-pair F1 after DA: %.1f\n",
              outcome.test_f1 * 100);

  // 4. Match the blocked candidates with the adapted model.
  data::ERDataset candidate_pairs("candidates", "pipeline",
                                  tables.a.schema(), tables.b.schema());
  for (const auto& c : candidates) {
    data::LabeledPair p;
    p.a = tables.a.row(c.index_a);
    p.b = tables.b.row(c.index_b);
    candidate_pairs.AddPair(std::move(p));
  }
  Rng rng(3);
  core::Prediction pred =
      core::Predict(outcome.trainer->final_extractor(), model.matcher.get(),
                    candidate_pairs, scale.model.batch_size, &rng);

  // 5. Score the end-to-end result against the gold matches.
  std::set<std::pair<size_t, size_t>> gold(tables.gold_matches.begin(),
                                           tables.gold_matches.end());
  int64_t tp = 0, fp = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (pred.labels[i] != 1) continue;
    if (gold.count({candidates[i].index_a, candidates[i].index_b})) ++tp;
    else ++fp;
  }
  const int64_t fn = static_cast<int64_t>(gold.size()) - tp;
  const double precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0;
  const double recall_m = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0;
  const double f1 = precision + recall_m > 0
                        ? 2 * precision * recall_m / (precision + recall_m)
                        : 0;
  std::printf(
      "end-to-end pipeline: %lld predicted matches, P=%.1f%% R=%.1f%% "
      "F1=%.1f%%\n",
      static_cast<long long>(tp + fp), precision * 100, recall_m * 100,
      f1 * 100);

  const std::string dump = flags.GetString("dump_csv");
  if (!dump.empty()) {
    Status s = candidate_pairs.ToCsvFile(dump);
    std::printf("candidate pairs written to %s (%s)\n", dump.c_str(),
                s.ToString().c_str());
  }
  return 0;
}
