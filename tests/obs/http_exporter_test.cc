// HttpMetricsExporter tests: a real loopback socket client fetches
// /metrics and checks the exposition payload; unknown paths 404; Stop() is
// idempotent and the port is reusable afterwards.

#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dader::obs {
namespace {

// One-shot HTTP client: connect to 127.0.0.1:port, send the request, read
// until the server closes the connection.
std::string Fetch(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port << " failed: " << strerror(errno);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpMetricsExporterTest, ServesScrapeTextOnMetricsPath) {
  // A counter registered before the scrape must appear in the payload.
  MetricsRegistry::Default()
      .GetCounter("obs.http.test.total", "exporter test marker")
      ->Increment();

  HttpMetricsExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());  // ephemeral port
  ASSERT_GT(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  const std::string response =
      Fetch(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  // ScrapeText sanitizes dotted names to Prometheus form.
  EXPECT_NE(response.find("obs_http_test_total"), std::string::npos)
      << "scrape payload is missing a registered counter";
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

TEST(HttpMetricsExporterTest, UnknownPathIs404) {
  HttpMetricsExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());
  const std::string response =
      Fetch(exporter.port(), "GET /debug/pprof HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

// Regression: a scrape handler that throws used to tear down the serving
// thread with an unhandled exception. It must answer 503 with the error in
// the body instead — the exporter outlives a poisoned registry.
TEST(HttpMetricsExporterTest, ThrowingScrapeHandlerAnswers503WithBody) {
  HttpMetricsExporter exporter;
  exporter.set_scrape_handler([]() -> std::string {
    throw std::runtime_error("registry poisoned");
  });
  ASSERT_TRUE(exporter.Start(0).ok());

  const std::string response =
      Fetch(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos)
      << response;
  EXPECT_NE(response.find("scrape handler failed: registry poisoned"),
            std::string::npos)
      << "503 body must carry the handler's error";

  // The serving thread survived the throw: the next scrape is answered.
  const std::string again =
      Fetch(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(again.find("503"), std::string::npos);
  exporter.Stop();
}

TEST(HttpMetricsExporterTest, CustomScrapeHandlerReplacesRegistryText) {
  HttpMetricsExporter exporter;
  exporter.set_scrape_handler([] { return std::string("custom payload\n"); });
  ASSERT_TRUE(exporter.Start(0).ok());
  const std::string response =
      Fetch(exporter.port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("custom payload"), std::string::npos);
  exporter.Stop();
}

TEST(HttpMetricsExporterTest, StopIsIdempotentAndStartFailsWhileRunning) {
  HttpMetricsExporter exporter;
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_FALSE(exporter.Start(0).ok()) << "double Start must be rejected";
  exporter.Stop();
  exporter.Stop();  // second Stop is a no-op
  EXPECT_FALSE(exporter.running());
}

}  // namespace
}  // namespace dader::obs
