// End-to-end observability tests: MatchService must emit the documented
// shed/degraded/latency metrics under injected faults, the obs counters
// must mirror ServeStats exactly, and — the regression at the heart of the
// FaultInjector/metrics interaction — a retry that the circuit breaker
// abandons mid-backoff must NOT be counted as a retry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/match_service.h"
#include "util/fault.h"

namespace dader::serve {
namespace {

using core::DaderConfig;

DaderConfig TinyModelConfig() {
  DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, TinyModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

data::Schema TestSchema() { return data::Schema({"title", "price"}); }

MatchRequest MakeRequest(const std::string& title_a,
                         const std::string& title_b) {
  MatchRequest request;
  request.a = data::Record({title_a, "10"});
  request.b = data::Record({title_b, "10"});
  return request;
}

ServeConfig TestServeConfig() {
  ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 10000.0;
  config.retry.base_backoff_ms = 1.0;
  config.retry.max_backoff_ms = 4.0;
  return config;
}

std::unique_ptr<MatchService> MakeService(ServeConfig config,
                                          bool with_fallback = true) {
  return std::make_unique<MatchService>(
      std::move(config), TestSchema(), TestSchema(),
      MakeModel(core::ExtractorKind::kLM, 21),
      with_fallback ? std::make_unique<core::DaModel>(
                          MakeModel(core::ExtractorKind::kRNN, 33))
                    : nullptr);
}

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->value();
}

int64_t TransitionsTo(const std::string& state) {
  return CounterValue(
      obs::LabeledName("serve.breaker.transitions.total", "to", state));
}

// The serving metric names docs/OBSERVABILITY.md documents; the e2e test
// asserts every one is registered after traffic has flowed.
const std::vector<std::string>& DocumentedServeMetrics() {
  static const std::vector<std::string> kNames = {
      "serve.requests.admitted.total",
      "serve.requests.shed.total",
      "serve.requests.completed.total",
      "serve.requests.deadline_expired.total",
      "serve.requests.degraded.total",
      "serve.requests.invalid.total",
      "serve.primary.failures.total",
      "serve.primary.retries.total",
      "serve.reload.success.total",
      "serve.reload.rollback.total",
      "serve.latency.queue_ms",
      "serve.latency.total_ms",
      "serve.latency.forward_ms",
      "serve.batch.size",
      "serve.queue.depth",
  };
  return kNames;
}

TEST(ObsServingTest, EmitsDocumentedMetricsUnderInjectedFaults) {
  obs::MetricsRegistry::Default().ResetAllForTest();
  FaultInjector fault;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.probability = 1.0;
  spec.max_hits = 1 << 20;  // every primary attempt fails
  fault.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.retry.max_attempts = 2;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown_ms = 60000.0;  // stays open for the whole test
  config.fault = &fault;

  constexpr int kRequests = 10;
  {
    auto service = MakeService(config);
    std::vector<MatchRequest> requests;
    for (int i = 0; i < kRequests; ++i) {
      requests.push_back(MakeRequest("item " + std::to_string(i), "item x"));
    }
    const std::vector<MatchResponse> responses =
        service->MatchBatch(std::move(requests));
    for (const MatchResponse& r : responses) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_TRUE(r.degraded);
    }
  }

  auto& registry = obs::MetricsRegistry::Default();
  const std::vector<std::string> names = registry.Names();
  for (const std::string& name : DocumentedServeMetrics()) {
    bool found = false;
    for (const std::string& n : names) {
      found |= n == name || n.rfind(name + "{", 0) == 0;
    }
    EXPECT_TRUE(found) << "documented metric not registered: " << name;
  }

  EXPECT_EQ(CounterValue("serve.requests.admitted.total"), kRequests);
  EXPECT_EQ(CounterValue("serve.requests.completed.total"), kRequests);
  EXPECT_EQ(CounterValue("serve.requests.degraded.total"), kRequests);
  // The first batch spends both attempts on the primary (2 failures) and
  // trips the threshold-2 breaker; every later batch goes straight to the
  // fallback.
  EXPECT_EQ(CounterValue("serve.primary.failures.total"), 2);
  EXPECT_EQ(TransitionsTo("open"), 1);
  EXPECT_EQ(fault.hits(FaultKind::kExtractorFault), 2);

  // Latency histograms record exactly the OK responses.
  EXPECT_EQ(registry.GetHistogram("serve.latency.total_ms")->count(),
            kRequests);
  EXPECT_EQ(registry.GetHistogram("serve.latency.queue_ms")->count(),
            kRequests);
  // At least the failing primary attempts and the fallback forwards timed.
  EXPECT_GE(registry.GetHistogram("serve.latency.forward_ms")->count(), 3);
  EXPECT_GE(registry.GetHistogram("serve.batch.size")->count(), 1);
  // Idle service at teardown: nothing left queued.
  EXPECT_DOUBLE_EQ(registry.GetGauge("serve.queue.depth")->value(), 0.0);
}

TEST(ObsServingTest, ObsCountersMirrorServeStats) {
  obs::MetricsRegistry::Default().ResetAllForTest();
  ServeConfig config = TestServeConfig();
  config.queue_capacity = 4;  // force some shedding under the burst
  config.max_batch = 2;

  auto service = MakeService(config, /*with_fallback=*/false);
  std::vector<std::future<MatchResponse>> futures;
  futures.reserve(48);
  for (int i = 0; i < 48; ++i) {
    futures.push_back(service->SubmitAsync(
        MakeRequest("burst " + std::to_string(i), "burst x")));
  }
  for (auto& f : futures) (void)f.get();

  // However the burst split between served and shed, the process-wide
  // counters must agree with the per-service atomics event for event.
  const ServeStats stats = service->stats();
  EXPECT_EQ(CounterValue("serve.requests.admitted.total"), stats.admitted);
  EXPECT_EQ(CounterValue("serve.requests.shed.total"), stats.shed);
  EXPECT_EQ(CounterValue("serve.requests.completed.total"), stats.completed);
  EXPECT_EQ(CounterValue("serve.requests.degraded.total"), stats.degraded);
  EXPECT_EQ(CounterValue("serve.primary.failures.total"),
            stats.primary_failures);
  EXPECT_EQ(CounterValue("serve.primary.retries.total"), stats.retries);
  EXPECT_EQ(stats.admitted + stats.shed, 48);
}

TEST(ObsServingTest, InvalidRequestsCountSeparately) {
  obs::MetricsRegistry::Default().ResetAllForTest();
  auto service = MakeService(TestServeConfig(), /*with_fallback=*/false);
  MatchRequest bad;
  bad.a = data::Record({"only one value"});
  bad.b = data::Record({"b", "10"});
  const MatchResponse r = service->Match(std::move(bad));
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CounterValue("serve.requests.invalid.total"), 1);
  EXPECT_EQ(CounterValue("serve.requests.admitted.total"), 0);
}

TEST(ObsServingTest, RetryThatRunsIsCountedExactlyOnce) {
  obs::MetricsRegistry::Default().ResetAllForTest();
  FaultInjector fault;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.probability = 1.0;
  spec.max_hits = 1;  // exactly one transient failure, then recovery
  fault.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.retry.max_attempts = 3;
  config.breaker.failure_threshold = 10;  // breaker stays closed
  config.fault = &fault;

  auto service = MakeService(config);
  const MatchResponse r = service->Match(MakeRequest("camera a", "camera a"));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.degraded);  // second attempt succeeded on the primary
  EXPECT_EQ(r.attempts, 2);

  // One injected fault -> one failure, one executed retry. No double count
  // from the retry wrapper.
  EXPECT_EQ(fault.hits(FaultKind::kExtractorFault), 1);
  EXPECT_EQ(service->stats().primary_failures, 1);
  EXPECT_EQ(service->stats().retries, 1);
  EXPECT_EQ(CounterValue("serve.primary.failures.total"), 1);
  EXPECT_EQ(CounterValue("serve.primary.retries.total"), 1);
}

TEST(ObsServingTest, RetryAbandonedByBreakerIsNotCounted) {
  // Regression: retries_ used to be incremented before the mid-backoff
  // breaker re-check, so a retry the breaker vetoed — which never executed
  // a forward pass — still inflated the retry counters by one.
  obs::MetricsRegistry::Default().ResetAllForTest();
  FaultInjector fault;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.probability = 1.0;
  spec.max_hits = 1 << 20;
  fault.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.retry.max_attempts = 3;
  config.breaker.failure_threshold = 1;  // first failure trips the breaker
  config.breaker.cooldown_ms = 60000.0;  // no half-open during the test
  config.fault = &fault;

  auto service = MakeService(config);
  const MatchResponse r = service->Match(MakeRequest("camera a", "camera a"));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.attempts, 1);  // the breaker vetoed attempts 2 and 3

  // Exactly one fault fired, one primary attempt ran and failed, zero
  // retries executed — and the counters say exactly that.
  EXPECT_EQ(fault.hits(FaultKind::kExtractorFault), 1);
  EXPECT_EQ(service->stats().primary_failures, 1);
  EXPECT_EQ(service->stats().retries, 0);
  EXPECT_EQ(CounterValue("serve.primary.failures.total"), 1);
  EXPECT_EQ(CounterValue("serve.primary.retries.total"), 0);
  EXPECT_EQ(TransitionsTo("open"), 1);
}

}  // namespace
}  // namespace dader::serve
