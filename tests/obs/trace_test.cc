// Tracer tests: RAII span nesting, the bounded ring with drop accounting,
// and the logical-clock mode whose export is bit-identical across runs
// (the golden-stability contract documented in docs/OBSERVABILITY.md).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace dader::obs {
namespace {

TEST(TraceTest, SpansCompleteInDestructionOrder) {
  Tracer tracer;
  tracer.set_clock_mode(ClockMode::kLogical);
  {
    TraceSpan outer("outer", &tracer);
    { TraceSpan inner("inner", &tracer); }
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "inner");  // inner finishes first
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  // Logical ticks: outer opens (1), inner opens (2), inner closes (3),
  // outer closes (4).
  EXPECT_EQ(spans[1].start_us, 1u);
  EXPECT_EQ(spans[0].start_us, 2u);
  EXPECT_EQ(spans[0].end_us, 3u);
  EXPECT_EQ(spans[1].end_us, 4u);
}

TEST(TraceTest, LogicalClockExportIsBitIdenticalAcrossRuns) {
  Tracer tracer;
  tracer.set_clock_mode(ClockMode::kLogical);
  auto run = [&tracer] {
    tracer.Clear();
    TraceSpan epoch("train.algo1.epoch", &tracer);
    { TraceSpan eval("train.eval", &tracer); }
    { TraceSpan ckpt("train.checkpoint", &tracer); }
  };
  run();
  const std::string first_json = tracer.ToJsonLines();
  const std::string first_csv = tracer.ToCsv();
  run();
  EXPECT_EQ(tracer.ToJsonLines(), first_json);
  EXPECT_EQ(tracer.ToCsv(), first_csv);
  // And the content is the exact golden, not merely self-consistent.
  EXPECT_EQ(first_json,
            "{\"span\":\"train.eval\",\"thread\":0,\"depth\":1,"
            "\"start_us\":2,\"dur_us\":1}\n"
            "{\"span\":\"train.checkpoint\",\"thread\":0,\"depth\":1,"
            "\"start_us\":4,\"dur_us\":1}\n"
            "{\"span\":\"train.algo1.epoch\",\"thread\":0,\"depth\":0,"
            "\"start_us\":1,\"dur_us\":5}\n");
}

TEST(TraceTest, RingDropsOldestAndCountsDrops) {
  Tracer tracer(/*capacity=*/3);
  tracer.set_clock_mode(ClockMode::kLogical);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("s", &tracer);
  }
  EXPECT_EQ(tracer.recorded(), 5);
  EXPECT_EQ(tracer.dropped(), 2);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first snapshot of the 3 most recent spans (ticks 5..10).
  EXPECT_EQ(spans.front().start_us, 5u);
  EXPECT_EQ(spans.back().end_us, 10u);
}

TEST(TraceTest, DisabledTracerIsInert) {
  Tracer tracer;
  tracer.set_enabled(false);
  { TraceSpan span("ignored", &tracer); }
  EXPECT_EQ(tracer.recorded(), 0);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.set_enabled(true);
  { TraceSpan span("seen", &tracer); }
  EXPECT_EQ(tracer.recorded(), 1);
}

TEST(TraceTest, WallClockSpansHaveNonNegativeDurations) {
  Tracer tracer;  // default kWall
  {
    TraceSpan span("timed", &tracer);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].end_us, spans[0].start_us);
  // 1ms sleep must register at wall-microsecond resolution.
  EXPECT_GE(spans[0].end_us - spans[0].start_us, 500u);
}

TEST(TraceTest, ConcurrentSpansAllRecorded) {
  Tracer tracer(/*capacity=*/100000);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker", &tracer);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tracer.recorded(), int64_t{kThreads} * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TraceTest, ClearRestartsTheLogicalClock) {
  Tracer tracer;
  tracer.set_clock_mode(ClockMode::kLogical);
  { TraceSpan span("a", &tracer); }
  tracer.Clear();
  { TraceSpan span("b", &tracer); }
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start_us, 1u);  // clock restarted, not continued
}

TEST(TraceTest, MacroUsesTheDefaultTracer) {
  Tracer& tracer = Tracer::Default();
  const int64_t before = tracer.recorded();
  { DADER_TRACE_SPAN("macro.span"); }
  EXPECT_EQ(tracer.recorded(), before + 1);
}

}  // namespace
}  // namespace dader::obs
