// Metrics registry tests: counter/gauge/histogram correctness under
// concurrency (run this suite under TSan via -DDADER_SANITIZE="thread"),
// the DDSketch relative-error bound, and deterministic text exports.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace dader::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

void RunThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (auto& th : threads) th.join();
}

TEST(CounterTest, IncrementAddResetSingleThread) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  RunThreads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) c.Increment();
  });
  EXPECT_EQ(c.value(), int64_t{kThreads} * kOpsPerThread);
}

TEST(GaugeTest, SetAndValue) {
  Gauge g;
  g.Set(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddIsLossless) {
  Gauge g;
  RunThreads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) g.Add(1.0);
  });
  // Every CAS-increment of 1.0 is exactly representable: no adds may race
  // away or round off.
  EXPECT_DOUBLE_EQ(g.value(), double(kThreads) * kOpsPerThread);
}

TEST(QuantileSketchTest, RelativeErrorBoundOnUniformValues) {
  QuantileSketch sketch;  // alpha = 0.01
  std::vector<double> values;
  for (int i = 1; i <= 20000; ++i) values.push_back(0.05 * i);  // 0.05..1000
  for (double v : values) sketch.Observe(v);
  ASSERT_EQ(sketch.count(), static_cast<int64_t>(values.size()));

  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double truth =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const double est = sketch.Quantile(q);
    // The bucket midpoint is within alpha of every value in its bucket;
    // the rank discretization can shift the answer by one adjacent value,
    // which for this dense series is far below the alpha slack.
    EXPECT_NEAR(est, truth, truth * 2.0 * sketch.alpha())
        << "q=" << q << " truth=" << truth << " est=" << est;
  }
}

TEST(QuantileSketchTest, SumAndCountTrackObservations) {
  QuantileSketch sketch;
  double expect_sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    sketch.Observe(i);
    expect_sum += i;
  }
  EXPECT_EQ(sketch.count(), 100);
  EXPECT_DOUBLE_EQ(sketch.sum(), expect_sum);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, OutOfRangeValuesAreCountedNotBounded) {
  QuantileSketch sketch(0.01, 1e-4, 1e8);
  sketch.Observe(0.0);                                      // below min
  sketch.Observe(-5.0);                                     // negative
  sketch.Observe(1e12);                                     // above max
  sketch.Observe(std::numeric_limits<double>::infinity());  // +Inf
  sketch.Observe(std::numeric_limits<double>::quiet_NaN()); // NaN
  EXPECT_EQ(sketch.count(), 5);
  // Non-finite observations contribute 0 to the sum so it stays usable.
  EXPECT_DOUBLE_EQ(sketch.sum(), -5.0 + 1e12);
}

TEST(QuantileSketchTest, ConcurrentObserveKeepsEveryCount) {
  QuantileSketch sketch;
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      sketch.Observe(1.0 + t + i % 7);
    }
  });
  EXPECT_EQ(sketch.count(), int64_t{kThreads} * kOpsPerThread);
}

TEST(HistogramTest, BucketAssignmentFollowsUpperBounds) {
  Histogram h(std::vector<double>{1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1      -> bucket 0
  h.Observe(1.0);    // <= 1      -> bucket 0 (le semantics)
  h.Observe(5.0);    // <= 10     -> bucket 1
  h.Observe(50.0);   // <= 100    -> bucket 2
  h.Observe(500.0);  // overflow  -> bucket 3
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
}

TEST(HistogramTest, QuantileComesFromSketchNotBuckets) {
  // One coarse bucket covering everything: a bucket-interpolated quantile
  // could only answer "somewhere below 1e6"; the embedded sketch stays
  // alpha-accurate.
  Histogram h(std::vector<double>{1e6});
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  const double p50 = h.Quantile(0.5);
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.03);
}

TEST(HistogramTest, ConcurrentObserveCountsEverything) {
  Histogram h;
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      h.Observe(0.1 * (1 + (t + i) % 50));
    }
  });
  EXPECT_EQ(h.count(), int64_t{kThreads} * kOpsPerThread);
  int64_t bucket_total = 0;
  for (size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(RegistryTest, SameNameReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.total", "help", "events");
  Counter* b = registry.GetCounter("x.total");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1);
}

TEST(RegistryTest, LabeledNameEncodesOneSeriesPerLabelValue) {
  EXPECT_EQ(LabeledName("a.b.total", "k", "v"), "a.b.total{k=\"v\"}");
  MetricsRegistry registry;
  Counter* red = registry.GetCounter(LabeledName("c.total", "color", "red"));
  Counter* blue = registry.GetCounter(LabeledName("c.total", "color", "blue"));
  EXPECT_NE(red, blue);
  red->Add(2);
  blue->Add(3);
  const std::string text = registry.ScrapeText();
  EXPECT_NE(text.find("c_total{color=\"red\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("c_total{color=\"blue\"} 3"), std::string::npos) << text;
}

TEST(RegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry registry;
  RunThreads([&](int t) {
    // All threads race GetCounter on a shared name and on per-thread names
    // while updating — registration must be safe mid-traffic.
    Counter* shared = registry.GetCounter("shared.total");
    Counter* own = registry.GetCounter("own." + std::to_string(t) + ".total");
    for (int i = 0; i < 2000; ++i) {
      shared->Increment();
      own->Increment();
    }
  });
  EXPECT_EQ(registry.GetCounter("shared.total")->value(), kThreads * 2000);
  EXPECT_EQ(registry.Names().size(), 1u + kThreads);
}

TEST(RegistryTest, NamesAreSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta.total");
  registry.GetGauge("alpha.value");
  registry.GetHistogram("mid.ms");
  const std::vector<std::string> names = registry.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, ScrapeTextIsPrometheusShaped) {
  MetricsRegistry registry;
  registry.GetCounter("serve.reqs.total", "Requests", "requests")->Add(7);
  registry.GetGauge("train.loss", "Loss")->Set(0.125);
  Histogram* h = registry.GetHistogram("lat.ms", "Latency", "ms",
                                       std::vector<double>{1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  const std::string text = registry.ScrapeText();
  EXPECT_NE(text.find("# HELP serve_reqs_total Requests (requests)"),
            std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE serve_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("serve_reqs_total 7"), std::string::npos);
  EXPECT_NE(text.find("train_loss 0.125"), std::string::npos);
  // Cumulative le-buckets plus sum/count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 55.5"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos);
}

TEST(RegistryTest, ExportsAreDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("b.total")->Add(2);
  registry.GetGauge("a.value")->Set(1.5);
  registry.GetHistogram("c.ms")->Observe(3.0);
  // Same state -> byte-identical output, every format.
  EXPECT_EQ(registry.ScrapeText(), registry.ScrapeText());
  EXPECT_EQ(registry.ToJsonLines(), registry.ToJsonLines());
  EXPECT_EQ(registry.ToCsv(), registry.ToCsv());
  // And no timestamps: the word boundary check is that values alone change
  // the export, not time passing.
  const std::string before = registry.ToJsonLines();
  const std::string after = registry.ToJsonLines();
  EXPECT_EQ(before, after);
}

TEST(RegistryTest, DeterministicCsvDropsTimingDerivedFields) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat.ms");
  h->Observe(1.0);
  h->Observe(2.0);
  const std::string full = registry.ToCsv();
  EXPECT_NE(full.find("histogram,sum"), std::string::npos);
  EXPECT_NE(full.find("histogram,p50"), std::string::npos);
  CsvOptions options;
  options.deterministic_only = true;
  const std::string det = registry.ToCsv(options);
  EXPECT_NE(det.find("histogram,count,2"), std::string::npos) << det;
  EXPECT_EQ(det.find("histogram,sum"), std::string::npos) << det;
  EXPECT_EQ(det.find("histogram,p50"), std::string::npos) << det;
}

TEST(RegistryTest, ResetAllForTestZeroesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("n.total");
  Gauge* g = registry.GetGauge("g.value");
  Histogram* h = registry.GetHistogram("h.ms");
  c->Add(5);
  g->Set(2.0);
  h->Observe(1.0);
  registry.ResetAllForTest();
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
  c->Increment();  // pointer still live and usable
  EXPECT_EQ(c->value(), 1);
}

TEST(RegistryTest, DefaultRegistryHoldsBuiltInInstrumentation) {
  // The process-wide registry is shared by trainer/serving/thread-pool
  // call sites; fetching a known built-in name must not create a fresh
  // zero-initialized duplicate of a different kind.
  Counter* c = MetricsRegistry::Default().GetCounter("obs.selftest.total");
  c->Increment();
  EXPECT_GE(c->value(), 1);
}

}  // namespace
}  // namespace dader::obs
