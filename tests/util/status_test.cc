#include "util/status.h"

#include <gtest/gtest.h>

namespace dader {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad shape");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, ServingCodeNames) {
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "Resource exhausted: queue full");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "Deadline exceeded: late");
  EXPECT_EQ(Status::Unavailable("down").ToString(), "Unavailable: down");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallback) {
  Result<std::string> good(std::string("hello"));
  Result<std::string> bad(Status::Internal("boom"));
  EXPECT_EQ(good.ValueOr("fallback"), "hello");
  EXPECT_EQ(bad.ValueOr("fallback"), "fallback");
}

TEST(ResultTest, MoveOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagatesViaMacro() {
  DADER_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_EQ(PropagatesViaMacro().code(), StatusCode::kIOError);
}

Result<int> IntResult(bool ok) {
  if (ok) return 7;
  return Status::OutOfRange("nope");
}

Result<int> UsesAssignOrReturn(bool ok) {
  DADER_ASSIGN_OR_RETURN(int v, IntResult(ok));
  DADER_ASSIGN_OR_RETURN(int w, IntResult(ok));
  return v + w;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(true).ValueOrDie(), 14);
  EXPECT_EQ(UsesAssignOrReturn(false).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dader
