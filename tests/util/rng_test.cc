#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dader {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(37);
  const auto idx = rng.SampleIndices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesFullSet) {
  Rng rng(41);
  const auto idx = rng.SampleIndices(10, 10);
  std::set<size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(43);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1.NextUint64() == c2.NextUint64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ChoiceReturnsMember) {
  Rng rng(47);
  const std::vector<std::string> pool = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& c = rng.Choice(pool);
    EXPECT_TRUE(c == "a" || c == "b" || c == "c");
  }
}

TEST(SplitMix64Test, KnownGoldenValue) {
  // Reference value from the SplitMix64 specification for seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace dader
