#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dader {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ThrowingTaskIsContainedAndCounted) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  pool.Submit([] { throw 42; });  // non-std::exception payload
  pool.Submit([&after] { after.fetch_add(1); });
  pool.Wait();
  // The pool survives throwing tasks and keeps running later ones.
  EXPECT_EQ(after.load(), 1);
  EXPECT_EQ(pool.exception_count(), 2u);
  EXPECT_FALSE(pool.last_exception().empty());
}

TEST(ThreadPoolTest, LastExceptionRetainsMessage) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Wait();
  EXPECT_EQ(pool.last_exception(), "first");
  pool.Submit([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.last_exception(), "second");
  EXPECT_EQ(pool.exception_count(), 2u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNoOp) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);  // dropped task never ran
}

TEST(ThreadPoolTest, GlobalPoolExists) {
  ASSERT_NE(ThreadPool::Global(), nullptr);
  EXPECT_GE(ThreadPool::Global()->num_threads(), 1u);
}

TEST(ParallelForTest, CoversFullRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelForTest, EachIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(256);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RespectsGrainInline) {
  // n <= grain runs inline; verify by observing completion.
  int count = 0;
  ParallelFor(4, [&count](size_t) { ++count; }, /*grain=*/8);
  EXPECT_EQ(count, 4);
}

TEST(InWorkerThreadTest, FalseOnCallerTrueInsideWorker) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  std::atomic<bool> inside{false};
  pool.Submit([&inside] { inside = ThreadPool::InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());  // caller flag untouched
}

TEST(ParallelChunksTest, EachChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelChunks(&pool, hits.size(),
                 [&hits](size_t c) { hits[c].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelChunksTest, InlineWhenPoolNullOrSingleThreaded) {
  std::vector<int> hits(8, 0);
  ParallelChunks(nullptr, hits.size(), [&hits](size_t c) { hits[c] += 1; });
  ThreadPool pool1(1);
  ParallelChunks(&pool1, hits.size(), [&hits](size_t c) { hits[c] += 1; });
  for (int h : hits) EXPECT_EQ(h, 2);
}

TEST(ParallelChunksTest, ZeroChunksReturnsImmediately) {
  ThreadPool pool(2);
  ParallelChunks(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

// The GEMM layer calls ParallelChunks from code that may itself already be
// running on a pool worker (e.g. serving handler -> forward pass). A nested
// call must run inline instead of waiting on the pool — waiting from inside
// a worker would deadlock.
TEST(ParallelChunksTest, NestedCallFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    ParallelChunks(&pool, 16, [&inner](size_t) { inner.fetch_add(1); });
    done = true;
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(inner.load(), 16);
}

// Two threads issuing ParallelChunks on the same pool concurrently must not
// wait on each other's chunks (per-call countdown, not a global Wait).
TEST(ParallelChunksTest, ConcurrentCallersComplete) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &total] {
      ParallelChunks(&pool, 32, [&total](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ParallelChunksTest, ThrowingChunkStillCounted) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // Must return (not hang) even though one chunk throws; the pool's
  // exception containment records it.
  ParallelChunks(&pool, 8, [&ran](size_t c) {
    if (c == 3) throw std::runtime_error("chunk boom");
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 7);
  EXPECT_GE(pool.exception_count(), 1u);
}

}  // namespace
}  // namespace dader
