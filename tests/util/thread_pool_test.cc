#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace dader {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ThrowingTaskIsContainedAndCounted) {
  ThreadPool pool(2);
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  pool.Submit([] { throw 42; });  // non-std::exception payload
  pool.Submit([&after] { after.fetch_add(1); });
  pool.Wait();
  // The pool survives throwing tasks and keeps running later ones.
  EXPECT_EQ(after.load(), 1);
  EXPECT_EQ(pool.exception_count(), 2u);
  EXPECT_FALSE(pool.last_exception().empty());
}

TEST(ThreadPoolTest, LastExceptionRetainsMessage) {
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Wait();
  EXPECT_EQ(pool.last_exception(), "first");
  pool.Submit([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.last_exception(), "second");
  EXPECT_EQ(pool.exception_count(), 2u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNoOp) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 1);  // dropped task never ran
}

TEST(ThreadPoolTest, GlobalPoolExists) {
  ASSERT_NE(ThreadPool::Global(), nullptr);
  EXPECT_GE(ThreadPool::Global()->num_threads(), 1u);
}

TEST(ParallelForTest, CoversFullRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelForTest, EachIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(256);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RespectsGrainInline) {
  // n <= grain runs inline; verify by observing completion.
  int count = 0;
  ParallelFor(4, [&count](size_t) { ++count; }, /*grain=*/8);
  EXPECT_EQ(count, 4);
}

}  // namespace
}  // namespace dader
