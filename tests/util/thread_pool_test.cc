#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace dader {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, GlobalPoolExists) {
  ASSERT_NE(ThreadPool::Global(), nullptr);
  EXPECT_GE(ThreadPool::Global()->num_threads(), 1u);
}

TEST(ParallelForTest, CoversFullRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ParallelForTest, EachIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(256);
  ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RespectsGrainInline) {
  // n <= grain runs inline; verify by observing completion.
  int count = 0;
  ParallelFor(4, [&count](size_t) { ++count; }, /*grain=*/8);
  EXPECT_EQ(count, 4);
}

}  // namespace
}  // namespace dader
