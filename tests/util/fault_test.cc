#include "util/fault.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>

namespace dader {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t SizeOf(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  return static_cast<uint64_t>(st.st_size);
}

TEST(FaultInjectorTest, KindNames) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNanGradient), "nan-gradient");
  EXPECT_STREQ(FaultKindName(FaultKind::kCorruptCheckpoint),
               "corrupt-checkpoint");
  EXPECT_STREQ(FaultKindName(FaultKind::kAbortStep), "abort-step");
  EXPECT_STREQ(FaultKindName(FaultKind::kExtractorFault), "extractor-fault");
  EXPECT_STREQ(FaultKindName(FaultKind::kExtractorNan), "extractor-nan");
}

TEST(FaultInjectorTest, UnarmedNeverFires) {
  FaultInjector fi;
  for (int epoch = 0; epoch < 10; ++epoch) {
    EXPECT_FALSE(fi.ShouldFire(FaultKind::kNanGradient, epoch, 0));
  }
  EXPECT_FALSE(fi.armed(FaultKind::kNanGradient));
  EXPECT_EQ(fi.hits(FaultKind::kNanGradient), 0);
}

TEST(FaultInjectorTest, HitBudgetDisarmsAfterMaxHits) {
  FaultInjector fi;
  FaultSpec spec;
  spec.kind = FaultKind::kNanGradient;
  spec.max_hits = 2;
  fi.Arm(spec);
  EXPECT_TRUE(fi.ShouldFire(FaultKind::kNanGradient, 1, 0));
  EXPECT_TRUE(fi.ShouldFire(FaultKind::kNanGradient, 1, 1));
  EXPECT_FALSE(fi.ShouldFire(FaultKind::kNanGradient, 1, 2));
  EXPECT_EQ(fi.hits(FaultKind::kNanGradient), 2);
  EXPECT_TRUE(fi.armed(FaultKind::kNanGradient));  // armed but exhausted
}

TEST(FaultInjectorTest, EpochAndStepFiltersMatchExactSite) {
  FaultInjector fi;
  FaultSpec spec;
  spec.kind = FaultKind::kAbortStep;
  spec.epoch = 3;
  spec.step = 1;
  spec.max_hits = 100;
  fi.Arm(spec);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (int step = 0; step < 3; ++step) {
      EXPECT_EQ(fi.ShouldFire(FaultKind::kAbortStep, epoch, step),
                epoch == 3 && step == 1)
          << "epoch=" << epoch << " step=" << step;
    }
  }
  EXPECT_EQ(fi.hits(FaultKind::kAbortStep), 1);
}

TEST(FaultInjectorTest, ShardFilterConfinesFaultToOneShard) {
  FaultInjector fi;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.shard = 2;
  spec.max_hits = 100;
  fi.Arm(spec);
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(fi.ShouldFire(FaultKind::kExtractorFault, -1, -1, shard),
              shard == 2)
        << "shard=" << shard;
  }
  // Sites that don't report a shard (e.g. the trainer) never match a
  // shard-filtered spec.
  EXPECT_FALSE(fi.ShouldFire(FaultKind::kExtractorFault, 1, 0));
  EXPECT_EQ(fi.hits(FaultKind::kExtractorFault), 1);
}

TEST(FaultInjectorTest, IndependentKinds) {
  FaultInjector fi;
  FaultSpec spec;
  spec.kind = FaultKind::kNanGradient;
  fi.Arm(spec);
  EXPECT_TRUE(fi.armed(FaultKind::kNanGradient));
  EXPECT_FALSE(fi.armed(FaultKind::kCorruptCheckpoint));
  EXPECT_FALSE(fi.ShouldFire(FaultKind::kCorruptCheckpoint, 1, 0));
  EXPECT_TRUE(fi.ShouldFire(FaultKind::kNanGradient, 1, 0));
  fi.Disarm(FaultKind::kNanGradient);
  EXPECT_FALSE(fi.armed(FaultKind::kNanGradient));
}

TEST(FaultInjectorTest, ProbabilityScheduleIsSeedDeterministic) {
  std::vector<bool> runs[2];
  for (auto& run : runs) {
    FaultInjector fi(/*seed=*/123);
    FaultSpec spec;
    spec.kind = FaultKind::kNanGradient;
    spec.probability = 0.5;
    spec.max_hits = 1000;
    fi.Arm(spec);
    for (int i = 0; i < 64; ++i) {
      run.push_back(fi.ShouldFire(FaultKind::kNanGradient, 1, i));
    }
  }
  EXPECT_EQ(runs[0], runs[1]);
  const int fired = static_cast<int>(
      std::count(runs[0].begin(), runs[0].end(), true));
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(FaultInjectorTest, ResetClearsSpecsAndHits) {
  FaultInjector fi;
  FaultSpec spec;
  spec.kind = FaultKind::kNanGradient;
  fi.Arm(spec);
  EXPECT_TRUE(fi.ShouldFire(FaultKind::kNanGradient, 1, 0));
  fi.Reset();
  EXPECT_FALSE(fi.armed(FaultKind::kNanGradient));
  EXPECT_EQ(fi.hits(FaultKind::kNanGradient), 0);
  EXPECT_FALSE(fi.ShouldFire(FaultKind::kNanGradient, 1, 0));
}

TEST(FaultInjectorTest, TruncateFileKeepsFraction) {
  const std::string path = TempPath("fault_truncate.bin");
  WriteBytes(path, std::string(100, 'x'));
  ASSERT_TRUE(FaultInjector::TruncateFile(path, 0.5).ok());
  EXPECT_EQ(SizeOf(path), 50u);
  ASSERT_TRUE(FaultInjector::TruncateFile(path, 0.0).ok());
  EXPECT_EQ(SizeOf(path), 0u);
  EXPECT_FALSE(FaultInjector::TruncateFile(path, 1.0).ok());
  EXPECT_FALSE(FaultInjector::TruncateFile("/nonexistent/f.bin", 0.5).ok());
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, CorruptByteFlipsExactlyOneByte) {
  const std::string path = TempPath("fault_corrupt.bin");
  WriteBytes(path, "hello");
  ASSERT_TRUE(FaultInjector::CorruptByte(path, 1).ok());
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0], 'h');
  EXPECT_EQ(static_cast<unsigned char>(got[1]),
            static_cast<unsigned char>('e' ^ 0xFF));
  EXPECT_EQ(got.substr(2), "llo");
  EXPECT_FALSE(FaultInjector::CorruptByte(path, 5).ok());  // past end
  EXPECT_FALSE(FaultInjector::CorruptByte("/nonexistent/f.bin", 0).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader
