#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dader {
namespace {

TEST(CsvParseTest, SimpleDocument) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  const CsvTable& t = r.ValueOrDie();
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 1u);
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  auto r = ParseCsv("a,b\n\"x, y\",2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][0], "x, y");
}

TEST(CsvParseTest, EscapedQuote) {
  auto r = ParseCsv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][0], "he said \"hi\"");
}

TEST(CsvParseTest, QuotedNewline) {
  auto r = ParseCsv("a,b\n\"line1\nline2\",2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, SkipsUtf8ByteOrderMark) {
  // Exported-from-Excel files often start with a UTF-8 BOM; the first header
  // cell must not absorb it.
  auto r = ParseCsv("\xEF\xBB\xBF"
                    "a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().header, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.ValueOrDie().rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, BomWithCrLfAndQuotedCr) {
  auto r = ParseCsv("\xEF\xBB\xBF"
                    "a,b\r\n\"x\r\ny\",2\r\n");
  ASSERT_TRUE(r.ok());
  const CsvTable& t = r.ValueOrDie();
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t.rows.size(), 1u);
  // CRLF inside quotes is data; CRLF outside quotes is a row terminator.
  EXPECT_EQ(t.rows[0][0], "x\r\ny");
}

TEST(CsvParseTest, EmptyFields) {
  auto r = ParseCsv("a,b,c\n,,\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvParseTest, RejectsRaggedRows) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  auto r = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvParseTest, RejectsEmptyDocument) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvEscapeTest, OnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(CsvEscape("nl\n"), "\"nl\n\"");
}

TEST(CsvRoundTripTest, FormatThenParse) {
  CsvTable t;
  t.header = {"name", "desc"};
  t.rows = {{"widget, large", "says \"hello\""}, {"", "line\nbreak"}};
  auto r = ParseCsv(FormatCsv(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().header, t.header);
  EXPECT_EQ(r.ValueOrDie().rows, t.rows);
}

TEST(CsvFileTest, WriteAndReadBack) {
  const std::string path = testing::TempDir() + "/csv_test_roundtrip.csv";
  CsvTable t;
  t.header = {"x"};
  t.rows = {{"1"}, {"2"}};
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/dir/f.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvFileTest, ErrorMessageNamesPathAndCause) {
  auto r = ReadCsvFile("/nonexistent/dir/f.csv");
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("/nonexistent/dir/f.csv"), std::string::npos) << msg;
  // strerror(ENOENT) in the C locale.
  EXPECT_NE(msg.find("No such file or directory"), std::string::npos) << msg;
}

TEST(CsvFileTest, ReadsFileWithBomAndCrLf) {
  const std::string path = testing::TempDir() + "/csv_test_bom.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char body[] = "\xEF\xBB\xBF"
                        "a,b\r\n1,2\r\n";
    std::fwrite(body, 1, sizeof(body) - 1, f);
    std::fclose(f);
  }
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().header, (std::vector<std::string>{"a", "b"}));
  std::remove(path.c_str());
}

TEST(CsvTableTest, ColumnIndex) {
  CsvTable t;
  t.header = {"a", "b", "c"};
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("z"), -1);
}

}  // namespace
}  // namespace dader
