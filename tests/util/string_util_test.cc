#include "util/string_util.h"

#include <gtest/gtest.h>

namespace dader {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitWhitespaceTest, EmptyAndBlank) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ToLowerTest, MixedCase) { EXPECT_EQ(ToLower("AbC-12"), "abc-12"); }

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hi there \n"), "hi there");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("a_title", "a_"));
  EXPECT_FALSE(StartsWith("b_title", "a_"));
  EXPECT_FALSE(StartsWith("a", "a_"));
  EXPECT_TRUE(EndsWith("model.bin", ".bin"));
  EXPECT_FALSE(EndsWith("model.txt", ".bin"));
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(EditDistance("stonebraker", "stnebraker"),
            EditDistance("stnebraker", "stonebraker"));
}

TEST(TokenJaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b c", "b c d"), 0.5);
}

TEST(TokenJaccardTest, DuplicateTokensAreSetSemantics) {
  EXPECT_DOUBLE_EQ(TokenJaccard("a a a", "a"), 1.0);
}

TEST(Fnv1aTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  // Known FNV-1a 64-bit value for the empty string (offset basis).
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  const std::string s = StrFormat("%200d", 5);
  EXPECT_EQ(s.size(), 200u);
}

}  // namespace
}  // namespace dader
