#include "util/flags.h"

#include <gtest/gtest.h>

namespace dader {
namespace {

// Builds argv from a list of literals (argv[0] is the program name).
class FlagsTest : public testing::Test {
 protected:
  Status Parse(std::vector<std::string> args) {
    args.insert(args.begin(), "prog");
    std::vector<char*> argv;
    storage_ = std::move(args);
    for (auto& a : storage_) argv.push_back(a.data());
    return parser_.Parse(static_cast<int>(argv.size()), argv.data());
  }

  FlagParser parser_;
  std::vector<std::string> storage_;
};

TEST_F(FlagsTest, Defaults) {
  parser_.DefineString("name", "dader", "");
  parser_.DefineInt("n", 5, "");
  parser_.DefineDouble("lr", 0.1, "");
  parser_.DefineBool("verbose", false, "");
  ASSERT_TRUE(Parse({}).ok());
  EXPECT_EQ(parser_.GetString("name"), "dader");
  EXPECT_EQ(parser_.GetInt("n"), 5);
  EXPECT_DOUBLE_EQ(parser_.GetDouble("lr"), 0.1);
  EXPECT_FALSE(parser_.GetBool("verbose"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  parser_.DefineInt("n", 0, "");
  parser_.DefineString("s", "", "");
  ASSERT_TRUE(Parse({"--n=42", "--s=hello"}).ok());
  EXPECT_EQ(parser_.GetInt("n"), 42);
  EXPECT_EQ(parser_.GetString("s"), "hello");
}

TEST_F(FlagsTest, SpaceSyntax) {
  parser_.DefineDouble("lr", 0.0, "");
  ASSERT_TRUE(Parse({"--lr", "0.5"}).ok());
  EXPECT_DOUBLE_EQ(parser_.GetDouble("lr"), 0.5);
}

TEST_F(FlagsTest, BareBooleanSetsTrue) {
  parser_.DefineBool("fast", false, "");
  ASSERT_TRUE(Parse({"--fast"}).ok());
  EXPECT_TRUE(parser_.GetBool("fast"));
}

TEST_F(FlagsTest, BooleanExplicitFalse) {
  parser_.DefineBool("fast", true, "");
  ASSERT_TRUE(Parse({"--fast=false"}).ok());
  EXPECT_FALSE(parser_.GetBool("fast"));
}

TEST_F(FlagsTest, UnknownFlagFails) {
  EXPECT_FALSE(Parse({"--typo=1"}).ok());
}

TEST_F(FlagsTest, BadIntegerFails) {
  parser_.DefineInt("n", 0, "");
  EXPECT_FALSE(Parse({"--n=abc"}).ok());
  EXPECT_FALSE(Parse({"--n=1.5"}).ok());
}

TEST_F(FlagsTest, BadDoubleFails) {
  parser_.DefineDouble("lr", 0.0, "");
  EXPECT_FALSE(Parse({"--lr=fast"}).ok());
}

TEST_F(FlagsTest, MissingValueFails) {
  parser_.DefineInt("n", 0, "");
  EXPECT_FALSE(Parse({"--n"}).ok());
}

TEST_F(FlagsTest, PositionalArguments) {
  parser_.DefineInt("n", 0, "");
  ASSERT_TRUE(Parse({"input.csv", "--n=3", "output.csv"}).ok());
  EXPECT_EQ(parser_.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST_F(FlagsTest, NegativeNumbers) {
  parser_.DefineInt("n", 0, "");
  parser_.DefineDouble("x", 0.0, "");
  ASSERT_TRUE(Parse({"--n=-7", "--x=-0.25"}).ok());
  EXPECT_EQ(parser_.GetInt("n"), -7);
  EXPECT_DOUBLE_EQ(parser_.GetDouble("x"), -0.25);
}

TEST_F(FlagsTest, HelpMentionsFlags) {
  parser_.DefineInt("epochs", 12, "training epochs");
  const std::string help = parser_.Help();
  EXPECT_NE(help.find("epochs"), std::string::npos);
  EXPECT_NE(help.find("12"), std::string::npos);
}

}  // namespace
}  // namespace dader
