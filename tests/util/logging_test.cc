#include "util/logging.h"

#include <gtest/gtest.h>

namespace dader {
namespace {

// RAII: restore the global level after each test.
class LoggingTest : public testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelIsProcessGlobal) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotWrite) {
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  DADER_LOG(Info) << "should be invisible";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty());
}

TEST_F(LoggingTest, EmittedMessagesCarryLevelAndFile) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  DADER_LOG(Warning) << "watch out " << 42;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARN"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(err.find("watch out 42"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysAtOrAboveDefault) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  DADER_LOG(Error) << "boom";
  EXPECT_NE(testing::internal::GetCapturedStderr().find("boom"),
            std::string::npos);
}

}  // namespace
}  // namespace dader
