#include "util/io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dader {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripAllTypes) {
  const std::string path = TempPath("io_roundtrip.bin");
  {
    auto w = BinaryWriter::Open(path, "TESTMAGIC", 3);
    ASSERT_TRUE(w.ok());
    BinaryWriter writer = std::move(w).ValueOrDie();
    writer.WriteU32(7);
    writer.WriteU64(1ULL << 40);
    writer.WriteI64(-12345);
    writer.WriteF32(2.5f);
    writer.WriteString("hello world");
    writer.WriteFloats({1.0f, -2.0f, 3.5f});
    writer.WriteI64s({10, -20});
    ASSERT_TRUE(writer.Close().ok());
  }
  auto r = BinaryReader::Open(path, "TESTMAGIC", 3);
  ASSERT_TRUE(r.ok());
  BinaryReader reader = std::move(r).ValueOrDie();
  EXPECT_EQ(reader.ReadU32().ValueOrDie(), 7u);
  EXPECT_EQ(reader.ReadU64().ValueOrDie(), 1ULL << 40);
  EXPECT_EQ(reader.ReadI64().ValueOrDie(), -12345);
  EXPECT_FLOAT_EQ(reader.ReadF32().ValueOrDie(), 2.5f);
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "hello world");
  EXPECT_EQ(reader.ReadFloats().ValueOrDie(),
            (std::vector<float>{1.0f, -2.0f, 3.5f}));
  EXPECT_EQ(reader.ReadI64s().ValueOrDie(), (std::vector<int64_t>{10, -20}));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, WrongMagicRejected) {
  const std::string path = TempPath("io_magic.bin");
  {
    auto w = BinaryWriter::Open(path, "GOODMAGIC", 1);
    ASSERT_TRUE(w.ok());
    std::move(w).ValueOrDie().Close().CheckOK();
  }
  auto r = BinaryReader::Open(path, "OTHERMAGIC", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, WrongVersionRejected) {
  const std::string path = TempPath("io_version.bin");
  {
    auto w = BinaryWriter::Open(path, "MAGIC", 1);
    ASSERT_TRUE(w.ok());
    std::move(w).ValueOrDie().Close().CheckOK();
  }
  EXPECT_FALSE(BinaryReader::Open(path, "MAGIC", 2).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, ReadPastEndFails) {
  const std::string path = TempPath("io_eof.bin");
  {
    auto w = BinaryWriter::Open(path, "MAGIC", 1);
    ASSERT_TRUE(w.ok());
    BinaryWriter writer = std::move(w).ValueOrDie();
    writer.WriteU32(1);
    writer.Close().CheckOK();
  }
  auto r = BinaryReader::Open(path, "MAGIC", 1);
  ASSERT_TRUE(r.ok());
  BinaryReader reader = std::move(r).ValueOrDie();
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU64().ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  auto r = BinaryReader::Open("/nonexistent/x.bin", "M", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, EmptyContainersRoundTrip) {
  const std::string path = TempPath("io_empty.bin");
  {
    auto w = BinaryWriter::Open(path, "M", 1);
    ASSERT_TRUE(w.ok());
    BinaryWriter writer = std::move(w).ValueOrDie();
    writer.WriteString("");
    writer.WriteFloats({});
    writer.Close().CheckOK();
  }
  auto r = BinaryReader::Open(path, "M", 1);
  ASSERT_TRUE(r.ok());
  BinaryReader reader = std::move(r).ValueOrDie();
  EXPECT_EQ(reader.ReadString().ValueOrDie(), "");
  EXPECT_TRUE(reader.ReadFloats().ValueOrDie().empty());
  std::remove(path.c_str());
}

TEST(FileExistsTest, DetectsFilesAndMissing) {
  const std::string path = TempPath("io_exists.bin");
  EXPECT_FALSE(FileExists(path));
  {
    auto w = BinaryWriter::Open(path, "M", 1);
    ASSERT_TRUE(w.ok());
    std::move(w).ValueOrDie().Close().CheckOK();
  }
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(testing::TempDir()));  // a directory, not a file
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader
