#include "data/sampler.h"

#include <gtest/gtest.h>

#include <set>

namespace dader::data {
namespace {

ERDataset MakeDataset(size_t n) {
  ERDataset ds("S", "D", Schema({"x"}), Schema({"y"}));
  for (size_t i = 0; i < n; ++i) {
    LabeledPair p;
    p.a = Record({std::to_string(i)});
    p.b = Record({std::to_string(i)});
    p.label = 0;
    ds.AddPair(std::move(p));
  }
  return ds;
}

TEST(SamplerTest, EpochCoversEveryIndexOnce) {
  ERDataset ds = MakeDataset(23);
  MinibatchSampler sampler(&ds, 5, Rng(1));
  std::multiset<size_t> seen;
  for (size_t i = 0; i < sampler.BatchesPerEpoch(); ++i) {
    for (size_t idx : sampler.NextBatch()) seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 23u);
  for (size_t i = 0; i < 23; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(SamplerTest, BatchesPerEpochRoundsUp) {
  ERDataset ds = MakeDataset(10);
  EXPECT_EQ(MinibatchSampler(&ds, 4, Rng(1)).BatchesPerEpoch(), 3u);
  EXPECT_EQ(MinibatchSampler(&ds, 4, Rng(1), /*drop_last=*/true)
                .BatchesPerEpoch(),
            2u);
  EXPECT_EQ(MinibatchSampler(&ds, 5, Rng(1)).BatchesPerEpoch(), 2u);
}

TEST(SamplerTest, LastBatchSmallerWithoutDropLast) {
  ERDataset ds = MakeDataset(7);
  MinibatchSampler sampler(&ds, 4, Rng(2));
  EXPECT_EQ(sampler.NextBatch().size(), 4u);
  EXPECT_EQ(sampler.NextBatch().size(), 3u);
}

TEST(SamplerTest, DropLastSkipsPartialBatch) {
  ERDataset ds = MakeDataset(7);
  MinibatchSampler sampler(&ds, 4, Rng(3), /*drop_last=*/true);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sampler.NextBatch().size(), 4u);
  }
}

TEST(SamplerTest, ReshufflesBetweenEpochs) {
  ERDataset ds = MakeDataset(64);
  MinibatchSampler sampler(&ds, 64, Rng(4));
  const auto epoch1 = sampler.NextBatch();
  const auto epoch2 = sampler.NextBatch();
  EXPECT_NE(epoch1, epoch2);
  EXPECT_EQ(sampler.epoch(), 1u);
}

TEST(SamplerTest, DeterministicForSameRngSeed) {
  ERDataset ds = MakeDataset(16);
  MinibatchSampler s1(&ds, 4, Rng(5));
  MinibatchSampler s2(&ds, 4, Rng(5));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(s1.NextBatch(), s2.NextBatch());
}

TEST(SamplerTest, CyclesIndefinitely) {
  ERDataset ds = MakeDataset(3);
  MinibatchSampler sampler(&ds, 2, Rng(6));
  for (int i = 0; i < 100; ++i) {
    const auto batch = sampler.NextBatch();
    EXPECT_FALSE(batch.empty());
    for (size_t idx : batch) EXPECT_LT(idx, 3u);
  }
}

}  // namespace
}  // namespace dader::data
