#include "data/generators.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace dader::data {
namespace {

TEST(SpecsTest, ThirteenDatasetsMatchingTable2) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 13u);
  // Spot-check some Table 2 entries.
  auto ds = FindDatasetSpec("DS").ValueOrDie();
  EXPECT_EQ(ds.full_name, "DBLP-Scholar");
  EXPECT_EQ(ds.paper_pairs, 28707);
  EXPECT_EQ(ds.paper_matches, 5347);
  EXPECT_EQ(ds.num_attrs, 4);
  auto ia = FindDatasetSpec("IA").ValueOrDie();
  EXPECT_EQ(ia.paper_pairs, 532);
  EXPECT_EQ(ia.num_attrs, 8);
}

TEST(SpecsTest, UnknownNameFails) {
  EXPECT_FALSE(FindDatasetSpec("XX").ok());
  EXPECT_FALSE(MakeGenerator("XX").ok());
}

// Property sweep over all 13 generators.
class GeneratorPropertyTest : public testing::TestWithParam<DatasetSpec> {};

TEST_P(GeneratorPropertyTest, SchemaWidthMatchesTable2) {
  const DatasetSpec& spec = GetParam();
  auto gen = MakeGenerator(spec.short_name).ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(gen->SchemaA().size()), spec.num_attrs);
  EXPECT_EQ(static_cast<int64_t>(gen->SchemaB().size()), spec.num_attrs);
}

TEST_P(GeneratorPropertyTest, ViewsMatchSchemas) {
  const DatasetSpec& spec = GetParam();
  auto gen = MakeGenerator(spec.short_name).ValueOrDie();
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    EXPECT_EQ(gen->ViewA(e, &rng).size(), gen->SchemaA().size());
    EXPECT_EQ(gen->ViewB(e, &rng).size(), gen->SchemaB().size());
  }
}

TEST_P(GeneratorPropertyTest, MutatedEntityDiffers) {
  const DatasetSpec& spec = GetParam();
  auto gen = MakeGenerator(spec.short_name).ValueOrDie();
  Rng rng(2);
  int diffs = 0;
  for (int i = 0; i < 10; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    const Entity m = gen->MutateEntity(e, &rng);
    diffs += (e != m);
  }
  EXPECT_EQ(diffs, 10);
}

TEST_P(GeneratorPropertyTest, GeneratedDatasetShape) {
  const DatasetSpec& spec = GetParam();
  GenerateOptions opts;
  opts.scale = 0.02;
  opts.min_pairs = 100;
  auto ds = GenerateDataset(spec.short_name, opts);
  ASSERT_TRUE(ds.ok());
  const ERDataset& d = ds.ValueOrDie();
  EXPECT_EQ(d.name(), spec.full_name);
  EXPECT_EQ(d.domain(), spec.domain);
  EXPECT_GE(d.size(), 100u);
  // Match rate close to the paper's.
  const double paper_rate =
      static_cast<double>(spec.paper_matches) / spec.paper_pairs;
  EXPECT_NEAR(d.MatchRate(), paper_rate, 0.05);
  // Every pair labeled 0/1.
  for (const auto& p : d.pairs()) {
    EXPECT_TRUE(p.label == 0 || p.label == 1);
  }
}

TEST_P(GeneratorPropertyTest, DeterministicForSeed) {
  const DatasetSpec& spec = GetParam();
  GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 50;
  opts.seed = 99;
  auto d1 = GenerateDataset(spec.short_name, opts).ValueOrDie();
  auto d2 = GenerateDataset(spec.short_name, opts).ValueOrDie();
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.pair(i).a.values(), d2.pair(i).a.values());
    EXPECT_EQ(d1.pair(i).label, d2.pair(i).label);
  }
}

TEST_P(GeneratorPropertyTest, DifferentSeedsDiffer) {
  const DatasetSpec& spec = GetParam();
  GenerateOptions o1, o2;
  o1.scale = o2.scale = 0.01;
  o1.min_pairs = o2.min_pairs = 50;
  o1.seed = 1;
  o2.seed = 2;
  auto d1 = GenerateDataset(spec.short_name, o1).ValueOrDie();
  auto d2 = GenerateDataset(spec.short_name, o2).ValueOrDie();
  bool any_diff = d1.size() != d2.size();
  for (size_t i = 0; !any_diff && i < d1.size(); ++i) {
    any_diff = d1.pair(i).a.values() != d2.pair(i).a.values();
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(GeneratorPropertyTest, MatchesShareMoreTokensThanNonMatches) {
  // The learnability invariant: across the dataset, matching pairs overlap
  // lexically more than non-matching ones on average.
  const DatasetSpec& spec = GetParam();
  GenerateOptions opts;
  opts.scale = 0.05;
  opts.min_pairs = 200;
  auto ds = GenerateDataset(spec.short_name, opts).ValueOrDie();
  double match_sim = 0.0, nonmatch_sim = 0.0;
  size_t n_match = 0, n_nonmatch = 0;
  for (const auto& p : ds.pairs()) {
    const std::string a = Join(p.a.values(), " ");
    const std::string b = Join(p.b.values(), " ");
    const double sim = TokenJaccard(a, b);
    if (p.label == 1) {
      match_sim += sim;
      ++n_match;
    } else {
      nonmatch_sim += sim;
      ++n_nonmatch;
    }
  }
  ASSERT_GT(n_match, 0u);
  ASSERT_GT(n_nonmatch, 0u);
  EXPECT_GT(match_sim / n_match, nonmatch_sim / n_nonmatch + 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorPropertyTest,
                         testing::ValuesIn(AllDatasetSpecs()),
                         [](const testing::TestParamInfo<DatasetSpec>& info) {
                           return info.param.short_name;
                         });

TEST(GenerateOptionsTest, ScaleControlsSize) {
  GenerateOptions small, large;
  small.scale = 0.01;
  small.min_pairs = 10;
  large.scale = 0.05;
  large.min_pairs = 10;
  auto ds_small = GenerateDataset("DS", small).ValueOrDie();
  auto ds_large = GenerateDataset("DS", large).ValueOrDie();
  EXPECT_GT(ds_large.size(), ds_small.size() * 3);
}

TEST(GenerateOptionsTest, RejectsNonPositiveScale) {
  GenerateOptions opts;
  opts.scale = 0.0;
  EXPECT_FALSE(GenerateDataset("WA", opts).ok());
}

TEST(GenerateTablesTest, ProducesOverlappingTables) {
  auto r = GenerateTables("WA", 200, 7);
  ASSERT_TRUE(r.ok());
  const GeneratedTables& gt = r.ValueOrDie();
  EXPECT_GT(gt.a.size(), 100u);
  EXPECT_GT(gt.b.size(), 100u);
  EXPECT_GT(gt.gold_matches.size(), 80u);
  for (const auto& [ia, ib] : gt.gold_matches) {
    EXPECT_LT(ia, gt.a.size());
    EXPECT_LT(ib, gt.b.size());
  }
}

TEST(GenerateTablesTest, RejectsNonPositiveCount) {
  EXPECT_FALSE(GenerateTables("WA", 0, 1).ok());
}

TEST(WdcFamilyTest, SharedSchemaAcrossCategories) {
  // All four WDC categories expose the same (title, price) schema — the
  // reason the paper finds little shift among them.
  for (const char* name : {"CO", "CA", "WT", "SH"}) {
    auto gen = MakeGenerator(name).ValueOrDie();
    EXPECT_EQ(gen->SchemaA().attributes(),
              (std::vector<std::string>{"title", "price"}));
  }
}

TEST(CitationStyleTest, ScholarAbbreviatesAuthors) {
  auto gen = MakeGenerator("DS").ValueOrDie();
  Rng rng(5);
  int abbreviated = 0;
  for (int i = 0; i < 20; ++i) {
    const Entity e = gen->SampleEntity(&rng);
    const Record b = gen->ViewB(e, &rng);  // the Scholar side
    const std::string& authors = b.value(1);
    // Abbreviated author style has single-letter given names.
    for (const auto& w : SplitWhitespace(authors)) {
      if (w.size() == 1 && w != ",") {
        ++abbreviated;
        break;
      }
    }
  }
  EXPECT_GT(abbreviated, 15);
}

}  // namespace
}  // namespace dader::data
