#include "data/blocking.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace dader::data {
namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& titles) {
  Table t(name, Schema({"title"}));
  for (const auto& title : titles) t.AddRow(Record({title}));
  return t;
}

TEST(BlockingTest, FindsOverlappingPairs) {
  Table a = MakeTable("A", {"samsung galaxy phone", "canon camera kit"});
  Table b = MakeTable("B", {"samsung galaxy device", "unrelated thing here"});
  OverlapBlocker blocker;
  const auto cands = blocker.GenerateCandidates(a, b);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].index_a, 0u);
  EXPECT_EQ(cands[0].index_b, 0u);
  EXPECT_EQ(cands[0].shared_tokens, 2u);  // samsung, galaxy
}

TEST(BlockingTest, MinSharedTokensThreshold) {
  Table a = MakeTable("A", {"samsung phone"});
  Table b = MakeTable("B", {"samsung tablet"});
  BlockingConfig config;
  config.min_shared_tokens = 2;
  EXPECT_TRUE(OverlapBlocker(config).GenerateCandidates(a, b).empty());
  config.min_shared_tokens = 1;
  EXPECT_EQ(OverlapBlocker(config).GenerateCandidates(a, b).size(), 1u);
}

TEST(BlockingTest, ShortTokensIgnored) {
  // "hp" and "tv" are below min_token_length (3) and cannot match.
  Table a = MakeTable("A", {"hp tv x1"});
  Table b = MakeTable("B", {"hp tv z9"});
  BlockingConfig config;
  config.min_shared_tokens = 1;
  EXPECT_TRUE(OverlapBlocker(config).GenerateCandidates(a, b).empty());
}

TEST(BlockingTest, CandidateCapPerRecord) {
  std::vector<std::string> many(30, "samsung galaxy phone");
  Table a = MakeTable("A", {"samsung galaxy phone"});
  Table b = MakeTable("B", many);
  BlockingConfig config;
  config.max_candidates_per_record = 10;
  EXPECT_EQ(OverlapBlocker(config).GenerateCandidates(a, b).size(), 10u);
}

TEST(BlockingTest, RecallComputation) {
  std::vector<CandidatePair> cands = {{0, 0, 2}, {1, 1, 2}};
  EXPECT_DOUBLE_EQ(OverlapBlocker::Recall(cands, {{0, 0}, {1, 1}}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapBlocker::Recall(cands, {{0, 0}, {5, 5}}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapBlocker::Recall({}, {{0, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapBlocker::Recall(cands, {}), 1.0);
}

TEST(BlockingTest, HighRecallOnGeneratedTables) {
  // End-to-end: blocking over generated benchmark tables keeps most gold
  // matches (the generated matches share surface tokens by construction).
  auto tables = GenerateTables("FZ", 120, /*seed=*/3);
  ASSERT_TRUE(tables.ok());
  const GeneratedTables& gt = tables.ValueOrDie();
  ASSERT_GT(gt.gold_matches.size(), 10u);
  OverlapBlocker blocker;
  const auto cands = blocker.GenerateCandidates(gt.a, gt.b);
  EXPECT_GE(OverlapBlocker::Recall(cands, gt.gold_matches), 0.9);
  // And it must prune: fewer candidates than the full cross product.
  EXPECT_LT(cands.size(), gt.a.size() * gt.b.size());
}

}  // namespace
}  // namespace dader::data
