#include "data/schema.h"

#include <gtest/gtest.h>

namespace dader::data {
namespace {

TEST(SchemaTest, BasicAccessors) {
  Schema s({"title", "price"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.attribute(0), "title");
  EXPECT_EQ(s.IndexOf("price"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"a", "b"}), Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a"}) == Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"b", "a"}) == Schema({"a", "b"}));
}

TEST(RecordTest, ValuesAndMutation) {
  Record r({"x", "y"});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.value(1), "y");
  r.set_value(1, "z");
  EXPECT_EQ(r.value(1), "z");
}

TEST(RecordTest, ToAttrValuesAlignsWithSchema) {
  Schema s({"name", "city"});
  Record r({"golden dragon", "boston"});
  const auto avs = r.ToAttrValues(s);
  ASSERT_EQ(avs.size(), 2u);
  EXPECT_EQ(avs[0], (std::pair<std::string, std::string>{"name", "golden dragon"}));
  EXPECT_EQ(avs[1].first, "city");
}

TEST(TableTest, AddAndAccessRows) {
  Table t("restaurants", Schema({"name"}));
  EXPECT_EQ(t.name(), "restaurants");
  EXPECT_EQ(t.size(), 0u);
  t.AddRow(Record({"golden dragon"}));
  t.AddRow(Record({"blue lotus"}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.row(1).value(0), "blue lotus");
}

}  // namespace
}  // namespace dader::data
