#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dader::data {
namespace {

ERDataset MakeDataset(size_t n, size_t matches) {
  ERDataset ds("Test", "TestDomain", Schema({"name"}), Schema({"title"}));
  for (size_t i = 0; i < n; ++i) {
    LabeledPair p;
    p.a = Record({"entity " + std::to_string(i)});
    p.b = Record({"entity " + std::to_string(i)});
    p.label = i < matches ? 1 : 0;
    ds.AddPair(std::move(p));
  }
  return ds;
}

TEST(ERDatasetTest, CountsAndRates) {
  ERDataset ds = MakeDataset(10, 3);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.NumMatches(), 3u);
  EXPECT_DOUBLE_EQ(ds.MatchRate(), 0.3);
}

TEST(ERDatasetTest, WithoutLabelsStripsAll) {
  ERDataset unlabeled = MakeDataset(5, 2).WithoutLabels();
  EXPECT_EQ(unlabeled.size(), 5u);
  for (const auto& p : unlabeled.pairs()) EXPECT_FALSE(p.labeled());
  EXPECT_DOUBLE_EQ(unlabeled.MatchRate(), 0.0);
}

TEST(ERDatasetTest, SubsetSelectsIndices) {
  ERDataset ds = MakeDataset(6, 3);
  ERDataset sub = ds.Subset({0, 5});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.pair(0).label, 1);
  EXPECT_EQ(sub.pair(1).label, 0);
  EXPECT_EQ(sub.name(), ds.name());
}

TEST(ERDatasetTest, SplitPartitionsWithoutOverlapOrLoss) {
  ERDataset ds = MakeDataset(100, 30);
  Rng rng(1);
  DatasetSplits splits = ds.Split(0.6, 0.2, 0.2, &rng);
  EXPECT_EQ(splits.train.size() + splits.valid.size() + splits.test.size(),
            100u);
  EXPECT_EQ(splits.train.size(), 60u);
  EXPECT_EQ(splits.valid.size(), 20u);
  // Total matches preserved.
  EXPECT_EQ(splits.train.NumMatches() + splits.valid.NumMatches() +
                splits.test.NumMatches(),
            30u);
}

TEST(ERDatasetTest, SplitZeroTrainFraction) {
  ERDataset ds = MakeDataset(50, 10);
  Rng rng(2);
  DatasetSplits splits = ds.Split(0.0, 0.1, 0.9, &rng);
  EXPECT_EQ(splits.train.size(), 0u);
  EXPECT_EQ(splits.valid.size(), 5u);
  EXPECT_EQ(splits.test.size(), 45u);
}

TEST(ERDatasetTest, SplitDeterministicPerSeed) {
  ERDataset ds = MakeDataset(40, 10);
  Rng r1(7), r2(7), r3(8);
  auto s1 = ds.Split(0.5, 0.25, 0.25, &r1);
  auto s2 = ds.Split(0.5, 0.25, 0.25, &r2);
  auto s3 = ds.Split(0.5, 0.25, 0.25, &r3);
  EXPECT_EQ(s1.train.pair(0).a.value(0), s2.train.pair(0).a.value(0));
  bool any_diff = false;
  for (size_t i = 0; i < s1.train.size(); ++i) {
    any_diff |= s1.train.pair(i).a.value(0) != s3.train.pair(i).a.value(0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ERDatasetTest, CsvRoundTrip) {
  const std::string path = testing::TempDir() + "/dataset_roundtrip.csv";
  ERDataset ds("Test", "D", Schema({"name", "price"}), Schema({"title"}));
  LabeledPair p1;
  p1.a = Record({"widget, large", "9.99"});
  p1.b = Record({"widget \"XL\""});
  p1.label = 1;
  ds.AddPair(p1);
  LabeledPair p2;
  p2.a = Record({"other", ""});
  p2.b = Record({"another"});
  p2.label = -1;  // unlabeled
  ds.AddPair(p2);
  ASSERT_TRUE(ds.ToCsvFile(path).ok());

  auto loaded = ERDataset::FromCsvFile(path, "Test", "D");
  ASSERT_TRUE(loaded.ok());
  const ERDataset& got = loaded.ValueOrDie();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.schema_a().attributes(),
            (std::vector<std::string>{"name", "price"}));
  EXPECT_EQ(got.schema_b().attributes(), (std::vector<std::string>{"title"}));
  EXPECT_EQ(got.pair(0).a.value(0), "widget, large");
  EXPECT_EQ(got.pair(0).b.value(0), "widget \"XL\"");
  EXPECT_EQ(got.pair(0).label, 1);
  EXPECT_FALSE(got.pair(1).labeled());
  std::remove(path.c_str());
}

TEST(ERDatasetTest, FromCsvRejectsBadLabel) {
  const std::string path = testing::TempDir() + "/dataset_badlabel.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a_name,b_name,label\nx,y,2\n", f);
  fclose(f);
  EXPECT_FALSE(ERDataset::FromCsvFile(path, "T", "D").ok());
  std::remove(path.c_str());
}

TEST(ERDatasetTest, FromCsvRejectsUnknownColumn) {
  const std::string path = testing::TempDir() + "/dataset_badcol.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a_name,weird,label\nx,y,1\n", f);
  fclose(f);
  EXPECT_FALSE(ERDataset::FromCsvFile(path, "T", "D").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader::data
