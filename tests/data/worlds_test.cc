#include "data/worlds.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace dader::data {
namespace {

TEST(AbbreviateNameTest, FirstToInitial) {
  EXPECT_EQ(AbbreviateName("michael stonebraker"), "m stonebraker");
  EXPECT_EQ(AbbreviateName("anna maria garcia"), "a m garcia");
}

TEST(AbbreviateNameTest, SingleWordUnchanged) {
  EXPECT_EQ(AbbreviateName("stonebraker"), "stonebraker");
  EXPECT_EQ(AbbreviateName(""), "");
}

TEST(DropRandomWordsTest, NeverDropsEverything) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string out = DropRandomWords("a b c", 0.99, &rng);
    EXPECT_FALSE(SplitWhitespace(out).empty());
  }
}

TEST(DropRandomWordsTest, ZeroProbabilityIdentity) {
  Rng rng(2);
  EXPECT_EQ(DropRandomWords("x y z", 0.0, &rng), "x y z");
}

TEST(DropRandomWordsTest, KeepsSubsetInOrder) {
  Rng rng(3);
  const std::string out = DropRandomWords("one two three four five", 0.4, &rng);
  const auto kept = SplitWhitespace(out);
  const std::vector<std::string> orig = {"one", "two", "three", "four", "five"};
  size_t pos = 0;
  for (const auto& w : kept) {
    while (pos < orig.size() && orig[pos] != w) ++pos;
    ASSERT_LT(pos, orig.size()) << "word out of order: " << w;
    ++pos;
  }
}

TEST(IntroduceTypoTest, ChangesExactlyOneWordSlightly) {
  Rng rng(4);
  const std::string in = "professional television receiver";
  int changed_runs = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string out = IntroduceTypo(in, &rng);
    if (out != in) {
      ++changed_runs;
      EXPECT_LE(EditDistance(in, out), 2u);
    }
  }
  EXPECT_GT(changed_runs, 15);
}

TEST(IntroduceTypoTest, ShortWordsUntouched) {
  Rng rng(5);
  EXPECT_EQ(IntroduceTypo("a bc de", &rng), "a bc de");
}

TEST(SwapAdjacentWordsTest, PermutesNeighbors) {
  Rng rng(6);
  const std::string out = SwapAdjacentWords("a b", &rng);
  EXPECT_EQ(out, "b a");
  EXPECT_EQ(SwapAdjacentWords("single", &rng), "single");
}

TEST(TruncateWordsTest, Caps) {
  EXPECT_EQ(TruncateWords("a b c d", 2), "a b");
  EXPECT_EQ(TruncateWords("a b", 5), "a b");
}

TEST(PerturbNumberTest, StaysWithinRelativeBound) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double v = std::stod(PerturbNumber("100.00", 0.05, &rng));
    EXPECT_GE(v, 95.0);
    EXPECT_LE(v, 105.0);
  }
}

TEST(PerturbNumberTest, NonNumericUnchanged) {
  Rng rng(8);
  EXPECT_EQ(PerturbNumber("NULL", 0.1, &rng), "NULL");
  EXPECT_EQ(PerturbNumber("12abc", 0.1, &rng), "12abc");
}

TEST(PerturbTextTest, NoNoiseIsIdentity) {
  Rng rng(9);
  NoiseProfile none;
  EXPECT_EQ(PerturbText("hello world", none, &rng), "hello world");
}

TEST(SamplingTest, SampleWordsDistinct) {
  Rng rng(10);
  const std::string s = SampleWords(pools::kBrands, 5, &rng);
  const auto words = SplitWhitespace(s);
  EXPECT_EQ(words.size(), 5u);
  std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(SamplingTest, RandomDigitsNoLeadingZero) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::string d = RandomDigits(4, &rng);
    EXPECT_EQ(d.size(), 4u);
    EXPECT_NE(d[0], '0');
    for (char c : d) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(SamplingTest, ModelCodeAlphanumeric) {
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    const std::string m = RandomModelCode(&rng);
    EXPECT_GE(m.size(), 4u);
    for (char c : m) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(SamplingTest, PhoneFormat) {
  Rng rng(13);
  const std::string p = RandomPhone(&rng, '/');
  // ddd/ddd-dddd
  ASSERT_EQ(p.size(), 12u);
  EXPECT_EQ(p[3], '/');
  EXPECT_EQ(p[7], '-');
}

TEST(SamplingTest, PersonNameTwoWords) {
  Rng rng(14);
  EXPECT_EQ(SplitWhitespace(RandomPersonName(&rng)).size(), 2u);
}

TEST(PoolsTest, AlignedVenuePools) {
  EXPECT_EQ(pools::kVenuesFull.size(), pools::kVenuesAbbrev.size());
  EXPECT_FALSE(pools::kBrands.empty());
  EXPECT_FALSE(pools::kWdcSharedWords.empty());
}

}  // namespace
}  // namespace dader::data
