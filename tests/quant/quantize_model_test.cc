// Accuracy guards for int8 post-training quantization (core/quantize.h).
//
// The load-bearing guarantee: on a model actually trained on the paper's
// WA -> AB adaptation task, the quantized model (a) agrees with fp32 on
// >= 99% of held-out pairs and (b) moves target-test F1 by at most 0.01.
// Plus the state-machine contracts around it: rollback on a failed
// agreement gate restores bit-identical fp32 behavior, ClearQuantization
// detaches, and CloneQuantized shares (not copies) the frozen int8 state.
//
// Training happens once (static setup) and every test works on
// CloneModel copies, so the suite stays cheap and the trained weights are
// identical across tests.

#include "core/quantize.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "core/experiment.h"
#include "nn/layers.h"

namespace dader::core {
namespace {

ExperimentScale TinyScale() {
  ExperimentScale s;
  s.name = "quant-test";
  s.model.vocab_size = 512;
  s.model.max_len = 24;
  s.model.hidden_dim = 16;
  s.model.num_heads = 2;
  s.model.num_layers = 1;
  s.model.ffn_dim = 32;
  s.model.rnn_hidden = 8;
  s.model.batch_size = 16;
  s.model.epochs = 3;
  s.model.gan_pretrain_epochs = 2;
  s.model.dropout = 0.0f;
  s.data_scale = 0.01;
  s.min_pairs = 70;
  s.num_seeds = 1;
  s.valid_fraction = 0.2;
  return s;
}

struct TrainedSetup {
  DaTask task;
  DaModel model;  // trained fp32 weights; tests clone, never mutate
};

// Trains one WA -> AB model (source-only) a single time for the whole
// suite; each test clones it so quantization state never leaks across
// tests.
const TrainedSetup& Trained() {
  static const TrainedSetup* setup = [] {
    auto* s = new TrainedSetup;
    const ExperimentScale scale = TinyScale();
    s->task = BuildDaTask("WA", "AB", scale, /*data_seed=*/5).ValueOrDie();
    s->model =
        BuildModel(ExtractorKind::kLM, scale, /*pretrained=*/false, 11)
            .ValueOrDie();
    RunSingleDa(AlignMethod::kNoDA, scale, s->task, &s->model).ValueOrDie();
    return s;
  }();
  return *setup;
}

DaModel FreshClone(uint64_t seed = 3) {
  return CloneModel(Trained().model, seed).ValueOrDie();
}

QuantizeOptions TestOptions() {
  QuantizeOptions options;
  options.calib_pairs = 48;
  options.eval_pairs = 256;
  options.batch_size = 16;
  options.min_agreement = 0.99;
  return options;
}

std::vector<const quant::QuantizedLinear*> QuantStates(const DaModel& model) {
  std::vector<const quant::QuantizedLinear*> states;
  auto probe = [&states](nn::Module* m) {
    if (auto* linear = dynamic_cast<nn::Linear*>(m)) {
      states.push_back(linear->quant_state().get());
    }
  };
  model.extractor->Apply(probe);
  model.matcher->Apply(probe);
  return states;
}

TEST(QuantizeModelTest, TrainedAgreementAtLeast99PercentAndF1Within001) {
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();

  Rng rng_fp32(7);
  const ErMetrics fp32 = Evaluate(model.extractor.get(), model.matcher.get(),
                                  t.task.target_test, 16, &rng_fp32);

  // Calibrate on source pairs (the data the NoDA model was fit to, so its
  // probabilities are polarized); the gate evaluates on pairs after the
  // calibration slice.
  const auto report =
      QuantizeDaModel(&model, t.task.source, TestOptions()).ValueOrDie();
  EXPECT_TRUE(IsQuantized(model));
  EXPECT_GT(report.linears, 0);
  EXPECT_GT(report.eval_pairs, 0);
  EXPECT_GE(report.agreement, 0.99)
      << "int8 argmax disagrees with fp32 too often on held-out WA pairs";

  Rng rng_int8(7);
  const ErMetrics int8 = Evaluate(model.extractor.get(), model.matcher.get(),
                                  t.task.target_test, 16, &rng_int8);
  EXPECT_NEAR(int8.F1(), fp32.F1(), 0.01)
      << "quantization moved target-test F1 beyond the 0.01 budget (fp32 "
      << fp32.F1() << " vs int8 " << int8.F1() << ")";
}

TEST(QuantizeModelTest, FailedGateRollsBackToBitIdenticalFp32) {
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();

  Rng rng_before(9);
  const Prediction before = Predict(model.extractor.get(), model.matcher.get(),
                                    t.task.target_valid, 16, &rng_before);

  QuantizeOptions impossible = TestOptions();
  impossible.min_agreement = 1.1;  // agreement <= 1.0, so the gate must fail
  const auto status = QuantizeDaModel(&model, t.task.source, impossible);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(IsQuantized(model));

  // Rollback means fp32 serving is untouched: bit-identical probabilities.
  Rng rng_after(9);
  const Prediction after = Predict(model.extractor.get(), model.matcher.get(),
                                   t.task.target_valid, 16, &rng_after);
  ASSERT_EQ(before.probs.size(), after.probs.size());
  for (size_t i = 0; i < before.probs.size(); ++i) {
    EXPECT_EQ(before.probs[i], after.probs[i]) << "pair " << i;
  }
}

TEST(QuantizeModelTest, ClearQuantizationRestoresBitIdenticalFp32) {
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();

  Rng rng_before(13);
  const Prediction before = Predict(model.extractor.get(), model.matcher.get(),
                                    t.task.target_valid, 16, &rng_before);

  ASSERT_TRUE(QuantizeDaModel(&model, t.task.source, TestOptions()).ok());
  ASSERT_TRUE(IsQuantized(model));
  ClearQuantization(&model);
  EXPECT_FALSE(IsQuantized(model));

  Rng rng_after(13);
  const Prediction after = Predict(model.extractor.get(), model.matcher.get(),
                                   t.task.target_valid, 16, &rng_after);
  ASSERT_EQ(before.probs.size(), after.probs.size());
  for (size_t i = 0; i < before.probs.size(); ++i) {
    EXPECT_EQ(before.probs[i], after.probs[i]) << "pair " << i;
  }
}

TEST(QuantizeModelTest, CloneQuantizedSharesFrozenStateExactly) {
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();
  ASSERT_TRUE(QuantizeDaModel(&model, t.task.source, TestOptions()).ok());

  DaModel clone = CloneQuantized(model, /*seed=*/29).ValueOrDie();
  EXPECT_TRUE(IsQuantized(clone));

  // Shared, not re-derived: the clone's Linears hold the same
  // QuantizedLinear objects.
  const auto src_states = QuantStates(model);
  const auto dst_states = QuantStates(clone);
  ASSERT_EQ(src_states.size(), dst_states.size());
  for (size_t i = 0; i < src_states.size(); ++i) {
    EXPECT_EQ(src_states[i], dst_states[i]) << "linear " << i;
  }

  // Therefore the clone's int8 outputs are bit-identical to the donor's.
  Rng rng_a(17);
  const Prediction a = Predict(model.extractor.get(), model.matcher.get(),
                               t.task.target_valid, 16, &rng_a);
  Rng rng_b(17);
  const Prediction b = Predict(clone.extractor.get(), clone.matcher.get(),
                               t.task.target_valid, 16, &rng_b);
  ASSERT_EQ(a.probs.size(), b.probs.size());
  for (size_t i = 0; i < a.probs.size(); ++i) {
    EXPECT_EQ(a.probs[i], b.probs[i]) << "pair " << i;
  }
}

TEST(QuantizeModelTest, CloneOfFp32ModelStaysFp32) {
  DaModel model = FreshClone();
  DaModel clone = CloneQuantized(model, 5).ValueOrDie();
  EXPECT_FALSE(IsQuantized(clone));
}

TEST(QuantizeModelTest, RequantizeAfterGateFailureSucceeds) {
  // A failed gate must leave the model in a state where a later, sane
  // quantization attempt works (serving retries reloads this way).
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();

  QuantizeOptions impossible = TestOptions();
  impossible.min_agreement = 1.1;
  EXPECT_FALSE(QuantizeDaModel(&model, t.task.source, impossible).ok());
  EXPECT_TRUE(QuantizeDaModel(&model, t.task.source, TestOptions()).ok());
  EXPECT_TRUE(IsQuantized(model));
}

TEST(QuantizeModelTest, InvalidInputsAreRejected) {
  const TrainedSetup& t = Trained();
  DaModel model = FreshClone();
  EXPECT_FALSE(QuantizeDaModel(nullptr, t.task.source, TestOptions()).ok());

  const data::ERDataset empty("empty", "none", t.task.source.schema_a(),
                              t.task.source.schema_b());
  EXPECT_FALSE(QuantizeDaModel(&model, empty, TestOptions()).ok());
  EXPECT_FALSE(IsQuantized(model));
}

}  // namespace
}  // namespace dader::core
