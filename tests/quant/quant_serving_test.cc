// Serving-level int8 quantization tests: the --quantize path through
// MatchService and ShardedMatchService.
//
// Covered contracts:
//   * startup quantization engages (primary_quantized, calibration counter)
//     and the service answers requests from the int8 model;
//   * a failed startup gate is non-fatal: the service falls back to fp32
//     and bumps quant_rollbacks (bad calibration must never take serving
//     down);
//   * hot reload carries quantization through the canary: an adopted
//     checkpoint serves int8 again, and a reload whose quantization gate
//     fails is rejected with the old model still serving;
//   * the sharded service quantizes once and fans shared int8 state out to
//     every replica, for both Create and ReloadModel.
//
// These use untrained tiny models, whose probabilities sit near 0.5 —
// argmax agreement between fp32 and int8 is a coin flip there, so every
// engaged gate here uses quant_min_agreement = 0. The >= 99% agreement and
// F1 bounds on *trained* models live in quantize_model_test.cc.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <memory>
#include <string>
#include <vector>

#include "core/guard.h"
#include "core/quantize.h"
#include "serve/match_service.h"
#include "serve/sharded_service.h"

namespace dader::serve {
namespace {

using core::DaderConfig;

DaderConfig TinyModelConfig() {
  DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, TinyModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

data::Schema TestSchema() { return data::Schema({"title", "price"}); }

MatchRequest MakeRequest(const std::string& title_a,
                         const std::string& title_b) {
  MatchRequest request;
  request.a = data::Record({title_a, "10"});
  request.b = data::Record({title_b, "10"});
  return request;
}

// Unlabeled product pairs for range calibration.
const data::ERDataset& CalibPairs() {
  static const data::ERDataset* calib = [] {
    auto* d = new data::ERDataset("calib", "serve", TestSchema(), TestSchema());
    for (int i = 0; i < 32; ++i) {
      d->AddPair({data::Record({"acme widget model " + std::to_string(i) +
                                    " pro edition",
                                std::to_string(i)}),
                  data::Record({"acme widget model " + std::to_string(i),
                                std::to_string(i)}),
                  /*label=*/-1});
    }
    return d;
  }();
  return *calib;
}

ServeConfig QuantServeConfig(double min_agreement = 0.0) {
  ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 10000.0;  // latency is not under test
  config.retry.base_backoff_ms = 1.0;
  config.retry.max_backoff_ms = 4.0;
  config.quantize = true;
  config.quant_calib = &CalibPairs();
  config.quant_min_agreement = min_agreement;
  return config;
}

std::vector<MatchRequest> SmallWorkload() {
  std::vector<MatchRequest> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back(MakeRequest("sony camera a" + std::to_string(i),
                                   "sony camera a" + std::to_string(i)));
  }
  return requests;
}

std::string TempDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/quant_serving_" + tag;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(QuantServingTest, StartupQuantizationServesInt8) {
  MatchService service(QuantServeConfig(), TestSchema(), TestSchema(),
                       MakeModel(21));
  EXPECT_TRUE(service.primary_quantized());

  const auto responses = service.MatchBatch(SmallWorkload());
  ASSERT_EQ(responses.size(), 10u);
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_GE(r.prob, 0.0f);
    EXPECT_LE(r.prob, 1.0f);
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.quant_calibrations, 1);
  EXPECT_EQ(stats.quant_rollbacks, 0);
  EXPECT_EQ(stats.completed, 10);
}

TEST(QuantServingTest, QuantizedMatchesDedicatedQuantizedModelExactly) {
  // The service's int8 forward is the same deterministic path as a
  // directly quantized model: probabilities agree bitwise.
  core::DaModel reference = MakeModel(21);
  {
    const ServeConfig config = QuantServeConfig();
    ASSERT_TRUE(MatchService::QuantizeForServing(config, &reference).ok());
  }
  MatchService service(QuantServeConfig(), TestSchema(), TestSchema(),
                       MakeModel(21));
  ASSERT_TRUE(service.primary_quantized());

  MatchService reference_service(QuantServeConfig(), TestSchema(),
                                 TestSchema(), std::move(reference));
  ASSERT_TRUE(reference_service.primary_quantized());

  auto workload = SmallWorkload();
  const auto a = service.MatchBatch(workload);
  const auto b = reference_service.MatchBatch(workload);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok());
    ASSERT_TRUE(b[i].status.ok());
    EXPECT_EQ(a[i].prob, b[i].prob) << "request " << i;
    EXPECT_EQ(a[i].label, b[i].label) << "request " << i;
  }
}

TEST(QuantServingTest, FailedStartupGateFallsBackToFp32) {
  // min_agreement > 1 cannot be met; startup must roll back to fp32 and
  // keep serving.
  MatchService service(QuantServeConfig(/*min_agreement=*/1.1), TestSchema(),
                       TestSchema(), MakeModel(21));
  EXPECT_FALSE(service.primary_quantized());

  const auto responses = service.MatchBatch(SmallWorkload());
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.quant_calibrations, 0);
  EXPECT_EQ(stats.quant_rollbacks, 1);
}

TEST(QuantServingTest, MissingCalibrationDataIsARollback) {
  ServeConfig config = QuantServeConfig();
  config.quant_calib = nullptr;
  MatchService service(std::move(config), TestSchema(), TestSchema(),
                       MakeModel(21));
  EXPECT_FALSE(service.primary_quantized());
  EXPECT_EQ(service.stats().quant_rollbacks, 1);

  const auto responses = service.MatchBatch(SmallWorkload());
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
}

TEST(QuantServingTest, ReloadCarriesQuantizationThroughCanary) {
  const std::string dir = TempDir("reload");
  const std::string ckpt = dir + "/donor.ckpt";
  core::DaModel donor = MakeModel(99);
  ASSERT_TRUE(core::SaveModules(ckpt, {{"F", donor.extractor.get()},
                                       {"M", donor.matcher.get()}})
                  .ok());

  MatchService service(QuantServeConfig(), TestSchema(), TestSchema(),
                       MakeModel(21));
  ASSERT_TRUE(service.primary_quantized());

  const Status reloaded = service.ReloadModel(ckpt);
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  // The adopted checkpoint serves int8 again: reload re-calibrated.
  EXPECT_TRUE(service.primary_quantized());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.reloads, 1);
  EXPECT_EQ(stats.reload_rollbacks, 0);
  EXPECT_EQ(stats.quant_calibrations, 2);

  const auto responses = service.MatchBatch(SmallWorkload());
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
}

TEST(QuantServingTest, ReloadRejectedWhenQuantizationGateFails) {
  const std::string dir = TempDir("reject");
  const std::string ckpt = dir + "/donor.ckpt";
  core::DaModel donor = MakeModel(99);
  ASSERT_TRUE(core::SaveModules(ckpt, {{"F", donor.extractor.get()},
                                       {"M", donor.matcher.get()}})
                  .ok());

  // Impossible gate: startup already rolled back to fp32 (rollback #1);
  // the reload must hit the same gate on the staged model and be rejected
  // with the old model untouched.
  MatchService service(QuantServeConfig(/*min_agreement=*/1.1), TestSchema(),
                       TestSchema(), MakeModel(21));
  ASSERT_FALSE(service.primary_quantized());

  const auto before = service.MatchBatch(SmallWorkload());
  EXPECT_FALSE(service.ReloadModel(ckpt).ok());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.reloads, 0);
  EXPECT_EQ(stats.reload_rollbacks, 1);
  EXPECT_GE(stats.quant_rollbacks, 2);

  // Old fp32 model still serving, bit-identical to before the attempt.
  const auto after = service.MatchBatch(SmallWorkload());
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_TRUE(after[i].status.ok());
    EXPECT_EQ(before[i].prob, after[i].prob) << "request " << i;
  }
}

TEST(QuantServingTest, ShardedCreateSharesInt8StateAcrossReplicas) {
  ShardedServeConfig config;
  config.num_shards = 3;
  config.shard = QuantServeConfig();
  auto service = ShardedMatchService::Create(config, TestSchema(), TestSchema(),
                                             MakeModel(21))
                     .ValueOrDie();

  // Every shard reports quantized; the state was calibrated once at Create
  // and shared, so each shard's ctor only counts adoption.
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.quant_calibrations, 3);
  EXPECT_EQ(stats.quant_rollbacks, 0);

  // Identical duplicate requests must agree regardless of which replica
  // served them — shared int8 state keeps shards bit-identical.
  std::vector<MatchRequest> workload;
  for (int i = 0; i < 8; ++i) {
    workload.push_back(MakeRequest("canon eos r6 body " + std::to_string(i),
                                   "canon eos r6 " + std::to_string(i)));
  }
  const auto first = service->MatchBatch(workload);
  const auto second = service->MatchBatch(workload);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].status.ok()) << first[i].status.ToString();
    ASSERT_TRUE(second[i].status.ok()) << second[i].status.ToString();
    EXPECT_EQ(first[i].prob, second[i].prob) << "request " << i;
  }
  service->Stop();
}

TEST(QuantServingTest, ShardedReloadQuantizesOnceAndFansOut) {
  const std::string dir = TempDir("sharded");
  const std::string ckpt = dir + "/donor.ckpt";
  core::DaModel donor = MakeModel(99);
  ASSERT_TRUE(core::SaveModules(ckpt, {{"F", donor.extractor.get()},
                                       {"M", donor.matcher.get()}})
                  .ok());

  ShardedServeConfig config;
  config.num_shards = 2;
  config.shard = QuantServeConfig();
  auto service = ShardedMatchService::Create(config, TestSchema(), TestSchema(),
                                             MakeModel(21))
                     .ValueOrDie();

  const Status reloaded = service->ReloadModel(ckpt);
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.reloads, 2);
  EXPECT_EQ(stats.reload_rollbacks, 0);
  EXPECT_EQ(stats.quant_rollbacks, 0);

  const auto responses = service->MatchBatch(SmallWorkload());
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  service->Stop();
}

}  // namespace
}  // namespace dader::serve
