#include "core/metrics.h"

#include <gtest/gtest.h>
#include <cmath>

namespace dader::core {
namespace {

TEST(MetricsTest, PerfectPrediction) {
  ErMetrics m = ComputeMetrics({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(m.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.F1(), 1.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
}

TEST(MetricsTest, AllWrong) {
  ErMetrics m = ComputeMetrics({0, 1}, {1, 0});
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.0);
}

TEST(MetricsTest, ConfusionCounts) {
  //               pred:  1  1  0  0  1
  //               gold:  1  0  1  0  0
  ErMetrics m = ComputeMetrics({1, 1, 0, 0, 1}, {1, 0, 1, 0, 0});
  EXPECT_EQ(m.true_positives, 1);
  EXPECT_EQ(m.false_positives, 2);
  EXPECT_EQ(m.false_negatives, 1);
  EXPECT_EQ(m.true_negatives, 1);
}

TEST(MetricsTest, KnownF1) {
  // P = 2/3, R = 2/4 -> F1 = 2*(2/3)*(1/2)/((2/3)+(1/2)) = 4/7.
  ErMetrics m;
  m.true_positives = 2;
  m.false_positives = 1;
  m.false_negatives = 2;
  EXPECT_NEAR(m.F1(), 4.0 / 7.0, 1e-12);
}

TEST(MetricsTest, DegenerateNoPositivesPredicted) {
  ErMetrics m = ComputeMetrics({0, 0, 0}, {1, 1, 0});
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
}

TEST(MetricsTest, DegenerateNoGoldPositives) {
  ErMetrics m = ComputeMetrics({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);  // undefined => 0
  EXPECT_DOUBLE_EQ(m.Accuracy(), 1.0);
}

TEST(MetricsTest, ToStringContainsNumbers) {
  ErMetrics m = ComputeMetrics({1}, {1});
  const std::string s = m.ToString();
  EXPECT_NE(s.find("F1=1.000"), std::string::npos);
}

TEST(MeanStdTest, KnownValues) {
  MeanStd ms = ComputeMeanStd({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ms.mean, 4.0);
  EXPECT_NEAR(ms.std, std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(MeanStdTest, SingleValueZeroStd) {
  MeanStd ms = ComputeMeanStd({5.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 0.0);
}

TEST(MeanStdTest, EmptyIsZero) {
  MeanStd ms = ComputeMeanStd({});
  EXPECT_DOUBLE_EQ(ms.mean, 0.0);
  EXPECT_DOUBLE_EQ(ms.std, 0.0);
}

}  // namespace
}  // namespace dader::core
