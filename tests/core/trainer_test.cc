// Integration tests for the two DADER training algorithms at tiny scale.

#include "core/trainer.h"

#include <gtest/gtest.h>

#include <set>

#include "core/evaluator.h"
#include "core/experiment.h"
#include "data/generators.h"

namespace dader::core {
namespace {

ExperimentScale TinyScale() {
  ExperimentScale s;
  s.name = "tiny-test";
  s.model.vocab_size = 512;
  s.model.max_len = 24;
  s.model.hidden_dim = 16;
  s.model.num_heads = 2;
  s.model.num_layers = 1;
  s.model.ffn_dim = 32;
  s.model.rnn_hidden = 8;
  s.model.batch_size = 16;
  s.model.epochs = 4;
  s.model.gan_pretrain_epochs = 3;
  s.model.dropout = 0.0f;
  s.data_scale = 0.01;
  s.min_pairs = 80;
  s.num_seeds = 1;
  s.valid_fraction = 0.2;
  return s;
}

TEST(AlignMethodTest, NamesRoundTrip) {
  for (AlignMethod m : {AlignMethod::kNoDA, AlignMethod::kMMD,
                        AlignMethod::kKOrder, AlignMethod::kGRL,
                        AlignMethod::kInvGAN, AlignMethod::kInvGANKD,
                        AlignMethod::kED, AlignMethod::kCMD}) {
    AlignMethod parsed;
    ASSERT_TRUE(ParseAlignMethod(AlignMethodName(m), &parsed))
        << AlignMethodName(m);
    EXPECT_EQ(parsed, m);
  }
  AlignMethod dummy;
  EXPECT_FALSE(ParseAlignMethod("NotAMethod", &dummy));
}

TEST(AlignMethodTest, NamesAreUniqueAndParseIsCaseSensitive) {
  std::set<std::string> names;
  for (AlignMethod m : {AlignMethod::kNoDA, AlignMethod::kMMD,
                        AlignMethod::kKOrder, AlignMethod::kGRL,
                        AlignMethod::kInvGAN, AlignMethod::kInvGANKD,
                        AlignMethod::kED, AlignMethod::kCMD}) {
    EXPECT_TRUE(names.insert(AlignMethodName(m)).second)
        << "duplicate name " << AlignMethodName(m);
  }
  EXPECT_EQ(names.size(), 8u);
  AlignMethod dummy;
  EXPECT_FALSE(ParseAlignMethod("mmd", &dummy));
  EXPECT_FALSE(ParseAlignMethod("invgan", &dummy));
  EXPECT_FALSE(ParseAlignMethod("cmd", &dummy));
  EXPECT_FALSE(ParseAlignMethod("", &dummy));
  EXPECT_FALSE(ParseAlignMethod("MMD ", &dummy));  // trailing space rejected
  // kCMD (the extension aligner) parses but is not in the paper's six.
  ASSERT_TRUE(ParseAlignMethod("CMD", &dummy));
  EXPECT_EQ(dummy, AlignMethod::kCMD);
  for (AlignMethod m : AllAlignMethods()) {
    EXPECT_NE(m, AlignMethod::kCMD);
    EXPECT_NE(m, AlignMethod::kNoDA);
  }
}

TEST(AlignMethodTest, SixAlignersAndGanClassification) {
  EXPECT_EQ(AllAlignMethods().size(), 6u);
  EXPECT_TRUE(IsGanMethod(AlignMethod::kInvGAN));
  EXPECT_TRUE(IsGanMethod(AlignMethod::kInvGANKD));
  EXPECT_FALSE(IsGanMethod(AlignMethod::kMMD));
  EXPECT_FALSE(IsGanMethod(AlignMethod::kGRL));
  EXPECT_FALSE(IsGanMethod(AlignMethod::kNoDA));
}

// One training run per aligner method: must complete, produce per-epoch
// history, select a best epoch, and leave a usable model behind.
class TrainerMethodTest : public testing::TestWithParam<AlignMethod> {};

TEST_P(TrainerMethodTest, TrainsEndToEnd) {
  const AlignMethod method = GetParam();
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, /*data_seed=*/11).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, /*pretrained=*/false, 21)
                   .ValueOrDie();

  int callbacks = 0;
  auto outcome =
      RunSingleDa(method, scale, task, &model, /*track_source_f1=*/true,
                  [&callbacks](const EpochStats& s) {
                    ++callbacks;
                    EXPECT_GE(s.valid_f1, 0.0);
                    EXPECT_LE(s.valid_f1, 1.0);
                    EXPECT_GE(s.source_f1, 0.0);
                  })
          .ValueOrDie();

  EXPECT_EQ(outcome.train.history.size(),
            static_cast<size_t>(scale.model.epochs));
  EXPECT_EQ(callbacks, scale.model.epochs);
  EXPECT_GE(outcome.train.best_epoch, 1);
  EXPECT_LE(outcome.train.best_epoch, scale.model.epochs);
  EXPECT_GE(outcome.test_f1, 0.0);
  EXPECT_LE(outcome.test_f1, 1.0);
  // Alignment loss is tracked for every aligner (NoDA excepted).
  if (method != AlignMethod::kNoDA) {
    EXPECT_NE(outcome.train.history.back().alignment_loss, 0.0);
  }
  // The final extractor must be usable for prediction.
  Rng rng(1);
  Prediction pred =
      Predict(outcome.trainer->final_extractor(), model.matcher.get(),
              task.target_test, scale.model.batch_size, &rng);
  EXPECT_EQ(pred.labels.size(), task.target_test.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TrainerMethodTest,
    testing::Values(AlignMethod::kNoDA, AlignMethod::kMMD,
                    AlignMethod::kKOrder, AlignMethod::kGRL,
                    AlignMethod::kInvGAN, AlignMethod::kInvGANKD,
                    AlignMethod::kED, AlignMethod::kCMD),
    [](const testing::TestParamInfo<AlignMethod>& info) {
      std::string name = AlignMethodName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TrainerTest, GanMethodsUseAdaptedExtractor) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 12).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 31).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kInvGANKD, scale, task, &model).ValueOrDie();
  EXPECT_NE(outcome.trainer->final_extractor(), model.extractor.get());
}

TEST(TrainerTest, NonGanMethodsKeepOriginalExtractor) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 12).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 32).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kMMD, scale, task, &model).ValueOrDie();
  EXPECT_EQ(outcome.trainer->final_extractor(), model.extractor.get());
}

TEST(TrainerTest, InDomainSupervisedLearningWorks) {
  // Source == target distribution (FZ -> FZ from a different seed): the
  // NoDA baseline must reach a clearly-better-than-chance F1. This is the
  // learnability smoke test for the whole stack.
  ExperimentScale scale = TinyScale();
  scale.model.epochs = 10;
  scale.min_pairs = 120;
  auto task = BuildDaTask("FZ", "FZ", scale, 13).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 33).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kNoDA, scale, task, &model).ValueOrDie();
  EXPECT_GT(outcome.test_f1, 0.5);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 14).ValueOrDie();
  double f1s[2];
  for (int i = 0; i < 2; ++i) {
    auto model = BuildModel(ExtractorKind::kLM, scale, false, 77).ValueOrDie();
    f1s[i] = RunSingleDa(AlignMethod::kMMD, scale, task, &model)
                 .ValueOrDie()
                 .test_f1;
  }
  EXPECT_DOUBLE_EQ(f1s[0], f1s[1]);
}

TEST(TrainerTest, RnnExtractorTrains) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 15).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kRNN, scale, false, 41).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kNoDA, scale, task, &model).ValueOrDie();
  EXPECT_EQ(outcome.train.history.size(),
            static_cast<size_t>(scale.model.epochs));
}

TEST(EvaluatorTest, PredictionSizesAndEvalModeRestored) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 16).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 51).ValueOrDie();
  model.extractor->SetTraining(true);
  Rng rng(1);
  Prediction pred = Predict(model.extractor.get(), model.matcher.get(),
                            task.target_test, 8, &rng);
  EXPECT_EQ(pred.labels.size(), task.target_test.size());
  EXPECT_EQ(pred.probs.size(), task.target_test.size());
  EXPECT_TRUE(model.extractor->training());  // mode restored by guard
  for (size_t i = 0; i < pred.labels.size(); ++i) {
    EXPECT_EQ(pred.labels[i], pred.probs[i] >= 0.5f ? 1 : 0);
  }
}

TEST(EvaluatorTest, ExtractAllFeaturesShape) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 17).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 61).ValueOrDie();
  Rng rng(2);
  Tensor f = ExtractAllFeatures(model.extractor.get(), task.target_valid, 8,
                                &rng);
  EXPECT_EQ(f.shape(),
            (Shape{static_cast<int64_t>(task.target_valid.size()),
                   model.extractor->feature_dim()}));
}

}  // namespace
}  // namespace dader::core
