// End-to-end integration tests: the full experiment runners used by the
// bench harness, at miniature scale.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/reweight.h"

namespace dader::core {
namespace {

ExperimentScale TinyScale() {
  ExperimentScale s;
  s.name = "tiny-test";
  s.model.vocab_size = 512;
  s.model.max_len = 24;
  s.model.hidden_dim = 16;
  s.model.num_heads = 2;
  s.model.num_layers = 1;
  s.model.ffn_dim = 32;
  s.model.rnn_hidden = 8;
  s.model.batch_size = 16;
  s.model.epochs = 3;
  s.model.gan_pretrain_epochs = 2;
  s.model.dropout = 0.0f;
  s.data_scale = 0.01;
  s.min_pairs = 70;
  s.num_seeds = 2;
  s.valid_fraction = 0.2;
  return s;
}

TEST(ScalePresetsTest, ResolveByName) {
  EXPECT_EQ(ResolveScale("smoke").name, "smoke");
  EXPECT_EQ(ResolveScale("small").name, "small");
  EXPECT_EQ(ResolveScale("full").name, "full");
  EXPECT_EQ(ResolveScale("bogus").name, "smoke");
}

TEST(ScalePresetsTest, MonotoneSizes) {
  EXPECT_LT(SmokeScale().data_scale, SmallScale().data_scale);
  EXPECT_LT(SmallScale().data_scale, FullScale().data_scale);
  EXPECT_LE(SmokeScale().model.hidden_dim, SmallScale().model.hidden_dim);
  EXPECT_LE(SmallScale().model.hidden_dim, FullScale().model.hidden_dim);
}

TEST(BuildDaTaskTest, SplitSizesAndLabelHygiene) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("WA", "AB", scale, 5).ValueOrDie();
  EXPECT_GT(task.source.size(), 0u);
  // Unlabeled target really has no labels.
  for (const auto& p : task.target_unlabeled.pairs()) {
    EXPECT_FALSE(p.labeled());
  }
  // Valid + test partition the target.
  EXPECT_EQ(task.target_valid.size() + task.target_test.size(),
            task.target_unlabeled.size());
  const double vf = static_cast<double>(task.target_valid.size()) /
                    task.target_unlabeled.size();
  EXPECT_NEAR(vf, scale.valid_fraction, 0.05);
  // Source eval is a labeled slice of the source.
  EXPECT_GT(task.source_eval.size(), 0u);
  EXPECT_LE(task.source_eval.size(), task.source.size());
}

TEST(BuildDaTaskTest, UnknownDatasetFails) {
  EXPECT_FALSE(BuildDaTask("WA", "NOPE", TinyScale()).ok());
  EXPECT_FALSE(BuildDaTask("NOPE", "AB", TinyScale()).ok());
}

TEST(BuildModelTest, FeatureDimsAgree) {
  const ExperimentScale scale = TinyScale();
  auto lm = BuildModel(ExtractorKind::kLM, scale, false, 1).ValueOrDie();
  auto rnn = BuildModel(ExtractorKind::kRNN, scale, false, 1).ValueOrDie();
  EXPECT_EQ(lm.extractor->feature_dim(), scale.model.hidden_dim);
  EXPECT_EQ(rnn.extractor->feature_dim(), scale.model.hidden_dim);
}

TEST(RunDaCellTest, ProducesPerSeedResults) {
  const ExperimentScale scale = TinyScale();
  DaCellOptions options;
  options.pretrained_lm = false;  // keep the test hermetic (no cache file)
  auto cell =
      RunDaCell("FZ", "ZY", AlignMethod::kNoDA, scale, options).ValueOrDie();
  ASSERT_EQ(cell.per_seed_f1.size(), 2u);
  for (double f1 : cell.per_seed_f1) {
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
  }
  EXPECT_GE(cell.f1.std, 0.0);
  const double mean = (cell.per_seed_f1[0] + cell.per_seed_f1[1]) / 2.0;
  EXPECT_NEAR(cell.f1.mean, mean, 1e-12);
}

TEST(SemiSupervisedTest, LabelBudgetGrowsMonotonically) {
  const ExperimentScale scale = TinyScale();
  auto series = RunSemiSupervised("FZ", "ZY", SemiMethod::kDitto, scale,
                                  /*labels_per_round=*/10, /*rounds=*/3, 5)
                    .ValueOrDie();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].labels_used, 10);
  EXPECT_EQ(series[1].labels_used, 20);
  EXPECT_EQ(series[2].labels_used, 30);
  for (const auto& p : series) {
    EXPECT_GE(p.test_f1, 0.0);
    EXPECT_LE(p.test_f1, 1.0);
  }
}

TEST(SemiSupervisedTest, AllMethodsRun) {
  const ExperimentScale scale = TinyScale();
  for (SemiMethod m : {SemiMethod::kNoDA, SemiMethod::kDeepMatcher}) {
    auto series =
        RunSemiSupervised("FZ", "ZY", m, scale, 8, 2, 6).ValueOrDie();
    EXPECT_EQ(series.size(), 2u) << SemiMethodName(m);
  }
}

TEST(SemiMethodTest, Names) {
  EXPECT_STREQ(SemiMethodName(SemiMethod::kNoDA), "NoDA");
  EXPECT_STREQ(SemiMethodName(SemiMethod::kInvGANKD), "InvGAN+KD");
  EXPECT_STREQ(SemiMethodName(SemiMethod::kDitto), "Ditto");
  EXPECT_STREQ(SemiMethodName(SemiMethod::kDeepMatcher), "DeepMatcher");
}

}  // namespace
}  // namespace dader::core
