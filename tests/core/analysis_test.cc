// Tests for the analysis tools: t-SNE, domain-mixing score, and the
// MMD dataset distance.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset_distance.h"
#include "core/source_selection.h"
#include "core/experiment.h"
#include "core/tsne.h"
#include "data/generators.h"

namespace dader::core {
namespace {

// Two well-separated gaussian blobs in d dimensions.
std::pair<Tensor, Tensor> TwoBlobs(int64_t n, int64_t d, float separation,
                                   uint64_t seed) {
  Rng rng(seed);
  Tensor a = Tensor::RandomNormal({n, d}, 0.5f, &rng);
  Tensor b = Tensor::RandomNormal({n, d}, 0.5f, &rng);
  for (int64_t i = 0; i < n; ++i) b.vec()[static_cast<size_t>(i * d)] += separation;
  return {a, b};
}

TEST(TsneTest, OutputSizeAndFiniteness) {
  auto [a, b] = TwoBlobs(10, 5, 4.0f, 1);
  TsneConfig config;
  config.iterations = 50;
  const auto coords = RunTsne(a, config);
  ASSERT_EQ(coords.size(), 10u);
  for (const auto& p : coords) {
    EXPECT_TRUE(std::isfinite(p[0]));
    EXPECT_TRUE(std::isfinite(p[1]));
  }
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  // Embed two far-apart blobs; the 2-D embedding must keep blob members
  // closer to their own blob centroid than to the other's.
  auto [a, b] = TwoBlobs(15, 6, 10.0f, 2);
  std::vector<float> all;
  all.insert(all.end(), a.vec().begin(), a.vec().end());
  all.insert(all.end(), b.vec().begin(), b.vec().end());
  Tensor pooled = Tensor::FromVector({30, 6}, std::move(all));
  TsneConfig config;
  config.iterations = 200;
  const auto y = RunTsne(pooled, config);

  double ca[2] = {0, 0}, cb[2] = {0, 0};
  for (int i = 0; i < 15; ++i) {
    ca[0] += y[static_cast<size_t>(i)][0];
    ca[1] += y[static_cast<size_t>(i)][1];
    cb[0] += y[static_cast<size_t>(15 + i)][0];
    cb[1] += y[static_cast<size_t>(15 + i)][1];
  }
  for (auto& v : ca) v /= 15;
  for (auto& v : cb) v /= 15;
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const double da = std::hypot(y[static_cast<size_t>(i)][0] - ca[0],
                                 y[static_cast<size_t>(i)][1] - ca[1]);
    const double db = std::hypot(y[static_cast<size_t>(i)][0] - cb[0],
                                 y[static_cast<size_t>(i)][1] - cb[1]);
    const bool in_a = i < 15;
    correct += (in_a ? da < db : db < da);
  }
  EXPECT_GE(correct, 26);
}

TEST(TsneTest, DeterministicForSeed) {
  auto [a, b] = TwoBlobs(8, 4, 2.0f, 3);
  TsneConfig config;
  config.iterations = 30;
  const auto y1 = RunTsne(a, config);
  const auto y2 = RunTsne(a, config);
  for (size_t i = 0; i < y1.size(); ++i) {
    EXPECT_DOUBLE_EQ(y1[i][0], y2[i][0]);
    EXPECT_DOUBLE_EQ(y1[i][1], y2[i][1]);
  }
}

TEST(MixingScoreTest, SeparatedBlobsNearZero) {
  auto [a, b] = TwoBlobs(30, 4, 20.0f, 4);
  EXPECT_LT(DomainMixingScore(a, b, 5), 0.1);
}

TEST(MixingScoreTest, IdenticalDistributionsNearOne) {
  Rng rng(5);
  Tensor a = Tensor::RandomNormal({40, 4}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({40, 4}, 1.0f, &rng);
  EXPECT_GT(DomainMixingScore(a, b, 5), 0.7);
}

TEST(MixingScoreTest, MonotoneInSeparation) {
  auto [a1, b1] = TwoBlobs(25, 4, 0.5f, 6);
  auto [a2, b2] = TwoBlobs(25, 4, 8.0f, 6);
  EXPECT_GT(DomainMixingScore(a1, b1, 5), DomainMixingScore(a2, b2, 5));
}

TEST(MixingScoreTest, UnbalancedSampleSizes) {
  Rng rng(7);
  Tensor a = Tensor::RandomNormal({60, 3}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({12, 3}, 1.0f, &rng);
  const double s = DomainMixingScore(a, b, 5);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_GT(s, 0.4);  // same distribution, should still look mixed
}

TEST(DatasetDistanceTest, SelfDistanceSmallerThanCrossDomain) {
  // Under an untrained extractor, two samples of the same dataset should be
  // closer (in MMD) than product vs citation data — Figure 6's premise.
  DaderConfig config;
  config.vocab_size = 512;
  config.max_len = 24;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  LMFeatureExtractor extractor(config, 9);
  extractor.SetTraining(false);

  data::GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 60;
  auto wa1 = data::GenerateDataset("WA", opts).ValueOrDie();
  opts.seed = 99;
  auto wa2 = data::GenerateDataset("WA", opts).ValueOrDie();
  auto ds = data::GenerateDataset("DS", opts).ValueOrDie();

  Rng rng(10);
  const double self_dist =
      DatasetMmdDistance(&extractor, wa1, wa2, 50, &rng);
  const double cross_dist =
      DatasetMmdDistance(&extractor, wa1, ds, 50, &rng);
  EXPECT_LT(self_dist, cross_dist);
}

TEST(SourceSelectionTest, RanksSameDomainSourceFirst) {
  ExperimentScale scale;
  scale.model.vocab_size = 512;
  scale.model.max_len = 24;
  scale.model.hidden_dim = 16;
  scale.model.num_heads = 2;
  scale.model.num_layers = 1;
  scale.model.ffn_dim = 32;
  scale.model.dropout = 0.0f;
  scale.data_scale = 0.01;
  scale.min_pairs = 60;
  LMFeatureExtractor extractor(scale.model, 3);
  extractor.SetTraining(false);
  Rng rng(4);
  // DA (same citation domain/schema as DS) must rank closer to DS than the
  // product dataset WA does.
  auto ranking = RankSourcesByDistance({"WA", "DA"}, "DS", scale, &extractor,
                                       50, &rng);
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking.ValueOrDie().size(), 2u);
  EXPECT_EQ(ranking.ValueOrDie()[0].source_name, "DA");
  EXPECT_LT(ranking.ValueOrDie()[0].mmd, ranking.ValueOrDie()[1].mmd);

  auto best = SelectClosestSource({"WA", "DA"}, "DS", scale, &extractor, 50,
                                  &rng);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.ValueOrDie(), "DA");
}

TEST(SourceSelectionTest, EmptyPoolFails) {
  ExperimentScale scale;
  scale.model.hidden_dim = 16;
  scale.model.num_heads = 2;
  LMFeatureExtractor extractor(scale.model, 3);
  Rng rng(5);
  EXPECT_FALSE(
      RankSourcesByDistance({}, "DS", scale, &extractor, 50, &rng).ok());
}

}  // namespace
}  // namespace dader::core
