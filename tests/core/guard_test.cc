// Unit tests for the training-stability guard: verdict classification,
// best-snapshot hygiene, and multi-module checkpoint round-trips.

#include "core/guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/matcher.h"
#include "tensor/serialize.h"
#include "util/fault.h"

namespace dader::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TrainingGuard::EpochObservation HealthyObs(double loss = 1.0,
                                           double f1 = 0.6) {
  TrainingGuard::EpochObservation obs;
  obs.mean_loss = loss;
  obs.valid_f1 = f1;
  return obs;
}

TEST(GuardVerdictTest, Names) {
  EXPECT_STREQ(GuardVerdictName(GuardVerdict::kHealthy), "healthy");
  EXPECT_STREQ(GuardVerdictName(GuardVerdict::kDiverged), "diverged");
  EXPECT_STREQ(GuardVerdictName(GuardVerdict::kCollapsed), "collapsed");
}

TEST(TrainingGuardTest, HealthyEpochsStayHealthy) {
  TrainingGuard guard(GuardConfig{});
  for (int e = 0; e < 10; ++e) {
    EXPECT_EQ(guard.EndEpoch(HealthyObs()), GuardVerdict::kHealthy);
  }
}

TEST(TrainingGuardTest, NonFiniteSignalsDiverge) {
  GuardConfig cfg;
  {
    TrainingGuard guard(cfg);
    EXPECT_EQ(guard.EndEpoch(HealthyObs(kNan)), GuardVerdict::kDiverged);
  }
  {
    TrainingGuard guard(cfg);
    auto obs = HealthyObs();
    obs.valid_f1 = kNan;
    EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kDiverged);
  }
  {
    TrainingGuard guard(cfg);
    auto obs = HealthyObs();
    obs.params_finite = false;
    EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kDiverged);
  }
  {
    TrainingGuard guard(cfg);
    auto obs = HealthyObs();
    obs.aborted = true;
    EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kDiverged);
  }
}

TEST(TrainingGuardTest, NanStepBudget) {
  GuardConfig cfg;
  cfg.max_nan_steps = 2;
  TrainingGuard guard(cfg);
  auto obs = HealthyObs();
  obs.nan_steps = 2;  // at the budget: tolerated
  EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kHealthy);
  obs.nan_steps = 3;  // over the budget
  EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kDiverged);
}

TEST(TrainingGuardTest, LossExplosionAgainstWindowMedian) {
  GuardConfig cfg;
  cfg.explosion_factor = 25.0;
  cfg.loss_floor = 0.5;
  TrainingGuard guard(cfg);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(guard.EndEpoch(HealthyObs(1.0)), GuardVerdict::kHealthy);
  }
  // 10x the median is loud but within the envelope.
  EXPECT_EQ(guard.EndEpoch(HealthyObs(10.0)), GuardVerdict::kHealthy);
  // 100x the median is an explosion.
  EXPECT_EQ(guard.EndEpoch(HealthyObs(100.0)), GuardVerdict::kDiverged);
}

TEST(TrainingGuardTest, LossFloorProtectsTinyLosses) {
  GuardConfig cfg;
  cfg.explosion_factor = 25.0;
  cfg.loss_floor = 0.5;
  TrainingGuard guard(cfg);
  for (int e = 0; e < 3; ++e) {
    EXPECT_EQ(guard.EndEpoch(HealthyObs(0.001)), GuardVerdict::kHealthy);
  }
  // 400x the median, but under explosion_factor * loss_floor = 12.5.
  EXPECT_EQ(guard.EndEpoch(HealthyObs(0.4)), GuardVerdict::kHealthy);
}

TEST(TrainingGuardTest, FirstEpochHasNoExplosionReference) {
  TrainingGuard guard(GuardConfig{});
  // No window yet: a large-but-finite first-epoch loss is not an explosion.
  EXPECT_EQ(guard.EndEpoch(HealthyObs(1e6)), GuardVerdict::kHealthy);
}

TEST(TrainingGuardTest, DisabledGuardNeverFlags) {
  GuardConfig cfg;
  cfg.enabled = false;
  TrainingGuard guard(cfg);
  auto obs = HealthyObs(kNan, kNan);
  obs.aborted = true;
  obs.params_finite = false;
  obs.nan_steps = 99;
  EXPECT_EQ(guard.EndEpoch(obs), GuardVerdict::kHealthy);
}

TEST(TrainingGuardTest, GanCollapseNeedsStreak) {
  GuardConfig cfg;
  cfg.disc_collapse_acc = 0.98;
  cfg.disc_collapse_epochs = 3;
  cfg.collapse_f1_frac = 0.5;
  TrainingGuard guard(cfg);
  // Establish a healthy best F1 of 0.8.
  auto good = HealthyObs(1.0, 0.8);
  good.disc_accuracy = 0.7;
  EXPECT_EQ(guard.EndEpoch(good), GuardVerdict::kHealthy);
  // Discriminator wins while F1 dies: collapsed only on the 3rd epoch.
  auto bad = HealthyObs(1.0, 0.1);
  bad.disc_accuracy = 0.99;
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kCollapsed);
}

TEST(TrainingGuardTest, CollapseStreakBrokenByRecovery) {
  GuardConfig cfg;
  cfg.disc_collapse_epochs = 3;
  TrainingGuard guard(cfg);
  auto good = HealthyObs(1.0, 0.8);
  good.disc_accuracy = 0.7;
  EXPECT_EQ(guard.EndEpoch(good), GuardVerdict::kHealthy);
  auto bad = HealthyObs(1.0, 0.1);
  bad.disc_accuracy = 0.99;
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  // F1 recovers: the streak resets, so two more bad epochs don't collapse.
  EXPECT_EQ(guard.EndEpoch(good), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
}

TEST(TrainingGuardTest, ResetClearsStreakState) {
  GuardConfig cfg;
  cfg.disc_collapse_epochs = 2;
  TrainingGuard guard(cfg);
  auto good = HealthyObs(1.0, 0.8);
  good.disc_accuracy = 0.7;
  guard.EndEpoch(good);
  auto bad = HealthyObs(1.0, 0.1);
  bad.disc_accuracy = 0.99;
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);
  guard.Reset();  // as after a rollback
  EXPECT_EQ(guard.verdict(), GuardVerdict::kHealthy);
  EXPECT_EQ(guard.EndEpoch(bad), GuardVerdict::kHealthy);  // streak restarted
}

TEST(TrainingGuardTest, FiniteChecks) {
  Tensor ok = Tensor::FromVector({2}, {1.0f, -2.0f});
  Tensor bad = Tensor::FromVector({2},
                                  {1.0f, std::numeric_limits<float>::infinity()});
  EXPECT_TRUE(TrainingGuard::AllFinite({ok}));
  EXPECT_FALSE(TrainingGuard::AllFinite({ok, bad}));
}

TEST(PoisonGradientsTest, OverwritesEveryGradElement) {
  Tensor p = Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  p.ZeroGrad();  // materializes the grad buffer
  PoisonGradients({p});
  ASSERT_EQ(p.grad().size(), 4u);
  for (float g : p.grad()) {
    EXPECT_TRUE(std::isnan(g));
  }
  EXPECT_FALSE(TrainingGuard::GradsFinite({p}));
}

TEST(BestSnapshotTest, SkipsFlaggedAndNonFiniteEpochs) {
  Matcher a(4, 1), b(4, 2);
  BestSnapshot best;
  best.Consider(0.9, 1, a, b, GuardVerdict::kDiverged);
  EXPECT_EQ(best.best_epoch(), -1);
  best.Consider(kNan, 2, a, b, GuardVerdict::kHealthy);
  EXPECT_EQ(best.best_epoch(), -1);
  best.Consider(0.5, 3, a, b, GuardVerdict::kHealthy);
  EXPECT_EQ(best.best_epoch(), 3);
  EXPECT_DOUBLE_EQ(best.best_f1(), 0.5);
  // A later flagged epoch with higher F1 must not displace the best.
  best.Consider(0.9, 4, a, b, GuardVerdict::kCollapsed);
  EXPECT_EQ(best.best_epoch(), 3);
}

TEST(BestSnapshotTest, RestoreIsNoOpWithoutAnyBest) {
  Matcher a(4, 1), b(4, 2);
  const auto before = a.SnapshotWeights();
  BestSnapshot best;
  best.Restore(&a, &b);  // must not crash or modify anything
  for (const auto& [name, t] : a.SnapshotWeights()) {
    EXPECT_EQ(t.vec(), before.at(name).vec()) << name;
  }
}

TEST(BestSnapshotTest, SpillsBestWeightsToDisk) {
  const std::string path = TempPath("best_spill.bin");
  Matcher a(4, 1), b(4, 2);
  BestSnapshot best;
  best.set_spill_path(path);
  best.Consider(0.7, 2, a, b);
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& tensors = loaded.ValueOrDie();
  EXPECT_EQ(tensors.size(),
            a.NamedParameters().size() + b.NamedParameters().size());
  for (const auto& [name, t] : tensors) {
    (void)t;
    EXPECT_TRUE(name.rfind("F.", 0) == 0 || name.rfind("M.", 0) == 0) << name;
  }
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("modules_roundtrip.bin");
  Matcher f(4, 1), m(4, 2);
  ASSERT_TRUE(SaveModules(path, {{"F", &f}, {"M", &m}}).ok());

  // Restore into differently-initialized clones.
  Matcher f2(4, 3), m2(4, 4);
  ASSERT_TRUE(LoadModules(path, {{"F", &f2}, {"M", &m2}}).ok());
  for (const auto& [name, t] : f.SnapshotWeights()) {
    EXPECT_EQ(t.vec(), f2.SnapshotWeights().at(name).vec()) << name;
  }
  for (const auto& [name, t] : m.SnapshotWeights()) {
    EXPECT_EQ(t.vec(), m2.SnapshotWeights().at(name).vec()) << name;
  }
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, MissingModuleIsDescriptiveError) {
  const std::string path = TempPath("modules_missing.bin");
  Matcher f(4, 1), m(4, 2);
  ASSERT_TRUE(SaveModules(path, {{"F", &f}}).ok());
  Status st = LoadModules(path, {{"F", &f}, {"M", &m}});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("missing module 'M'"), std::string::npos)
      << st.ToString();
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, UnknownPrefixRejectedBeforeAnyRestore) {
  const std::string path = TempPath("modules_unknown.bin");
  Matcher f(4, 1), m(4, 2);
  ASSERT_TRUE(SaveModules(path, {{"F", &f}, {"M", &m}}).ok());
  Matcher f2(4, 3);
  const auto before = f2.SnapshotWeights();
  EXPECT_FALSE(LoadModules(path, {{"F", &f2}}).ok());  // 'M' is unknown
  // All-or-nothing: the failed load left f2 untouched.
  for (const auto& [name, t] : f2.SnapshotWeights()) {
    EXPECT_EQ(t.vec(), before.at(name).vec()) << name;
  }
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, ShapeMismatchRejected) {
  const std::string path = TempPath("modules_shape.bin");
  Matcher f(4, 1);
  ASSERT_TRUE(SaveModules(path, {{"F", &f}}).ok());
  Matcher wider(8, 2);  // different feature_dim => different shapes
  Status st = LoadModules(path, {{"F", &wider}});
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(ModuleCheckpointTest, TruncatedCheckpointIsDescriptiveError) {
  const std::string path = TempPath("modules_truncated.bin");
  Matcher f(4, 1), m(4, 2);
  ASSERT_TRUE(SaveModules(path, {{"F", &f}, {"M", &m}}).ok());
  ASSERT_TRUE(FaultInjector::TruncateFile(path, 0.5).ok());
  Matcher f2(4, 3), m2(4, 4);
  Status st = LoadModules(path, {{"F", &f2}, {"M", &m2}});
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.ToString().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader::core
