// Unit tests for the DADER building blocks: feature extractors, matcher,
// discriminator, decoder, pre-training, active selection, and Reweight.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/active.h"
#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "core/pretrain.h"
#include "core/reweight.h"
#include "util/io.h"
#include "data/generators.h"

namespace dader::core {
namespace {

DaderConfig TinyConfig() {
  DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.batch_size = 4;
  c.dropout = 0.0f;
  return c;
}

data::ERDataset TinyDataset(const std::string& name = "FZ") {
  data::GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 40;
  return data::GenerateDataset(name, opts).ValueOrDie();
}

class ExtractorTest : public testing::TestWithParam<ExtractorKind> {};

TEST_P(ExtractorTest, FeatureShape) {
  auto extractor = MakeExtractor(GetParam(), TinyConfig(), 1);
  ASSERT_NE(extractor, nullptr);
  const auto ds = TinyDataset();
  Rng rng(2);
  EncodedBatch batch = extractor->EncodePairs(ds, {0, 1, 2});
  Tensor f = extractor->Forward(batch, &rng);
  EXPECT_EQ(f.shape(), (Shape{3, extractor->feature_dim()}));
}

TEST_P(ExtractorTest, EncodePairsLayout) {
  auto extractor = MakeExtractor(GetParam(), TinyConfig(), 1);
  const auto ds = TinyDataset();
  EncodedBatch batch = extractor->EncodePairs(ds, {0, 1});
  EXPECT_EQ(batch.batch, 2);
  EXPECT_EQ(batch.max_len, 16);
  EXPECT_EQ(batch.token_ids.size(), 32u);
  EXPECT_EQ(batch.mask.size(), 32u);
  EXPECT_EQ(batch.overlap.size(), 32u);
  EXPECT_EQ(batch.token_ids[0], text::kCls);
}

TEST_P(ExtractorTest, DeterministicInEvalMode) {
  auto extractor = MakeExtractor(GetParam(), TinyConfig(), 3);
  extractor->SetTraining(false);
  const auto ds = TinyDataset();
  EncodedBatch batch = extractor->EncodePairs(ds, {0, 1});
  Rng r1(1), r2(2);
  EXPECT_EQ(extractor->Forward(batch, &r1).vec(),
            extractor->Forward(batch, &r2).vec());
}

TEST_P(ExtractorTest, CloneArchitectureAndCopyWeights) {
  auto a = MakeExtractor(GetParam(), TinyConfig(), 4);
  auto b = a->CloneArchitecture(5);
  ASSERT_EQ(a->NumParameters(), b->NumParameters());
  // Fresh clone differs; after copy it agrees.
  const auto ds = TinyDataset();
  EncodedBatch batch = a->EncodePairs(ds, {0});
  a->SetTraining(false);
  b->SetTraining(false);
  Rng rng(6);
  EXPECT_NE(a->Forward(batch, &rng).vec(), b->Forward(batch, &rng).vec());
  ASSERT_TRUE(b->CopyWeightsFrom(*a).ok());
  EXPECT_EQ(a->Forward(batch, &rng).vec(), b->Forward(batch, &rng).vec());
}

INSTANTIATE_TEST_SUITE_P(BothKinds, ExtractorTest,
                         testing::Values(ExtractorKind::kLM,
                                         ExtractorKind::kRNN),
                         [](const testing::TestParamInfo<ExtractorKind>& i) {
                           return i.param == ExtractorKind::kLM ? "LM" : "RNN";
                         });

TEST_P(ExtractorTest, OverlapFlagKnobChangesFeatures) {
  // Disabling use_overlap_flags must change the features of a pair whose
  // entities share tokens (the ablation bench relies on this knob).
  DaderConfig with = TinyConfig();
  DaderConfig without = TinyConfig();
  without.use_overlap_flags = false;
  auto e1 = MakeExtractor(GetParam(), with, 11);
  auto e2 = MakeExtractor(GetParam(), without, 11);
  ASSERT_TRUE(e2->CopyWeightsFrom(*e1).ok());
  e1->SetTraining(false);
  e2->SetTraining(false);
  const auto ds = TinyDataset();
  // Find a pair with at least one overlap flag set.
  size_t idx = 0;
  for (; idx < ds.size(); ++idx) {
    EncodedBatch b = e1->EncodePairs(ds, {idx});
    bool any = false;
    for (float f : b.overlap) any |= (f != 0.0f);
    if (any) break;
  }
  ASSERT_LT(idx, ds.size());
  EncodedBatch batch = e1->EncodePairs(ds, {idx});
  Rng rng(12);
  EXPECT_NE(e1->Forward(batch, &rng).vec(), e2->Forward(batch, &rng).vec());
}

TEST(MatcherTest, LogitsShapeAndProbs) {
  Matcher matcher(16, 1);
  Rng rng(1);
  Tensor f = Tensor::RandomUniform({5, 16}, -1, 1, &rng);
  EXPECT_EQ(matcher.Forward(f, &rng).shape(), (Shape{5, 2}));
  const auto probs = matcher.PredictProbabilities(f, &rng);
  ASSERT_EQ(probs.size(), 5u);
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(DiscriminatorTest, ShallowVsDeepParamCount) {
  DomainDiscriminator shallow(16, 32, /*deep=*/false, 1);
  DomainDiscriminator deep(16, 32, /*deep=*/true, 1);
  EXPECT_LT(shallow.NumParameters(), deep.NumParameters());
  Rng rng(1);
  Tensor f = Tensor::RandomUniform({3, 16}, -1, 1, &rng);
  EXPECT_EQ(shallow.Forward(f, &rng).shape(), (Shape{3, 1}));
  EXPECT_EQ(deep.Forward(f, &rng).shape(), (Shape{3, 1}));
}

TEST(DecoderTest, VocabLogitsShape) {
  ReconstructionDecoder decoder(16, 256, 1);
  Rng rng(1);
  Tensor f = Tensor::RandomUniform({4, 16}, -1, 1, &rng);
  EXPECT_EQ(decoder.Forward(f).shape(), (Shape{4, 256}));
}

TEST(PretrainTest, CorpusNonEmptyAndWellFormed) {
  DaderConfig config = TinyConfig();
  PretrainConfig pc;
  pc.corpus_scale = 0.005;
  pc.min_pairs_per_dataset = 5;
  const auto corpus = BuildPretrainCorpus(config, pc);
  EXPECT_GE(corpus.size(), 13u * 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(corpus[i].ids.size(), static_cast<size_t>(config.max_len));
    EXPECT_EQ(corpus[i].ids[0], text::kCls);
  }
}

TEST(PretrainTest, MlmLossDecreases) {
  DaderConfig config = TinyConfig();
  LMFeatureExtractor extractor(config, 7);
  PretrainConfig pc;
  pc.corpus_scale = 0.005;
  pc.min_pairs_per_dataset = 8;
  pc.steps = 120;
  pc.batch_size = 8;
  const auto corpus = BuildPretrainCorpus(config, pc);
  auto final_loss = PretrainLM(&extractor, corpus, pc);
  ASSERT_TRUE(final_loss.ok());
  // Untrained cross-entropy is ~log(vocab) = log(256) ~ 5.5; training on a
  // tiny vocabulary must push well below that.
  EXPECT_LT(final_loss.ValueOrDie(), 5.0f);
}

TEST(PretrainTest, CacheRoundTrip) {
  const std::string path = testing::TempDir() + "/pretrain_cache_test.bin";
  std::remove(path.c_str());
  DaderConfig config = TinyConfig();
  PretrainConfig pc;
  pc.steps = 10;
  pc.corpus_scale = 0.005;
  pc.min_pairs_per_dataset = 5;
  LMFeatureExtractor e1(config, 8);
  ASSERT_TRUE(LoadOrPretrainLM(&e1, path, pc).ok());
  ASSERT_TRUE(FileExists(path));
  // Second load must restore identical weights into a fresh extractor.
  LMFeatureExtractor e2(config, 9);
  ASSERT_TRUE(LoadOrPretrainLM(&e2, path, pc).ok());
  const auto w1 = e1.NamedParameters();
  const auto w2 = e2.NamedParameters();
  for (const auto& [name, t] : w1) {
    EXPECT_EQ(t.vec(), w2.at(name).vec()) << name;
  }
  std::remove(path.c_str());
}

TEST(ActiveTest, PicksMostUncertain) {
  const std::vector<float> probs = {0.9f, 0.51f, 0.1f, 0.45f, 0.99f};
  const std::vector<bool> taken(5, false);
  const auto chosen = SelectMaxEntropy(probs, taken, 2);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 1u);  // 0.51 closest to 0.5
  EXPECT_EQ(chosen[1], 3u);  // then 0.45
}

TEST(ActiveTest, SkipsAlreadySelected) {
  const std::vector<float> probs = {0.5f, 0.5f, 0.9f};
  std::vector<bool> taken = {true, false, false};
  const auto chosen = SelectMaxEntropy(probs, taken, 2);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], 1u);
  EXPECT_EQ(chosen[1], 2u);
}

TEST(ActiveTest, RequestMoreThanAvailable) {
  const std::vector<float> probs = {0.5f, 0.6f};
  std::vector<bool> taken = {true, false};
  EXPECT_EQ(SelectMaxEntropy(probs, taken, 10).size(), 1u);
}

TEST(ReweightTest, EmbeddingIsUnitNormAndDeterministic) {
  const auto ds = TinyDataset("WA");
  ReweightConfig config;
  const auto e1 = EmbedPair(ds.pair(0), ds.schema_a(), ds.schema_b(), config);
  const auto e2 = EmbedPair(ds.pair(0), ds.schema_a(), ds.schema_b(), config);
  EXPECT_EQ(e1, e2);
  double norm = 0.0;
  for (float v : e1) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(norm, 1.0, 1e-4);
}

TEST(ReweightTest, WeightsFavorTargetLikePairs) {
  // Source pairs identical to target pairs must get higher weights than
  // unrelated ones.
  ReweightConfig config;
  config.knn = 1;
  std::vector<std::vector<float>> target = {{1.0f, 0.0f}, {0.9f, 0.1f}};
  std::vector<std::vector<float>> source = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  const auto weights = ComputeSourceWeights(source, target, config);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
}

TEST(ReweightTest, WeightsNormalizedToMeanOne) {
  ReweightConfig config;
  std::vector<std::vector<float>> target = {{1.0f, 0.0f}};
  std::vector<std::vector<float>> source = {{1.0f, 0.0f}, {0.0f, 1.0f},
                                            {0.7f, 0.7f}};
  const auto weights = ComputeSourceWeights(source, target, config);
  double mean = 0.0;
  for (double w : weights) mean += w;
  EXPECT_NEAR(mean / 3.0, 1.0, 1e-9);
}

TEST(ReweightTest, EndToEndProducesMetrics) {
  data::GenerateOptions opts;
  opts.scale = 0.02;
  opts.min_pairs = 80;
  auto source = data::GenerateDataset("FZ", opts).ValueOrDie();
  opts.seed = 9;
  auto target = data::GenerateDataset("ZY", opts).ValueOrDie();
  ReweightConfig config;
  config.train_epochs = 20;
  ErMetrics m = RunReweightBaseline(source, target, config);
  // Sanity: counts cover the whole target.
  EXPECT_EQ(m.true_positives + m.false_positives + m.false_negatives +
                m.true_negatives,
            static_cast<int64_t>(target.size()));
}

}  // namespace
}  // namespace dader::core
