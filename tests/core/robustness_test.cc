// End-to-end fault-injection tests for the training-robustness layer:
// NaN gradients mid-adaptation, corrupted checkpoints, and mid-epoch aborts
// must all be detected, recovered from, and surfaced through TrainResult.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>

#include "core/experiment.h"
#include "core/trainer.h"
#include "tensor/serialize.h"
#include "util/fault.h"

namespace dader::core {
namespace {

ExperimentScale TinyScale() {
  ExperimentScale s;
  s.name = "tiny-robustness";
  s.model.vocab_size = 512;
  s.model.max_len = 24;
  s.model.hidden_dim = 16;
  s.model.num_heads = 2;
  s.model.num_layers = 1;
  s.model.ffn_dim = 32;
  s.model.rnn_hidden = 8;
  s.model.batch_size = 16;
  s.model.epochs = 4;
  s.model.gan_pretrain_epochs = 3;
  s.model.dropout = 0.0f;
  s.data_scale = 0.01;
  s.min_pairs = 80;
  s.num_seeds = 1;
  s.valid_fraction = 0.2;
  return s;
}

std::string MakeTempDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// The acceptance scenario: NaN gradients injected mid-adaptation for InvGAN.
// The first attempt diverges, Run() rolls back to the pre-adaptation
// checkpoint and retries with a fresh seed, and the final verdict is healthy
// with a target F1 within noise of the uninjected run.
TEST(RobustnessTest, InvGanNanInjectionRecoversWithRetry) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, /*data_seed=*/11).ValueOrDie();

  auto clean_model =
      BuildModel(ExtractorKind::kLM, scale, /*pretrained=*/false, 21)
          .ValueOrDie();
  auto clean = RunSingleDa(AlignMethod::kInvGAN, scale, task, &clean_model)
                   .ValueOrDie();
  ASSERT_EQ(clean.train.verdict, GuardVerdict::kHealthy);
  ASSERT_EQ(clean.train.retries, 0);
  EXPECT_STREQ(RunVerdictLabel(clean.train), "converged");

  ExperimentScale faulty = scale;
  faulty.model.guard.max_rollbacks = 0;  // any flagged epoch fails the attempt
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kNanGradient;
  spec.epoch = 2;
  spec.step = 1;
  spec.max_hits = 1;
  injector.Arm(spec);
  faulty.model.fault = &injector;

  auto model = BuildModel(ExtractorKind::kLM, faulty, false, 21).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kInvGAN, faulty, task, &model).ValueOrDie();

  EXPECT_EQ(injector.hits(FaultKind::kNanGradient), 1);
  EXPECT_EQ(outcome.train.verdict, GuardVerdict::kHealthy);
  EXPECT_EQ(outcome.train.retries, 1);
  EXPECT_STREQ(RunVerdictLabel(outcome.train), "recovered-after-retry");
  // The reported history is the healthy retry's: full-length, no flags.
  EXPECT_EQ(outcome.train.history.size(),
            static_cast<size_t>(faulty.model.epochs));
  for (const EpochStats& s : outcome.train.history) {
    EXPECT_EQ(s.verdict, GuardVerdict::kHealthy);
    EXPECT_EQ(s.nan_steps, 0);
  }
  // Recovered F1 within noise of the uninjected run.
  EXPECT_GE(outcome.test_f1, clean.test_f1 - 0.35);
}

// With the rollback budget available, a single poisoned step is handled
// inside the attempt: the flagged epoch is rolled back and training
// continues — no reseeded retry needed.
TEST(RobustnessTest, NanInjectionRollsBackWithinAttempt) {
  ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 12).ValueOrDie();

  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kNanGradient;
  spec.epoch = 2;
  spec.step = 1;
  spec.max_hits = 1;
  injector.Arm(spec);
  scale.model.fault = &injector;

  auto model = BuildModel(ExtractorKind::kLM, scale, false, 31).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kMMD, scale, task, &model).ValueOrDie();

  EXPECT_EQ(outcome.train.verdict, GuardVerdict::kHealthy);
  EXPECT_EQ(outcome.train.retries, 0);
  EXPECT_EQ(outcome.train.rollbacks, 1);
  EXPECT_STREQ(RunVerdictLabel(outcome.train), "recovered-after-retry");
  ASSERT_EQ(outcome.train.history.size(),
            static_cast<size_t>(scale.model.epochs));
  const EpochStats& flagged = outcome.train.history[1];
  EXPECT_EQ(flagged.epoch, 2);
  EXPECT_EQ(flagged.verdict, GuardVerdict::kDiverged);
  EXPECT_EQ(flagged.nan_steps, 1);
  EXPECT_TRUE(flagged.rolled_back);
  // Later epochs ran clean after the rollback.
  EXPECT_EQ(outcome.train.history.back().verdict, GuardVerdict::kHealthy);
  EXPECT_GE(outcome.train.best_epoch, 1);
}

// A truncated pre-adaptation checkpoint must yield a descriptive Status on
// load — and Run() must fall back to the in-memory snapshot and still
// recover.
TEST(RobustnessTest, CorruptCheckpointFallsBackToMemorySnapshot) {
  ExperimentScale scale = TinyScale();
  const std::string dir = MakeTempDir("robustness_ckpt_corrupt");
  scale.model.guard.checkpoint_dir = dir;
  scale.model.guard.max_rollbacks = 0;  // force the retry path

  FaultInjector injector;
  FaultSpec corrupt;
  corrupt.kind = FaultKind::kCorruptCheckpoint;
  corrupt.epoch = 0;  // the pre-adaptation save site
  injector.Arm(corrupt);
  FaultSpec nan;
  nan.kind = FaultKind::kNanGradient;
  nan.epoch = 2;
  nan.step = 1;
  injector.Arm(nan);
  scale.model.fault = &injector;

  auto task = BuildDaTask("FZ", "ZY", scale, 13).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 41).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kInvGAN, scale, task, &model).ValueOrDie();

  // The truncated checkpoint is a clean error, not a crash or garbage load.
  const std::string ckpt = dir + "/pre_adaptation_InvGAN.bin";
  auto loaded = LoadTensors(ckpt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().ToString().empty());

  // ...and the run still recovered via the in-memory snapshot.
  EXPECT_EQ(outcome.train.verdict, GuardVerdict::kHealthy);
  EXPECT_EQ(outcome.train.retries, 1);
}

// A simulated mid-epoch crash (abort) is flagged and rolled back.
TEST(RobustnessTest, MidEpochAbortRecoversViaRollback) {
  ExperimentScale scale = TinyScale();
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kAbortStep;
  spec.epoch = 2;
  spec.step = 1;
  spec.max_hits = 1;
  injector.Arm(spec);
  scale.model.fault = &injector;

  auto task = BuildDaTask("FZ", "ZY", scale, 14).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 51).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kGRL, scale, task, &model).ValueOrDie();

  EXPECT_EQ(outcome.train.verdict, GuardVerdict::kHealthy);
  EXPECT_EQ(outcome.train.rollbacks, 1);
  ASSERT_GE(outcome.train.history.size(), 2u);
  EXPECT_EQ(outcome.train.history[1].verdict, GuardVerdict::kDiverged);
  EXPECT_TRUE(outcome.train.history[1].rolled_back);
}

// Healthy training is bit-identical with the guard on or off: the guard
// only observes until something actually goes wrong.
TEST(RobustnessTest, GuardDoesNotPerturbHealthyTraining) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 15).ValueOrDie();
  double f1s[2];
  for (int i = 0; i < 2; ++i) {
    ExperimentScale s = scale;
    s.model.guard.enabled = i == 0;
    auto model = BuildModel(ExtractorKind::kLM, s, false, 61).ValueOrDie();
    f1s[i] = RunSingleDa(AlignMethod::kMMD, s, task, &model)
                 .ValueOrDie()
                 .test_f1;
  }
  EXPECT_DOUBLE_EQ(f1s[0], f1s[1]);
}

// Periodic durable checkpoints are written, CRC-valid, and loadable.
TEST(RobustnessTest, PeriodicCheckpointsAreDurableAndValid) {
  ExperimentScale scale = TinyScale();
  const std::string dir = MakeTempDir("robustness_ckpt_periodic");
  scale.model.guard.checkpoint_dir = dir;
  scale.model.guard.checkpoint_every = 2;

  auto task = BuildDaTask("FZ", "ZY", scale, 16).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 71).ValueOrDie();
  auto outcome =
      RunSingleDa(AlignMethod::kMMD, scale, task, &model).ValueOrDie();
  ASSERT_EQ(outcome.train.verdict, GuardVerdict::kHealthy);

  // Pre-adaptation + periodic last-good + best spill all exist and load.
  for (const std::string name :
       {std::string("pre_adaptation_MMD.bin"), std::string("last_good_MMD.bin"),
        std::string("best_MMD.bin")}) {
    auto loaded = LoadTensors(dir + "/" + name);
    EXPECT_TRUE(loaded.ok()) << name << ": " << loaded.status().ToString();
    EXPECT_FALSE(loaded.ValueOrDie().empty()) << name;
  }
}

// Run() surfaces invalid inputs as Status errors instead of crashing.
TEST(RobustnessTest, RunRejectsInvalidInputsWithStatus) {
  const ExperimentScale scale = TinyScale();
  auto task = BuildDaTask("FZ", "ZY", scale, 17).ValueOrDie();
  auto model = BuildModel(ExtractorKind::kLM, scale, false, 81).ValueOrDie();
  DaTrainer trainer(AlignMethod::kMMD, scale.model, model.extractor.get(),
                    model.matcher.get());
  data::ERDataset empty;
  EXPECT_FALSE(trainer.Run(empty, task.target_unlabeled, task.target_valid)
                   .ok());
  EXPECT_FALSE(trainer.Run(task.source, task.target_unlabeled, empty).ok());
  EXPECT_FALSE(trainer.Run(task.source, empty, task.target_valid).ok());
}

}  // namespace
}  // namespace dader::core
