// Release-mode performance guard for the sharded serving layer.
//
// Closed-loop throughput on a repeat-heavy workload: a 4-shard service
// with the feature cache and adaptive batching enabled must sustain at
// least 2x the throughput of a single shard with neither (the pre-sharding
// configuration). On this repo's reference machines the win comes from the
// feature cache — repeat pairs skip the extractor F, which dominates the
// forward cost, and only re-run the cheap matcher head M — so the bound
// holds even on a single core where parallel shard forwards cannot help.
// Armed only under DADER_PERF_ENFORCE (Release, no sanitizers); skips
// elsewhere. Run with `ctest -L perf`.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/guard.h"
#include "gtest/gtest.h"
#include "serve/sharded_service.h"

namespace dader::serve {
namespace {

using Clock = std::chrono::steady_clock;

core::DaderConfig PerfModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, PerfModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

// Repeat-heavy stream: a small pool of unique pairs asked over and over,
// the shape of a dedup service sitting behind a blocking stage that keeps
// surfacing the same candidate pairs.
std::vector<MatchRequest> RepeatHeavyWorkload(int total) {
  const int unique = 12;
  std::vector<MatchRequest> pool;
  for (int i = 0; i < unique; ++i) {
    MatchRequest request;
    request.a = data::Record(
        {"catalog item model " + std::to_string(i) + " deluxe", "10"});
    request.b = data::Record(
        {"Catalog Item model " + std::to_string(i), "10"});
    pool.push_back(std::move(request));
  }
  std::vector<MatchRequest> stream;
  stream.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    stream.push_back(pool[static_cast<size_t>(i) % pool.size()]);
  }
  return stream;
}

std::unique_ptr<ShardedMatchService> MakeService(int num_shards,
                                                 bool cache_and_adaptive) {
  ShardedServeConfig config;
  config.num_shards = num_shards;
  config.shard.queue_capacity = 512;
  config.shard.max_batch = 8;
  config.shard.batch_wait_ms = 0.2;
  config.shard.default_deadline_ms = 60000.0;
  if (cache_and_adaptive) {
    config.shard.feature_cache_capacity = 256;
    config.shard.adaptive.enabled = true;
    config.shard.adaptive.min_batch = 2;
    config.shard.adaptive.max_batch = 32;
  }
  auto service_or =
      ShardedMatchService::Create(config, data::Schema({"title", "price"}),
                                  data::Schema({"title", "price"}),
                                  MakeModel(/*seed=*/21));
  EXPECT_TRUE(service_or.ok()) << service_or.status().ToString();
  return std::move(service_or).ValueOrDie();
}

TEST(ServingPerfSmoke, FourShardsWithCacheAtLeastTwiceSingleShard) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int total = 300;
  const auto workload = RepeatHeavyWorkload(total);

  auto run_ms = [&](ShardedMatchService& service) {
    const auto t0 = Clock::now();
    const auto responses = service.MatchBatch(workload);
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    for (const MatchResponse& r : responses) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    }
    return ms.count();
  };

  // Best-of-3 per configuration to shrug off scheduler noise. The cached
  // service keeps its cache across reps, which is the steady state the
  // guard is about; the baseline has no cache, so its reps are identical.
  auto best_of = [&](ShardedMatchService& service) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) best = std::min(best, run_ms(service));
    return best;
  };

  auto baseline = MakeService(1, /*cache_and_adaptive=*/false);
  auto sharded = MakeService(4, /*cache_and_adaptive=*/true);
  const double baseline_ms = best_of(*baseline);
  const double sharded_ms = best_of(*sharded);
  const ServeStats stats = sharded->stats();
  baseline->Stop();
  sharded->Stop();

  RecordProperty("single_shard_ms", std::to_string(baseline_ms));
  RecordProperty("four_shard_cached_ms", std::to_string(sharded_ms));
  RecordProperty("cache_hits", std::to_string(stats.cache_hits));
  EXPECT_GT(stats.cache_hits, 0) << "repeat-heavy workload never hit the "
                                    "feature cache; the guard is vacuous";
  EXPECT_LE(sharded_ms * 2.0, baseline_ms)
      << "4-shard cached serving is only " << baseline_ms / sharded_ms
      << "x the single-shard baseline (" << sharded_ms << "ms vs "
      << baseline_ms << "ms for " << total << " requests), expected >= 2x";
#endif
}

}  // namespace
}  // namespace dader::serve
