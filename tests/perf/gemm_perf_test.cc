// Release-mode performance guards for the dispatched GEMM layer.
//
// Guards, canonical 256x256x256 unless noted:
//   * the kernel layer is never slower than the naive triple loop — at
//     256^3 and across every shape bench_gemm tracks;
//   * a 2-thread pool never makes 256^3 slower than 1-thread (auto
//     thresholds), and actually scales >= 1.5x when the host has >= 2
//     cores to scale onto (skipped with a reason otherwise — a
//     single-core container resolves both pools to the same serial plan);
//   * the batch-strided direct path keeps the attention-context batch
//     >= 2x over the packed-only path it replaced (the PR-8 behavior,
//     reachable via GemmForcePath::kBlocked).
//
// Assertions are armed only when CMake defines DADER_PERF_ENFORCE
// (Release build, no sanitizers); in Debug or sanitizer builds timing
// comparisons are meaningless, so the tests skip. Run with `ctest -L perf`.

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

using Clock = std::chrono::steady_clock;

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    if (ms.count() < best) best = ms.count();
  }
  return best;
}

TEST(GemmPerfSmoke, BlockedNotSlowerThanNaiveAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t n = 256;
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  // Best-of-5 to shrug off scheduler noise; single-thread on both sides.
  const double naive_ms = BestOfMs(5, [&] {
    gemm::NaiveGemmNN(n, n, n, a.data(), b.data(), c.data());
  });
  const double blocked_ms = BestOfMs(5, [&] {
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data());
  });

  RecordProperty("naive_ms", std::to_string(naive_ms));
  RecordProperty("blocked_ms", std::to_string(blocked_ms));
  EXPECT_LE(blocked_ms, naive_ms)
      << "blocked GEMM regressed below the naive baseline at 256^3: "
      << blocked_ms << "ms vs " << naive_ms << "ms";
#endif
}

// Guards the thread-scaling regression first recorded in BENCH_gemm.json
// (2 threads = 0.88x of single-thread at 256^3): with the auto-dispatch
// gates (parallel_min_flops + min_flops_per_task + hardware-concurrency
// cap), handing GemmNN a 2-thread pool must never make 256^3 slower than
// the 1-thread pool. On narrow machines both sizes resolve to the same
// serial plan, so the ratio is 1.0 up to timer noise; the 5% slack absorbs
// exactly that noise, nothing more.
TEST(GemmPerfSmoke, TwoThreadPoolNotSlowerAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t n = 256;
  std::mt19937 rng(43);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  ThreadPool pool1(1), pool2(2);
  auto run_with = [&](ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data(), options);
  };
  // Interleave the reps (1t, 2t, 1t, 2t, ...) so ambient scheduler drift
  // in the container lands on both configurations alike; back-to-back
  // best-of blocks were measurably skewed by which block ran during a
  // noisy slice.
  double one_ms = 1e300, two_ms = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    one_ms = std::min(one_ms, BestOfMs(1, [&] { run_with(&pool1); }));
    two_ms = std::min(two_ms, BestOfMs(1, [&] { run_with(&pool2); }));
  }

  RecordProperty("one_thread_ms", std::to_string(one_ms));
  RecordProperty("two_thread_ms", std::to_string(two_ms));
  EXPECT_LE(two_ms, one_ms * 1.05)
      << "2-thread pool regressed 256^3 GEMM: " << two_ms << "ms vs "
      << one_ms << "ms single-thread (speedup "
      << one_ms / two_ms << "x, expected >= 1.0x)";
#endif
}

// The 2D (M x N) cell grid must actually buy parallel speedup where
// parallelism exists: >= 1.5x from a 2-thread pool at 256^3. Forcing the
// fan-out past the auto gates is deliberate here — the point is the
// partitioning quality, not the dispatch policy (the test above owns
// "never slower"). Only meaningful with a second core to scale onto.
TEST(GemmPerfSmoke, TwoThreadsScaleAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) {
    GTEST_SKIP() << "host reports " << hw
                 << " hardware thread(s); 2-thread scaling cannot be "
                    "demonstrated on a single-core machine";
  }
  const int64_t n = 256;
  std::mt19937 rng(44);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  ThreadPool pool1(1), pool2(2);
  auto run_with = [&](ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    // Force the cell fan-out so pool width is the only variable.
    options.parallel_min_flops = 1;
    options.min_flops_per_task = 0;
    options.respect_hardware_concurrency = false;
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data(), options);
  };
  double one_ms = 1e300, two_ms = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    one_ms = std::min(one_ms, BestOfMs(1, [&] { run_with(&pool1); }));
    two_ms = std::min(two_ms, BestOfMs(1, [&] { run_with(&pool2); }));
  }

  RecordProperty("one_thread_ms", std::to_string(one_ms));
  RecordProperty("two_thread_ms", std::to_string(two_ms));
  EXPECT_LE(two_ms * 1.5, one_ms)
      << "2-thread 256^3 GEMM below the 1.5x scaling floor: " << two_ms
      << "ms vs " << one_ms << "ms single-thread (speedup " << one_ms / two_ms
      << "x)";
#endif
}

// The batch-strided direct small-GEMM path vs the packed-only path it
// replaced: the attention-context batch (128 x 64x16x64, the shape that
// used to plateau at 1.7x naive) must hold >= 2x over forcing every
// element through the blocked kernel. Both sides run in-process on the
// same machine, so the floor is host-independent.
TEST(GemmPerfSmoke, BatchedAttnCtxTwiceForcedBlocked) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t bsz = 128, m = 64, n = 16, k = 64;
  std::mt19937 rng(45);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(bsz * m * k));
  std::vector<float> b(static_cast<size_t>(bsz * k * n));
  std::vector<float> c(static_cast<size_t>(bsz * m * n), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  gemm::GemmOptions blocked;
  blocked.force_path = gemm::GemmForcePath::kBlocked;
  double dispatch_ms = 1e300, blocked_ms = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    dispatch_ms = std::min(dispatch_ms, BestOfMs(1, [&] {
      gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), c.data());
    }));
    blocked_ms = std::min(blocked_ms, BestOfMs(1, [&] {
      gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), c.data(), blocked);
    }));
  }

  RecordProperty("dispatch_ms", std::to_string(dispatch_ms));
  RecordProperty("forced_blocked_ms", std::to_string(blocked_ms));
  EXPECT_LE(dispatch_ms * 2.0, blocked_ms)
      << "batched attn_ctx dispatch below the 2x floor over the packed-only "
         "path: "
      << dispatch_ms << "ms vs " << blocked_ms << "ms (ratio "
      << blocked_ms / dispatch_ms << "x)";
#endif
}

// Every shape bench_gemm tracks must go through the dispatched layer at
// least as fast as the naive loops (5% slack for timer noise on the
// sub-microsecond shapes). This is the guard that caught the matcher-head
// 0.98x regression: a dispatch cutoff that routes a shape to the wrong
// tier shows up here before it ships.
TEST(GemmPerfSmoke, NoBenchShapeSlowerThanNaive) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  enum class V { kNN, kNT, kTN };
  struct Shape {
    const char* name;
    V v;
    int64_t bsz, m, n, k;
  };
  // Mirrors bench/bench_gemm.cc kCases.
  const Shape shapes[] = {
      {"linear_qkv", V::kNN, 1, 2048, 64, 64},
      {"linear_qkv_dA", V::kNT, 1, 2048, 64, 64},
      {"linear_qkv_dB", V::kTN, 1, 64, 64, 2048},
      {"ffn_up", V::kNN, 1, 2048, 128, 64},
      {"ffn_down", V::kNN, 1, 2048, 64, 128},
      {"attn_scores", V::kNT, 128, 64, 64, 16},
      {"attn_ctx", V::kNN, 128, 64, 16, 64},
      {"gru_step", V::kNN, 1, 32, 144, 112},
      {"matcher_head", V::kNN, 1, 32, 2, 64},
      {"square_256", V::kNN, 1, 256, 256, 256},
  };
  std::mt19937 rng(46);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (const Shape& s : shapes) {
    std::vector<float> a(static_cast<size_t>(s.bsz * s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.bsz * s.k * s.n));
    std::vector<float> c(static_cast<size_t>(s.bsz * s.m * s.n), 0.0f);
    for (auto& x : a) x = dist(rng);
    for (auto& x : b) x = dist(rng);
    auto naive = [&] {
      for (int64_t i = 0; i < s.bsz; ++i) {
        const float* ai = a.data() + i * s.m * s.k;
        const float* bi = b.data() + i * s.k * s.n;
        float* ci = c.data() + i * s.m * s.n;
        switch (s.v) {
          case V::kNN: gemm::NaiveGemmNN(s.m, s.n, s.k, ai, bi, ci); break;
          case V::kNT: gemm::NaiveGemmNT(s.m, s.n, s.k, ai, bi, ci); break;
          case V::kTN: gemm::NaiveGemmTN(s.m, s.n, s.k, ai, bi, ci); break;
        }
      }
    };
    auto dispatched = [&] {
      switch (s.v) {
        case V::kNN:
          gemm::BatchGemmNN(s.bsz, s.m, s.n, s.k, a.data(), b.data(),
                            c.data());
          break;
        case V::kNT:
          gemm::BatchGemmNT(s.bsz, s.m, s.n, s.k, a.data(), b.data(),
                            c.data());
          break;
        case V::kTN:
          gemm::BatchGemmTN(s.bsz, s.m, s.n, s.k, a.data(), b.data(),
                            c.data());
          break;
      }
    };
    double naive_ms = 1e300, dispatch_ms = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
      naive_ms = std::min(naive_ms, BestOfMs(1, naive));
      dispatch_ms = std::min(dispatch_ms, BestOfMs(1, dispatched));
    }
    EXPECT_LE(dispatch_ms, naive_ms * 1.05)
        << s.name << " dispatched slower than naive: " << dispatch_ms
        << "ms vs " << naive_ms << "ms";
  }
#endif
}

}  // namespace
}  // namespace dader
