// Release-mode performance guard for the blocked GEMM layer.
//
// Asserts that the cache-blocked kernel is not slower than the naive
// triple loop at the canonical 256x256x256 size. The assertion is armed
// only when CMake defines DADER_PERF_ENFORCE (Release build, no
// sanitizers); in Debug or sanitizer builds timing comparisons are
// meaningless, so the test skips. Run with `ctest -L perf`.

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

using Clock = std::chrono::steady_clock;

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    if (ms.count() < best) best = ms.count();
  }
  return best;
}

TEST(GemmPerfSmoke, BlockedNotSlowerThanNaiveAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t n = 256;
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  // Best-of-5 to shrug off scheduler noise; single-thread on both sides.
  const double naive_ms = BestOfMs(5, [&] {
    gemm::NaiveGemmNN(n, n, n, a.data(), b.data(), c.data());
  });
  const double blocked_ms = BestOfMs(5, [&] {
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data());
  });

  RecordProperty("naive_ms", std::to_string(naive_ms));
  RecordProperty("blocked_ms", std::to_string(blocked_ms));
  EXPECT_LE(blocked_ms, naive_ms)
      << "blocked GEMM regressed below the naive baseline at 256^3: "
      << blocked_ms << "ms vs " << naive_ms << "ms";
#endif
}

// Guards the thread-scaling regression first recorded in BENCH_gemm.json
// (2 threads = 0.88x of single-thread at 256^3): with the auto-dispatch
// gates (parallel_min_flops + min_flops_per_task + hardware-concurrency
// cap), handing GemmNN a 2-thread pool must never make 256^3 slower than
// the 1-thread pool. On narrow machines both sizes resolve to the same
// serial plan, so the ratio is 1.0 up to timer noise; the 5% slack absorbs
// exactly that noise, nothing more.
TEST(GemmPerfSmoke, TwoThreadPoolNotSlowerAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t n = 256;
  std::mt19937 rng(43);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  ThreadPool pool1(1), pool2(2);
  auto run_with = [&](ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data(), options);
  };
  // Interleave the reps (1t, 2t, 1t, 2t, ...) so ambient scheduler drift
  // in the container lands on both configurations alike; back-to-back
  // best-of blocks were measurably skewed by which block ran during a
  // noisy slice.
  double one_ms = 1e300, two_ms = 1e300;
  for (int rep = 0; rep < 9; ++rep) {
    one_ms = std::min(one_ms, BestOfMs(1, [&] { run_with(&pool1); }));
    two_ms = std::min(two_ms, BestOfMs(1, [&] { run_with(&pool2); }));
  }

  RecordProperty("one_thread_ms", std::to_string(one_ms));
  RecordProperty("two_thread_ms", std::to_string(two_ms));
  EXPECT_LE(two_ms, one_ms * 1.05)
      << "2-thread pool regressed 256^3 GEMM: " << two_ms << "ms vs "
      << one_ms << "ms single-thread (speedup "
      << one_ms / two_ms << "x, expected >= 1.0x)";
#endif
}

}  // namespace
}  // namespace dader
