// Release-mode performance guard for the blocked GEMM layer.
//
// Asserts that the cache-blocked kernel is not slower than the naive
// triple loop at the canonical 256x256x256 size. The assertion is armed
// only when CMake defines DADER_PERF_ENFORCE (Release build, no
// sanitizers); in Debug or sanitizer builds timing comparisons are
// meaningless, so the test skips. Run with `ctest -L perf`.

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/gemm.h"

namespace dader {
namespace {

using Clock = std::chrono::steady_clock;

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    if (ms.count() < best) best = ms.count();
  }
  return best;
}

TEST(GemmPerfSmoke, BlockedNotSlowerThanNaiveAt256) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  const int64_t n = 256;
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a.size(), 0.0f);
  for (auto& x : a) x = dist(rng);
  for (auto& x : b) x = dist(rng);

  // Best-of-5 to shrug off scheduler noise; single-thread on both sides.
  const double naive_ms = BestOfMs(5, [&] {
    gemm::NaiveGemmNN(n, n, n, a.data(), b.data(), c.data());
  });
  const double blocked_ms = BestOfMs(5, [&] {
    gemm::GemmNN(n, n, n, a.data(), b.data(), c.data());
  });

  RecordProperty("naive_ms", std::to_string(naive_ms));
  RecordProperty("blocked_ms", std::to_string(blocked_ms));
  EXPECT_LE(blocked_ms, naive_ms)
      << "blocked GEMM regressed below the naive baseline at 256^3: "
      << blocked_ms << "ms vs " << naive_ms << "ms";
#endif
}

}  // namespace
}  // namespace dader
