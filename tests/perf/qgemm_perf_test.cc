// Release-mode performance guards for the int8 quantized path.
//
// Guards:
//   * the dispatched int8 GEMM is >= 2x the dispatched fp32 GEMM on the
//     serving-model Linear shapes (qkv / ffn at serving batch sizes) —
//     enforced on the AVX-512VNNI tier, where vpdpbusd quadruples the
//     per-instruction MAC density over fp32 FMA. On hosts without VNNI the
//     maddubs tiers land near ~1.3x fp32 (the int16 pair step halves their
//     density), which funds a quality win (cheaper serving at equal
//     accuracy) but not a 2x floor, so the guard skips with that reason;
//   * end-to-end quantized serving sustains >= 1.5x the fp32 throughput of
//     the same service on an uncached unique-pair workload (the
//     Linear-dominated hidden-64 serving model; see bench_serving).
//
// Armed only under DADER_PERF_ENFORCE (Release, no sanitizers); skips
// elsewhere. Run with `ctest -L perf`.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/guard.h"
#include "gtest/gtest.h"
#include "serve/match_service.h"
#include "tensor/cpu_dispatch.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"

namespace dader {
namespace {

using Clock = std::chrono::steady_clock;

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    if (ms.count() < best) best = ms.count();
  }
  return best;
}

bool VnniTierActive() {
  const cpu::QGemmKernels& kk = cpu::ActiveQKernels();
  return kk.isa == cpu::Isa::kAvx512 && kk.fast_is_exact &&
         cpu::HostSupportsVnni();
}

TEST(QGemmPerfSmoke, Int8TwiceFp32OnServingShapesWithVnni) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  if (!VnniTierActive()) {
    GTEST_SKIP() << "int8 >= 2x fp32 requires the AVX-512VNNI tier (host isa: "
                 << cpu::IsaName(cpu::ActiveQKernels().isa)
                 << ", vnni=" << (cpu::HostSupportsVnni() ? "yes" : "no")
                 << "); the maddubs tiers target parity-or-better, not 2x";
  }
  struct Shape {
    const char* name;
    int64_t m, n, k;
    bool enforce;
  };
  // The serving model's Linear layers at serving batch sizes: 8 pairs x 32
  // tokens through a hidden-64 transformer (see bench_serving). The 2x
  // floor binds on these; square_256 is recorded for cross-reference with
  // the fp32 guards but not enforced — it is not a serving shape, and the
  // measured ratio hovers right at 2x there (the pack step amortizes worse
  // as k grows past the serving dims).
  const Shape shapes[] = {
      {"serve_qkv", 256, 64, 64, true},
      {"serve_ffn_up", 256, 128, 64, true},
      {"serve_ffn_down", 256, 64, 128, true},
      {"square_256", 256, 256, 256, false},
  };
  std::mt19937 rng(47);
  for (const Shape& s : shapes) {
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> fa(static_cast<size_t>(s.m * s.k));
    std::vector<float> fb(static_cast<size_t>(s.k * s.n));
    std::vector<float> fc(static_cast<size_t>(s.m * s.n), 0.0f);
    for (auto& x : fa) x = dist(rng);
    for (auto& x : fb) x = dist(rng);

    const int64_t lda = qgemm::PaddedLda(s.k);
    std::uniform_int_distribution<int> adist(0, 255), bdist(-127, 127);
    std::vector<uint8_t> qa(static_cast<size_t>(s.m * lda), 0);
    std::vector<int8_t> qb(static_cast<size_t>(s.k * s.n));
    std::vector<int32_t> qc(static_cast<size_t>(s.m * s.n));
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t p = 0; p < s.k; ++p) {
        qa[i * lda + p] = static_cast<uint8_t>(adist(rng));
      }
    }
    for (auto& x : qb) x = static_cast<int8_t>(bdist(rng));
    const int32_t bound = qgemm::MaddubsPairBound(qb.data(), s.k, s.n);

    // One call is ~10us on these shapes — too close to the clock/scheduler
    // noise floor to time alone. Each rep times a block of kInner calls
    // and the best block is kept, interleaving fp32/int8 so ambient drift
    // lands on both alike.
    constexpr int kInner = 16;
    double fp32_ms = 1e300, int8_ms = 1e300;
    for (int rep = 0; rep < 15; ++rep) {
      fp32_ms = std::min(fp32_ms, BestOfMs(1, [&] {
        for (int it = 0; it < kInner; ++it) {
          gemm::GemmNN(s.m, s.n, s.k, fa.data(), fb.data(), fc.data());
        }
      }) / kInner);
      int8_ms = std::min(int8_ms, BestOfMs(1, [&] {
        for (int it = 0; it < kInner; ++it) {
          qgemm::QGemmNN(s.m, s.n, s.k, qa.data(), lda, qb.data(), qc.data(),
                         255, bound);
        }
      }) / kInner);
    }
    RecordProperty(std::string(s.name) + "_fp32_ms", std::to_string(fp32_ms));
    RecordProperty(std::string(s.name) + "_int8_ms", std::to_string(int8_ms));
    if (s.enforce) {
      EXPECT_LE(int8_ms * 2.0, fp32_ms)
          << s.name << " int8 GEMM below the 2x floor over fp32: " << int8_ms
          << "ms vs " << fp32_ms << "ms (ratio " << fp32_ms / int8_ms << "x)";
    }
  }
#endif
}

core::DaderConfig ServingModelConfig() {
  // Linear-dominated serving model: hidden 64 / ffn 128 puts most forward
  // FLOPs in the layers the int8 path accelerates.
  core::DaderConfig c;
  c.vocab_size = 1024;
  c.max_len = 32;
  c.hidden_dim = 64;
  c.num_heads = 2;
  c.num_layers = 2;
  c.ffn_dim = 128;
  c.rnn_hidden = 16;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeServingModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, ServingModelConfig(), seed);
  model.matcher = std::make_unique<core::Matcher>(
      model.extractor->feature_dim(), seed + 1);
  return model;
}

data::ERDataset UniquePairs(const data::Schema& schema, int count,
                            const char* tag) {
  data::ERDataset pairs("perf-pairs", "serve", schema, schema);
  for (int i = 0; i < count; ++i) {
    pairs.AddPair({data::Record({std::string(tag) + " widget model " +
                                     std::to_string(i) + " pro edition",
                                 std::to_string(i)}),
                   data::Record({std::string(tag) + " widget model " +
                                     std::to_string(i),
                                 std::to_string(i)}),
                   /*label=*/-1});
  }
  return pairs;
}

TEST(QGemmPerfSmoke, QuantizedServingAtLeast1p5xFp32) {
#ifndef DADER_PERF_ENFORCE
  GTEST_SKIP() << "perf enforcement requires a Release, sanitizer-free build";
#else
  if (!VnniTierActive()) {
    GTEST_SKIP() << "the 1.5x serving floor presumes the VNNI int8 tier "
                    "(host isa: "
                 << cpu::IsaName(cpu::ActiveQKernels().isa)
                 << ", vnni=" << (cpu::HostSupportsVnni() ? "yes" : "no")
                 << ")";
  }
  const data::Schema schema({"title", "price"});
  const data::ERDataset calib = UniquePairs(schema, 48, "calib");
  const data::ERDataset workload_src = UniquePairs(schema, 96, "serve");

  std::vector<serve::MatchRequest> workload;
  for (const auto& pair : workload_src.pairs()) {
    serve::MatchRequest request;
    request.a = pair.a;
    request.b = pair.b;
    workload.push_back(std::move(request));
  }

  auto run_ms = [&](serve::MatchService& service) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      const auto responses = service.MatchBatch(workload);
      const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
      for (const auto& r : responses) {
        EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      }
      best = std::min(best, ms.count());
    }
    return best;
  };

  serve::ServeConfig config;
  config.queue_capacity = 512;
  config.max_batch = 8;
  config.batch_wait_ms = 0.2;
  config.default_deadline_ms = 120000.0;

  double fp32_ms = 0.0, int8_ms = 0.0;
  {
    serve::MatchService fp32_service(config, schema, schema,
                                     MakeServingModel(/*seed=*/31));
    fp32_ms = run_ms(fp32_service);
    fp32_service.Stop();
  }
  {
    serve::ServeConfig qconfig = config;
    qconfig.quantize = true;
    qconfig.quant_calib = &calib;
    // Speed guard, not an accuracy gate: the untrained model's probabilities
    // sit near 0.5, where argmax agreement is a coin flip. The quant suite
    // owns the >= 99% agreement bound on trained models.
    qconfig.quant_min_agreement = 0.0;
    serve::MatchService int8_service(qconfig, schema, schema,
                                     MakeServingModel(/*seed=*/31));
    ASSERT_TRUE(int8_service.primary_quantized())
        << "quantization did not engage; the comparison is vacuous";
    int8_ms = run_ms(int8_service);
    int8_service.Stop();
  }

  RecordProperty("fp32_ms", std::to_string(fp32_ms));
  RecordProperty("int8_ms", std::to_string(int8_ms));
  EXPECT_LE(int8_ms * 1.5, fp32_ms)
      << "quantized serving is only " << fp32_ms / int8_ms
      << "x fp32 (" << int8_ms << "ms vs " << fp32_ms << "ms), expected >= "
         "1.5x";
#endif
}

}  // namespace
}  // namespace dader
