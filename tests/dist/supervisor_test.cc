// Process-isolated workers: the supervisor fork/execs the real
// dader_worker binary, so these tests exercise kill(2) on an OS process
// the test harness does not share an address space with.
//
// Skipped under TSan: fork() from a multithreaded TSan runtime is
// unsupported (the sanitizer's interceptors do not survive the exec), and
// the same scenarios run in the plain build of `ctest -L dist`.

#include "dist/supervisor.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "core/feature_extractor.h"
#include "dist/coordinator.h"
#include "dist/rpc.h"
#include "dist/wire.h"
#include "serve/match_service.h"

#if defined(__SANITIZE_THREAD__)
#define DADER_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DADER_UNDER_TSAN 1
#endif
#endif

#ifndef DADER_WORKER_BIN
#error "build must define DADER_WORKER_BIN (see tests/CMakeLists.txt)"
#endif

namespace dader::dist {
namespace {

#if defined(DADER_UNDER_TSAN)
#define SKIP_UNDER_TSAN()                                                  \
  GTEST_SKIP() << "fork/exec of dader_worker is unsupported under TSan; " \
                  "this scenario runs in the plain dist suite"
#else
#define SKIP_UNDER_TSAN() (void)0
#endif

core::DaderConfig TinyModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

// The same seeded model the dader_worker binary builds from --seed=21:
// seeded construction is bit-deterministic, which is what lets replicas
// agree across a process boundary without shipping weights.
std::unique_ptr<serve::MatchService> ReferenceService() {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, TinyModelConfig(), 21);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), 22);
  serve::ServeConfig config;
  config.default_deadline_ms = 10000.0;
  data::Schema schema({"title", "price"});
  return std::make_unique<serve::MatchService>(config, schema, schema,
                                               std::move(model));
}

serve::MatchRequest MakeRequest(const std::string& a, const std::string& b) {
  serve::MatchRequest request;
  request.a = data::Record({a, "10"});
  request.b = data::Record({b, "10"});
  return request;
}

WorkerSupervisorConfig TestSupervisorConfig() {
  WorkerSupervisorConfig config;
  config.binary_path = DADER_WORKER_BIN;
  config.model_seed = 21;
  config.restart_backoff.base_backoff_ms = 5.0;
  config.restart_backoff.max_backoff_ms = 50.0;
  return config;
}

RpcChannelConfig TestChannel() {
  RpcChannelConfig config;
  config.default_deadline_ms = 10000.0;
  config.reconnect.max_attempts = 8;
  config.reconnect.base_backoff_ms = 5.0;
  config.reconnect.max_backoff_ms = 100.0;
  return config;
}

serve::MatchResponse CallMatch(RpcChannel& channel,
                               const serve::MatchRequest& request) {
  auto reply = channel.Call(FrameType::kMatch, EncodeMatchRequest(request));
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  if (!reply.ok()) return serve::MatchResponse{};
  auto response = DecodeMatchResponse(reply.ValueOrDie().payload);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return response.ok() ? std::move(response).ValueOrDie()
                       : serve::MatchResponse{};
}

TEST(SupervisorTest, SpawnedProcessServesBitIdenticalMatches) {
  SKIP_UNDER_TSAN();
  WorkerSupervisor supervisor(TestSupervisorConfig());
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.alive());
  ASSERT_GT(supervisor.port(), 0);
  ASSERT_GT(supervisor.pid(), 0);

  std::unique_ptr<serve::MatchService> reference = ReferenceService();
  RpcChannel channel(supervisor.port(), TestChannel());
  const auto request = MakeRequest("sony wh-1000xm4", "sony wh1000xm4");
  serve::MatchResponse over_wire = CallMatch(channel, request);
  serve::MatchResponse local = reference->Match(request);
  ASSERT_TRUE(over_wire.status.ok()) << over_wire.status.ToString();
  EXPECT_EQ(over_wire.label, local.label);
  EXPECT_EQ(over_wire.prob, local.prob)
      << "cross-process replica answered differently from the same seed";

  supervisor.Stop();
  EXPECT_FALSE(supervisor.alive());
}

TEST(SupervisorTest, KillRespawnsOnTheSamePortAndServesAgain) {
  SKIP_UNDER_TSAN();
  WorkerSupervisor supervisor(TestSupervisorConfig());
  ASSERT_TRUE(supervisor.Start().ok());
  const int port = supervisor.port();
  const pid_t first_pid = supervisor.pid();

  ASSERT_TRUE(supervisor.Kill().ok());
  // The monitor reaps and respawns with backoff; wait for the new child
  // (restarts() is bumped right after the handshake, so wait for both).
  for (int spin = 0;
       spin < 2000 && !(supervisor.alive() && supervisor.restarts() >= 1);
       ++spin) {
    usleep(5000);
  }
  ASSERT_TRUE(supervisor.alive()) << "monitor never respawned the child";
  EXPECT_EQ(supervisor.port(), port) << "respawn must pin the port";
  EXPECT_NE(supervisor.pid(), first_pid);
  EXPECT_GE(supervisor.restarts(), 1);

  RpcChannel channel(port, TestChannel());
  serve::MatchResponse response =
      CallMatch(channel, MakeRequest("canon eos r6 body", "canon eos r6"));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  supervisor.Stop();
}

TEST(SupervisorTest, CrashedProcessReentersTheFleetViaCanary) {
  SKIP_UNDER_TSAN();
  // auto_restart off: an immediate respawn would beat the heartbeat to the
  // DEAD verdict and the node would heal from SUSPECT, skipping the path
  // under test. The crash/down window is driven explicitly instead.
  WorkerSupervisorConfig sup_config = TestSupervisorConfig();
  sup_config.auto_restart = false;
  WorkerSupervisor supervisor(sup_config);
  ASSERT_TRUE(supervisor.Start().ok());

  CoordinatorConfig config;
  config.heartbeat_deadline_ms = 500.0;
  config.match_deadline_ms = 10000.0;
  config.canary_deadline_ms = 10000.0;
  config.membership.suspect_after_misses = 1;
  config.membership.dead_after_misses = 2;
  config.membership.readmit_canary_successes = 2;
  config.reconnect.max_attempts = 2;
  config.reconnect.base_backoff_ms = 1.0;
  config.reconnect.max_backoff_ms = 4.0;
  Coordinator coordinator(config, {supervisor.port()});

  coordinator.HeartbeatTick();
  ASSERT_EQ(coordinator.membership().state(0), NodeState::kAlive);

  // Crash the real process and wait until the monitor has reaped it.
  ASSERT_TRUE(supervisor.Kill().ok());
  for (int spin = 0; spin < 2000 && supervisor.pid() > 0; ++spin) {
    usleep(2000);
  }
  ASSERT_LE(supervisor.pid(), 0) << "crash was never reaped";
  for (int tick = 0;
       tick < 20 && coordinator.membership().state(0) != NodeState::kDead;
       ++tick) {
    coordinator.HeartbeatTick();
    usleep(2000);
  }
  EXPECT_EQ(coordinator.membership().state(0), NodeState::kDead);

  // Relaunch on the pinned port; re-admission must come back through
  // CANARY, not jump straight to ALIVE.
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.alive());
  bool saw_canary = false;
  for (int tick = 0;
       tick < 20 && coordinator.membership().state(0) != NodeState::kAlive;
       ++tick) {
    coordinator.HeartbeatTick();
    saw_canary |= coordinator.membership().state(0) == NodeState::kCanary;
    usleep(2000);
  }
  EXPECT_TRUE(saw_canary) << "re-admission skipped the canary gauntlet";
  EXPECT_EQ(coordinator.membership().state(0), NodeState::kAlive);
  coordinator.Stop();
  supervisor.Stop();
}

TEST(SupervisorTest, StopReapsTheChildNoOrphanSurvives) {
  SKIP_UNDER_TSAN();
  pid_t pid = -1;
  {
    WorkerSupervisor supervisor(TestSupervisorConfig());
    ASSERT_TRUE(supervisor.Start().ok());
    pid = supervisor.pid();
    ASSERT_GT(pid, 0);
    supervisor.Stop();
  }
  // The child must be gone *and reaped*: no process with that pid (or at
  // worst a recycled one that is not our child), and no zombie waiting.
  errno = 0;
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD) << "supervisor left an unreaped child behind";
  if (::kill(pid, 0) == 0) {
    FAIL() << "pid " << pid << " still running after Stop()";
  }
}

}  // namespace
}  // namespace dader::dist
