// Membership state-machine tests: pure event-sequence driving, no sockets,
// no clocks — the table's verdicts must depend only on the event order.

#include "dist/membership.h"

#include <gtest/gtest.h>

namespace dader::dist {
namespace {

MembershipConfig TestConfig() {
  MembershipConfig config;
  config.suspect_after_misses = 2;
  config.dead_after_misses = 4;
  config.readmit_canary_successes = 2;
  return config;
}

TEST(MembershipTest, StartsAllAliveAndRoutable) {
  MembershipTable table(3, TestConfig());
  EXPECT_EQ(table.num_nodes(), 3);
  EXPECT_EQ(table.num_routable(), 3);
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(table.state(node), NodeState::kAlive);
    EXPECT_TRUE(table.routable(node));
  }
}

TEST(MembershipTest, MissesWalkAliveThroughSuspectToDead) {
  MembershipTable table(2, TestConfig());
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive) << "one miss must not demote";
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kSuspect);
  // The SUSPECT-keeps-traffic rule: a flapping heartbeat must not
  // reshuffle the key space.
  EXPECT_TRUE(table.routable(0));
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kSuspect);
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kDead);
  EXPECT_FALSE(table.routable(0));
  EXPECT_EQ(table.RoutableNodes(), std::vector<int>{1});
  // The sibling never moved.
  EXPECT_EQ(table.state(1), NodeState::kAlive);
}

TEST(MembershipTest, SuccessResetsTheMissCount) {
  MembershipTable table(1, TestConfig());
  table.OnHeartbeatMiss(0);
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kSuspect);
  table.OnHeartbeatOk(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
  EXPECT_EQ(table.misses(0), 0);
  // The streak starts over: two fresh misses to reach SUSPECT again.
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
}

TEST(MembershipTest, DeadNodeMustEarnTrafficBackThroughCanary) {
  MembershipTable table(2, TestConfig());
  for (int i = 0; i < 4; ++i) table.OnHeartbeatMiss(0);
  ASSERT_EQ(table.state(0), NodeState::kDead);

  // Answering a heartbeat again starts the canary, not full traffic.
  table.OnHeartbeatOk(0);
  EXPECT_EQ(table.state(0), NodeState::kCanary);
  EXPECT_FALSE(table.routable(0)) << "canary node got traffic early";

  // More heartbeat successes alone never promote.
  table.OnHeartbeatOk(0);
  table.OnHeartbeatOk(0);
  EXPECT_EQ(table.state(0), NodeState::kCanary);

  table.OnCanaryOk(0);
  EXPECT_EQ(table.state(0), NodeState::kCanary) << "one success of two";
  table.OnCanaryOk(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
  EXPECT_TRUE(table.routable(0));
}

TEST(MembershipTest, CanaryFailureGoesStraightBackToDead) {
  MembershipTable table(1, TestConfig());
  for (int i = 0; i < 4; ++i) table.OnHeartbeatMiss(0);
  table.OnHeartbeatOk(0);
  ASSERT_EQ(table.state(0), NodeState::kCanary);
  table.OnCanaryOk(0);
  table.OnCanaryFailure(0);
  EXPECT_EQ(table.state(0), NodeState::kDead);

  // And the success streak reset with it: recovery needs a full fresh run.
  table.OnHeartbeatOk(0);
  ASSERT_EQ(table.state(0), NodeState::kCanary);
  table.OnCanaryOk(0);
  EXPECT_EQ(table.state(0), NodeState::kCanary);
  table.OnCanaryOk(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
}

TEST(MembershipTest, CanaryNodeThatStopsAnsweringDies) {
  MembershipTable table(1, TestConfig());
  for (int i = 0; i < 4; ++i) table.OnHeartbeatMiss(0);
  table.OnHeartbeatOk(0);
  ASSERT_EQ(table.state(0), NodeState::kCanary);
  table.OnHeartbeatMiss(0);
  EXPECT_EQ(table.state(0), NodeState::kDead)
      << "half-recovered nodes get no miss grace period";
}

TEST(MembershipTest, StaleCanaryResultsAreIgnored) {
  MembershipTable table(1, TestConfig());
  // Canary outcomes for a node that is not in kCanary are stale probes
  // from a previous incarnation and must not move the state machine.
  table.OnCanaryOk(0);
  table.OnCanaryFailure(0);
  EXPECT_EQ(table.state(0), NodeState::kAlive);
}

TEST(MembershipTest, DataPathMissesCountLikeHeartbeatMisses) {
  // The data path reports transport failures through OnHeartbeatMiss, so a
  // burst of failed calls can kill a node between ticks.
  MembershipTable table(2, TestConfig());
  for (int i = 0; i < 4; ++i) table.OnHeartbeatMiss(1);
  EXPECT_EQ(table.state(1), NodeState::kDead);
  EXPECT_EQ(table.num_routable(), 1);
}

}  // namespace
}  // namespace dader::dist
