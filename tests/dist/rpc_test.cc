// RPC transport tests over real loopback sockets: round trips, per-call
// deadlines against a silent server, reconnect after a server restart
// (node-crash + resurrection at the transport level), and handler-driven
// connection resets.

#include "dist/rpc.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>

#include "util/clock.h"

namespace dader::dist {
namespace {

RpcChannelConfig FastChannel() {
  RpcChannelConfig config;
  config.default_deadline_ms = 2000.0;
  config.reconnect.max_attempts = 4;
  config.reconnect.base_backoff_ms = 1.0;
  config.reconnect.max_backoff_ms = 8.0;
  return config;
}

// Echoes every frame back with the reply type bumped by one (ping -> pong).
bool EchoHandler(const Frame& frame, RpcServerConnection* conn) {
  Frame reply;
  reply.type = static_cast<FrameType>(static_cast<uint8_t>(frame.type) + 1);
  reply.request_id = frame.request_id;
  reply.payload = frame.payload;
  return conn->Send(reply).ok();
}

TEST(RpcTest, CallRoundTripsAndPreservesRequestIds) {
  RpcServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  RpcChannel channel(server.port(), FastChannel());
  for (int i = 0; i < 10; ++i) {
    auto reply = channel.Call(FrameType::kPing, "beat " + std::to_string(i));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply.ValueOrDie().type, FrameType::kPong);
    EXPECT_EQ(reply.ValueOrDie().payload, "beat " + std::to_string(i));
  }
  EXPECT_EQ(channel.reconnects(), 0);
  server.Stop();
}

TEST(RpcTest, DeadlineExpiresAgainstASilentServer) {
  // A handler that swallows everything: the node-hang shape.
  RpcServer server([](const Frame&, RpcServerConnection*) { return true; });
  ASSERT_TRUE(server.Start(0).ok());

  RpcChannel channel(server.port(), FastChannel());
  auto reply = channel.Call(FrameType::kPing, "", /*deadline_ms=*/50.0);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded)
      << reply.status().ToString();
  server.Stop();
}

TEST(RpcTest, ChannelReconnectsAcrossServerRestart) {
  auto server = std::make_unique<RpcServer>(EchoHandler);
  ASSERT_TRUE(server->Start(0).ok());
  const int port = server->port();

  RpcChannel channel(port, FastChannel());
  ASSERT_TRUE(channel.Call(FrameType::kPing, "before").ok());

  // Crash: while the server is down, calls fail without hanging.
  server->Stop();
  auto down = channel.Call(FrameType::kPing, "down", /*deadline_ms=*/100.0);
  EXPECT_FALSE(down.ok());

  // Resurrect on the same port: the next call reconnects by itself.
  server = std::make_unique<RpcServer>(EchoHandler);
  ASSERT_TRUE(server->Start(port).ok()) << "could not rebind " << port;
  auto after = channel.Call(FrameType::kPing, "after");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie().payload, "after");
  EXPECT_GE(channel.reconnects(), 1);
  server->Stop();
}

TEST(RpcTest, HandlerReturningFalseResetsTheConnection) {
  std::atomic<int> frames{0};
  RpcServer server([&frames](const Frame& frame, RpcServerConnection* conn) {
    if (frames.fetch_add(1) == 0) return false;  // reset the first caller
    return EchoHandler(frame, conn);
  });
  ASSERT_TRUE(server.Start(0).ok());

  RpcChannelConfig config = FastChannel();
  config.reconnect.max_attempts = 1;  // surface the reset, don't mask it
  RpcChannel one_shot(server.port(), config);
  auto reset = one_shot.Call(FrameType::kPing, "x", /*deadline_ms=*/500.0);
  EXPECT_FALSE(reset.ok());

  // A retrying channel rides through: reconnect + second attempt succeed.
  RpcChannel retrying(server.port(), FastChannel());
  auto ok = retrying.Call(FrameType::kPing, "y");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  server.Stop();
}

TEST(RpcTest, LateReplyIsDiscardedWithoutPoisoningTheConnection) {
  // First reply arrives after the caller's deadline; the connection is
  // healthy, just slow. The old behavior tore it down (and the reconnect
  // re-sent through a fresh socket); the fix keeps the socket, abandons
  // the request id, and discards the stale reply when it finally lands.
  std::atomic<int> frames{0};
  RpcServer server([&frames](const Frame& frame, RpcServerConnection* conn) {
    if (frames.fetch_add(1) == 0) {
      util::Clock::Real()->SleepForMs(300.0);
    }
    return EchoHandler(frame, conn);
  });
  ASSERT_TRUE(server.Start(0).ok());

  RpcChannel channel(server.port(), FastChannel());
  auto slow = channel.Call(FrameType::kPing, "slow", /*deadline_ms=*/50.0);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kDeadlineExceeded);

  // The next call must ride the SAME connection: the stale reply for the
  // abandoned id is skipped, the fresh reply is matched, nothing reconnects.
  auto next = channel.Call(FrameType::kPing, "next");
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next.ValueOrDie().payload, "next");
  EXPECT_EQ(next.ValueOrDie().type, FrameType::kPong);
  EXPECT_EQ(channel.late_replies(), 1);
  EXPECT_EQ(channel.reconnects(), 0)
      << "a healthy-but-slow connection was poisoned";
  server.Stop();
}

TEST(RpcTest, OversizedLengthPrefixIsRejectedNotBuffered) {
  RpcServer server(EchoHandler);
  ASSERT_TRUE(server.Start(0).ok());
  auto fd = ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  // Hand-roll a length prefix past the ceiling; the server must drop the
  // connection instead of trying to buffer 2 GiB.
  const unsigned char evil[] = {0xFF, 0xFF, 0xFF, 0x7F, 0x01};
  ASSERT_EQ(::send(fd.ValueOrDie(), evil, sizeof(evil), 0),
            static_cast<ssize_t>(sizeof(evil)));
  auto reply = RecvFrame(fd.ValueOrDie(), 2000.0);
  EXPECT_FALSE(reply.ok()) << "server answered an oversized frame";
  ::close(fd.ValueOrDie());
  server.Stop();
}

}  // namespace
}  // namespace dader::dist
