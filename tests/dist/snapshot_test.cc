// Durable coordinator state: snapshot save/load roundtrips, CRC rejection
// of flipped bits, journal append + replay, torn-tail detection, snapshot
// rotation with fallback to the previous generation (the kSnapshotTorn
// fault), and journal compaction across checkpoints.

#include "dist/snapshot.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/fault.h"

namespace dader::dist {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  // Scrub leftovers from a previous run so NotFound tests stay honest.
  for (const char* file :
       {"/state.snap", "/state.snap.prev", "/state.journal"}) {
    std::remove((dir + file).c_str());
  }
  return dir;
}

CoordinatorState SampleState() {
  CoordinatorState state;
  state.num_nodes = 4;
  state.replication_factor = 2;
  state.reload_epoch = 3;
  state.membership.resize(4);
  state.membership[0].state = NodeState::kAlive;
  state.membership[1].state = NodeState::kSuspect;
  state.membership[1].misses = 2;
  state.membership[2].state = NodeState::kDead;
  state.membership[2].misses = 5;
  state.membership[3].state = NodeState::kCanary;
  state.membership[3].canary_successes = 1;
  state.pending_reload.active = true;
  state.pending_reload.reload_epoch = 3;
  state.pending_reload.checkpoint_path = "/tmp/ckpt_v3";
  state.pending_reload.acked = {true, true, false, false};
  state.last_seq = 17;
  return state;
}

void ExpectSameState(const CoordinatorState& got, const CoordinatorState& want) {
  EXPECT_EQ(got.num_nodes, want.num_nodes);
  EXPECT_EQ(got.replication_factor, want.replication_factor);
  EXPECT_EQ(got.reload_epoch, want.reload_epoch);
  EXPECT_EQ(got.last_seq, want.last_seq);
  ASSERT_EQ(got.membership.size(), want.membership.size());
  for (size_t i = 0; i < want.membership.size(); ++i) {
    EXPECT_EQ(got.membership[i].state, want.membership[i].state) << "node " << i;
    EXPECT_EQ(got.membership[i].misses, want.membership[i].misses);
    EXPECT_EQ(got.membership[i].canary_successes,
              want.membership[i].canary_successes);
  }
  EXPECT_EQ(got.pending_reload.active, want.pending_reload.active);
  EXPECT_EQ(got.pending_reload.reload_epoch, want.pending_reload.reload_epoch);
  EXPECT_EQ(got.pending_reload.checkpoint_path,
            want.pending_reload.checkpoint_path);
  EXPECT_EQ(got.pending_reload.acked, want.pending_reload.acked);
}

TEST(SnapshotTest, SaveLoadRoundTripsIncludingPendingReload) {
  const std::string dir = FreshDir("snap_roundtrip");
  const std::string path = dir + "/state.snap";
  const CoordinatorState state = SampleState();
  ASSERT_TRUE(SaveCoordinatorSnapshot(path, state).ok());

  auto loaded = LoadCoordinatorSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameState(loaded.ValueOrDie(), state);
}

TEST(SnapshotTest, FlippedBitFailsTheCrcNeverAPartialState) {
  const std::string dir = FreshDir("snap_crc");
  const std::string path = dir + "/state.snap";
  ASSERT_TRUE(SaveCoordinatorSnapshot(path, SampleState()).ok());
  // Flip one payload byte past the header; only the CRC can catch this.
  ASSERT_TRUE(FaultInjector::CorruptByte(path, 20).ok());
  EXPECT_FALSE(LoadCoordinatorSnapshot(path).ok());
}

TEST(SnapshotTest, MissingSnapshotIsNotFound) {
  const std::string dir = FreshDir("snap_missing");
  EXPECT_FALSE(LoadCoordinatorSnapshot(dir + "/state.snap").ok());
}

TEST(JournalTest, AppendThenReplayRebuildsTheState) {
  const std::string dir = FreshDir("journal_replay");
  {
    CoordinatorJournal journal(dir);
    std::vector<NodeSnapshot> nodes(2);
    nodes[1].state = NodeState::kDead;
    nodes[1].misses = 3;
    ASSERT_TRUE(journal.AppendMembership(nodes).ok());
    ASSERT_TRUE(journal.AppendReloadStart(1, "/tmp/ckpt_a").ok());
    ASSERT_TRUE(journal.AppendReloadAck(1, 0).ok());
  }  // coordinator "dies" here; no snapshot was ever checkpointed

  CoordinatorJournal successor(dir);
  auto loaded = successor.Load(/*expected_nodes=*/2, /*expected_replication=*/1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const CoordinatorState& state = loaded.ValueOrDie();
  EXPECT_EQ(state.membership[1].state, NodeState::kDead);
  EXPECT_EQ(state.membership[1].misses, 3);
  EXPECT_EQ(state.reload_epoch, 1u);
  EXPECT_TRUE(state.pending_reload.active);
  EXPECT_EQ(state.pending_reload.checkpoint_path, "/tmp/ckpt_a");
  ASSERT_EQ(state.pending_reload.acked.size(), 2u);
  EXPECT_TRUE(state.pending_reload.acked[0]);
  EXPECT_FALSE(state.pending_reload.acked[1]);
}

TEST(JournalTest, ReloadEndClearsThePendingRollOnReplay) {
  const std::string dir = FreshDir("journal_end");
  {
    CoordinatorJournal journal(dir);
    ASSERT_TRUE(journal.AppendReloadStart(1, "/tmp/ckpt_a").ok());
    ASSERT_TRUE(journal.AppendReloadAck(1, 0).ok());
    ASSERT_TRUE(journal.AppendReloadAck(1, 1).ok());
    ASSERT_TRUE(journal.AppendReloadEnd(1, /*ok=*/true).ok());
  }
  CoordinatorJournal successor(dir);
  auto loaded = successor.Load(2, 1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.ValueOrDie().pending_reload.active);
  EXPECT_EQ(loaded.ValueOrDie().reload_epoch, 1u);
}

TEST(JournalTest, TornTailStopsReplayCleanlyKeepingThePrefix) {
  const std::string dir = FreshDir("journal_torn");
  {
    CoordinatorJournal journal(dir);
    std::vector<NodeSnapshot> nodes(2);
    nodes[0].state = NodeState::kSuspect;
    nodes[0].misses = 1;
    ASSERT_TRUE(journal.AppendMembership(nodes).ok());
    ASSERT_TRUE(journal.AppendReloadStart(1, "/tmp/ckpt_a").ok());
  }
  // Tear the last record mid-payload: a crash between write and flush.
  ASSERT_TRUE(FaultInjector::TruncateFile(dir + "/state.journal", 0.9).ok());
  CoordinatorJournal successor(dir);
  auto loaded = successor.Load(2, 1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The intact prefix survives; the torn reload-start record does not.
  EXPECT_EQ(loaded.ValueOrDie().membership[0].state, NodeState::kSuspect);
  EXPECT_FALSE(loaded.ValueOrDie().pending_reload.active);
}

TEST(JournalTest, FleetShapeMismatchIsRejected) {
  const std::string dir = FreshDir("journal_shape");
  {
    CoordinatorJournal journal(dir);
    ASSERT_TRUE(journal.Checkpoint(SampleState()).ok());  // 4 nodes, R=2
  }
  CoordinatorJournal successor(dir);
  EXPECT_FALSE(successor.Load(/*expected_nodes=*/8,
                              /*expected_replication=*/2).ok())
      << "resuming a different fleet's state must be refused";
}

TEST(JournalTest, CheckpointRotatesAndTornCurrentFallsBackToPrev) {
  const std::string dir = FreshDir("journal_fallback");
  FaultInjector fault;
  {
    CoordinatorJournal journal(dir, &fault);
    CoordinatorState gen1 = SampleState();
    gen1.reload_epoch = 1;
    gen1.pending_reload.active = false;
    ASSERT_TRUE(journal.Checkpoint(gen1).ok());  // becomes .prev next time

    // Arm the torn-snapshot fault for the second checkpoint only.
    FaultSpec spec;
    spec.kind = FaultKind::kSnapshotTorn;
    spec.step = 1;  // checkpoint ordinal 1 (the second one)
    fault.Arm(spec);

    CoordinatorState gen2 = SampleState();
    gen2.reload_epoch = 2;
    ASSERT_TRUE(journal.Checkpoint(gen2).ok());
    EXPECT_EQ(fault.hits(FaultKind::kSnapshotTorn), 1);
  }
  // The current snapshot is corrupt; load must fall back to the previous
  // generation (epoch 1) — never to an empty state.
  CoordinatorJournal successor(dir);
  auto loaded = successor.Load(4, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().reload_epoch, 1u);
}

TEST(JournalTest, CompactionKeepsRecordsThePrevGenerationNeeds) {
  const std::string dir = FreshDir("journal_compact");
  {
    CoordinatorJournal journal(dir);
    std::vector<NodeSnapshot> nodes(2);
    ASSERT_TRUE(journal.AppendMembership(nodes).ok());  // seq 1

    CoordinatorState ckpt;
    ckpt.num_nodes = 2;
    ckpt.replication_factor = 1;
    ckpt.membership = nodes;
    ASSERT_TRUE(journal.Checkpoint(ckpt).ok());

    // Post-checkpoint tail: these must survive compaction and replay.
    nodes[1].state = NodeState::kDead;
    nodes[1].misses = 4;
    ASSERT_TRUE(journal.AppendMembership(nodes).ok());

    CoordinatorState ckpt2 = ckpt;
    ckpt2.membership = nodes;
    ASSERT_TRUE(journal.Checkpoint(ckpt2).ok());
  }
  // Corrupt the *current* snapshot by hand: replay from .prev + journal
  // tail must still land on the post-checkpoint membership.
  ASSERT_TRUE(FaultInjector::CorruptByte(dir + "/state.snap", 20).ok());
  CoordinatorJournal successor(dir);
  auto loaded = successor.Load(2, 1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().membership[1].state, NodeState::kDead);
  EXPECT_EQ(loaded.ValueOrDie().membership[1].misses, 4);
}

TEST(JournalTest, FreshDirectoryIsNotFound) {
  const std::string dir = FreshDir("journal_fresh");
  CoordinatorJournal journal(dir);
  auto loaded = journal.Load(2, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dader::dist
