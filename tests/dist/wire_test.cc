// Wire-codec tests: frame and payload round trips, and rejection of every
// flavor of corrupt input a peer could ship.

#include "dist/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace dader::dist {
namespace {

TEST(WireFrameTest, RoundTripsEveryType) {
  for (uint8_t t = 1; t <= 8; ++t) {
    Frame frame;
    frame.type = static_cast<FrameType>(t);
    frame.request_id = 0xDEADBEEFCAFE0000ULL + t;
    frame.payload = std::string("payload-") + FrameTypeName(frame.type);
    const std::string encoded = EncodeFrame(frame);
    auto decoded = DecodeFrame(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.ValueOrDie().type, frame.type);
    EXPECT_EQ(decoded.ValueOrDie().request_id, frame.request_id);
    EXPECT_EQ(decoded.ValueOrDie().payload, frame.payload);
  }
}

TEST(WireFrameTest, RejectsCorruptFrames) {
  Frame frame;
  frame.type = FrameType::kMatch;
  frame.request_id = 7;
  frame.payload = "hello";
  const std::string good = EncodeFrame(frame);

  // Truncated body.
  EXPECT_FALSE(DecodeFrame(good.substr(0, good.size() - 1)).ok());
  // Unknown type byte (position 4, right after the length prefix).
  std::string bad_type = good;
  bad_type[4] = '\x7F';
  EXPECT_FALSE(DecodeFrame(bad_type).ok());
  // Length prefix pointing past the ceiling.
  std::string bad_len = good;
  bad_len[0] = '\xFF';
  bad_len[1] = '\xFF';
  bad_len[2] = '\xFF';
  bad_len[3] = '\x7F';
  EXPECT_FALSE(DecodeFrame(bad_len).ok());
  // Empty buffer.
  EXPECT_FALSE(DecodeFrame("").ok());
}

TEST(WireReaderTest, BoundsCheckedReadsNeverOverrun) {
  WireWriter w;
  w.PutU32(3);
  const std::string buf = w.Take();
  WireReader r(buf);
  auto u32 = r.GetU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(u32.ValueOrDie(), 3u);
  // Nothing left: every further read fails cleanly.
  EXPECT_FALSE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU64().ok());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(WireReaderTest, StringLengthIsCapped) {
  WireWriter w;
  w.PutU32(kMaxFrameBytes + 1);  // length prefix lies
  const std::string buf = w.Take();
  WireReader r(buf);
  EXPECT_FALSE(r.GetString().ok());
}

TEST(MatchCodecTest, RequestRoundTrip) {
  serve::MatchRequest request;
  request.a = data::Record({"sony wh-1000xm4", "199"});
  request.b = data::Record({"sony wh1000xm4 headphones", "205"});
  request.deadline_ms = 123.5;

  auto decoded = DecodeMatchRequest(EncodeMatchRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().a.values(), request.a.values());
  EXPECT_EQ(decoded.ValueOrDie().b.values(), request.b.values());
  EXPECT_EQ(decoded.ValueOrDie().deadline_ms, request.deadline_ms);
}

TEST(MatchCodecTest, ResponseRoundTripIncludingErrorStatus) {
  serve::MatchResponse response;
  response.status = Status::DeadlineExceeded("too slow");
  response.label = 1;
  response.prob = 0.875f;
  response.degraded = true;
  response.attempts = 3;
  response.queue_ms = 1.25;
  response.total_ms = 9.5;

  auto decoded = DecodeMatchResponse(EncodeMatchResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().status.code(), response.status.code());
  EXPECT_EQ(decoded.ValueOrDie().status.message(), "too slow");
  EXPECT_EQ(decoded.ValueOrDie().label, 1);
  EXPECT_EQ(decoded.ValueOrDie().prob, response.prob);  // bit-exact f32
  EXPECT_TRUE(decoded.ValueOrDie().degraded);
  EXPECT_EQ(decoded.ValueOrDie().attempts, 3);
  EXPECT_EQ(decoded.ValueOrDie().queue_ms, 1.25);
  EXPECT_EQ(decoded.ValueOrDie().total_ms, 9.5);
}

TEST(MatchCodecTest, DefaultLabelSurvives) {
  serve::MatchResponse response;  // label = -1, the "no answer" sentinel
  auto decoded = DecodeMatchResponse(EncodeMatchResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().label, -1);
}

TEST(MatchCodecTest, RejectsTruncatedAndImplausiblePayloads) {
  serve::MatchRequest request;
  request.a = data::Record({"a", "b"});
  request.b = data::Record({"c", "d"});
  const std::string good = EncodeMatchRequest(request);
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeMatchRequest(good.substr(0, cut)).ok())
        << "truncation at " << cut << " decoded anyway";
  }
  // A record claiming 2^20 fields is corrupt, not big.
  WireWriter w;
  w.PutU32(1u << 20);
  EXPECT_FALSE(DecodeMatchRequest(w.Take()).ok());
}

TEST(StatusCodecTest, RoundTripsCodesAndRejectsUnknown) {
  for (const Status& s :
       {Status::OK(), Status::Unavailable("down"),
        Status::InvalidArgument("bad"), Status::DeadlineExceeded("late")}) {
    Status decoded = Status::OK();
    ASSERT_TRUE(DecodeStatus(EncodeStatus(s), &decoded).ok());
    EXPECT_EQ(decoded.code(), s.code());
    EXPECT_EQ(decoded.message(), s.message());
  }
  WireWriter w;
  w.PutU32(999);
  w.PutString("mystery");
  Status decoded = Status::OK();
  EXPECT_FALSE(DecodeStatus(w.Take(), &decoded).ok());
}

}  // namespace
}  // namespace dader::dist
