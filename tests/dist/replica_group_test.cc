// Replica-group layout invariants: strided membership, promotion order,
// the R = 1 identity degeneration, and rejection of rosters the
// replication factor does not divide.

#include "dist/replica_group.h"

#include <gtest/gtest.h>

#include <set>

namespace dader::dist {
namespace {

TEST(ReplicaGroupTest, StridedLayoutCoversTheRosterExactlyOnce) {
  auto table = ReplicaGroupTable::Create(/*num_nodes=*/6,
                                         /*replication_factor=*/2);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const ReplicaGroupTable& groups = table.ValueOrDie();
  EXPECT_EQ(groups.num_groups(), 3);

  std::set<int> seen;
  for (int g = 0; g < groups.num_groups(); ++g) {
    const std::vector<int>& members = groups.members(g);
    ASSERT_EQ(static_cast<int>(members.size()), 2);
    for (int rank = 0; rank < 2; ++rank) {
      // Strided: member k of group g is node g + k*S.
      EXPECT_EQ(members[rank], g + rank * groups.num_groups());
      EXPECT_TRUE(seen.insert(members[rank]).second)
          << "node " << members[rank] << " assigned twice";
      EXPECT_EQ(groups.group_of(members[rank]), g);
      EXPECT_EQ(groups.rank_of(members[rank]), rank);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 6) << "roster not covered";
}

TEST(ReplicaGroupTest, PromotionOrderIsMemberOrder) {
  auto table = ReplicaGroupTable::Create(9, 3).ValueOrDie();
  // Group 1 of a 9-node / R=3 roster: primary 1, standbys 4 and 7.
  const std::vector<int>& members = table.members(1);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 1);
  EXPECT_EQ(members[1], 4);
  EXPECT_EQ(members[2], 7);
}

TEST(ReplicaGroupTest, ReplicationFactorOneIsTheIdentity) {
  auto table = ReplicaGroupTable::Create(5, 1).ValueOrDie();
  EXPECT_EQ(table.num_groups(), 5);
  for (int node = 0; node < 5; ++node) {
    ASSERT_EQ(table.members(node).size(), 1u);
    EXPECT_EQ(table.members(node)[0], node);
    EXPECT_EQ(table.group_of(node), node);
    EXPECT_EQ(table.rank_of(node), 0);
  }
}

TEST(ReplicaGroupTest, RejectsIndivisibleAndDegenerateShapes) {
  EXPECT_FALSE(ReplicaGroupTable::Create(5, 2).ok())
      << "partial groups must be refused, not guessed at";
  EXPECT_FALSE(ReplicaGroupTable::Create(0, 1).ok());
  EXPECT_FALSE(ReplicaGroupTable::Create(4, 0).ok());
  EXPECT_FALSE(ReplicaGroupTable::Create(4, -2).ok());
  EXPECT_FALSE(ReplicaGroupTable::Create(2, 4).ok())
      << "more replicas than nodes";
}

}  // namespace
}  // namespace dader::dist
