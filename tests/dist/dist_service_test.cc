// Distributed control-plane integration tests over real loopback TCP:
// bit-identical answers through the wire, the flagship kill/resurrect
// scenario (zero wrong answers, bounded shed, canary re-admission), every
// injected node-fault kind, and the rolling reload with per-node rollback.
//
// Determinism: worker failures come from seeded FaultSpecs (node-scoped
// kinds), and membership is driven by explicit HeartbeatTick() calls, so
// the whole failure/recovery timeline is an event sequence, not a race.
// One test (BackgroundHeartbeatDetectsCrash) exercises the real
// heartbeat thread with spin-wait tolerances.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <memory>
#include <string>
#include <vector>

#include "core/guard.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "serve/router.h"
#include "util/clock.h"
#include "util/fault.h"

namespace dader::dist {
namespace {

core::DaderConfig TinyModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, TinyModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

data::Schema TestSchema() { return data::Schema({"title", "price"}); }

serve::MatchRequest MakeRequest(const std::string& a, const std::string& b) {
  serve::MatchRequest request;
  request.a = data::Record({a, "10"});
  request.b = data::Record({b, "10"});
  return request;
}

std::vector<serve::MatchRequest> TestStream() {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"sony wh-1000xm4 headphones", "sony wh1000xm4"},
      {"apple iphone 12 128gb", "apple iphone 12 128 gb"},
      {"apple iphone 12 128gb", "makita cordless drill"},
      {"canon eos r6 body", "canon eos r6"},
      {"dell xps 13 9310", "dell xps13 9310 laptop"},
      {"logitech mx master 3", "logitech mx master 3s"},
      {"bosch gsr 12v drill", "canon eos r6"},
      {"samsung galaxy s21", "samsung galaxy s21 5g"},
  };
  std::vector<serve::MatchRequest> stream;
  for (const auto& [a, b] : pairs) stream.push_back(MakeRequest(a, b));
  return stream;
}

serve::ServeConfig WorkerServeTemplate() {
  serve::ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 10000.0;  // latency is not under test
  config.retry.base_backoff_ms = 1.0;
  config.retry.max_backoff_ms = 4.0;
  return config;
}

constexpr uint64_t kModelSeed = 21;

struct Fleet {
  std::vector<std::unique_ptr<WorkerNode>> workers;
  std::vector<int> ports;
  // Reference single service on the same weights: whatever the fleet
  // answers must be bit-identical to this.
  std::unique_ptr<serve::MatchService> reference;
};

Fleet MakeFleet(int n, FaultInjector* fault, size_t cache_capacity = 0) {
  Fleet fleet;
  core::DaModel base = MakeModel(kModelSeed);
  for (int node = 0; node < n; ++node) {
    auto replica = core::CloneModel(base, kModelSeed + 100 + node);
    EXPECT_TRUE(replica.ok()) << replica.status().ToString();
    WorkerNodeConfig config;
    config.node_id = node;
    config.serve = WorkerServeTemplate();
    config.serve.feature_cache_capacity = cache_capacity;
    config.fault = fault;
    auto worker = WorkerNode::Create(config, TestSchema(), TestSchema(),
                                     std::move(replica).ValueOrDie());
    EXPECT_TRUE(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(worker).ValueOrDie());
    EXPECT_TRUE(fleet.workers.back()->Start(0).ok());
    fleet.ports.push_back(fleet.workers.back()->port());
  }
  fleet.reference = std::make_unique<serve::MatchService>(
      WorkerServeTemplate(), TestSchema(), TestSchema(), std::move(base));
  return fleet;
}

CoordinatorConfig TestCoordinatorConfig() {
  CoordinatorConfig config;
  config.heartbeat_deadline_ms = 500.0;
  config.match_deadline_ms = 10000.0;
  config.canary_deadline_ms = 10000.0;
  config.membership.suspect_after_misses = 2;
  config.membership.dead_after_misses = 3;
  config.membership.readmit_canary_successes = 2;
  config.reconnect.max_attempts = 2;
  config.reconnect.base_backoff_ms = 1.0;
  config.reconnect.max_backoff_ms = 4.0;
  return config;
}

TEST(DistServiceTest, AnswersBitIdenticalToLocalServiceThroughTheWire) {
  Fleet fleet = MakeFleet(3, nullptr);
  Coordinator coordinator(TestCoordinatorConfig(), fleet.ports);

  const auto stream = TestStream();
  std::vector<int> homes;
  for (const auto& request : stream) {
    homes.push_back(coordinator.Route(request).node);
    // Routing through processes is the identical pure function the
    // in-process sharded service uses.
    EXPECT_EQ(homes.back(),
              serve::ShardForPair(request.a, request.b, 3));
  }
  for (const auto& request : stream) {
    const serve::MatchResponse local = fleet.reference->Match(request);
    const serve::MatchResponse remote = coordinator.Match(request);
    ASSERT_TRUE(local.status.ok());
    ASSERT_TRUE(remote.status.ok()) << remote.status.ToString();
    EXPECT_EQ(remote.label, local.label);
    EXPECT_EQ(remote.prob, local.prob) << "wire answer not bit-identical";
    EXPECT_FALSE(remote.degraded);
  }
  EXPECT_EQ(coordinator.rescued(), 0);
  EXPECT_EQ(coordinator.shed(), 0);
  for (auto& worker : fleet.workers) worker->Stop();
}

// The flagship scenario: a worker dies mid-stream (seeded node-crash
// fault), the fleet detects it within the miss threshold, survivors absorb
// its keys with zero wrong answers, and the resurrected worker re-enters
// only after the warm-up canary — then traffic goes home again.
TEST(DistServiceTest, KillAndResurrectWorkerMidStream) {
  FaultInjector fault(0xD15EA5EULL);
  Fleet fleet = MakeFleet(3, &fault);
  CoordinatorConfig config = TestCoordinatorConfig();
  Coordinator coordinator(config, fleet.ports);

  const auto stream = TestStream();
  // Reference answers for every pair in the stream.
  std::vector<float> expected;
  for (const auto& request : stream) {
    const auto r = fleet.reference->Match(request);
    EXPECT_TRUE(r.status.ok());
    expected.push_back(r.prob);
  }
  // Pick the victim: the home of stream[0].
  const int victim = coordinator.Route(stream[0]).node;

  int64_t ok_count = 0;
  int64_t shed_count = 0;
  int64_t wrong = 0;
  auto pump_round = [&] {
    for (size_t i = 0; i < stream.size(); ++i) {
      const serve::MatchResponse r = coordinator.Match(stream[i]);
      if (r.status.ok()) {
        ++ok_count;
        if (r.prob != expected[i]) ++wrong;
      } else {
        ++shed_count;
      }
    }
  };

  pump_round();  // healthy round
  ASSERT_EQ(shed_count, 0);

  // Arm the crash: the victim dies on its next frame, mid-stream.
  FaultSpec crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.shard = victim;
  crash.max_hits = 1;
  fault.Arm(crash);

  pump_round();  // the round the node dies in
  EXPECT_EQ(fault.hits(FaultKind::kNodeCrash), 1) << "crash never fired";
  // The injected crash stops the server from a helper thread; give it a
  // bounded moment to finish going dark.
  for (int spin = 0;
       spin < 200 && fleet.workers[static_cast<size_t>(victim)]->running();
       ++spin) {
    util::Clock::Real()->SleepForMs(10.0);
  }
  EXPECT_FALSE(fleet.workers[static_cast<size_t>(victim)]->running());

  // Detection completes within the miss threshold: dead_after_misses
  // heartbeat ticks are all it takes (data-path failures already
  // contributed evidence during the crash round).
  for (int tick = 0; tick < config.membership.dead_after_misses; ++tick) {
    coordinator.HeartbeatTick();
  }
  ASSERT_EQ(coordinator.membership().state(victim), NodeState::kDead);

  // Degraded rounds: survivors answer everything, bit-identically.
  const int64_t rescued_before = coordinator.rescued();
  for (int round = 0; round < 3; ++round) pump_round();
  EXPECT_GT(coordinator.rescued(), rescued_before)
      << "no request was rescued off the dead node";

  // Resurrect. The node must NOT get traffic until the canary passes.
  ASSERT_TRUE(
      fleet.workers[static_cast<size_t>(victim)]->Restart().ok());
  coordinator.HeartbeatTick();  // ping ok: DEAD -> CANARY, first canary ok
  EXPECT_EQ(coordinator.membership().state(victim), NodeState::kCanary);
  EXPECT_FALSE(coordinator.membership().routable(victim));
  coordinator.HeartbeatTick();  // second canary ok: re-admitted
  ASSERT_EQ(coordinator.membership().state(victim), NodeState::kAlive);

  // Traffic goes home again and answers are still bit-identical.
  EXPECT_EQ(coordinator.Route(stream[0]).node, victim);
  pump_round();

  EXPECT_EQ(wrong, 0) << wrong << " answers changed during the failure";
  EXPECT_GT(ok_count, 0);
  // Bounded shed: transport blips during the crash round may shed a
  // handful, but the degrade path must absorb the vast majority.
  const double shed_rate =
      static_cast<double>(shed_count) /
      static_cast<double>(ok_count + shed_count);
  EXPECT_LT(shed_rate, 0.2) << shed_count << " of " << ok_count + shed_count
                            << " requests shed";
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, HeartbeatDropLooksSickButKeepsServing) {
  FaultInjector fault(7);
  Fleet fleet = MakeFleet(2, &fault);
  CoordinatorConfig config = TestCoordinatorConfig();
  Coordinator coordinator(config, fleet.ports);
  coordinator.HeartbeatTick();  // establish heartbeat connections

  FaultSpec drop;
  drop.kind = FaultKind::kHeartbeatDrop;
  drop.shard = 1;
  drop.max_hits = 2;
  fault.Arm(drop);

  coordinator.HeartbeatTick();
  coordinator.HeartbeatTick();
  // Two swallowed pings: SUSPECT — and the SUSPECT-keeps-traffic rule
  // means its keys did not move.
  EXPECT_EQ(coordinator.membership().state(1), NodeState::kSuspect);
  EXPECT_TRUE(coordinator.membership().routable(1));

  const auto stream = TestStream();
  for (const auto& request : stream) {
    const auto r = coordinator.Match(request);
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ(coordinator.rescued(), 0) << "a suspect node lost its keys";

  // The drop spec is exhausted; the next ping goes through and clears it.
  coordinator.HeartbeatTick();
  EXPECT_EQ(coordinator.membership().state(1), NodeState::kAlive);
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, ConnResetAndHangFailOverWithCorrectAnswers) {
  FaultInjector fault(11);
  Fleet fleet = MakeFleet(2, &fault);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.match_deadline_ms = 400.0;  // a hung call costs this, not forever
  Coordinator coordinator(config, fleet.ports);

  // Find a request homed on node 1 and its reference answer.
  serve::MatchRequest probe;
  float expected = 0.0f;
  bool found = false;
  for (int i = 0; i < 64 && !found; ++i) {
    serve::MatchRequest candidate =
        MakeRequest("widget model " + std::to_string(i),
                    "widget model " + std::to_string(i));
    if (coordinator.Route(candidate).node == 1) {
      probe = candidate;
      expected = fleet.reference->Match(candidate).prob;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  // Reset every attempt: the channel's own transparent retry gets reset
  // too, so the call fails over to the survivor — whose answer is the
  // same bits.
  FaultSpec reset;
  reset.kind = FaultKind::kConnReset;
  reset.shard = 1;
  reset.max_hits = 8;  // outlasts the channel's reconnect attempts
  fault.Arm(reset);
  serve::MatchResponse r = coordinator.Match(probe);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.prob, expected);
  EXPECT_GE(fault.hits(FaultKind::kConnReset), 2);
  EXPECT_GE(coordinator.rescued(), 1);
  fault.Disarm(FaultKind::kConnReset);

  // Hang: the node swallows the request; the deadline fires and the
  // failover still produces the right bits.
  FaultSpec hang;
  hang.kind = FaultKind::kNodeHang;
  hang.shard = 1;
  hang.max_hits = 1;
  fault.Arm(hang);
  r = coordinator.Match(probe);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.prob, expected);
  EXPECT_EQ(fault.hits(FaultKind::kNodeHang), 1);

  // Restart clears the hang so shutdown is orderly.
  ASSERT_TRUE(fleet.workers[1]->Restart().ok());
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, SlowNodeDelaysButAnswersCorrectly) {
  FaultInjector fault(13);
  Fleet fleet = MakeFleet(2, &fault);
  Coordinator coordinator(TestCoordinatorConfig(), fleet.ports);

  FaultSpec slow;
  slow.kind = FaultKind::kSlowNode;
  slow.shard = 1;
  slow.max_hits = 2;
  slow.param_ms = 20.0;
  fault.Arm(slow);

  const auto stream = TestStream();
  for (const auto& request : stream) {
    const auto local = fleet.reference->Match(request);
    const auto remote = coordinator.Match(request);
    ASSERT_TRUE(remote.status.ok()) << remote.status.ToString();
    EXPECT_EQ(remote.prob, local.prob);
  }
  EXPECT_EQ(fault.hits(FaultKind::kSlowNode), 2);
  EXPECT_EQ(coordinator.shed(), 0);
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, FleetDownShedsUnavailableInsteadOfHanging) {
  Fleet fleet = MakeFleet(1, nullptr);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.match_deadline_ms = 300.0;
  Coordinator coordinator(config, fleet.ports);

  fleet.workers[0]->StopServer();
  for (int tick = 0; tick < config.membership.dead_after_misses; ++tick) {
    coordinator.HeartbeatTick();
  }
  ASSERT_EQ(coordinator.membership().num_routable(), 0);

  const auto r = coordinator.Match(TestStream()[0]);
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(coordinator.shed(), 1);
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, BackgroundHeartbeatDetectsCrash) {
  Fleet fleet = MakeFleet(2, nullptr);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.heartbeat_period_ms = 10.0;
  config.heartbeat_deadline_ms = 200.0;
  Coordinator coordinator(config, fleet.ports);
  coordinator.Start();

  fleet.workers[1]->StopServer();
  // Spin-wait: the background thread must walk node 1 to DEAD on its own.
  bool dead = false;
  for (int spin = 0; spin < 500 && !dead; ++spin) {
    dead = coordinator.membership().state(1) == NodeState::kDead;
    util::Clock::Real()->SleepForMs(10.0);
  }
  EXPECT_TRUE(dead) << "background heartbeats never detected the crash";
  coordinator.Stop();
  for (auto& worker : fleet.workers) worker->Stop();
}

TEST(DistServiceTest, RollingReloadPushesEverywhereAndAbortsOnRollback) {
  const std::string dir = testing::TempDir() + "/dist_reload";
  ::mkdir(dir.c_str(), 0755);
  const std::string donor_path = dir + "/donor.ckpt";
  const std::string corrupt_path = dir + "/corrupt.ckpt";

  core::DaModel donor = MakeModel(99);
  ASSERT_TRUE(core::SaveModules(donor_path, {{"F", donor.extractor.get()},
                                             {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(core::SaveModules(corrupt_path, {{"F", donor.extractor.get()},
                                               {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(FaultInjector::CorruptByte(corrupt_path, 200).ok());

  Fleet fleet = MakeFleet(2, nullptr);
  Coordinator coordinator(TestCoordinatorConfig(), fleet.ports);

  const auto stream = TestStream();
  std::vector<float> before;
  for (const auto& request : stream) {
    const auto r = coordinator.Match(request);
    ASSERT_TRUE(r.status.ok());
    before.push_back(r.prob);
  }

  // A corrupt push aborts at node 0 (which rolled back locally) and no
  // answer anywhere changes.
  EXPECT_FALSE(coordinator.RollingReload(corrupt_path).ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(coordinator.Match(stream[i]).prob, before[i]);
  }
  // The roll aborted at node 0: it rolled back locally, and node 1 was
  // never touched.
  EXPECT_EQ(fleet.workers[0]->service().stats().reload_rollbacks, 1);
  EXPECT_EQ(fleet.workers[1]->service().stats().reload_rollbacks, 0);
  for (auto& worker : fleet.workers) {
    EXPECT_EQ(worker->service().stats().reloads, 0);
  }

  // A healthy push lands on every node; answers move off the old weights.
  ASSERT_TRUE(coordinator.RollingReload(donor_path).ok());
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto r = coordinator.Match(stream[i]);
    ASSERT_TRUE(r.status.ok());
    EXPECT_NE(r.prob, before[i]) << "request " << i
                                 << " still answered by pre-push weights";
  }
  for (auto& worker : fleet.workers) {
    EXPECT_EQ(worker->service().stats().reloads, 1);
  }
  for (auto& worker : fleet.workers) worker->Stop();
}

// ---------------------------------------------------------------------------
// Replica groups

TEST(DistServiceTest, MatchBatchPipelinedKeepsOrderAndBits) {
  Fleet fleet = MakeFleet(3, nullptr);
  Coordinator coordinator(TestCoordinatorConfig(), fleet.ports);

  auto stream = TestStream();
  std::vector<float> expected;
  for (const auto& request : stream) {
    expected.push_back(fleet.reference->Match(request).prob);
  }
  std::vector<serve::MatchResponse> responses =
      coordinator.MatchBatch(std::move(stream));
  ASSERT_EQ(responses.size(), expected.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.ToString();
    EXPECT_EQ(responses[i].prob, expected[i])
        << "pipelined batch reordered or changed answer " << i;
  }
  for (auto& worker : fleet.workers) worker->Stop();
}

// What one primary-death costs, measured the same way under both routing
// policies. `cold_misses` counts fleet-wide feature-cache misses during the
// first post-failover round: the hot-standby claim is exactly that this is
// zero (mirrored warming already cached the dead node's keys on its
// standby), while rescue-on-demand pays a cold cache at the worst time.
struct FailoverOutcome {
  int64_t wrong = 0;
  int64_t shed = 0;
  int64_t ok = 0;
  int64_t rescued = 0;
  int64_t promoted = 0;
  int64_t cold_misses = 0;
};

FailoverOutcome RunPrimaryDeathScenario(int replication_factor) {
  Fleet fleet = MakeFleet(4, nullptr, /*cache_capacity=*/64);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.replication_factor = replication_factor;
  config.heartbeat_period_ms = 10.0;
  Coordinator coordinator(config, fleet.ports);
  coordinator.Start();  // background heartbeats + the warm-mirror thread

  const auto stream = TestStream();
  std::vector<float> expected;
  for (const auto& request : stream) {
    expected.push_back(fleet.reference->Match(request).prob);
  }

  FailoverOutcome out;
  auto pump_round = [&] {
    for (size_t i = 0; i < stream.size(); ++i) {
      const serve::MatchResponse r = coordinator.Match(stream[i]);
      if (r.status.ok()) {
        ++out.ok;
        if (r.prob != expected[i]) ++out.wrong;
      } else {
        ++out.shed;
      }
    }
  };
  auto fleet_misses = [&] {
    int64_t misses = 0;
    for (auto& worker : fleet.workers) {
      misses += worker->service().stats().cache_misses;
    }
    return misses;
  };

  pump_round();  // healthy: warms every primary's cache
  if (replication_factor > 1) {
    // Wait for the mirror thread to land the served keys on the standbys.
    for (int spin = 0;
         spin < 500 &&
         coordinator.warm_sent() < static_cast<int64_t>(stream.size());
         ++spin) {
      util::Clock::Real()->SleepForMs(10.0);
    }
    EXPECT_GE(coordinator.warm_sent(), static_cast<int64_t>(stream.size()))
        << "warm mirroring never reached the standbys";
  }

  // Kill the primary of stream[0]'s home and let the background heartbeat
  // walk it to DEAD before measuring the degraded rounds.
  const int victim = coordinator.Route(stream[0]).node;
  fleet.workers[static_cast<size_t>(victim)]->StopServer();
  for (int spin = 0;
       spin < 500 && coordinator.membership().state(victim) != NodeState::kDead;
       ++spin) {
    util::Clock::Real()->SleepForMs(10.0);
  }
  EXPECT_EQ(coordinator.membership().state(victim), NodeState::kDead);

  if (replication_factor > 1) {
    // Deterministic promotion: the standby is the next member of the home
    // group in the strided layout, not an arbitrary rescue survivor.
    const RouteDecision d = coordinator.Route(stream[0]);
    EXPECT_EQ(d.home, victim);
    EXPECT_TRUE(d.promoted);
    EXPECT_FALSE(d.rescued);
    EXPECT_EQ(d.node, victim + coordinator.replica_groups().num_groups());
  }

  const int64_t misses_before = fleet_misses();
  pump_round();  // first post-failover round: the cold-cache window
  out.cold_misses = fleet_misses() - misses_before;
  pump_round();  // steady degraded state
  out.rescued = coordinator.rescued();
  out.promoted = coordinator.promoted();

  coordinator.Stop();
  for (auto& worker : fleet.workers) worker->Stop();
  return out;
}

// The replica-group flagship: killing a primary promotes its hot standby —
// zero wrong answers, zero shed, zero rescues, and a warm cache — where
// rescue-on-demand serves the same keys correctly but cold.
TEST(DistServiceTest, ReplicaFailoverPromotesHotStandby) {
  const FailoverOutcome replicated = RunPrimaryDeathScenario(2);
  EXPECT_EQ(replicated.wrong, 0);
  EXPECT_EQ(replicated.shed, 0);
  EXPECT_EQ(replicated.rescued, 0)
      << "in-group promotion should make rescue unnecessary";
  EXPECT_GE(replicated.promoted, 2);
  EXPECT_EQ(replicated.cold_misses, 0)
      << "promoted standby served from a cold cache despite mirroring";

  const FailoverOutcome rescue_only = RunPrimaryDeathScenario(1);
  EXPECT_EQ(rescue_only.wrong, 0);
  EXPECT_GE(rescue_only.rescued, 1);
  EXPECT_GT(rescue_only.cold_misses, replicated.cold_misses)
      << "rescue-on-demand should pay the cold cache replica groups avoid";
}

// ---------------------------------------------------------------------------
// Durable coordinator handoff

std::string FreshStateDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  ::mkdir(dir.c_str(), 0755);
  for (const char* file :
       {"/state.snap", "/state.snap.prev", "/state.journal"}) {
    std::remove((dir + file).c_str());
  }
  return dir;
}

// Satellite (c): the coordinator dies between node acks mid-roll; its
// successor restores the pending roll from disk and resumes from the last
// acked node — no node reloads twice, no epoch is left stuck.
TEST(DistServiceTest, CoordinatorCrashMidReloadResumesFromLastAckedNode) {
  const std::string dir = FreshStateDir("dist_resume");
  const std::string donor_path = dir + "/donor.ckpt";
  core::DaModel donor = MakeModel(99);
  ASSERT_TRUE(core::SaveModules(donor_path, {{"F", donor.extractor.get()},
                                             {"M", donor.matcher.get()}})
                  .ok());

  FaultInjector fault(0xC0DEULL);
  Fleet fleet = MakeFleet(2, nullptr);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.state_dir = dir;
  config.fault = &fault;

  const auto stream = TestStream();
  std::vector<float> before;
  {
    Coordinator first(config, fleet.ports);
    for (const auto& request : stream) {
      const auto r = first.Match(request);
      ASSERT_TRUE(r.status.ok());
      before.push_back(r.prob);
    }

    // Die after journaling node 0's ack, before touching node 1.
    FaultSpec crash;
    crash.kind = FaultKind::kCoordinatorCrash;
    crash.step = 0;
    crash.max_hits = 1;
    fault.Arm(crash);
    EXPECT_FALSE(first.RollingReload(donor_path).ok());
    EXPECT_EQ(fault.hits(FaultKind::kCoordinatorCrash), 1);
    EXPECT_EQ(fleet.workers[0]->service().stats().reloads, 1);
    EXPECT_EQ(fleet.workers[1]->service().stats().reloads, 0);
  }  // dtor = the crash boundary; durable state is all that survives

  Coordinator second(config, fleet.ports);
  EXPECT_EQ(second.reload_epoch(), 1u) << "reload epoch lost in the handoff";
  ASSERT_TRUE(second.HasPendingReload());
  ASSERT_TRUE(second.ResumePendingReload().ok());
  EXPECT_FALSE(second.HasPendingReload()) << "epoch left stuck after resume";

  // Resume pushed only the node the dead coordinator never reached.
  EXPECT_EQ(fleet.workers[0]->service().stats().reloads, 1)
      << "node 0 reloaded twice";
  EXPECT_EQ(fleet.workers[1]->service().stats().reloads, 1);
  for (size_t i = 0; i < stream.size(); ++i) {
    const auto r = second.Match(stream[i]);
    ASSERT_TRUE(r.status.ok());
    EXPECT_NE(r.prob, before[i]) << "request " << i
                                 << " still answered by pre-push weights";
  }
  for (auto& worker : fleet.workers) worker->Stop();
}

// A node two probes into canary re-admission must stay two probes in
// across a coordinator restart — even when the current snapshot is torn
// and the successor restores from the previous generation + journal tail.
TEST(DistServiceTest, CanaryStreakSurvivesRestartAndTornSnapshot) {
  const std::string dir = FreshStateDir("dist_canary_streak");
  Fleet fleet = MakeFleet(2, nullptr);
  CoordinatorConfig config = TestCoordinatorConfig();
  config.state_dir = dir;
  config.checkpoint_every = 1;  // several generations -> .prev exists

  {
    Coordinator first(config, fleet.ports);
    first.HeartbeatTick();
    fleet.workers[1]->StopServer();
    for (int tick = 0; tick < config.membership.dead_after_misses; ++tick) {
      first.HeartbeatTick();
    }
    ASSERT_EQ(first.membership().state(1), NodeState::kDead);

    ASSERT_TRUE(fleet.workers[1]->Restart().ok());
    first.HeartbeatTick();  // ping ok: DEAD -> CANARY, first canary success
    ASSERT_EQ(first.membership().state(1), NodeState::kCanary);
    first.Stop();
  }

  // Tear the current snapshot: restore must fall back, not start fresh.
  ASSERT_TRUE(FaultInjector::CorruptByte(dir + "/state.snap", 16).ok());
  Coordinator second(config, fleet.ports);
  EXPECT_EQ(second.membership().state(1), NodeState::kCanary)
      << "restart forgot the node was mid-canary";
  EXPECT_FALSE(second.membership().routable(1));
  // One more success completes readmit_canary_successes = 2: the streak
  // carried over. (A forgetful coordinator would need two fresh probes.)
  second.HeartbeatTick();
  EXPECT_EQ(second.membership().state(1), NodeState::kAlive);
  for (auto& worker : fleet.workers) worker->Stop();
}

}  // namespace
}  // namespace dader::dist
