#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace dader::text {
namespace {

TEST(WordTokenizeTest, LowercasesAndSplits) {
  EXPECT_EQ(WordTokenize("Samsung 52' Series"),
            (std::vector<std::string>{"samsung", "52", "'", "series"}));
}

TEST(WordTokenizeTest, PunctuationIsolated) {
  EXPECT_EQ(WordTokenize("a,b.c"),
            (std::vector<std::string>{"a", ",", "b", ".", "c"}));
}

TEST(WordTokenizeTest, DigitsGrouped) {
  EXPECT_EQ(WordTokenize("esp-7 239.88"),
            (std::vector<std::string>{"esp", "-", "7", "239", ".", "88"}));
}

TEST(WordTokenizeTest, EmptyAndWhitespace) {
  EXPECT_TRUE(WordTokenize("").empty());
  EXPECT_TRUE(WordTokenize("   \t ").empty());
}

TEST(SpecialTokensTest, NamesAndOrdering) {
  EXPECT_STREQ(SpecialTokenName(kPad), "[PAD]");
  EXPECT_STREQ(SpecialTokenName(kCls), "[CLS]");
  EXPECT_STREQ(SpecialTokenName(kSep), "[SEP]");
  EXPECT_STREQ(SpecialTokenName(kAtt), "[ATT]");
  EXPECT_STREQ(SpecialTokenName(kVal), "[VAL]");
  EXPECT_STREQ(SpecialTokenName(kMask), "[MASK]");
  EXPECT_STREQ(SpecialTokenName(kUnk), "[UNK]");
  EXPECT_EQ(kPad, 0);
  EXPECT_LT(kUnk, kNumSpecialTokens);
}

TEST(HashingVocabTest, NeverReturnsSpecialIds) {
  HashingVocab vocab(64);
  for (const char* w : {"alpha", "beta", "gamma", "x", "1", "."}) {
    const int64_t id = vocab.TokenId(w);
    EXPECT_GE(id, kNumSpecialTokens);
    EXPECT_LT(id, 64);
  }
}

TEST(HashingVocabTest, StableIds) {
  HashingVocab vocab(4096);
  EXPECT_EQ(vocab.TokenId("stonebraker"), vocab.TokenId("stonebraker"));
  EXPECT_NE(vocab.TokenId("stonebraker"), vocab.TokenId("dewitt"));
}

TEST(HashingVocabTest, EncodeSequence) {
  HashingVocab vocab(128);
  const auto ids = vocab.Encode({"a", "b", "a"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
}

TEST(PadToLengthTest, PadsShortSequence) {
  auto seq = PadToLength({10, 11, 12}, 6);
  EXPECT_EQ(seq.ids, (std::vector<int64_t>{10, 11, 12, kPad, kPad, kPad}));
  EXPECT_EQ(seq.mask, (std::vector<float>{1, 1, 1, 0, 0, 0}));
  EXPECT_EQ(seq.num_real, 3);
  EXPECT_EQ(seq.overlap, (std::vector<float>{0, 0, 0, 0, 0, 0}));
}

TEST(PadToLengthTest, TruncatesLongSequence) {
  auto seq = PadToLength({1, 2, 3, 4, 5}, 3);
  EXPECT_EQ(seq.ids, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(seq.num_real, 3);
}

TEST(PadToLengthTest, OverlapFlagsAligned) {
  auto seq = PadToLength({10, 11}, 4, {1.0f, 0.0f});
  EXPECT_EQ(seq.overlap, (std::vector<float>{1, 0, 0, 0}));
}

TEST(PadToLengthTest, OverlapTruncatedWithIds) {
  auto seq = PadToLength({10, 11, 12}, 2, {1.0f, 0.0f, 1.0f});
  EXPECT_EQ(seq.overlap, (std::vector<float>{1, 0}));
}

TEST(PadToLengthTest, ExactLength) {
  auto seq = PadToLength({7, 8}, 2);
  EXPECT_EQ(seq.ids, (std::vector<int64_t>{7, 8}));
  EXPECT_EQ(seq.mask, (std::vector<float>{1, 1}));
}

}  // namespace
}  // namespace dader::text
