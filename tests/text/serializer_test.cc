#include "text/serializer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dader::text {
namespace {

const HashingVocab& Vocab() {
  static HashingVocab vocab(4096);
  return vocab;
}

TEST(SerializeEntityTest, AttValStructure) {
  AttrValueList entity = {{"title", "balt wheasel"}, {"price", "239.88"}};
  const auto ids = SerializeEntity(entity, Vocab());
  // [ATT] title [VAL] balt wheasel [ATT] price [VAL] 239 . 88
  ASSERT_GE(ids.size(), 8u);
  EXPECT_EQ(ids[0], kAtt);
  EXPECT_EQ(ids[1], Vocab().TokenId("title"));
  EXPECT_EQ(ids[2], kVal);
  EXPECT_EQ(ids[3], Vocab().TokenId("balt"));
  EXPECT_EQ(ids[4], Vocab().TokenId("wheasel"));
  EXPECT_EQ(ids[5], kAtt);
}

TEST(SerializeEntityTest, NullValueEmptySpan) {
  AttrValueList entity = {{"brand", ""}};
  const auto ids = SerializeEntity(entity, Vocab());
  EXPECT_EQ(ids, (std::vector<int64_t>{kAtt, Vocab().TokenId("brand"), kVal}));
}

TEST(SerializePairTest, ClsSepFraming) {
  AttrValueList a = {{"name", "x"}};
  AttrValueList b = {{"name", "y"}};
  const auto ids = SerializePair(a, b, Vocab());
  EXPECT_EQ(ids.front(), kCls);
  EXPECT_EQ(ids.back(), kSep);
  // Exactly two [SEP] separators.
  EXPECT_EQ(std::count(ids.begin(), ids.end(),
                       static_cast<int64_t>(kSep)), 2);
}

TEST(EncodePairTest, PaddedToMaxLen) {
  AttrValueList a = {{"name", "short"}};
  AttrValueList b = {{"name", "tiny"}};
  const auto seq = EncodePair(a, b, Vocab(), 32);
  EXPECT_EQ(seq.ids.size(), 32u);
  EXPECT_EQ(seq.mask.size(), 32u);
  EXPECT_EQ(seq.overlap.size(), 32u);
}

TEST(EncodePairTest, OverlapFlagsSharedValueTokens) {
  AttrValueList a = {{"title", "kodak esp printer"}};
  AttrValueList b = {{"name", "kodak esp seven"}};
  const auto seq = EncodePair(a, b, Vocab(), 32);
  // Locate positions of known tokens and verify flags.
  const int64_t kodak = Vocab().TokenId("kodak");
  const int64_t printer = Vocab().TokenId("printer");
  const int64_t seven = Vocab().TokenId("seven");
  bool saw_kodak = false, saw_printer = false, saw_seven = false;
  for (size_t i = 0; i < seq.ids.size(); ++i) {
    if (seq.ids[i] == kodak) {
      EXPECT_EQ(seq.overlap[i], 1.0f);
      saw_kodak = true;
    } else if (seq.ids[i] == printer) {
      EXPECT_EQ(seq.overlap[i], 0.0f);
      saw_printer = true;
    } else if (seq.ids[i] == seven) {
      EXPECT_EQ(seq.overlap[i], 0.0f);
      saw_seven = true;
    }
  }
  EXPECT_TRUE(saw_kodak);
  EXPECT_TRUE(saw_printer);
  EXPECT_TRUE(saw_seven);
}

TEST(EncodePairTest, AttributeNamesNeverFlagged) {
  // Both entities have attribute "title" but the attribute NAME tokens are
  // not value tokens and must stay unflagged.
  AttrValueList a = {{"title", "alpha"}};
  AttrValueList b = {{"title", "beta"}};
  const auto seq = EncodePair(a, b, Vocab(), 16);
  const int64_t title = Vocab().TokenId("title");
  for (size_t i = 0; i < seq.ids.size(); ++i) {
    if (seq.ids[i] == title) EXPECT_EQ(seq.overlap[i], 0.0f);
  }
}

TEST(EncodePairTest, SpecialsNeverFlagged) {
  AttrValueList a = {{"t", "same same"}};
  AttrValueList b = {{"t", "same same"}};
  const auto seq = EncodePair(a, b, Vocab(), 16);
  for (size_t i = 0; i < seq.ids.size(); ++i) {
    if (seq.ids[i] < kNumSpecialTokens) EXPECT_EQ(seq.overlap[i], 0.0f);
  }
}

TEST(EncodePairTest, IdenticalEntitiesFullyFlagged) {
  AttrValueList e = {{"name", "golden dragon"}};
  const auto seq = EncodePair(e, e, Vocab(), 16);
  const int64_t golden = Vocab().TokenId("golden");
  for (size_t i = 0; i < seq.ids.size(); ++i) {
    if (seq.ids[i] == golden) EXPECT_EQ(seq.overlap[i], 1.0f);
  }
}

TEST(SerializePairToTextTest, HumanReadable) {
  AttrValueList a = {{"title", "balt"}};
  AttrValueList b = {{"name", "kodak"}};
  const std::string s = SerializePairToText(a, b);
  EXPECT_EQ(s,
            "[CLS] [ATT] title [VAL] balt [SEP] [ATT] name [VAL] kodak [SEP]");
}

}  // namespace
}  // namespace dader::text
