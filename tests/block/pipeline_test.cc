#include "block/pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "data/generators.h"

namespace dader::block {
namespace {

core::DaderConfig TinyModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel TinyModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, TinyModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::unique_ptr<serve::ShardedMatchService> MakeService(
    const data::GeneratedTables& tables, int num_shards) {
  serve::ShardedServeConfig config;
  config.num_shards = num_shards;
  config.shard.queue_capacity = 64;
  config.shard.max_batch = 16;
  config.shard.batch_wait_ms = 0.2;
  config.shard.default_deadline_ms = 60000.0;
  config.shard.num_workers = 1;
  config.shard.feature_cache_capacity = 256;
  config.shard.seed = 42;
  auto service = serve::ShardedMatchService::Create(
      config, tables.a.schema(), tables.b.schema(), TinyModel(7));
  service.status().CheckOK();
  return std::move(service).ValueOrDie();
}

TEST(DedupPipelineTest, EndToEndInvariantsOnGeneratedTables) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/250, /*seed=*/13).ValueOrDie();
  auto service = MakeService(tables, /*num_shards=*/2);

  DedupConfig config;
  config.queue_capacity = 128;
  config.max_in_flight = 64;  // <= 2 shards * 64 queue slots
  auto result_or =
      RunDedup(tables.a, tables.b, &tables.gold_matches, service.get(),
               config);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  const DedupResult& result = result_or.ValueOrDie();
  service->Stop();

  EXPECT_EQ(result.records_a, tables.a.size());
  EXPECT_EQ(result.records_b, tables.b.size());

  // Every emitted candidate got exactly one response, none were shed
  // (the in-flight window is below the shards' queue capacity).
  EXPECT_EQ(result.responses_ok + result.responses_failed,
            result.candidates.emitted);
  EXPECT_EQ(result.responses_failed, 0);
  EXPECT_EQ(service->stats().admitted, result.candidates.emitted);

  // Blocking did its job on the generated corpus. The reduction floor is
  // modest because it scales with corpus size and this is a 250-entity
  // toy table; bench_dedup guards the at-scale ratio.
  EXPECT_GE(result.candidate_recall, 0.9);
  EXPECT_GT(result.pair_reduction, 2.0);
  EXPECT_EQ(result.candidates.index_candidates + result.candidates.lsh_candidates,
            result.candidates.emitted + result.candidates.duplicates);

  // Cluster bookkeeping is consistent with the accepted matches.
  EXPECT_EQ(result.matches,
            static_cast<int64_t>(result.matched_pairs.size()));
  size_t member_total = 0;
  std::set<uint32_t> all_members;
  for (const auto& cluster : result.entity_clusters) {
    EXPECT_GE(cluster.size(), 2u);
    member_total += cluster.size();
    for (uint32_t id : cluster) {
      EXPECT_LT(id, tables.a.size() + tables.b.size());
      EXPECT_TRUE(all_members.insert(id).second) << "clusters overlap";
    }
  }
  EXPECT_EQ(result.clustered_records, member_total);
  EXPECT_EQ(result.clusters, result.entity_clusters.size());

  // Every accepted match's endpoints landed in the same cluster.
  const uint32_t b_offset = static_cast<uint32_t>(tables.a.size());
  for (const auto& m : result.matched_pairs) {
    uint32_t cluster_of_a = UINT32_MAX;
    uint32_t cluster_of_b = UINT32_MAX;
    for (uint32_t c = 0; c < result.entity_clusters.size(); ++c) {
      const auto& members = result.entity_clusters[c];
      if (std::binary_search(members.begin(), members.end(), m.a)) {
        cluster_of_a = c;
      }
      if (std::binary_search(members.begin(), members.end(), b_offset + m.b)) {
        cluster_of_b = c;
      }
    }
    EXPECT_NE(cluster_of_a, UINT32_MAX);
    EXPECT_EQ(cluster_of_a, cluster_of_b);
  }
}

TEST(DedupPipelineTest, DeterministicAcrossRuns) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/120, /*seed=*/3).ValueOrDie();
  DedupConfig config;
  config.max_in_flight = 32;

  auto run = [&] {
    auto service = MakeService(tables, /*num_shards=*/2);
    auto result = RunDedup(tables.a, tables.b, &tables.gold_matches,
                           service.get(), config)
                      .ValueOrDie();
    service->Stop();
    return result;
  };
  const DedupResult r1 = run();
  const DedupResult r2 = run();
  EXPECT_EQ(r1.candidates.emitted, r2.candidates.emitted);
  EXPECT_EQ(r1.matches, r2.matches);
  EXPECT_EQ(r1.clusters, r2.clusters);
  ASSERT_EQ(r1.matched_pairs.size(), r2.matched_pairs.size());
  for (size_t i = 0; i < r1.matched_pairs.size(); ++i) {
    EXPECT_EQ(r1.matched_pairs[i].a, r2.matched_pairs[i].a);
    EXPECT_EQ(r1.matched_pairs[i].b, r2.matched_pairs[i].b);
  }
}

TEST(DedupPipelineTest, RejectsEmptyInputs) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/40, /*seed=*/2).ValueOrDie();
  auto service = MakeService(tables, 1);
  data::Table empty("E", tables.a.schema());
  DedupConfig config;
  EXPECT_FALSE(RunDedup(empty, tables.b, nullptr, service.get(), config).ok());
  EXPECT_FALSE(RunDedup(tables.a, empty, nullptr, service.get(), config).ok());
  EXPECT_FALSE(RunDedup(tables.a, tables.b, nullptr, nullptr, config).ok());
  service->Stop();
}

}  // namespace
}  // namespace dader::block
