#include "block/minhash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "block/candidate_stream.h"
#include "data/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dader::block {
namespace {

data::Table MakeTable(const std::vector<std::string>& titles) {
  data::Table t("T", data::Schema({"title"}));
  for (const auto& title : titles) t.AddRow(data::Record({title}));
  return t;
}

TEST(MinHashTest, IdenticalRecordsIdenticalSignatures) {
  MinHasher hasher((MinHashConfig()));
  data::Record a({"canon eos r6 camera body"});
  data::Record b({"canon eos r6 camera body"});
  EXPECT_EQ(hasher.Signature(a), hasher.Signature(b));
}

TEST(MinHashTest, SeedChangesSignature) {
  MinHashConfig c1;
  MinHashConfig c2;
  c2.seed = c1.seed + 1;
  data::Record r({"canon eos r6 camera body"});
  EXPECT_NE(MinHasher(c1).Signature(r), MinHasher(c2).Signature(r));
}

TEST(MinHashTest, TokenlessRecordGetsSentinelAndIsNeverBucketed) {
  MinHashConfig config;
  MinHasher hasher(config);
  const auto sig = hasher.Signature(data::Record({"", "   ", " . "}));
  EXPECT_TRUE(MinHasher::IsEmptySignature(sig));

  // Two token-less records must NOT collide in any band: the index skips
  // sentinel signatures entirely.
  LshIndex lsh(config);
  lsh.Insert(0, sig);
  lsh.Insert(1, hasher.Signature(data::Record({"\t"})));
  size_t pairs = 0;
  lsh.ForEachBucket([&](const std::vector<uint32_t>&) { ++pairs; });
  EXPECT_EQ(pairs, 0u);
  EXPECT_EQ(lsh.num_buckets(), 0u);
}

TEST(MinHashTest, JaccardEstimateTracksTrueSimilarity) {
  // Two records sharing half their tokens: true Jaccard 1/3.
  data::Record a({"alpha beta gamma delta"});
  data::Record b({"alpha beta epsilon zeta"});
  MinHashConfig config;
  config.num_hashes = 256;  // tighter estimate
  config.bands = 32;
  MinHasher hasher(config);
  const double est =
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(b));
  EXPECT_NEAR(est, 1.0 / 3.0, 0.12);  // ~3 sigma at 256 hashes
}

TEST(MinHashTest, SignTableDeterministicAcrossThreadCounts) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/120, /*seed=*/9).ValueOrDie();
  MinHasher hasher((MinHashConfig()));
  const auto sequential = hasher.SignTable(tables.a, nullptr);
  for (size_t threads : {2u, 4u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(hasher.SignTable(tables.a, &pool), sequential)
        << "thread count " << threads << " changed signatures";
  }
}

// The banded-LSH collision bound: a pair with Jaccard s collides with
// probability p(s) = 1 - (1 - s^r)^b. On a seeded corpus of high-similarity
// pairs, observed band-collision recall must be at or above the bound
// evaluated at the corpus's *minimum* pair similarity (minus sampling
// slack).
TEST(MinHashTest, LshBandCollisionRecallBound) {
  const std::vector<std::string> base = {
      "apple iphone 12 pro max 256gb silver unlocked smartphone",
      "canon eos r6 mark ii mirrorless camera body 24mp kit",
      "dell xps 13 9310 laptop 16gb ram 512gb ssd touch",
      "sony wh 1000xm4 wireless noise cancelling headphones black",
      "samsung galaxy tab s7 plus 128gb wifi tablet bronze",
      "bose soundlink revolve ii bluetooth speaker triple black",
      "lg c1 55 inch oled 4k smart tv webos",
      "nikon z6 ii full frame mirrorless camera 24 70mm",
  };
  // Each pair: the base record and a lightly perturbed copy (one token
  // swapped out of ~9 -> Jaccard ~ 8/10 = 0.8).
  std::vector<std::string> left;
  std::vector<std::string> right;
  Rng rng(31);
  for (int copy = 0; copy < 8; ++copy) {
    for (const auto& s : base) {
      left.push_back(s + " v" + std::to_string(copy));
      std::string perturbed = s + " v" + std::to_string(copy);
      perturbed.replace(perturbed.find(' '), 1, " x");  // mutate one token
      right.push_back(perturbed);
    }
  }
  const data::Table ta = MakeTable(left);
  const data::Table tb = MakeTable(right);

  MinHashConfig config;
  config.num_hashes = 64;
  config.bands = 16;  // r=4: p(0.6) = 1-(1-0.1296)^16 ~= 0.89
  config.seed = 1234;
  MinHasher hasher(config);

  // Measure the corpus's minimum true pair similarity via the estimate
  // with many hashes (256) as ground truth proxy.
  MinHashConfig wide = config;
  wide.num_hashes = 512;
  wide.bands = 64;
  MinHasher wide_hasher(wide);
  double min_sim = 1.0;
  for (size_t i = 0; i < left.size(); ++i) {
    min_sim = std::min(
        min_sim, MinHasher::EstimateJaccard(
                     wide_hasher.Signature(ta.row(i)),
                     wide_hasher.Signature(tb.row(i))));
  }
  ASSERT_GT(min_sim, 0.5);

  // Count gold pairs (i, i) that collide in at least one band.
  LshIndex lsh(config);
  const uint32_t offset = static_cast<uint32_t>(ta.size());
  for (uint32_t i = 0; i < ta.size(); ++i) {
    lsh.Insert(i, hasher.Signature(ta.row(i)));
  }
  for (uint32_t j = 0; j < tb.size(); ++j) {
    lsh.Insert(offset + j, hasher.Signature(tb.row(j)));
  }
  std::set<std::pair<uint32_t, uint32_t>> collided;
  lsh.ForEachBucket([&](const std::vector<uint32_t>& ids) {
    for (size_t x = 0; x < ids.size(); ++x) {
      for (size_t y = x + 1; y < ids.size(); ++y) {
        const uint32_t lo = std::min(ids[x], ids[y]);
        const uint32_t hi = std::max(ids[x], ids[y]);
        if (lo < offset && hi >= offset) collided.insert({lo, hi - offset});
      }
    }
  });
  size_t hits = 0;
  for (uint32_t i = 0; i < ta.size(); ++i) {
    hits += collided.count({i, i});
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(ta.size());

  const double rows = static_cast<double>(config.num_hashes / config.bands);
  const double bound =
      1.0 - std::pow(1.0 - std::pow(min_sim, rows),
                     static_cast<double>(config.bands));
  // 64 pairs of sampling noise: allow 10 points of slack under the bound.
  EXPECT_GE(recall, bound - 0.10)
      << "band-collision recall " << recall << " fell below the S-curve "
      << "bound " << bound << " at min similarity " << min_sim;
}

TEST(MinHashTest, OversizeBucketsAreSkippedAndCounted) {
  MinHashConfig config;
  config.max_bucket_size = 3;
  MinHasher hasher(config);
  LshIndex lsh(config);
  // Five identical records: every band bucket holds all five.
  const auto sig = hasher.Signature(data::Record({"same same same tokens"}));
  for (uint32_t i = 0; i < 5; ++i) lsh.Insert(i, sig);
  size_t visited = 0;
  lsh.ForEachBucket([&](const std::vector<uint32_t>&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(lsh.num_oversize_buckets(), config.bands);
}

}  // namespace
}  // namespace dader::block
