#include "block/inverted_index.h"

#include <gtest/gtest.h>

#include "data/schema.h"

namespace dader::block {
namespace {

data::Table MakeTable(const std::vector<std::vector<std::string>>& rows) {
  data::Table table("T", data::Schema({"title", "extra"}));
  for (const auto& row : rows) table.AddRow(data::Record(row));
  return table;
}

TEST(InvertedIndexTest, RareSharedTokenOutranksCommonOnes) {
  // Rows 0..3 share the ubiquitous tokens; row 4 shares only the rare
  // model code with the probe. Idf scoring must put row 4 first — a raw
  // shared-token count would rank it last.
  auto table = MakeTable({
      {"acme widget deluxe", "red"},
      {"acme widget deluxe", "blue"},
      {"acme widget deluxe", "green"},
      {"acme widget deluxe", "black"},
      {"zx9981 gadget", "unrelated"},
  });
  InvertedIndex index;
  index.Build(table);
  auto hits = index.Probe(data::Record({"zx9981 acme widget", ""}));
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].id, 4u);
  EXPECT_EQ(hits[0].shared_tokens, 1u);
  // The common-token rows follow, each sharing two tokens.
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[1].shared_tokens, 2u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(InvertedIndexTest, DfCapDropsStopTokens) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({"common token" + std::to_string(i), ""});
  }
  IndexConfig config;
  config.df_cap = 4;
  InvertedIndex index(config);
  index.Build(MakeTable(rows));
  EXPECT_GE(index.num_capped(), 1u);  // "common" (df 10) dropped
  // A probe carrying only the capped token finds nothing.
  EXPECT_TRUE(index.Probe(data::Record({"common", ""})).empty());
  // The rare per-row token still resolves.
  auto hits = index.Probe(data::Record({"token3", ""}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 3u);
}

TEST(InvertedIndexTest, MinSharedTokensFiltersWeakCandidates) {
  auto table = MakeTable({
      {"alpha beta gamma", ""},
      {"alpha delta epsilon", ""},
  });
  IndexConfig config;
  config.min_shared_tokens = 2;
  InvertedIndex index(config);
  index.Build(table);
  auto hits = index.Probe(data::Record({"alpha beta", ""}));
  ASSERT_EQ(hits.size(), 1u);  // row 1 shares only "alpha"
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[0].shared_tokens, 2u);
}

TEST(InvertedIndexTest, BudgetTruncatesDeterministically) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 8; ++i) rows.push_back({"shared", ""});
  IndexConfig config;
  config.max_candidates_per_probe = 3;
  InvertedIndex index(config);
  index.Build(MakeTable(rows));
  auto hits = index.Probe(data::Record({"shared", ""}));
  ASSERT_EQ(hits.size(), 3u);
  // Identical scores: ties break by ascending row id.
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_EQ(hits[2].id, 2u);
}

TEST(InvertedIndexTest, RebuildReplacesPreviousContents) {
  InvertedIndex index;
  index.Build(MakeTable({{"first corpus", ""}}));
  index.Build(MakeTable({{"second corpus", ""}}));
  EXPECT_TRUE(index.Probe(data::Record({"first", ""})).empty());
  EXPECT_EQ(index.Probe(data::Record({"second", ""})).size(), 1u);
}

}  // namespace
}  // namespace dader::block
