#include "block/candidate_stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "data/generators.h"

namespace dader::block {
namespace {

data::Table MakeTable(const std::string& name,
                      const std::vector<std::string>& titles) {
  data::Table t(name, data::Schema({"title"}));
  for (const auto& title : titles) t.AddRow(data::Record({title}));
  return t;
}

TEST(CandidateStreamTest, EmitsEachUniquePairOnce) {
  // A pair both generators find must be emitted exactly once.
  data::Table a = MakeTable("A", {"canon eos r6 mirrorless camera body"});
  data::Table b = MakeTable("B", {"canon eos r6 mirrorless camera kit"});
  CandidateGenConfig config;
  config.index.min_shared_tokens = 2;
  CandidateStats stats;
  const auto candidates = CollectCandidates(a, b, config, &stats);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].a, 0u);
  EXPECT_EQ(candidates[0].b, 0u);
  EXPECT_EQ(stats.emitted, 1);
  // Index found it and LSH found it again (identical token prefix =>
  // near-certain band collision): the re-emit must land in duplicates.
  EXPECT_GT(stats.index_candidates, 0);
  EXPECT_EQ(stats.index_candidates + stats.lsh_candidates,
            stats.emitted + stats.duplicates);
}

TEST(CandidateStreamTest, MirroredOrientationCollapses) {
  // LSH-only: buckets hold union ids in insertion order, so the pair can
  // surface in either orientation depending on band — all orientations
  // must canonicalize to (A row, B row).
  data::Table a = MakeTable(
      "A", {"sony wh 1000xm4 wireless headphones", "dell xps 13 laptop"});
  data::Table b = MakeTable(
      "B", {"dell xps 13 laptop", "sony wh 1000xm4 wireless headphones"});
  CandidateGenConfig config;
  config.use_index = false;
  config.use_lsh = true;
  CandidateStats stats;
  const auto candidates = CollectCandidates(a, b, config, &stats);
  std::set<std::pair<uint32_t, uint32_t>> unique;
  for (const auto& c : candidates) {
    EXPECT_LT(c.a, a.size());
    EXPECT_LT(c.b, b.size());
    EXPECT_TRUE(unique.insert({c.a, c.b}).second)
        << "duplicate pair (" << c.a << "," << c.b << ") reached the output";
  }
  // The two identical cross-table pairs must both be present, exactly once.
  EXPECT_TRUE(unique.count({0, 1}));
  EXPECT_TRUE(unique.count({1, 0}));
  // Identical records collide in every band (16 by default): all re-emits
  // beyond the first are deduplicated, in whatever orientation they came.
  EXPECT_GT(stats.duplicates, 0);
}

TEST(CandidateStreamTest, WithinTableBucketPairsAreSkipped) {
  // Two identical records inside table A must not produce an A-A pair.
  data::Table a = MakeTable("A", {"lg c1 55 inch oled tv",
                                  "lg c1 55 inch oled tv"});
  data::Table b = MakeTable("B", {"bose revolve bluetooth speaker"});
  CandidateGenConfig config;
  config.use_index = false;
  config.use_lsh = true;
  const auto candidates = CollectCandidates(a, b, config, nullptr);
  EXPECT_TRUE(candidates.empty());
}

TEST(CandidateStreamTest, EmitFalseStopsGeneration) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/80, /*seed=*/5).ValueOrDie();
  CandidateGenConfig config;
  int emitted = 0;
  const CandidateStats stats = GenerateCandidates(
      tables.a, tables.b, config, [&](Candidate) { return ++emitted < 3; });
  EXPECT_EQ(emitted, 3);
  EXPECT_EQ(stats.emitted, 3);
}

TEST(CandidateStreamTest, RecallOnGeneratedTables) {
  auto tables =
      data::GenerateTables("AB", /*n_entities=*/300, /*seed=*/11).ValueOrDie();
  CandidateGenConfig config;
  CandidateStats stats;
  const auto candidates =
      CollectCandidates(tables.a, tables.b, config, &stats);
  const double recall = CandidateRecall(candidates, tables.gold_matches);
  EXPECT_GE(recall, 0.9) << "blocking recall collapsed on generated tables";
  // Blocking must actually block: far fewer candidates than cross product.
  EXPECT_LT(static_cast<double>(stats.emitted),
            0.25 * static_cast<double>(tables.a.size()) *
                static_cast<double>(tables.b.size()));
}

TEST(CandidateQueueTest, BoundedBlockingHandoff) {
  CandidateQueue queue(/*capacity=*/2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (uint32_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(queue.Push({i, i}));
      pushed.fetch_add(1);
    }
    queue.Close();
  });
  // Give the producer a moment: it must stall at the capacity bound.
  while (pushed.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pushed.load(), 3);  // 2 queued + at most 1 in flight past wait
  std::vector<uint32_t> seen;
  for (auto c = queue.Pop(); c.has_value(); c = queue.Pop()) {
    seen.push_back(c->a);
  }
  producer.join();
  ASSERT_EQ(seen.size(), 6u);
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(seen[i], i);  // FIFO
}

TEST(CandidateQueueTest, CloseUnblocksProducerAndDrainsConsumer) {
  CandidateQueue queue(1);
  ASSERT_TRUE(queue.Push({1, 2}));
  std::thread producer([&] {
    // Queue is full: this Push blocks until Close, then reports failure.
    EXPECT_FALSE(queue.Push({3, 4}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  // The item queued before Close still drains.
  auto c = queue.Pop();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->a, 1u);
  EXPECT_FALSE(queue.Pop().has_value());
}

}  // namespace
}  // namespace dader::block
