#include "block/union_find.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace dader::block {
namespace {

// Brute-force connected components by label propagation to a fixed point.
std::vector<std::vector<uint32_t>> BruteForceComponents(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    size_t min_size) {
  std::vector<uint32_t> label(n);
  for (size_t i = 0; i < n; ++i) label[i] = static_cast<uint32_t>(i);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [x, y] : edges) {
      const uint32_t m = std::min(label[x], label[y]);
      if (label[x] != m || label[y] != m) {
        label[x] = label[y] = m;
        changed = true;
      }
    }
  }
  std::vector<std::vector<uint32_t>> components;
  for (uint32_t root = 0; root < n; ++root) {
    std::vector<uint32_t> members;
    for (uint32_t i = 0; i < n; ++i) {
      if (label[i] == root) members.push_back(i);
    }
    if (members.size() >= min_size) components.push_back(std::move(members));
  }
  std::sort(components.begin(), components.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return components;
}

TEST(UnionFindTest, BasicUnionAndFind) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(3, 4));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_TRUE(uf.Union(1, 4));
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_components(), 2u);
}

TEST(UnionFindTest, ClustersFiltersSingletons) {
  UnionFind uf(6);
  uf.Union(0, 2);
  uf.Union(2, 4);
  const auto clusters = uf.Clusters(/*min_size=*/2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<uint32_t>{0, 2, 4}));
  // min_size=1 includes the singletons.
  EXPECT_EQ(uf.Clusters(1).size(), 4u);
}

TEST(UnionFindTest, TransitiveChainsMatchDedupSemantics) {
  // a1-b1, a2-b1 must chain a1,a2,b1 into one entity (the reason dedup
  // clusters with union-find rather than keeping raw pairs).
  UnionFind uf(4);  // a1=0, a2=1, b1=2, b2=3
  uf.Union(0, 2);
  uf.Union(1, 2);
  const auto clusters = uf.Clusters(2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<uint32_t>{0, 1, 2}));
}

TEST(UnionFindTest, MatchesBruteForceOnSeededRandomGraphs) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = static_cast<size_t>(rng.NextInt(2, 40));
    const size_t num_edges = static_cast<size_t>(rng.NextInt(0, 60));
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    UnionFind uf(n);
    for (size_t e = 0; e < num_edges; ++e) {
      const auto x = static_cast<uint32_t>(rng.NextBelow(n));
      const auto y = static_cast<uint32_t>(rng.NextBelow(n));
      edges.emplace_back(x, y);
      uf.Union(x, y);
    }
    for (size_t min_size : {1u, 2u, 3u}) {
      EXPECT_EQ(uf.Clusters(min_size),
                BruteForceComponents(n, edges, min_size))
          << "trial " << trial << " n=" << n << " edges=" << num_edges
          << " min_size=" << min_size;
    }
    // Component count cross-check (singletons included).
    EXPECT_EQ(uf.num_components(), BruteForceComponents(n, edges, 1).size());
  }
}

}  // namespace
}  // namespace dader::block
