#include "block/tokenize.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dader::block {
namespace {

TEST(TokenizeTest, BasicNormalization) {
  data::Record r({"Samsung Galaxy S21", "  499.99 "});
  const auto tokens = RecordTokens(r, TokenizeConfig{});
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "samsung"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "galaxy"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "s21"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "499"), tokens.end());
  // Sorted + deduplicated.
  EXPECT_TRUE(std::is_sorted(tokens.begin(), tokens.end()));
  EXPECT_EQ(std::adjacent_find(tokens.begin(), tokens.end()), tokens.end());
}

TEST(TokenizeTest, EmptyAndWhitespaceAttributesEmitNothing) {
  // NULL attributes are empty strings (data/schema.h); none of these may
  // ever become a posting key.
  data::Record r({"", "   ", "\t\n  ", " . , !! "});
  EXPECT_TRUE(RecordTokens(r, TokenizeConfig{}).empty());
}

TEST(TokenizeTest, NoEmptyOrWhitespaceTokensEverEmitted) {
  data::Record r({"  mixed   content  ", "", "a-b--c", "  x  "});
  for (const auto& tok : RecordTokens(r, TokenizeConfig{})) {
    EXPECT_FALSE(tok.empty());
    EXPECT_EQ(tok.find(' '), std::string::npos) << tok;
    EXPECT_EQ(tok.find('\t'), std::string::npos) << tok;
  }
}

TEST(TokenizeTest, MinTokenLengthFiltersPunctuationAndShortTokens) {
  data::Record r({"a b cd - ! ef"});
  TokenizeConfig config;
  config.min_token_length = 2;
  const auto tokens = RecordTokens(r, config);
  EXPECT_EQ(tokens, (std::vector<std::string>{"cd", "ef"}));
}

TEST(TokenizeTest, PurePunctuationNeverQualifies) {
  // "--" and ".." meet min_token_length 1 but carry no alnum content;
  // WordTokenize splits them into single chars, and the alnum filter must
  // hold even at min length 1.
  data::Record r({"-- .. !!"});
  TokenizeConfig config;
  config.min_token_length = 1;
  EXPECT_TRUE(RecordTokens(r, config).empty());
}

TEST(TokenizeTest, QgramsAreMarkedAndWhitespaceFree) {
  data::Record r({"galaxy"});
  TokenizeConfig config;
  config.qgram = 3;
  const auto tokens = RecordTokens(r, config);
  // Whole word plus its 3-grams, each marked with \x01.
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "galaxy"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(),
                      std::string("\x01") + "gal"),
            tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(),
                      std::string("\x01") + "axy"),
            tokens.end());
  for (const auto& tok : tokens) {
    EXPECT_EQ(tok.find(' '), std::string::npos);
  }
  // A marked q-gram can never equal a whole word from another record.
  data::Record gal({"gal"});
  TokenizeConfig plain;
  const auto word_tokens = RecordTokens(gal, plain);
  EXPECT_EQ(word_tokens, (std::vector<std::string>{"gal"}));
}

TEST(TokenizeTest, Deterministic) {
  data::Record r({"Canon EOS R6 Mark II", "body only, 24.2 MP"});
  TokenizeConfig config;
  config.qgram = 4;
  EXPECT_EQ(RecordTokens(r, config), RecordTokens(r, config));
}

}  // namespace
}  // namespace dader::block
