#include "nn/layers.h"

#include <gtest/gtest.h>

#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace dader::nn {
namespace {

TEST(LinearTest, OutputShape2D) {
  Rng rng(1);
  Linear fc(4, 3, &rng);
  Tensor x = Tensor::Ones({5, 4});
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
}

TEST(LinearTest, OutputShape3D) {
  Rng rng(2);
  Linear fc(4, 6, &rng);
  Tensor x = Tensor::Ones({2, 3, 4});
  EXPECT_EQ(fc.Forward(x).shape(), (Shape{2, 3, 6}));
}

TEST(LinearTest, BiasApplied) {
  Rng rng(3);
  Linear fc(2, 2, &rng);
  // Zero input: output equals the bias (initialized to zero).
  Tensor y = fc.Forward(Tensor::Zeros({1, 2}));
  EXPECT_EQ(y.vec(), (std::vector<float>{0, 0}));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  Linear fc(3, 2, &rng, /*bias=*/false);
  EXPECT_EQ(fc.Parameters().size(), 1u);
}

TEST(LinearTest, TrainableToTarget) {
  // A 1x1 linear layer can learn y = 2x + 1.
  Rng rng(5);
  Linear fc(1, 1, &rng);
  AdamOptimizer opt(fc.Parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    const float xv = static_cast<float>(step % 5) - 2.0f;
    Tensor x = Tensor::FromVector({1, 1}, {xv});
    Tensor target = Tensor::FromVector({1, 1}, {2.0f * xv + 1.0f});
    opt.ZeroGrad();
    ops::MseLoss(fc.Forward(x), target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(fc.Forward(Tensor::FromVector({1, 1}, {3.0f})).item(), 7.0f,
              0.1f);
}

TEST(LayerNormLayerTest, ParamsRegistered) {
  LayerNorm ln(8);
  EXPECT_EQ(ln.Parameters().size(), 2u);
  EXPECT_EQ(ln.NumParameters(), 16);
}

TEST(EmbeddingLayerTest, LookupShape) {
  Rng rng(6);
  Embedding emb(10, 4, &rng);
  Tensor out = emb.Forward({1, 5, 9});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
}

TEST(EmbeddingLayerTest, SameIdSameVector) {
  Rng rng(7);
  Embedding emb(10, 4, &rng);
  Tensor out = emb.Forward({3, 3});
  for (int j = 0; j < 4; ++j) EXPECT_EQ(out.at(0, j), out.at(1, j));
}

TEST(MlpTest, ShapesThroughHiddenLayers) {
  Rng rng(8);
  Mlp mlp({6, 5, 4, 2}, Activation::kRelu, 0.0f, &rng);
  Tensor y = mlp.Forward(Tensor::Ones({3, 6}), &rng);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(MlpTest, XorLearnable) {
  Rng rng(9);
  Mlp mlp({2, 8, 2}, Activation::kTanh, 0.0f, &rng);
  AdamOptimizer opt(mlp.Parameters(), 0.05f);
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int64_t> ys = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 400; ++epoch) {
    Tensor x = Tensor::FromVector(
        {4, 2}, {xs[0][0], xs[0][1], xs[1][0], xs[1][1], xs[2][0], xs[2][1],
                 xs[3][0], xs[3][1]});
    opt.ZeroGrad();
    ops::CrossEntropyWithLogits(mlp.Forward(x, &rng), ys).Backward();
    opt.Step();
  }
  Tensor logits = mlp.Forward(
      Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1}), &rng);
  for (int i = 0; i < 4; ++i) {
    const int pred = logits.at(i, 1) > logits.at(i, 0) ? 1 : 0;
    EXPECT_EQ(pred, ys[static_cast<size_t>(i)]) << "input " << i;
  }
}

TEST(MlpTest, DropoutOnlyInTraining) {
  Rng rng(10);
  Mlp mlp({4, 16, 2}, Activation::kRelu, 0.5f, &rng);
  mlp.SetTraining(false);
  Tensor x = Tensor::Ones({1, 4});
  Rng r1(3), r2(4);
  // Eval mode: two forwards with different rngs must agree.
  EXPECT_EQ(mlp.Forward(x, &r1).vec(), mlp.Forward(x, &r2).vec());
}

}  // namespace
}  // namespace dader::nn
