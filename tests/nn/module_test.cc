#include "nn/module.h"

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace dader::nn {
namespace {

// Minimal two-level module tree for registry tests.
class Leaf : public Module {
 public:
  explicit Leaf(Rng* rng) {
    w = RegisterParameter("w", Tensor::RandomUniform({2, 2}, -1, 1, rng, true));
  }
  Tensor w;
};

class Root : public Module {
 public:
  explicit Root(Rng* rng) : a(rng), b(rng) {
    bias = RegisterParameter("bias", Tensor::Zeros({2}, true));
    RegisterModule("a", &a);
    RegisterModule("b", &b);
  }
  Tensor bias;
  Leaf a, b;
};

TEST(ModuleTest, ParametersCollectsSubtree) {
  Rng rng(1);
  Root root(&rng);
  EXPECT_EQ(root.Parameters().size(), 3u);
  EXPECT_EQ(root.NumParameters(), 2 + 4 + 4);
}

TEST(ModuleTest, NamedParametersHierarchicalKeys) {
  Rng rng(2);
  Root root(&rng);
  auto named = root.NamedParameters();
  EXPECT_EQ(named.size(), 3u);
  EXPECT_TRUE(named.count("bias"));
  EXPECT_TRUE(named.count("a.w"));
  EXPECT_TRUE(named.count("b.w"));
}

TEST(ModuleTest, TrainingModePropagates) {
  Rng rng(3);
  Root root(&rng);
  EXPECT_TRUE(root.a.training());
  root.SetTraining(false);
  EXPECT_FALSE(root.a.training());
  EXPECT_FALSE(root.b.training());
  root.SetTraining(true);
  EXPECT_TRUE(root.b.training());
}

TEST(ModuleTest, SnapshotAndRestore) {
  Rng rng(4);
  Root root(&rng);
  auto snapshot = root.SnapshotWeights();
  const float orig = root.a.w.vec()[0];
  root.a.w.vec()[0] = 99.0f;
  ASSERT_TRUE(root.RestoreWeights(snapshot).ok());
  EXPECT_FLOAT_EQ(root.a.w.vec()[0], orig);
}

TEST(ModuleTest, SnapshotIsDeepCopy) {
  Rng rng(5);
  Root root(&rng);
  auto snapshot = root.SnapshotWeights();
  root.a.w.vec()[0] += 1.0f;
  EXPECT_NE(snapshot.at("a.w").vec()[0], root.a.w.vec()[0]);
}

TEST(ModuleTest, RestoreRejectsWrongKeys) {
  Rng rng(6);
  Root root(&rng);
  auto snapshot = root.SnapshotWeights();
  snapshot.erase("a.w");
  EXPECT_FALSE(root.RestoreWeights(snapshot).ok());
}

TEST(ModuleTest, RestoreRejectsWrongShape) {
  Rng rng(7);
  Root root(&rng);
  auto snapshot = root.SnapshotWeights();
  snapshot["a.w"] = Tensor::Zeros({3, 3});
  EXPECT_FALSE(root.RestoreWeights(snapshot).ok());
}

TEST(ModuleTest, CopyWeightsFromTwin) {
  Rng r1(8), r2(9);
  Root a(&r1), b(&r2);
  EXPECT_NE(a.a.w.vec(), b.a.w.vec());
  ASSERT_TRUE(b.CopyWeightsFrom(a).ok());
  EXPECT_EQ(a.a.w.vec(), b.a.w.vec());
  EXPECT_EQ(a.bias.vec(), b.bias.vec());
}

}  // namespace
}  // namespace dader::nn
