#include "nn/gru.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace dader::nn {
namespace {

TEST(GruTest, OutputShape) {
  Rng rng(1);
  Gru gru(6, 4, &rng);
  Tensor x = Tensor::Ones({3, 5, 6});
  EXPECT_EQ(gru.Forward(x).shape(), (Shape{3, 5, 4}));
}

TEST(GruTest, HiddenStatesBounded) {
  // GRU states are convex mixes of tanh outputs, so |h| <= 1.
  Rng rng(2);
  Gru gru(4, 8, &rng);
  Rng data_rng(3);
  Tensor x = Tensor::RandomUniform({2, 10, 4}, -5, 5, &data_rng);
  Tensor h = gru.Forward(x);
  for (float v : h.vec()) EXPECT_LE(std::fabs(v), 1.0f + 1e-5f);
}

TEST(GruTest, CausalInForwardDirection) {
  // Changing the last timestep input must not affect earlier states.
  Rng rng(4);
  Gru gru(3, 4, &rng);
  Rng data_rng(5);
  Tensor x1 = Tensor::RandomUniform({1, 4, 3}, -1, 1, &data_rng);
  Tensor x2 = x1.Clone();
  for (int j = 0; j < 3; ++j) x2.vec()[3 * 3 + static_cast<size_t>(j)] = 9.0f;
  Tensor h1 = gru.Forward(x1);
  Tensor h2 = gru.Forward(x2);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(h1.vec()[static_cast<size_t>(t * 4 + j)],
                      h2.vec()[static_cast<size_t>(t * 4 + j)]);
    }
  }
  // But the last state must differ.
  float diff = 0.0f;
  for (int64_t j = 0; j < 4; ++j) {
    diff += std::fabs(h1.vec()[static_cast<size_t>(3 * 4 + j)] -
                      h2.vec()[static_cast<size_t>(3 * 4 + j)]);
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(GruTest, ReverseDirectionAntiCausal) {
  // In reverse mode, changing the FIRST timestep must not affect the
  // states at later positions (processed earlier in reverse time).
  Rng rng(6);
  Gru gru(3, 4, &rng);
  Rng data_rng(7);
  Tensor x1 = Tensor::RandomUniform({1, 4, 3}, -1, 1, &data_rng);
  Tensor x2 = x1.Clone();
  for (int j = 0; j < 3; ++j) x2.vec()[static_cast<size_t>(j)] = 9.0f;
  Tensor h1 = gru.Forward(x1, /*reverse=*/true);
  Tensor h2 = gru.Forward(x2, /*reverse=*/true);
  for (int64_t t = 1; t < 4; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(h1.vec()[static_cast<size_t>(t * 4 + j)],
                      h2.vec()[static_cast<size_t>(t * 4 + j)]);
    }
  }
}

TEST(BiGruTest, ConcatenatedShape) {
  Rng rng(8);
  BiGru bigru(5, 6, &rng);
  EXPECT_EQ(bigru.output_dim(), 12);
  Tensor x = Tensor::Ones({2, 7, 5});
  EXPECT_EQ(bigru.Forward(x).shape(), (Shape{2, 7, 12}));
}

TEST(BiGruTest, GradientsFlowToAllParams) {
  Rng rng(9);
  BiGru bigru(3, 4, &rng);
  Rng data_rng(10);
  Tensor x = Tensor::RandomUniform({2, 5, 3}, -1, 1, &data_rng);
  ops::SumAll(bigru.Forward(x)).Backward();
  for (const auto& p : bigru.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
  }
}

TEST(BiGruTest, LearnsSequenceMembership) {
  // Detect whether the "signal" input pattern appears anywhere in time.
  Rng rng(11);
  BiGru bigru(2, 6, &rng);
  Linear head(12, 2, &rng);
  std::vector<Tensor> params = bigru.Parameters();
  for (auto& p : head.Parameters()) params.push_back(p);
  AdamOptimizer opt(params, 1e-2f);

  Rng data_rng(12);
  auto make_x = [&](bool pos) {
    std::vector<float> vals;
    for (int t = 0; t < 6; ++t) {
      vals.push_back(data_rng.NextFloat(-0.3f, 0.3f));
      vals.push_back(data_rng.NextFloat(-0.3f, 0.3f));
    }
    if (pos) {
      const size_t t = data_rng.NextBelow(6);
      vals[t * 2] = 1.0f;
      vals[t * 2 + 1] = 1.0f;
    }
    return vals;
  };

  for (int step = 0; step < 200; ++step) {
    std::vector<float> batch;
    std::vector<int64_t> labels;
    for (int b = 0; b < 8; ++b) {
      const bool pos = b % 2 == 0;
      auto x = make_x(pos);
      batch.insert(batch.end(), x.begin(), x.end());
      labels.push_back(pos);
    }
    Tensor xt = Tensor::FromVector({8, 6, 2}, std::move(batch));
    Tensor pooled = ops::MeanAxis(bigru.Forward(xt), 1);
    opt.ZeroGrad();
    ops::CrossEntropyWithLogits(head.Forward(pooled), labels).Backward();
    opt.Step();
  }
  int correct = 0;
  for (int i = 0; i < 30; ++i) {
    const bool pos = i % 2 == 0;
    Tensor xt = Tensor::FromVector({1, 6, 2}, make_x(pos));
    Tensor logits = head.Forward(ops::MeanAxis(bigru.Forward(xt), 1));
    correct += ((logits.at(0, 1) > logits.at(0, 0)) == pos);
  }
  EXPECT_GE(correct, 23);
}

}  // namespace
}  // namespace dader::nn
