#include "nn/transformer.h"

#include <gtest/gtest.h>
#include <cmath>

#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/nn_ops.h"

namespace dader::nn {
namespace {

TransformerConfig TinyConfig() {
  TransformerConfig c;
  c.vocab_size = 50;
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.ffn_dim = 32;
  c.dropout = 0.0f;
  return c;
}

std::vector<float> OnesMask(size_t n) { return std::vector<float>(n, 1.0f); }

TEST(AttentionTest, OutputShape) {
  Rng rng(1);
  MultiHeadSelfAttention attn(16, 4, 0.0f, &rng);
  Tensor x = Tensor::Ones({2, 5, 16});
  Tensor y = attn.Forward(x, OnesMask(10), &rng);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 16}));
}

TEST(AttentionTest, PaddingMaskBlocksInfluence) {
  // Changing a padded position's input must not change real outputs.
  Rng rng(2);
  MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  Rng data_rng(3);
  Tensor x1 = Tensor::RandomUniform({1, 4, 8}, -1, 1, &data_rng);
  Tensor x2 = x1.Clone();
  for (int j = 0; j < 8; ++j) x2.vec()[3 * 8 + static_cast<size_t>(j)] += 5.0f;
  std::vector<float> mask = {1, 1, 1, 0};  // position 3 padded
  Tensor y1 = attn.Forward(x1, mask, &rng);
  Tensor y2 = attn.Forward(x2, mask, &rng);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.vec()[static_cast<size_t>(t * 8 + j)],
                  y2.vec()[static_cast<size_t>(t * 8 + j)], 1e-4);
    }
  }
}

TEST(TransformerTest, ForwardShape) {
  Rng rng(4);
  TransformerEncoder enc(TinyConfig(), &rng);
  std::vector<int64_t> ids(2 * 8, 1);
  Tensor h = enc.Forward(ids, OnesMask(16), {}, 2, &rng);
  EXPECT_EQ(h.shape(), (Shape{2, 8, 16}));
}

TEST(TransformerTest, DeterministicInEvalMode) {
  Rng rng(5);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  std::vector<int64_t> ids = {1, 2, 3, 4, 5, 6, 7, 8};
  Rng r1(1), r2(2);
  Tensor a = enc.Forward(ids, OnesMask(8), {}, 1, &r1);
  Tensor b = enc.Forward(ids, OnesMask(8), {}, 1, &r2);
  EXPECT_EQ(a.vec(), b.vec());
}

TEST(TransformerTest, PositionSensitivity) {
  // Swapping two tokens must change the [CLS]-position output.
  Rng rng(6);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  std::vector<int64_t> ids1 = {9, 10, 11, 12, 13, 14, 15, 16};
  std::vector<int64_t> ids2 = {9, 11, 10, 12, 13, 14, 15, 16};
  Rng r(1);
  Tensor h1 = enc.Forward(ids1, OnesMask(8), {}, 1, &r);
  Tensor h2 = enc.Forward(ids2, OnesMask(8), {}, 1, &r);
  float diff = 0.0f;
  for (int j = 0; j < 16; ++j) {
    diff += std::fabs(h1.vec()[static_cast<size_t>(j)] -
                      h2.vec()[static_cast<size_t>(j)]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(TransformerTest, OverlapFlagsChangeOutput) {
  Rng rng(7);
  TransformerEncoder enc(TinyConfig(), &rng);
  enc.SetTraining(false);
  std::vector<int64_t> ids = {9, 10, 11, 12, 13, 14, 15, 16};
  Rng r(1);
  Tensor h0 = enc.Forward(ids, OnesMask(8), std::vector<float>(8, 0.0f), 1, &r);
  Tensor h1 = enc.Forward(ids, OnesMask(8), std::vector<float>(8, 1.0f), 1, &r);
  EXPECT_NE(h0.vec(), h1.vec());
}

TEST(TransformerTest, GradientsReachEmbeddings) {
  Rng rng(8);
  TransformerConfig cfg = TinyConfig();
  cfg.num_layers = 1;
  TransformerEncoder enc(cfg, &rng);
  std::vector<int64_t> ids = {1, 2, 3, 4, 5, 6, 7, 2};
  Tensor h = enc.Forward(ids, OnesMask(8), {}, 1, &rng);
  ops::SumAll(h).Backward();
  bool any_nonzero = false;
  for (const auto& [name, p] : enc.NamedParameters()) {
    if (name == "token_emb.table" && !p.grad().empty()) {
      for (float g : p.grad()) any_nonzero |= (g != 0.0f);
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(TransformerTest, CanOverfitTinyClassification) {
  // Classify whether token 5 appears in the sequence — a sanity check that
  // the whole stack trains end to end.
  Rng rng(9);
  TransformerConfig cfg = TinyConfig();
  cfg.num_layers = 1;
  TransformerEncoder enc(cfg, &rng);
  Linear head(16, 2, &rng);
  std::vector<Tensor> params = enc.Parameters();
  for (auto& p : head.Parameters()) params.push_back(p);
  AdamOptimizer opt(params, 5e-3f);

  Rng data_rng(10);
  auto make_example = [&](bool positive, std::vector<int64_t>* ids) {
    ids->clear();
    for (int t = 0; t < 8; ++t) {
      ids->push_back(6 + static_cast<int64_t>(data_rng.NextBelow(40)));
    }
    if (positive) (*ids)[data_rng.NextBelow(8)] = 5;
    else for (auto& id : *ids) if (id == 5) id = 6;
  };

  for (int step = 0; step < 150; ++step) {
    std::vector<int64_t> batch_ids;
    std::vector<int64_t> labels;
    for (int b = 0; b < 8; ++b) {
      std::vector<int64_t> ids;
      const bool pos = b % 2 == 0;
      make_example(pos, &ids);
      batch_ids.insert(batch_ids.end(), ids.begin(), ids.end());
      labels.push_back(pos ? 1 : 0);
    }
    Tensor h = enc.Forward(batch_ids, OnesMask(batch_ids.size()), {}, 8, &rng);
    Tensor cls = ops::SelectAxis(h, 1, 0);
    Tensor pooled = ops::MeanAxis(h, 1);
    Tensor logits = head.Forward(pooled);
    opt.ZeroGrad();
    ops::CrossEntropyWithLogits(logits, labels).Backward();
    opt.Step();
    (void)cls;
  }
  // Evaluate on fresh samples.
  int correct = 0;
  const int n_eval = 40;
  for (int i = 0; i < n_eval; ++i) {
    std::vector<int64_t> ids;
    const bool pos = i % 2 == 0;
    make_example(pos, &ids);
    Tensor h = enc.Forward(ids, OnesMask(8), {}, 1, &rng);
    Tensor logits = head.Forward(ops::MeanAxis(h, 1));
    const int pred = logits.at(0, 1) > logits.at(0, 0) ? 1 : 0;
    correct += (pred == (pos ? 1 : 0));
  }
  EXPECT_GE(correct, n_eval * 3 / 4);
}

}  // namespace
}  // namespace dader::nn
