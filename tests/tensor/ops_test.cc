#include "tensor/ops.h"

#include <gtest/gtest.h>

namespace dader {
namespace {

using ops::Add;
using ops::BatchMatMul;
using ops::Concat;
using ops::MatMul;
using ops::MeanAxis;
using ops::Reshape;
using ops::SelectAxis;
using ops::SliceAxis0;
using ops::Stack0;
using ops::SwapAxes;
using ops::TransposeLast2;

TEST(AddTest, SameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(Add(a, b).vec(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(AddTest, BroadcastLastDim) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  EXPECT_EQ(Add(a, bias).vec(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(AddTest, BroadcastScalar) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ(Add(a, Tensor::Scalar(5)).vec(), (std::vector<float>{6, 7, 8}));
}

TEST(MulTest, ElementwiseAndBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {2, 2, 3, 3});
  EXPECT_EQ(ops::Mul(a, b).vec(), (std::vector<float>{2, 4, 9, 12}));
  Tensor v = Tensor::FromVector({2}, {10, 100});
  EXPECT_EQ(ops::Mul(a, v).vec(), (std::vector<float>{10, 200, 30, 400}));
}

TEST(SubTest, Basic) {
  Tensor a = Tensor::FromVector({2}, {5, 7});
  Tensor b = Tensor::FromVector({2}, {2, 3});
  EXPECT_EQ(ops::Sub(a, b).vec(), (std::vector<float>{3, 4}));
}

TEST(ScalarOpsTest, AddMulNeg) {
  Tensor a = Tensor::FromVector({2}, {1, -2});
  EXPECT_EQ(ops::AddScalar(a, 1.0f).vec(), (std::vector<float>{2, -1}));
  EXPECT_EQ(ops::MulScalar(a, -2.0f).vec(), (std::vector<float>{-2, 4}));
  EXPECT_EQ(ops::Neg(a).vec(), (std::vector<float>{-1, 2}));
}

TEST(ActivationTest, Relu) {
  Tensor a = Tensor::FromVector({4}, {-1, 0, 0.5, 2});
  EXPECT_EQ(ops::Relu(a).vec(), (std::vector<float>{0, 0, 0.5, 2}));
}

TEST(ActivationTest, LeakyRelu) {
  Tensor a = Tensor::FromVector({2}, {-10, 10});
  const auto v = ops::LeakyRelu(a, 0.1f).vec();
  EXPECT_FLOAT_EQ(v[0], -1.0f);
  EXPECT_FLOAT_EQ(v[1], 10.0f);
}

TEST(ActivationTest, SigmoidKnownValues) {
  Tensor a = Tensor::FromVector({3}, {0, 100, -100});
  const auto v = ops::Sigmoid(a).vec();
  EXPECT_FLOAT_EQ(v[0], 0.5f);
  EXPECT_NEAR(v[1], 1.0f, 1e-6);
  EXPECT_NEAR(v[2], 0.0f, 1e-6);
}

TEST(ActivationTest, TanhExpLogSquare) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(ops::Tanh(a).vec()[0], 0.0f);
  EXPECT_NEAR(ops::Exp(a).vec()[1], 2.718281f, 1e-5);
  EXPECT_FLOAT_EQ(ops::Log(ops::Exp(a)).vec()[1], 1.0f);
  EXPECT_FLOAT_EQ(ops::Square(Tensor::FromVector({1}, {-3})).item(), 9.0f);
}

TEST(LogTest, ClampsNearZero) {
  Tensor a = Tensor::FromVector({1}, {0.0f});
  EXPECT_GT(ops::Log(a).item(), -40.0f);  // log(eps), finite
}

TEST(MatMulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.vec(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(MatMulTest, IdentityPreserves) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor eye = Tensor::FromVector({2, 2}, {1, 0, 0, 1});
  EXPECT_EQ(MatMul(a, eye).vec(), a.vec());
}

TEST(BatchMatMulTest, PerBatchProducts) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {1, 1, 10, 10});
  Tensor c = BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.vec(), (std::vector<float>{3, 70}));
}

TEST(ReshapeTest, PreservesData) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_EQ(r.vec(), a.vec());
}

TEST(TransposeTest, TwoD) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.vec(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TransposeTest, BatchedThreeD) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor t = TransposeLast2(a);
  EXPECT_EQ(t.vec(), (std::vector<float>{1, 3, 2, 4, 5, 7, 6, 8}));
}

TEST(SwapAxesTest, MatchesTransposeFor2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SwapAxes(a, 0, 1).vec(), TransposeLast2(a).vec());
}

TEST(SwapAxesTest, MiddleAxesOf4D) {
  // [1,2,2,1]: swapping axes 1,2 transposes the inner 2x2.
  Tensor a = Tensor::FromVector({1, 2, 2, 1}, {1, 2, 3, 4});
  EXPECT_EQ(SwapAxes(a, 1, 2).vec(), (std::vector<float>{1, 3, 2, 4}));
}

TEST(SwapAxesTest, SelfInverse) {
  Rng rng(3);
  Tensor a = Tensor::RandomUniform({2, 3, 4}, -1, 1, &rng);
  EXPECT_EQ(SwapAxes(SwapAxes(a, 0, 2), 0, 2).vec(), a.vec());
}

TEST(ConcatTest, Axis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.vec(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(ConcatTest, Axis1) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.vec(), (std::vector<float>{1, 3, 4, 2, 5, 6}));
}

TEST(ConcatTest, LastAxisOf3D) {
  Tensor a = Tensor::FromVector({1, 2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2, 1}, {3, 4});
  Tensor c = Concat({a, b}, 2);
  EXPECT_EQ(c.shape(), (Shape{1, 2, 2}));
  EXPECT_EQ(c.vec(), (std::vector<float>{1, 3, 2, 4}));
}

TEST(SelectAxisTest, ClsSelection) {
  // [B=2, L=2, d=2]: select position 0 along axis 1.
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor cls = SelectAxis(a, 1, 0);
  EXPECT_EQ(cls.shape(), (Shape{2, 2}));
  EXPECT_EQ(cls.vec(), (std::vector<float>{1, 2, 5, 6}));
}

TEST(SelectAxisTest, LastIndex) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SelectAxis(a, 1, 2).vec(), (std::vector<float>{3, 6}));
}

TEST(SliceAxis0Test, MiddleSlice) {
  Tensor a = Tensor::FromVector({4, 1}, {1, 2, 3, 4});
  EXPECT_EQ(SliceAxis0(a, 1, 2).vec(), (std::vector<float>{2, 3}));
}

TEST(Stack0Test, StacksAndShapes) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack0({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.vec(), (std::vector<float>{1, 2, 3, 4}));
}

TEST(ReduceTest, SumAllMeanAll) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(ops::SumAll(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(ops::MeanAll(a).item(), 2.5f);
}

TEST(ReduceTest, MeanAxisMiddle) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor m = MeanAxis(a, 1);
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_EQ(m.vec(), (std::vector<float>{2, 3, 6, 7}));
}

TEST(ReduceTest, MeanAxis0) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(MeanAxis(a, 0).vec(), (std::vector<float>{2, 3}));
}

TEST(ReduceTest, MaxLastAxis) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 9, 2, -4, -1, -7});
  EXPECT_EQ(ops::MaxLastAxis(a).vec(), (std::vector<float>{9, -1}));
}

}  // namespace
}  // namespace dader
