#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>

#include "util/fault.h"

namespace dader {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  const std::string path = TempPath("tensors_roundtrip.bin");
  std::map<std::string, Tensor> tensors;
  tensors["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b.bias"] = Tensor::FromVector({3}, {-1, 0, 1});
  ASSERT_TRUE(SaveTensors(path, tensors).ok());

  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  const auto& got = loaded.ValueOrDie();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at("a.weight").shape(), (Shape{2, 3}));
  EXPECT_EQ(got.at("a.weight").vec(), tensors["a.weight"].vec());
  EXPECT_EQ(got.at("b.bias").vec(), tensors["b.bias"].vec());
  EXPECT_FALSE(got.at("a.weight").requires_grad());
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyCollection) {
  const std::string path = TempPath("tensors_empty.bin");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.ValueOrDie().empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(LoadTensors("/nonexistent/tensors.bin").ok());
}

TEST(SerializeTest, RejectsGarbageFile) {
  const std::string path = TempPath("tensors_garbage.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not a tensor file at all, padding padding padding", f);
  fclose(f);
  EXPECT_FALSE(LoadTensors(path).ok());
  std::remove(path.c_str());
}

uint64_t FileSizeOf(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::map<std::string, Tensor> SampleTensors() {
  std::map<std::string, Tensor> tensors;
  tensors["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b.bias"] = Tensor::FromVector({3}, {-1, 0, 1});
  return tensors;
}

TEST(SerializeTest, TruncatedFileYieldsDescriptiveError) {
  const std::string path = TempPath("tensors_truncated.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  for (double keep : {0.9, 0.5, 0.1}) {
    ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
    ASSERT_TRUE(FaultInjector::TruncateFile(path, keep).ok());
    auto loaded = LoadTensors(path);
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_FALSE(loaded.status().ToString().empty());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingCrcFooterIsTruncationError) {
  const std::string path = TempPath("tensors_no_footer.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  // Chop exactly the 4-byte CRC footer: the payload itself is intact, so
  // only the footer check can catch this.
  const uint64_t size = FileSizeOf(path);
  ASSERT_TRUE(
      FaultInjector::TruncateFile(path,
                                  static_cast<double>(size - 4) /
                                      static_cast<double>(size) + 1e-12)
          .ok());
  ASSERT_EQ(FileSizeOf(path), size - 4);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, CrcCatchesSingleByteFlip) {
  const std::string path = TempPath("tensors_bitflip.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  // Flip one byte inside the float payload, just before the CRC footer —
  // the size-preserving corruption only a checksum can detect.
  const uint64_t size = FileSizeOf(path);
  ASSERT_TRUE(FaultInjector::CorruptByte(path, size - 6).ok());
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("CRC"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveIsAtomicNoTempFileLeftBehind) {
  const std::string path = TempPath("tensors_atomic.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveToUnwritableDirFailsCleanly) {
  const std::string path = "/nonexistent/dir/tensors.bin";
  Status st = SaveTensors(path, SampleTensors());
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(SerializeTest, LargeTensorRoundTrip) {
  const std::string path = TempPath("tensors_large.bin");
  Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors["big"] = Tensor::RandomNormal({100, 64}, 1.0f, &rng);
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().at("big").vec(), tensors["big"].vec());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader
