#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/fault.h"

namespace dader {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  const std::string path = TempPath("tensors_roundtrip.bin");
  std::map<std::string, Tensor> tensors;
  tensors["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b.bias"] = Tensor::FromVector({3}, {-1, 0, 1});
  ASSERT_TRUE(SaveTensors(path, tensors).ok());

  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  const auto& got = loaded.ValueOrDie();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at("a.weight").shape(), (Shape{2, 3}));
  EXPECT_EQ(got.at("a.weight").vec(), tensors["a.weight"].vec());
  EXPECT_EQ(got.at("b.bias").vec(), tensors["b.bias"].vec());
  EXPECT_FALSE(got.at("a.weight").requires_grad());
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyCollection) {
  const std::string path = TempPath("tensors_empty.bin");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.ValueOrDie().empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(LoadTensors("/nonexistent/tensors.bin").ok());
}

TEST(SerializeTest, RejectsGarbageFile) {
  const std::string path = TempPath("tensors_garbage.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not a tensor file at all, padding padding padding", f);
  fclose(f);
  EXPECT_FALSE(LoadTensors(path).ok());
  std::remove(path.c_str());
}

uint64_t FileSizeOf(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::map<std::string, Tensor> SampleTensors() {
  std::map<std::string, Tensor> tensors;
  tensors["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b.bias"] = Tensor::FromVector({3}, {-1, 0, 1});
  return tensors;
}

TEST(SerializeTest, TruncatedFileYieldsDescriptiveError) {
  const std::string path = TempPath("tensors_truncated.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  for (double keep : {0.9, 0.5, 0.1}) {
    ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
    ASSERT_TRUE(FaultInjector::TruncateFile(path, keep).ok());
    auto loaded = LoadTensors(path);
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_FALSE(loaded.status().ToString().empty());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingCrcFooterIsTruncationError) {
  const std::string path = TempPath("tensors_no_footer.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  // Chop exactly the 4-byte CRC footer: the payload itself is intact, so
  // only the footer check can catch this.
  const uint64_t size = FileSizeOf(path);
  ASSERT_TRUE(
      FaultInjector::TruncateFile(path,
                                  static_cast<double>(size - 4) /
                                      static_cast<double>(size) + 1e-12)
          .ok());
  ASSERT_EQ(FileSizeOf(path), size - 4);
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, CrcCatchesSingleByteFlip) {
  const std::string path = TempPath("tensors_bitflip.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  // Flip one byte inside the float payload, just before the CRC footer —
  // the size-preserving corruption only a checksum can detect.
  const uint64_t size = FileSizeOf(path);
  ASSERT_TRUE(FaultInjector::CorruptByte(path, size - 6).ok());
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("CRC"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveIsAtomicNoTempFileLeftBehind) {
  const std::string path = TempPath("tensors_atomic.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveToUnwritableDirFailsCleanly) {
  const std::string path = "/nonexistent/dir/tensors.bin";
  Status st = SaveTensors(path, SampleTensors());
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// --- v3: int8 quantized entries ---------------------------------------

TensorFile SampleQuantFile() {
  TensorFile file;
  file.dense["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const std::vector<float> w = {0.5f, -1.0f, 0.25f, 1.0f, -0.125f, 2.0f};
  const std::vector<float> bias = {0.75f, -0.5f};
  file.quant["m.fc"] = quant::QuantizeLinearWeights(
      w.data(), /*in=*/3, /*out=*/2, bias.data(), -1.5f, 3.0f);
  return file;
}

TEST(SerializeTest, QuantizedLinearRoundTrip) {
  const std::string path = TempPath("tensors_quant_roundtrip.bin");
  const TensorFile file = SampleQuantFile();
  ASSERT_TRUE(SaveTensorFile(path, file).ok());

  auto loaded = LoadTensorFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TensorFile& got = loaded.ValueOrDie();
  ASSERT_EQ(got.dense.size(), 1u);
  EXPECT_EQ(got.dense.at("a.weight").vec(), file.dense.at("a.weight").vec());
  ASSERT_EQ(got.quant.size(), 1u);

  const quant::QuantizedLinear& in = *file.quant.at("m.fc");
  const quant::QuantizedLinear& out = *got.quant.at("m.fc");
  EXPECT_EQ(out.in, in.in);
  EXPECT_EQ(out.out, in.out);
  EXPECT_EQ(out.weight_q, in.weight_q);
  EXPECT_EQ(out.weight_scale, in.weight_scale);
  EXPECT_EQ(out.bias, in.bias);
  EXPECT_EQ(out.act.scale, in.act.scale);
  EXPECT_EQ(out.act.zero_point, in.act.zero_point);
  // Derived fields are recomputed on load, never trusted from disk — and
  // must land exactly where the writer's state had them.
  EXPECT_EQ(out.col_sum, in.col_sum);
  EXPECT_EQ(out.pair_bound, in.pair_bound);
  std::remove(path.c_str());
}

TEST(SerializeTest, DenseOnlyTensorFileIsBitIdenticalToV2Writer) {
  // SaveTensorFile without quant entries must produce byte-for-byte the
  // same file as the legacy SaveTensors writer (old readers keep working).
  const std::string v2_path = TempPath("tensors_v2.bin");
  const std::string tf_path = TempPath("tensors_tf.bin");
  ASSERT_TRUE(SaveTensors(v2_path, SampleTensors()).ok());
  TensorFile file;
  file.dense = SampleTensors();
  ASSERT_TRUE(SaveTensorFile(tf_path, file).ok());

  std::ifstream a(v2_path, std::ios::binary), b(tf_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(v2_path.c_str());
  std::remove(tf_path.c_str());
}

TEST(SerializeTest, LoadTensorFileReadsLegacyV2) {
  const std::string path = TempPath("tensors_v2_compat.bin");
  ASSERT_TRUE(SaveTensors(path, SampleTensors()).ok());
  auto loaded = LoadTensorFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().dense.size(), 2u);
  EXPECT_TRUE(loaded.ValueOrDie().quant.empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadTensorsRejectsQuantizedFiles) {
  const std::string path = TempPath("tensors_quant_reject.bin");
  ASSERT_TRUE(SaveTensorFile(path, SampleQuantFile()).ok());
  auto loaded = LoadTensors(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_FALSE(loaded.status().ToString().empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, TornQuantizedFileFailsLikeV2) {
  const std::string path = TempPath("tensors_quant_torn.bin");
  for (double keep : {0.9, 0.5, 0.1}) {
    ASSERT_TRUE(SaveTensorFile(path, SampleQuantFile()).ok());
    ASSERT_TRUE(FaultInjector::TruncateFile(path, keep).ok());
    EXPECT_FALSE(LoadTensorFile(path).ok()) << "keep=" << keep;
  }
  // Size-preserving bit flip inside the fp32 bias payload (the last 12
  // bytes are act scale + zero point + CRC): any float is a structurally
  // valid bias, so only the CRC footer can catch this one.
  ASSERT_TRUE(SaveTensorFile(path, SampleQuantFile()).ok());
  ASSERT_TRUE(FaultInjector::CorruptByte(path, FileSizeOf(path) - 14).ok());
  auto loaded = LoadTensorFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("CRC"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, DuplicateNameAcrossDenseAndQuantFails) {
  const std::string path = TempPath("tensors_dupe.bin");
  TensorFile file = SampleQuantFile();
  file.dense["m.fc"] = Tensor::FromVector({1}, {1.0f});
  EXPECT_FALSE(SaveTensorFile(path, file).ok());
}

TEST(SerializeTest, LargeTensorRoundTrip) {
  const std::string path = TempPath("tensors_large.bin");
  Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors["big"] = Tensor::RandomNormal({100, 64}, 1.0f, &rng);
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().at("big").vec(), tensors["big"].vec());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader
