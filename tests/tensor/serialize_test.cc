#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dader {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  const std::string path = TempPath("tensors_roundtrip.bin");
  std::map<std::string, Tensor> tensors;
  tensors["a.weight"] = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensors["b.bias"] = Tensor::FromVector({3}, {-1, 0, 1});
  ASSERT_TRUE(SaveTensors(path, tensors).ok());

  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  const auto& got = loaded.ValueOrDie();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at("a.weight").shape(), (Shape{2, 3}));
  EXPECT_EQ(got.at("a.weight").vec(), tensors["a.weight"].vec());
  EXPECT_EQ(got.at("b.bias").vec(), tensors["b.bias"].vec());
  EXPECT_FALSE(got.at("a.weight").requires_grad());
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyCollection) {
  const std::string path = TempPath("tensors_empty.bin");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.ValueOrDie().empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  EXPECT_FALSE(LoadTensors("/nonexistent/tensors.bin").ok());
}

TEST(SerializeTest, RejectsGarbageFile) {
  const std::string path = TempPath("tensors_garbage.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not a tensor file at all, padding padding padding", f);
  fclose(f);
  EXPECT_FALSE(LoadTensors(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LargeTensorRoundTrip) {
  const std::string path = TempPath("tensors_large.bin");
  Rng rng(1);
  std::map<std::string, Tensor> tensors;
  tensors["big"] = Tensor::RandomNormal({100, 64}, 1.0f, &rng);
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().at("big").vec(), tensors["big"].vec());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dader
