// Runtime ISA dispatch layer: per-tier accuracy against the naive oracle
// (every compiled+supported tier forced via ForceIsa, skipped with a
// reason otherwise), per-tier bit-reproducibility across thread counts,
// table invariants, and the clamping behavior of the override hooks.
//
// Edge shapes here deliberately hit the spots where a SIMD kernel can go
// wrong: non-tile-multiple M/N/K (mask tails and the zero-padded tail
// scratch), K=1 / N=1 / M=1 (degenerate loops), narrow-N (the
// transpose-to-dots path the matcher head takes), and K just past a lane
// boundary (the masked k-tail in the dot kernels).

#include "tensor/cpu_dispatch.h"

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

// Restores the probe/env resolution no matter how a test exits.
struct ScopedForceIsa {
  explicit ScopedForceIsa(cpu::Isa isa) { cpu::ForceIsa(isa); }
  ~ScopedForceIsa() { cpu::ClearForcedIsa(); }
};

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void ExpectNear(const std::vector<float>& want, const std::vector<float>& got,
                float tol = 1e-4f) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(want[i], got[i], tol * scale) << "at index " << i;
  }
}

struct Dims {
  int64_t m, n, k;
};

// See the file comment for why each family is here. 96^3 (1.8 MF) rides
// the direct path on the SIMD tiers; 160^3 (8.2 MF) exceeds every tier's
// NT/TN cutoff so the packed microkernel and its tail tiles run too.
const Dims kEdgeShapes[] = {
    {1, 1, 1},    {1, 9, 17},   {7, 1, 33},   {13, 29, 1},
    {32, 2, 64},  {5, 3, 130},  {17, 31, 13}, {63, 65, 31},
    {96, 96, 96}, {129, 33, 18}, {160, 160, 160},
};

using KernelFn = void (*)(int64_t, int64_t, int64_t, const float*,
                          const float*, float*, const gemm::GemmOptions&);
using NaiveFn = void (*)(int64_t, int64_t, int64_t, const float*,
                         const float*, float*);

void CheckTierAgainstNaive(cpu::Isa isa) {
  ScopedForceIsa force(isa);
  ASSERT_EQ(cpu::ActiveIsa(), isa);
  struct VariantCase {
    const char* name;
    KernelFn kernel;
    NaiveFn naive;
  };
  const VariantCase variants[] = {
      {"NN", &gemm::GemmNN, &gemm::NaiveGemmNN},
      {"NT", &gemm::GemmNT, &gemm::NaiveGemmNT},
      {"TN", &gemm::GemmTN, &gemm::NaiveGemmTN},
  };
  for (const VariantCase& v : variants) {
    for (const Dims& d : kEdgeShapes) {
      SCOPED_TRACE(testing::Message()
                   << cpu::IsaName(isa) << " " << v.name << " m=" << d.m
                   << " n=" << d.n << " k=" << d.k);
      const auto a = RandomVec(static_cast<size_t>(d.m * d.k), 1);
      const auto b = RandomVec(static_cast<size_t>(d.k * d.n), 2);
      auto want = RandomVec(static_cast<size_t>(d.m * d.n), 3);  // accumulate
      auto got = want;
      v.naive(d.m, d.n, d.k, a.data(), b.data(), want.data());
      v.kernel(d.m, d.n, d.k, a.data(), b.data(), got.data(), {});
      ExpectNear(want, got);
    }
  }
  // Batched form through the batch-strided small-GEMM path (bsz * 0.5 MF
  // stays under every tier's blocked threshold for the NN cutoffs).
  const int64_t bsz = 6, m = 33, n = 29, k = 65;
  const auto a = RandomVec(static_cast<size_t>(bsz * m * k), 4);
  const auto b = RandomVec(static_cast<size_t>(bsz * k * n), 5);
  std::vector<float> want(static_cast<size_t>(bsz * m * n), 0.75f);
  auto got = want;
  for (int64_t i = 0; i < bsz; ++i) {
    gemm::NaiveGemmNN(m, n, k, a.data() + i * m * k, b.data() + i * k * n,
                      want.data() + i * m * n);
  }
  gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), got.data());
  ExpectNear(want, got);
}

#define SKIP_UNLESS_TIER_RUNNABLE(isa)                                       \
  do {                                                                       \
    if (!cpu::CompiledWith(isa)) {                                           \
      GTEST_SKIP() << cpu::IsaName(isa)                                      \
                   << " tier not compiled into this build";                  \
    }                                                                        \
    if (!cpu::HostSupports(isa)) {                                           \
      GTEST_SKIP() << "host CPU lacks " << cpu::IsaName(isa);                \
    }                                                                        \
  } while (false)

TEST(CpuDispatchAccuracyTest, PortableTierMatchesNaive) {
  CheckTierAgainstNaive(cpu::Isa::kPortable);
}

TEST(CpuDispatchAccuracyTest, Avx2TierMatchesNaive) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx2);
  CheckTierAgainstNaive(cpu::Isa::kAvx2);
}

TEST(CpuDispatchAccuracyTest, Avx512TierMatchesNaive) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx512);
  CheckTierAgainstNaive(cpu::Isa::kAvx512);
}

// Within one tier the bit pattern must not depend on the thread count:
// cell boundaries are register-tile-aligned and each element's k-order is
// fixed, so 1-, 2-, and 8-wide pools must agree exactly. (Across tiers
// this is explicitly NOT guaranteed — FMA contraction and reduction order
// differ — so each tier is checked only against itself.)
void CheckTierBitStability(cpu::Isa isa) {
  ScopedForceIsa force(isa);
  const int64_t m = 200, n = 160, k = 96;
  const auto a = RandomVec(static_cast<size_t>(m * k), 7);
  const auto b = RandomVec(static_cast<size_t>(k * n), 8);
  auto run = [&](KernelFn kernel, ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    // Force the parallel path past all three auto-dispatch gates so the
    // claim is tested even on single-core machines.
    options.parallel_min_flops = 1;
    options.min_flops_per_task = 0;
    options.respect_hardware_concurrency = false;
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    kernel(m, n, k, a.data(), b.data(), c.data(), options);
    return c;
  };
  for (KernelFn kernel : {&gemm::GemmNN, &gemm::GemmNT, &gemm::GemmTN}) {
    ThreadPool pool1(1), pool2(2), pool8(8);
    const auto ref = run(kernel, &pool1);
    EXPECT_EQ(ref, run(kernel, &pool2)) << cpu::IsaName(isa) << " 1 vs 2";
    EXPECT_EQ(ref, run(kernel, &pool8)) << cpu::IsaName(isa) << " 1 vs 8";
  }
}

// A row's bits must not depend on how many other rows share the call:
// serving a pair solo (m=1) and inside a batch (m>1) must produce the
// same bytes for that pair. This is what the dist pipelined-vs-serial
// test asserts end-to-end; here it pins the kernel-level rule (the
// narrow-N dots path once keyed on m and broke it). Checked per tier on
// the shapes most likely to flip kernels: narrow-N (matcher head) and a
// generic small NN/TN pair.
void CheckTierRowBitsIndependentOfM(cpu::Isa isa) {
  ScopedForceIsa force(isa);
  const Dims shapes[] = {{5, 2, 64}, {5, 29, 33}, {5, 1, 17}};
  for (const Dims& d : shapes) {
    SCOPED_TRACE(testing::Message() << cpu::IsaName(isa) << " m=" << d.m
                                    << " n=" << d.n << " k=" << d.k);
    const auto a = RandomVec(static_cast<size_t>(d.m * d.k), 21);
    const auto b = RandomVec(static_cast<size_t>(d.k * d.n), 22);
    std::vector<float> batched(static_cast<size_t>(d.m * d.n), 0.0f);
    gemm::GemmNN(d.m, d.n, d.k, a.data(), b.data(), batched.data(), {});
    for (int64_t i = 0; i < d.m; ++i) {
      std::vector<float> solo(static_cast<size_t>(d.n), 0.0f);
      gemm::GemmNN(1, d.n, d.k, a.data() + i * d.k, b.data(), solo.data(),
                   {});
      const std::vector<float> row(batched.begin() + i * d.n,
                                   batched.begin() + (i + 1) * d.n);
      EXPECT_EQ(row, solo) << "row " << i << " bits depend on batch size";
    }
  }
}

TEST(CpuDispatchDeterminismTest, PortableRowBitsIndependentOfBatching) {
  CheckTierRowBitsIndependentOfM(cpu::Isa::kPortable);
}

TEST(CpuDispatchDeterminismTest, Avx2RowBitsIndependentOfBatching) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx2);
  CheckTierRowBitsIndependentOfM(cpu::Isa::kAvx2);
}

TEST(CpuDispatchDeterminismTest, Avx512RowBitsIndependentOfBatching) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx512);
  CheckTierRowBitsIndependentOfM(cpu::Isa::kAvx512);
}

TEST(CpuDispatchDeterminismTest, PortableBitIdenticalAcrossThreadCounts) {
  CheckTierBitStability(cpu::Isa::kPortable);
}

TEST(CpuDispatchDeterminismTest, Avx2BitIdenticalAcrossThreadCounts) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx2);
  CheckTierBitStability(cpu::Isa::kAvx2);
}

TEST(CpuDispatchDeterminismTest, Avx512BitIdenticalAcrossThreadCounts) {
  SKIP_UNLESS_TIER_RUNNABLE(cpu::Isa::kAvx512);
  CheckTierBitStability(cpu::Isa::kAvx512);
}

TEST(CpuDispatchTest, TableInvariantsHoldForEveryTier) {
  for (cpu::Isa isa :
       {cpu::Isa::kPortable, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    const cpu::GemmKernels& kk = cpu::KernelsFor(isa);
    SCOPED_TRACE(cpu::IsaName(isa));
    // KernelsFor degrades unsupported requests, so the returned tier may be
    // lower than asked — but never higher, and always runnable.
    EXPECT_LE(static_cast<int>(kk.isa), static_cast<int>(isa));
    EXPECT_TRUE(cpu::HostSupports(kk.isa));
    EXPECT_TRUE(cpu::CompiledWith(kk.isa));
    EXPECT_GT(kk.mr, 0);
    EXPECT_LE(kk.mr, cpu::kMaxMr);
    EXPECT_GT(kk.nr, 0);
    EXPECT_LE(kk.nr, cpu::kMaxNr);
    EXPECT_EQ(kk.mc % kk.mr, 0);
    EXPECT_EQ(kk.nc % kk.nr, 0);
    EXPECT_GE(kk.direct_cutoff_nn, 0);
    EXPECT_GE(kk.direct_cutoff_nt, 0);
    EXPECT_GE(kk.direct_cutoff_tn, 0);
  }
}

TEST(CpuDispatchTest, IsaNamesAreStable) {
  EXPECT_STREQ(cpu::IsaName(cpu::Isa::kPortable), "portable");
  EXPECT_STREQ(cpu::IsaName(cpu::Isa::kAvx2), "avx2");
  EXPECT_STREQ(cpu::IsaName(cpu::Isa::kAvx512), "avx512");
}

TEST(CpuDispatchTest, BestSupportedIsCompiledAndRunnable) {
  const cpu::Isa best = cpu::BestSupported();
  EXPECT_TRUE(cpu::HostSupports(best));
  EXPECT_TRUE(cpu::CompiledWith(best));
}

TEST(CpuDispatchTest, ForceIsaPinsAndClearRestores) {
  const cpu::Isa before = cpu::ActiveIsa();
  {
    ScopedForceIsa force(cpu::Isa::kPortable);
    EXPECT_EQ(cpu::ActiveIsa(), cpu::Isa::kPortable);
    EXPECT_EQ(cpu::ActiveKernels().isa, cpu::Isa::kPortable);
  }
  EXPECT_EQ(cpu::ActiveIsa(), before);
}

TEST(CpuDispatchTest, ForceIsaClampsAboveBestSupported) {
  // Forcing a tier the host/build cannot run must clamp, never SIGILL.
  ScopedForceIsa force(cpu::Isa::kAvx512);
  EXPECT_LE(static_cast<int>(cpu::ActiveIsa()),
            static_cast<int>(cpu::BestSupported()));
  // Whatever got pinned, the kernels it resolves to must be runnable.
  EXPECT_TRUE(cpu::HostSupports(cpu::ActiveKernels().isa));
}

}  // namespace
}  // namespace dader
