// Parameterized numeric gradient checks for the whole op library. Every op
// that participates in training is validated against central differences.

#include <gtest/gtest.h>

#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tests/tensor/gradcheck.h"

namespace dader {
namespace {

using testing_util::CheckGradients;
using testing_util::RandomInput;
using testing_util::ScalarFn;

// A named gradient-check case: builds inputs and a scalar function.
struct GradCase {
  const char* name;
  std::function<std::vector<Tensor>(Rng*)> make_inputs;
  ScalarFn fn;
};

class OpGradTest : public testing::TestWithParam<GradCase> {};

TEST_P(OpGradTest, MatchesNumericGradient) {
  const GradCase& c = GetParam();
  Rng rng(0xabcdULL);
  CheckGradients(c.fn, c.make_inputs(&rng));
}

// Reduces any-shaped output to a scalar through a fixed random projection so
// all output elements contribute distinct weights.
Tensor ProjectToScalar(const Tensor& t) {
  Rng rng(99);
  Tensor w = Tensor::RandomUniform(t.shape(), -1, 1, &rng);
  return ops::SumAll(ops::Mul(t, w));
}

const GradCase kCases[] = {
    {"Add",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 4}, r), RandomInput({3, 4}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Add(in[0], in[1])); }},
    {"AddBroadcastBias",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 4}, r), RandomInput({4}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Add(in[0], in[1])); }},
    {"Sub",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3}, r), RandomInput({2, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Sub(in[0], in[1])); }},
    {"Mul",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 3}, r), RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Mul(in[0], in[1])); }},
    {"MulBroadcast",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 4}, r), RandomInput({4}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Mul(in[0], in[1])); }},
    {"MulScalar",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({5}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::MulScalar(in[0], -2.5f)); }},
    {"LeakyRelu",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({4, 4}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::LeakyRelu(in[0], 0.2f)); }},
    {"Sigmoid",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Sigmoid(in[0])); }},
    {"Tanh",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Tanh(in[0])); }},
    {"Exp",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Exp(in[0])); }},
    {"Square",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Square(in[0])); }},
    {"MatMul",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 4}, r), RandomInput({4, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::MatMul(in[0], in[1])); }},
    {"BatchMatMul",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3, 4}, r), RandomInput({2, 4, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::BatchMatMul(in[0], in[1])); }},
    {"Reshape",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 6}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Reshape(in[0], {3, 4})); }},
    {"TransposeLast2",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3, 4}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::TransposeLast2(in[0])); }},
    {"SwapAxes",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3, 2, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::SwapAxes(in[0], 1, 2)); }},
    {"Concat0",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3}, r), RandomInput({4, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Concat({in[0], in[1]}, 0)); }},
    {"Concat1",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 2}, r), RandomInput({3, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Concat({in[0], in[1]}, 1)); }},
    {"SelectAxis",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 4, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::SelectAxis(in[0], 1, 2)); }},
    {"SliceAxis0",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({5, 3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::SliceAxis0(in[0], 1, 3)); }},
    {"Stack0",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3}, r), RandomInput({3}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Stack0({in[0], in[1]})); }},
    {"MeanAxis",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 3, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::MeanAxis(in[0], 1)); }},
    {"MeanAll",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({4, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ops::MeanAll(in[0]); }},
    {"Softmax",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 5}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::Softmax(in[0])); }},
    {"LogSoftmax",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 5}, r)}; },
     [](std::vector<Tensor>& in) { return ProjectToScalar(ops::LogSoftmax(in[0])); }},
    {"LayerNorm",
     [](Rng* r) {
       return std::vector<Tensor>{RandomInput({3, 6}, r), RandomInput({6}, r),
                                  RandomInput({6}, r)};
     },
     [](std::vector<Tensor>& in) {
       return ProjectToScalar(ops::LayerNorm(in[0], in[1], in[2]));
     }},
    {"EmbeddingLookup",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({5, 3}, r)}; },
     [](std::vector<Tensor>& in) {
       return ProjectToScalar(ops::EmbeddingLookup(in[0], {0, 2, 2, 4}));
     }},
    {"CrossEntropy",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({4, 3}, r)}; },
     [](std::vector<Tensor>& in) {
       return ops::CrossEntropyWithLogits(in[0], {0, 1, 2, 1});
     }},
    {"BinaryCrossEntropy",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({5}, r)}; },
     [](std::vector<Tensor>& in) {
       return ops::BinaryCrossEntropyWithLogits(in[0],
                                                {1.0f, 0.0f, 1.0f, 0.0f, 1.0f});
     }},
    {"KnowledgeDistillation",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 4}, r)}; },
     [](std::vector<Tensor>& in) {
       // Teacher is a fixed constant (KD treats it as such by definition),
       // so the check covers only the student gradient.
       Rng teacher_rng(7);
       Tensor teacher = Tensor::RandomUniform({3, 4}, -1, 1, &teacher_rng);
       return ops::KnowledgeDistillationLoss(in[0], teacher, 2.0f);
     }},
    {"Mse",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({3, 2}, r), RandomInput({3, 2}, r)}; },
     [](std::vector<Tensor>& in) { return ops::MseLoss(in[0], in[1]); }},
    {"BagOfTokensCrossEntropy",
     [](Rng* r) { return std::vector<Tensor>{RandomInput({2, 5}, r)}; },
     [](std::vector<Tensor>& in) {
       return ops::BagOfTokensCrossEntropy(in[0], {{0, 1, 1}, {4}});
     }},
    // GradReverse is deliberately NOT a true gradient (it negates), so it
    // cannot appear here; its contract is unit-tested in nn_ops_test.cc.
};

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradTest, testing::ValuesIn(kCases),
                         [](const testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace dader
