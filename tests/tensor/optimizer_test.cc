#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace dader {
namespace {

// Minimizes f(w) = sum((w - target)^2) and returns the final w.
template <typename Opt>
Tensor Minimize(Opt& opt, Tensor w, const Tensor& target, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor diff = ops::Sub(w, target);
    ops::SumAll(ops::Square(diff)).Backward();
    opt.Step();
  }
  return w;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Zeros({3}, true);
  Tensor target = Tensor::FromVector({3}, {1.0f, -2.0f, 0.5f});
  SgdOptimizer opt({w}, /*lr=*/0.1f);
  Minimize(opt, w, target, 100);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w.vec()[i], target.vec()[i], 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  Tensor w = Tensor::Zeros({2}, true);
  Tensor target = Tensor::FromVector({2}, {3.0f, -1.0f});
  SgdOptimizer opt({w}, 0.05f, /*momentum=*/0.9f);
  Minimize(opt, w, target, 200);
  for (int i = 0; i < 2; ++i) EXPECT_NEAR(w.vec()[i], target.vec()[i], 1e-2);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::Full({2}, 10.0f, true);
  SgdOptimizer opt({w}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient + decay => exponential shrink.
  for (int i = 0; i < 20; ++i) {
    opt.ZeroGrad();
    // Force the grad buffer to exist so Step applies.
    ops::SumAll(ops::MulScalar(w, 0.0f)).Backward();
    opt.Step();
  }
  EXPECT_LT(std::fabs(w.vec()[0]), 10.0f * std::pow(0.95f, 19.0f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::Full({4}, 5.0f, true);
  Tensor target = Tensor::FromVector({4}, {1, 2, 3, 4});
  AdamOptimizer opt({w}, 0.1f);
  Minimize(opt, w, target, 300);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.vec()[i], target.vec()[i], 1e-2);
}

TEST(AdamTest, HandlesSparseUntouchedParams) {
  Tensor used = Tensor::Zeros({2}, true);
  Tensor unused = Tensor::Zeros({2}, true);
  AdamOptimizer opt({used, unused}, 0.1f);
  opt.ZeroGrad();
  ops::SumAll(used).Backward();
  opt.Step();  // unused has no grad buffer; must not crash or move
  EXPECT_EQ(unused.vec(), (std::vector<float>{0, 0}));
  EXPECT_NE(used.vec()[0], 0.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Tensor w = Tensor::Ones({2}, true);
  AdamOptimizer opt({w}, 0.1f);
  ops::SumAll(w).Backward();
  EXPECT_NE(w.grad()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_EQ(w.grad()[0], 0.0f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor w = Tensor::Zeros({4}, true);
  SgdOptimizer opt({w}, 0.1f);
  opt.ZeroGrad();
  ops::SumAll(ops::MulScalar(w, 10.0f)).Backward();  // grad = 10 each
  const float pre = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre, 20.0f, 1e-4);  // sqrt(4 * 100)
  double norm2 = 0.0;
  for (float g : w.grad()) norm2 += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(norm2), 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenSmall) {
  Tensor w = Tensor::Zeros({2}, true);
  SgdOptimizer opt({w}, 0.1f);
  opt.ZeroGrad();
  ops::SumAll(w).Backward();  // grad = 1 each, norm ~1.41
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 1.0f);
}

TEST(OptimizerTest, LearningRateMutable) {
  Tensor w = Tensor::Zeros({1}, true);
  AdamOptimizer opt({w}, 0.1f);
  opt.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5f);
}

}  // namespace
}  // namespace dader
