#include "tensor/nn_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace dader {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(2);
  Tensor a = Tensor::RandomUniform({4, 7}, -5, 5, &rng);
  Tensor s = ops::Softmax(a);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) sum += s.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, LargeLogitsStable) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 999.0f});
  Tensor s = ops::Softmax(a);
  EXPECT_FALSE(std::isnan(s.at(0, 0)));
  EXPECT_GT(s.at(0, 0), s.at(0, 1));
}

TEST(SoftmaxTest, UniformInputGivesUniformOutput) {
  Tensor a = Tensor::Full({1, 4}, 3.0f);
  Tensor s = ops::Softmax(a);
  for (int64_t c = 0; c < 4; ++c) EXPECT_NEAR(s.at(0, c), 0.25f, 1e-6);
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(3);
  Tensor a = Tensor::RandomUniform({3, 5}, -2, 2, &rng);
  Tensor ls = ops::LogSoftmax(a);
  Tensor s = ops::Softmax(a);
  for (size_t i = 0; i < ls.vec().size(); ++i) {
    EXPECT_NEAR(ls.vec()[i], std::log(s.vec()[i]), 1e-5);
  }
}

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(4);
  Tensor a = Tensor::RandomUniform({3, 8}, -4, 4, &rng);
  Tensor gamma = Tensor::Ones({8}, true);
  Tensor beta = Tensor::Zeros({8}, true);
  Tensor y = ops::LayerNorm(a, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormTest, GammaBetaApplied) {
  Tensor a = Tensor::FromVector({1, 2}, {-1.0f, 1.0f});
  Tensor gamma = Tensor::FromVector({2}, {2.0f, 2.0f}, true);
  Tensor beta = Tensor::FromVector({2}, {5.0f, 5.0f}, true);
  Tensor y = ops::LayerNorm(a, gamma, beta);
  EXPECT_NEAR(y.at(0, 0), 5.0f - 2.0f, 1e-3);
  EXPECT_NEAR(y.at(0, 1), 5.0f + 2.0f, 1e-3);
}

TEST(EmbeddingLookupTest, GathersRows) {
  Tensor w = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = ops::EmbeddingLookup(w, {2, 0, 2});
  EXPECT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.vec(), (std::vector<float>{20, 21, 0, 1, 20, 21}));
}

TEST(EmbeddingLookupTest, BackwardScattersAndAccumulates) {
  Tensor w = Tensor::Zeros({3, 2}, true);
  Tensor out = ops::EmbeddingLookup(w, {1, 1});
  ops::SumAll(out).Backward();
  // Row 1 receives gradient 1 from each of two lookups.
  EXPECT_EQ(w.grad(), (std::vector<float>{0, 0, 2, 2, 0, 0}));
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(5);
  Tensor a = Tensor::Ones({10});
  Tensor d = ops::Dropout(a, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(d.vec(), a.vec());
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  Rng rng(6);
  Tensor a = Tensor::Ones({10000}, true);
  Tensor d = ops::Dropout(a, 0.25f, &rng, /*training=*/true);
  int zeros = 0;
  double sum = 0.0;
  for (float v : d.vec()) {
    if (v == 0.0f) ++zeros;
    else EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000, 0.25, 0.02);
  EXPECT_NEAR(sum / 10000, 1.0, 0.03);  // inverted dropout keeps expectation
}

TEST(GradReverseTest, ForwardIdentityBackwardNegated) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, true);
  Tensor y = ops::GradReverse(x, 0.5f);
  EXPECT_EQ(y.vec(), x.vec());
  ops::SumAll(y).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, -0.5f);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::FromVector({2, 2}, {10, -10, -10, 10});
  Tensor loss = ops::CrossEntropyWithLogits(logits, {0, 1});
  EXPECT_LT(loss.item(), 1e-4);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::Zeros({3, 4});
  Tensor loss = ops::CrossEntropyWithLogits(logits, {0, 1, 2});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHot) {
  Tensor logits = Tensor::Zeros({1, 2}, true);
  ops::CrossEntropyWithLogits(logits, {1}).Backward();
  EXPECT_NEAR(logits.grad()[0], 0.5f, 1e-5);
  EXPECT_NEAR(logits.grad()[1], -0.5f, 1e-5);
}

TEST(BceTest, KnownValues) {
  Tensor logits = Tensor::FromVector({2}, {0.0f, 0.0f}, false);
  Tensor loss = ops::BinaryCrossEntropyWithLogits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5);
}

TEST(BceTest, ExtremeLogitsStable) {
  Tensor logits = Tensor::FromVector({2}, {1000.0f, -1000.0f});
  Tensor loss = ops::BinaryCrossEntropyWithLogits(logits, {1.0f, 0.0f});
  EXPECT_FALSE(std::isnan(loss.item()));
  EXPECT_NEAR(loss.item(), 0.0f, 1e-5);
}

TEST(BceTest, AcceptsColumnShape) {
  Tensor logits = Tensor::Zeros({3, 1});
  EXPECT_NEAR(
      ops::BinaryCrossEntropyWithLogits(logits, {1.0f, 0.0f, 1.0f}).item(),
      std::log(2.0f), 1e-5);
}

TEST(KdLossTest, IdenticalLogitsGiveEntropyFloor) {
  // KD loss of identical distributions equals t^2 * H(p) >= 0; gradient ~0.
  Tensor teacher = Tensor::FromVector({1, 2}, {1.0f, -1.0f});
  Tensor student = Tensor::FromVector({1, 2}, {1.0f, -1.0f}, true);
  Tensor loss =
      ops::KnowledgeDistillationLoss(student, teacher, /*temperature=*/2.0f);
  loss.Backward();
  for (float g : student.grad()) EXPECT_NEAR(g, 0.0f, 1e-5);
}

TEST(KdLossTest, PullsStudentTowardTeacher) {
  Tensor teacher = Tensor::FromVector({1, 2}, {5.0f, -5.0f});
  Tensor student = Tensor::FromVector({1, 2}, {-5.0f, 5.0f}, true);
  ops::KnowledgeDistillationLoss(student, teacher, 2.0f).Backward();
  // Gradient must push logit 0 up (negative grad) and logit 1 down.
  EXPECT_LT(student.grad()[0], 0.0f);
  EXPECT_GT(student.grad()[1], 0.0f);
}

TEST(KdLossTest, TeacherReceivesNoGradient) {
  Tensor teacher = Tensor::FromVector({1, 2}, {1.0f, 0.0f}, true);
  Tensor student = Tensor::FromVector({1, 2}, {0.0f, 1.0f}, true);
  ops::KnowledgeDistillationLoss(student, teacher, 1.0f).Backward();
  EXPECT_TRUE(teacher.grad().empty() ||
              (teacher.grad()[0] == 0.0f && teacher.grad()[1] == 0.0f));
}

TEST(MseTest, KnownValue) {
  Tensor a = Tensor::FromVector({2}, {1, 3});
  Tensor b = Tensor::FromVector({2}, {0, 1});
  EXPECT_FLOAT_EQ(ops::MseLoss(a, b).item(), (1.0f + 4.0f) / 2.0f);
}

TEST(BagCrossEntropyTest, UniformLogits) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = ops::BagOfTokensCrossEntropy(logits, {{0, 1}, {2}});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(BagCrossEntropyTest, EmptyBagsGiveZero) {
  Tensor logits = Tensor::Zeros({2, 4});
  EXPECT_FLOAT_EQ(ops::BagOfTokensCrossEntropy(logits, {{}, {}}).item(), 0.0f);
}

TEST(BagCrossEntropyTest, PeakedLogitsOnBagTokensLowLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {20.0f, -20.0f, -20.0f});
  EXPECT_LT(ops::BagOfTokensCrossEntropy(logits, {{0, 0}}).item(), 1e-4);
}

}  // namespace
}  // namespace dader
