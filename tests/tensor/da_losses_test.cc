#include "tensor/da_losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tests/tensor/gradcheck.h"

namespace dader {
namespace {

using testing_util::CheckGradients;
using testing_util::RandomInput;

TEST(MmdTest, ZeroForIdenticalSamples) {
  Rng rng(1);
  Tensor x = Tensor::RandomUniform({6, 4}, -1, 1, &rng);
  Tensor y = x.Clone();
  EXPECT_NEAR(ops::MmdValue(x, y), 0.0f, 1e-4);
}

TEST(MmdTest, PositiveForShiftedSamples) {
  Rng rng(2);
  Tensor x = Tensor::RandomUniform({8, 4}, -1, 1, &rng);
  Tensor y = Tensor::RandomUniform({8, 4}, 4, 6, &rng);
  EXPECT_GT(ops::MmdValue(x, y), 0.1f);
}

TEST(MmdTest, GrowsWithShift) {
  Rng rng(3);
  Tensor x = Tensor::RandomUniform({10, 3}, 0, 1, &rng);
  Tensor near = Tensor::RandomUniform({10, 3}, 0.5, 1.5, &rng);
  Tensor far = Tensor::RandomUniform({10, 3}, 5, 6, &rng);
  EXPECT_LT(ops::MmdValue(x, near), ops::MmdValue(x, far));
}

TEST(MmdTest, SymmetricInArguments) {
  Rng rng(4);
  Tensor x = Tensor::RandomUniform({7, 3}, -1, 1, &rng);
  Tensor y = Tensor::RandomUniform({5, 3}, 0, 2, &rng);
  // Fixed bandwidths so both directions use the same kernel.
  EXPECT_NEAR(ops::MmdValue(x, y, {1.0f}), ops::MmdValue(y, x, {1.0f}), 1e-5);
}

TEST(MmdTest, LossMatchesValue) {
  Rng rng(5);
  Tensor x = Tensor::RandomUniform({6, 3}, -1, 1, &rng);
  Tensor y = Tensor::RandomUniform({6, 3}, 0, 2, &rng);
  EXPECT_NEAR(ops::MmdLoss(x, y, {1.0f, 2.0f}).item(),
              ops::MmdValue(x, y, {1.0f, 2.0f}), 1e-6);
}

TEST(MmdTest, GradientMatchesNumeric) {
  Rng rng(6);
  std::vector<Tensor> inputs = {RandomInput({4, 3}, &rng),
                                RandomInput({5, 3}, &rng)};
  CheckGradients(
      [](std::vector<Tensor>& in) {
        // Fixed bandwidth: the median heuristic is data-dependent and
        // intentionally not differentiated.
        return ops::MmdLoss(in[0], in[1], {1.0f, 0.5f});
      },
      inputs, /*eps=*/1e-2f, /*tol=*/2e-2f);
}

TEST(MmdTest, GradientPullsDistributionsTogether) {
  Rng rng(7);
  Tensor x = Tensor::Full({4, 2}, 0.0f, true);
  Tensor y = Tensor::Full({4, 2}, 2.0f);
  ops::MmdLoss(x, y, {2.0f}).Backward();
  // Reducing MMD means moving x toward y: gradient must be negative
  // (descent direction is +y-ward).
  for (float g : x.grad()) EXPECT_LT(g, 0.0f);
}

TEST(CoralTest, ZeroForIdenticalSamples) {
  Rng rng(8);
  Tensor x = Tensor::RandomUniform({6, 4}, -1, 1, &rng);
  EXPECT_NEAR(ops::CoralLoss(x, x.Clone()).item(), 0.0f, 1e-6);
}

TEST(CoralTest, InvariantToMeanShift) {
  // CORAL compares covariances of centered features, so adding a constant
  // to every row of one side must not change the loss.
  Rng rng(9);
  Tensor x = Tensor::RandomUniform({8, 3}, -1, 1, &rng);
  Tensor y = Tensor::RandomUniform({8, 3}, -1, 1, &rng);
  const float base = ops::CoralLoss(x, y).item();
  Tensor y_shift = y.Clone();
  for (auto& v : y_shift.vec()) v += 5.0f;
  EXPECT_NEAR(ops::CoralLoss(x, y_shift).item(), base, 1e-4);
}

TEST(CoralTest, DetectsScaleDifference) {
  Rng rng(10);
  Tensor x = Tensor::RandomUniform({20, 3}, -1, 1, &rng);
  Tensor y = x.Clone();
  for (auto& v : y.vec()) v *= 3.0f;  // covariance x9
  EXPECT_GT(ops::CoralLoss(x, y).item(), 1e-4);
}

TEST(CoralTest, GradientMatchesNumeric) {
  Rng rng(11);
  std::vector<Tensor> inputs = {RandomInput({5, 3}, &rng),
                                RandomInput({6, 3}, &rng)};
  CheckGradients(
      [](std::vector<Tensor>& in) {
        // Scale up: raw CORAL is ~1e-3 and would drown in numeric noise.
        return ops::MulScalar(ops::CoralLoss(in[0], in[1]), 100.0f);
      },
      inputs, /*eps=*/1e-2f, /*tol=*/3e-2f);
}

TEST(CoralTest, NonNegative) {
  Rng rng(12);
  for (int i = 0; i < 5; ++i) {
    Tensor x = Tensor::RandomUniform({6, 4}, -2, 2, &rng);
    Tensor y = Tensor::RandomUniform({9, 4}, -1, 3, &rng);
    EXPECT_GE(ops::CoralLoss(x, y).item(), 0.0f);
  }
}

TEST(CmdTest, ZeroForIdenticalSamples) {
  Rng rng(13);
  Tensor x = Tensor::RandomUniform({8, 4}, -1, 1, &rng);
  EXPECT_NEAR(ops::CmdLoss(x, x.Clone()).item(), 0.0f, 1e-4);
}

TEST(CmdTest, DetectsMeanShift) {
  Rng rng(14);
  Tensor x = Tensor::RandomUniform({10, 3}, -1, 1, &rng);
  Tensor y = x.Clone();
  for (auto& v : y.vec()) v += 2.0f;
  // Mean shift of 2 in every dimension: first moment term ~ 2*sqrt(d).
  EXPECT_NEAR(ops::CmdLoss(x, y).item(), 2.0f * std::sqrt(3.0f), 0.1f);
}

TEST(CmdTest, DetectsVarianceShift) {
  Rng rng(15);
  Tensor x = Tensor::RandomUniform({40, 3}, -1, 1, &rng);
  Tensor y = x.Clone();
  for (auto& v : y.vec()) v *= 3.0f;
  EXPECT_GT(ops::CmdLoss(x, y).item(), 0.3f);
}

TEST(CmdTest, HigherMomentsAddTerms) {
  Rng rng(16);
  Tensor x = Tensor::RandomUniform({12, 4}, -1, 1, &rng);
  Tensor y = Tensor::RandomUniform({12, 4}, 0, 2, &rng);
  EXPECT_LE(ops::CmdLoss(x, y, 1).item(), ops::CmdLoss(x, y, 3).item() + 1e-6f);
}

TEST(CmdTest, GradientMatchesNumeric) {
  Rng rng(17);
  std::vector<Tensor> inputs = {RandomInput({5, 3}, &rng),
                                RandomInput({6, 3}, &rng)};
  CheckGradients(
      [](std::vector<Tensor>& in) { return ops::CmdLoss(in[0], in[1], 3); },
      inputs, 1e-2f, 3e-2f);
}

TEST(CmdTest, GradientPullsMeansTogether) {
  Tensor x = Tensor::Full({4, 2}, 0.0f, true);
  Tensor y = Tensor::Full({4, 2}, 1.0f);
  ops::CmdLoss(x, y, 1).Backward();
  for (float g : x.grad()) EXPECT_LT(g, 0.0f);
}

}  // namespace
}  // namespace dader
