#include "tensor/tensor.h"

#include <gtest/gtest.h>
#include <cmath>

#include "tensor/ops.h"

namespace dader {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({5}), 5);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({0, 7}), 0);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 2});
  Tensor o = Tensor::Ones({3});
  Tensor f = Tensor::Full({2}, 2.5f);
  for (float v : z.vec()) EXPECT_EQ(v, 0.0f);
  for (float v : o.vec()) EXPECT_EQ(v, 1.0f);
  for (float v : f.vec()) EXPECT_EQ(v, 2.5f);
  EXPECT_EQ(z.numel(), 4);
  EXPECT_EQ(z.rank(), 2u);
  EXPECT_EQ(z.dim(0), 2);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_EQ(Tensor::Scalar(7.0f).item(), 7.0f);
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros({2});
  Tensor b = a;  // shared handle
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.data()[0], 5.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({2});
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, DetachDropsGradRequirement) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.vec(), a.vec());
}

TEST(TensorTest, CopyDataFrom) {
  Tensor a = Tensor::Zeros({3}, true);
  Tensor b = Tensor::FromVector({3}, {1, 2, 3});
  a.CopyDataFrom(b);
  EXPECT_EQ(a.vec(), b.vec());
  EXPECT_TRUE(a.requires_grad());
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform({100}, -2.0f, 3.0f, &rng);
  for (float v : t.vec()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(TensorTest, RandomNormalStddev) {
  Rng rng(6);
  Tensor t = Tensor::RandomNormal({5000}, 2.0f, &rng);
  double sum2 = 0.0;
  for (float v : t.vec()) sum2 += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sum2 / t.numel()), 2.0, 0.1);
}

TEST(AutogradTest, SimpleChain) {
  // loss = sum((x * 3) + 1); dloss/dx = 3.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}, true);
  Tensor loss = ops::SumAll(ops::AddScalar(ops::MulScalar(x, 3.0f), 1.0f));
  EXPECT_FLOAT_EQ(loss.item(), 21.0f);
  loss.Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 3.0f);
}

TEST(AutogradTest, GradientAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Ones({2}, true);
  ops::SumAll(x).Backward();
  ops::SumAll(x).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(AutogradTest, ZeroGradResets) {
  Tensor x = Tensor::Ones({2}, true);
  ops::SumAll(x).Backward();
  x.ZeroGrad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(AutogradTest, DiamondGraphSumsBothPaths) {
  // loss = sum(x + x) => dloss/dx = 2.
  Tensor x = Tensor::Ones({2}, true);
  ops::SumAll(ops::Add(x, x)).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 2.0f);
}

TEST(AutogradTest, NoGradIntoConstants) {
  Tensor x = Tensor::Ones({2}, true);
  Tensor c = Tensor::Ones({2});  // no grad
  ops::SumAll(ops::Mul(x, c)).Backward();
  EXPECT_TRUE(c.grad().empty());
  EXPECT_EQ(x.grad().size(), 2u);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Tensor::Ones({2}, true);
  Tensor y = ops::MulScalar(x, 2.0f);
  Tensor loss = ops::SumAll(y.Detach());
  EXPECT_FALSE(loss.requires_grad());
}

TEST(AutogradTest, DeepChainIterativeTopoSort) {
  // 3000-op chain would overflow a recursive DFS stack.
  Tensor x = Tensor::Ones({4}, true);
  Tensor y = x;
  for (int i = 0; i < 3000; ++i) y = ops::AddScalar(y, 0.001f);
  ops::SumAll(y).Backward();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t = Tensor::FromVector({2}, {1.5f, 2.5f});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("[2]"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace dader
