// Blocked GEMM layer: kernel-vs-naive accuracy across shapes (square,
// skinny, fat, odd, m=1/n=1/k=1 edges), all three variants plus batched
// forms, run-to-run and cross-thread-count reproducibility, and the
// BatchMatMul backward hoist regression. The parallel cases run on real
// multi-worker pools so the TSan build (-DDADER_SANITIZE="thread")
// exercises the row-panel and batch fan-out paths.

#include "tensor/gemm.h"

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// Relative-ish tolerance: the blocked kernel keeps the naive accumulation
// order, but FMA contraction may differ between code paths.
void ExpectNear(const std::vector<float>& want, const std::vector<float>& got,
                float tol = 1e-4f) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(want[i], got[i], tol * scale) << "at index " << i;
  }
}

struct Dims {
  int64_t m, n, k;
};

// Square, skinny, fat, odd, and unit-dimension shapes. The larger ones are
// above the layer's naive-fallback cutoff so the blocked path (including
// its MR/NR tail tiles) really runs.
const Dims kShapes[] = {
    {1, 1, 1},     {1, 7, 5},     {5, 1, 9},      {17, 31, 13},
    {64, 64, 64},  {128, 3, 64},  {3, 300, 256},  {129, 65, 33},
    {1, 500, 300}, {300, 1, 500}, {300, 200, 1},  {17, 301, 64},
    {5, 123, 77},  {96, 96, 96},
};

using KernelFn = void (*)(int64_t, int64_t, int64_t, const float*,
                          const float*, float*, const gemm::GemmOptions&);
using NaiveFn = void (*)(int64_t, int64_t, int64_t, const float*,
                         const float*, float*);

void CheckVariant(KernelFn kernel, NaiveFn naive, const Dims& d) {
  SCOPED_TRACE(testing::Message() << "m=" << d.m << " n=" << d.n
                                  << " k=" << d.k);
  const auto a = RandomVec(static_cast<size_t>(d.m * d.k), 1);
  const auto b = RandomVec(static_cast<size_t>(d.k * d.n), 2);
  // Non-zero C start: the kernels accumulate.
  auto want = RandomVec(static_cast<size_t>(d.m * d.n), 3);
  auto got = want;
  naive(d.m, d.n, d.k, a.data(), b.data(), want.data());
  kernel(d.m, d.n, d.k, a.data(), b.data(), got.data(), {});
  ExpectNear(want, got);
}

TEST(GemmKernelTest, NNMatchesNaiveAcrossShapes) {
  for (const Dims& d : kShapes) {
    CheckVariant(&gemm::GemmNN, &gemm::NaiveGemmNN, d);
  }
}

TEST(GemmKernelTest, NTMatchesNaiveAcrossShapes) {
  for (const Dims& d : kShapes) {
    CheckVariant(&gemm::GemmNT, &gemm::NaiveGemmNT, d);
  }
}

TEST(GemmKernelTest, TNMatchesNaiveAcrossShapes) {
  for (const Dims& d : kShapes) {
    CheckVariant(&gemm::GemmTN, &gemm::NaiveGemmTN, d);
  }
}

TEST(GemmKernelTest, BatchVariantsMatchPerElementNaive) {
  const int64_t bsz = 5, m = 33, n = 47, k = 65;
  const auto a = RandomVec(static_cast<size_t>(bsz * m * k), 4);
  const auto b = RandomVec(static_cast<size_t>(bsz * k * n), 5);
  // NN
  std::vector<float> want(static_cast<size_t>(bsz * m * n), 0.25f);
  auto got = want;
  for (int64_t i = 0; i < bsz; ++i) {
    gemm::NaiveGemmNN(m, n, k, a.data() + i * m * k, b.data() + i * k * n,
                      want.data() + i * m * n);
  }
  gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), got.data());
  ExpectNear(want, got);
  // NT: B element is n x k.
  std::fill(want.begin(), want.end(), -0.5f);
  got = want;
  for (int64_t i = 0; i < bsz; ++i) {
    gemm::NaiveGemmNT(m, n, k, a.data() + i * m * k, b.data() + i * k * n,
                      want.data() + i * m * n);
  }
  gemm::BatchGemmNT(bsz, m, n, k, a.data(), b.data(), got.data());
  ExpectNear(want, got);
  // TN: A element is k x m.
  std::fill(want.begin(), want.end(), 1.5f);
  got = want;
  for (int64_t i = 0; i < bsz; ++i) {
    gemm::NaiveGemmTN(m, n, k, a.data() + i * m * k, b.data() + i * k * n,
                      want.data() + i * m * n);
  }
  gemm::BatchGemmTN(bsz, m, n, k, a.data(), b.data(), got.data());
  ExpectNear(want, got);
}

// Fixed thread count -> bit-identical output, run over run. The layer's
// MR-aligned row partitioning actually guarantees more: the bit pattern is
// identical across *different* thread counts too, which is what makes the
// serving and training paths reproducible regardless of pool sizing.
TEST(GemmDeterminismTest, BitIdenticalAcrossRunsAndThreadCounts) {
  const int64_t m = 200, n = 160, k = 96;
  const auto a = RandomVec(static_cast<size_t>(m * k), 7);
  const auto b = RandomVec(static_cast<size_t>(k * n), 8);

  auto run = [&](KernelFn kernel, ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    // Force the parallel path past all three auto-dispatch gates so the
    // bit-identity claim is tested even on single-core machines.
    options.parallel_min_flops = 1;
    options.min_flops_per_task = 0;
    options.respect_hardware_concurrency = false;
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    kernel(m, n, k, a.data(), b.data(), c.data(), options);
    return c;
  };

  for (KernelFn kernel : {&gemm::GemmNN, &gemm::GemmNT, &gemm::GemmTN}) {
    ThreadPool pool1(1), pool2(2), pool8(8);
    const auto ref = run(kernel, &pool1);
    EXPECT_EQ(ref, run(kernel, &pool1)) << "run-to-run, 1 thread";
    const auto got2 = run(kernel, &pool2);
    EXPECT_EQ(ref, got2) << "1 vs 2 threads";
    EXPECT_EQ(got2, run(kernel, &pool2)) << "run-to-run, 2 threads";
    const auto got8 = run(kernel, &pool8);
    EXPECT_EQ(ref, got8) << "1 vs 8 threads";
    EXPECT_EQ(got8, run(kernel, &pool8)) << "run-to-run, 8 threads";
  }
}

TEST(GemmDeterminismTest, BatchParallelBitIdentical) {
  const int64_t bsz = 16, m = 40, n = 48, k = 56;
  const auto a = RandomVec(static_cast<size_t>(bsz * m * k), 9);
  const auto b = RandomVec(static_cast<size_t>(bsz * k * n), 10);
  auto run = [&](ThreadPool* pool) {
    gemm::GemmOptions options;
    options.pool = pool;
    options.parallel_min_flops = 1;
    options.min_flops_per_task = 0;
    options.respect_hardware_concurrency = false;
    std::vector<float> c(static_cast<size_t>(bsz * m * n), 0.0f);
    gemm::BatchGemmNN(bsz, m, n, k, a.data(), b.data(), c.data(), options);
    return c;
  };
  ThreadPool pool1(1), pool8(8);
  const auto ref = run(&pool1);
  EXPECT_EQ(ref, run(&pool8));
  EXPECT_EQ(ref, run(&pool8));
}

// Regression for the BatchMatMul backward hoist: requires_grad checks and
// EnsureGrad used to run once per batch element inside the loop; hoisting
// them out must not change any gradient.
TEST(BatchMatMulBackwardTest, GradsMatchPerElementReference) {
  const int64_t bsz = 4, m = 9, k = 11, n = 13;
  auto av = RandomVec(static_cast<size_t>(bsz * m * k), 11);
  auto bv = RandomVec(static_cast<size_t>(bsz * k * n), 12);
  Tensor a = Tensor::FromVector({bsz, m, k}, av, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({bsz, k, n}, bv, /*requires_grad=*/true);
  ops::SumAll(ops::BatchMatMul(a, b)).Backward();

  // d(sum)/dC = 1 everywhere, so per element dA = 1 * B^T and dB = A^T * 1.
  std::vector<float> ones(static_cast<size_t>(m * n), 1.0f);
  std::vector<float> want_da(static_cast<size_t>(bsz * m * k), 0.0f);
  std::vector<float> want_db(static_cast<size_t>(bsz * k * n), 0.0f);
  for (int64_t i = 0; i < bsz; ++i) {
    gemm::NaiveGemmNT(m, k, n, ones.data(), bv.data() + i * k * n,
                      want_da.data() + i * m * k);
    gemm::NaiveGemmTN(k, n, m, av.data() + i * m * k, ones.data(),
                      want_db.data() + i * k * n);
  }
  ExpectNear(want_da, a.grad());
  ExpectNear(want_db, b.grad());
}

TEST(BatchMatMulBackwardTest, OnlyRequestedGradsAllocated) {
  Tensor a = Tensor::FromVector({2, 3, 4}, RandomVec(24, 13),
                                /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({2, 4, 5}, RandomVec(40, 14),
                                /*requires_grad=*/false);
  ops::SumAll(ops::BatchMatMul(a, b)).Backward();
  EXPECT_EQ(a.grad().size(), 24u);
  EXPECT_TRUE(b.grad().empty());
}

// BatchMatMulNT must agree with BatchMatMul(a, TransposeLast2(b)) in both
// the forward values and the gradients it routes to a and b.
TEST(BatchMatMulNTTest, MatchesTransposedBatchMatMul) {
  const int64_t bsz = 3, m = 7, k = 5, n = 9;
  auto av = RandomVec(static_cast<size_t>(bsz * m * k), 15);
  auto bv = RandomVec(static_cast<size_t>(bsz * n * k), 16);

  Tensor a1 = Tensor::FromVector({bsz, m, k}, av, true);
  Tensor b1 = Tensor::FromVector({bsz, n, k}, bv, true);
  Tensor out1 = ops::BatchMatMulNT(a1, b1);
  ops::SumAll(out1).Backward();

  Tensor a2 = Tensor::FromVector({bsz, m, k}, av, true);
  Tensor b2 = Tensor::FromVector({bsz, n, k}, bv, true);
  Tensor out2 = ops::BatchMatMul(a2, ops::TransposeLast2(b2));
  ops::SumAll(out2).Backward();

  ExpectNear(out2.vec(), out1.vec());
  ExpectNear(a2.grad(), a1.grad());
  ExpectNear(b2.grad(), b1.grad());
}

}  // namespace
}  // namespace dader
