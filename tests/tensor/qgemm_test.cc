// Int8 GEMM layer: every ISA tier bit-identical to the portable oracle on
// all shapes/paths (direct, fast, exact), the acc16 saturation guard (big
// weights must route to the exact kernel and still match), the quantized
// Linear forward (quant.h) against a hand dequantization, and thread-count
// bit identity on forced multi-task fan-outs. Everything here asserts EQ,
// not NEAR: integer accumulation has one right answer.

#include "tensor/qgemm.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/cpu_dispatch.h"
#include "tensor/quant.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

struct Dims {
  int64_t m, n, k;
};

// Unit edges, lane tails around the 8/16-wide column blocks, quad tails in
// k, and shapes above the direct cutoff so the packed kernels run.
const Dims kShapes[] = {
    {1, 1, 1},   {1, 7, 5},    {5, 1, 9},    {3, 8, 4},     {6, 16, 8},
    {7, 17, 13}, {13, 31, 29}, {2, 15, 3},   {64, 64, 64},  {1, 96, 33},
    {41, 3, 50}, {6, 48, 20},  {96, 40, 96}, {33, 130, 65},
};

std::vector<uint8_t> RandomA(int64_t m, int64_t k, int64_t lda, uint32_t seed,
                             int hi = 255) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, hi);
  std::vector<uint8_t> a(static_cast<size_t>(m * lda), 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      a[i * lda + p] = static_cast<uint8_t>(dist(rng));
    }
  }
  return a;
}

std::vector<int8_t> RandomB(int64_t k, int64_t n, uint32_t seed,
                            int mag = 127) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-mag, mag);
  std::vector<int8_t> b(static_cast<size_t>(k * n));
  for (auto& v : b) v = static_cast<int8_t>(dist(rng));
  return b;
}

std::vector<cpu::Isa> TestableIsas() {
  std::vector<cpu::Isa> isas = {cpu::Isa::kPortable};
  for (cpu::Isa isa : {cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    if (cpu::HostSupports(isa) && cpu::CompiledWith(isa)) isas.push_back(isa);
  }
  return isas;
}

class ScopedIsa {
 public:
  explicit ScopedIsa(cpu::Isa isa) { cpu::ForceIsa(isa); }
  ~ScopedIsa() { cpu::ClearForcedIsa(); }
};

void RunAllPathsMatchOracle(int a_hi, int b_mag, uint32_t seed_base) {
  for (cpu::Isa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    int seed = 0;
    for (const Dims& d : kShapes) {
      const int64_t lda = qgemm::PaddedLda(d.k);
      const auto a =
          RandomA(d.m, d.k, lda, seed_base + seed, a_hi);
      const auto b = RandomB(d.k, d.n, seed_base + 1000 + seed, b_mag);
      ++seed;
      std::vector<int32_t> want(static_cast<size_t>(d.m * d.n), -1);
      qgemm::NaiveQGemmNN(d.m, d.n, d.k, a.data(), lda, b.data(), want.data());

      const int32_t bound = qgemm::MaddubsPairBound(b.data(), d.k, d.n);
      for (qgemm::QGemmForce force :
           {qgemm::QGemmForce::kAuto, qgemm::QGemmForce::kFast,
            qgemm::QGemmForce::kExact, qgemm::QGemmForce::kDirect}) {
        // A forced fast path is only exact when the guard admits it (or the
        // tier's fast kernel widens, e.g. VNNI/portable).
        if (force == qgemm::QGemmForce::kFast &&
            !cpu::ActiveQKernels().fast_is_exact &&
            static_cast<int64_t>(a_hi) * bound > 32767) {
          continue;
        }
        qgemm::QGemmOptions options;
        options.force = force;
        std::vector<int32_t> got(static_cast<size_t>(d.m * d.n), -2);
        qgemm::QGemmNN(d.m, d.n, d.k, a.data(), lda, b.data(), got.data(),
                       a_hi, bound, options);
        ASSERT_EQ(want, got)
            << cpu::IsaName(isa) << " m=" << d.m << " n=" << d.n
            << " k=" << d.k << " force=" << static_cast<int>(force);
      }
    }
  }
}

TEST(QGemmTest, AllTiersAllPathsMatchOracleSmallOperands) {
  // Small operands: the guard admits the acc16 fast path everywhere.
  RunAllPathsMatchOracle(/*a_hi=*/50, /*b_mag=*/60, /*seed_base=*/11);
}

TEST(QGemmTest, AllTiersAllPathsMatchOracleFullRangeOperands) {
  // Full-range operands: on maddubs tiers the guard must reject the fast
  // path (255 * 254 pairs overflow s16) and the auto path falls back to
  // the exact widening kernel — which must still match the oracle.
  RunAllPathsMatchOracle(/*a_hi=*/255, /*b_mag=*/127, /*seed_base=*/77);
}

TEST(QGemmTest, SaturationGuardRoutesToExactPath) {
  // A worst-case operand pair where the acc16 path would saturate: paired
  // weights of +127/+127 against activations of 255 produce pair sums of
  // 255*127*2 = 64770 > 32767. The auto path must still be bit-exact.
  const int64_t m = 4, n = 24, k = 32;
  const int64_t lda = qgemm::PaddedLda(k);
  std::vector<uint8_t> a(static_cast<size_t>(m * lda), 255);
  std::vector<int8_t> b(static_cast<size_t>(k * n), 127);
  const int32_t bound = qgemm::MaddubsPairBound(b.data(), k, n);
  EXPECT_EQ(bound, 254);

  std::vector<int32_t> want(static_cast<size_t>(m * n));
  qgemm::NaiveQGemmNN(m, n, k, a.data(), lda, b.data(), want.data());
  // 255 * 127 * 32 per element; confirms the oracle itself is sane.
  EXPECT_EQ(want[0], 255 * 127 * 32);

  for (cpu::Isa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    std::vector<int32_t> got(static_cast<size_t>(m * n), 0);
    qgemm::QGemmNN(m, n, k, a.data(), lda, b.data(), got.data(), 255, bound,
                   {});
    ASSERT_EQ(want, got) << cpu::IsaName(isa);
  }
}

TEST(QGemmTest, MaddubsPairBoundOddKPairsWithZero) {
  // k=3: rows pair as (0,1) and (2, implicit zero).
  const int8_t b[] = {100, -100, 27, 50, -128, 3};  // [3, 2]
  // col 0: |100|+|27| = 127, |50| = 50 -> 127
  // col 1: |-100|+|50|... wait, layout is row-major [k=3][n=2]:
  // rows: {100,-100}, {27,50}, {-128,3}
  // col 0 pairs: |100|+|27|=127, |-128|=128 -> 128
  // col 1 pairs: |-100|+|50|=150, |3|=3 -> 150
  EXPECT_EQ(qgemm::MaddubsPairBound(b, 3, 2), 150);
}

TEST(QGemmTest, ZeroKZeroFillsOutput) {
  std::vector<int32_t> c(6, 1234);
  qgemm::QGemmNN(2, 3, 0, nullptr, 0, nullptr, c.data(), 0, 0, {});
  EXPECT_EQ(c, std::vector<int32_t>(6, 0));
}

TEST(QGemmTest, BitIdenticalAcrossThreadCounts) {
  // Fan-out must not change a single bit. Force the parallel path past the
  // hardware-concurrency clamp so this holds even on single-core CI hosts;
  // exercises the row-split seams at several task counts.
  const int64_t m = 37, n = 48, k = 64;
  const int64_t lda = qgemm::PaddedLda(k);
  const auto a = RandomA(m, k, lda, 5);
  const auto b = RandomB(k, n, 6);
  const int32_t bound = qgemm::MaddubsPairBound(b.data(), k, n);
  std::vector<int32_t> serial(static_cast<size_t>(m * n));
  qgemm::NaiveQGemmNN(m, n, k, a.data(), lda, b.data(), serial.data());

  for (cpu::Isa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    for (size_t workers : {2u, 3u, 7u}) {
      ThreadPool pool(workers);
      qgemm::QGemmOptions options;
      options.pool = &pool;
      options.parallel_min_products = 1;   // always fan out
      options.min_products_per_task = 0;   // no per-task floor
      options.respect_hardware_concurrency = false;
      std::vector<int32_t> got(static_cast<size_t>(m * n), -1);
      qgemm::QGemmNN(m, n, k, a.data(), lda, b.data(), got.data(), 255,
                     bound, options);
      ASSERT_EQ(serial, got) << cpu::IsaName(isa) << " workers=" << workers;
    }
  }
}

TEST(QGemmTest, CrossTierBitIdentity) {
  // Stronger than the fp32 contract: different ISA tiers agree bit-for-bit
  // with each other, not just with themselves.
  const int64_t m = 19, n = 50, k = 70;
  const int64_t lda = qgemm::PaddedLda(k);
  const auto a = RandomA(m, k, lda, 9);
  const auto b = RandomB(k, n, 10);
  const int32_t bound = qgemm::MaddubsPairBound(b.data(), k, n);
  std::vector<std::vector<int32_t>> results;
  for (cpu::Isa isa : TestableIsas()) {
    ScopedIsa forced(isa);
    std::vector<int32_t> got(static_cast<size_t>(m * n));
    qgemm::QGemmNN(m, n, k, a.data(), lda, b.data(), got.data(), 255, bound,
                   {});
    results.push_back(std::move(got));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0], results[i]);
  }
}

// ---------------------------------------------------------------------------
// quant.h: quantizer math and the dequantized Linear forward.
// ---------------------------------------------------------------------------

TEST(QuantTest, ActQuantFromRangeIncludesZero) {
  // A positive-only range still maps 0 exactly (zp on the grid).
  const auto q = quant::ActQuantFromRange(2.0f, 10.0f);
  EXPECT_FLOAT_EQ(q.scale, 10.0f / 255.0f);
  EXPECT_EQ(q.zero_point, 0);
  const auto q2 = quant::ActQuantFromRange(-1.0f, 1.0f);
  EXPECT_EQ(q2.zero_point, 128);  // round(1 / (2/255)) = round(127.5)
  const auto q3 = quant::ActQuantFromRange(0.0f, 0.0f);
  EXPECT_FLOAT_EQ(q3.scale, 1.0f);
  EXPECT_EQ(q3.zero_point, 0);
}

TEST(QuantTest, QuantizeLinearWeightsPerChannel) {
  // Two channels with very different ranges get independent scales.
  const int64_t in = 2, out = 2;
  const float w[] = {1.0f, 100.0f,   // row p=0
                     -0.5f, -50.0f};  // row p=1
  const float bias[] = {0.25f, -3.0f};
  auto q = quant::QuantizeLinearWeights(w, in, out, bias, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(q->weight_scale[0], 1.0f / 127.0f);
  EXPECT_FLOAT_EQ(q->weight_scale[1], 100.0f / 127.0f);
  EXPECT_EQ(q->weight_q[0], 127);   // 1.0 / (1/127)
  EXPECT_EQ(q->weight_q[1], 127);   // 100 / (100/127)
  EXPECT_EQ(q->weight_q[2], -64);   // round(-0.5 * 127) = -63.5 -> -64
  EXPECT_EQ(q->weight_q[3], -64);   // round(-50 / (100/127)) = -63.5
  EXPECT_EQ(q->col_sum[0], 127 - 64);
  EXPECT_EQ(q->bias.size(), 2u);
}

TEST(QuantTest, QLinearForwardMatchesManualDequant) {
  // The forward must equal the closed-form dequant of the oracle GEMM on
  // the quantized operands — exactly, since both run the same arithmetic.
  const int64_t m = 5, in = 24, out = 17;
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> w(static_cast<size_t>(in * out));
  std::vector<float> bias(static_cast<size_t>(out));
  std::vector<float> x(static_cast<size_t>(m * in));
  for (auto& v : w) v = dist(rng);
  for (auto& v : bias) v = dist(rng);
  for (auto& v : x) v = dist(rng);

  auto q = quant::QuantizeLinearWeights(w.data(), in, out, bias.data(), -2.0f,
                                        2.0f);
  std::vector<float> got(static_cast<size_t>(m * out));
  quant::QLinearForward(*q, x.data(), m, got.data());

  // Manual path: quantize x the same way, oracle GEMM, dequant.
  const int64_t lda = qgemm::PaddedLda(in);
  std::vector<uint8_t> aq(static_cast<size_t>(m * lda), 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < in; ++p) {
      const float v = x[i * in + p] / q->act.scale;
      const int32_t r =
          static_cast<int32_t>(v >= 0 ? v + 0.5f : v - 0.5f) +
          q->act.zero_point;
      aq[i * lda + p] = static_cast<uint8_t>(std::clamp(r, 0, 255));
    }
  }
  std::vector<int32_t> acc(static_cast<size_t>(m * out));
  qgemm::NaiveQGemmNN(m, out, in, aq.data(), lda, q->weight_q.data(),
                      acc.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < out; ++j) {
      const float want =
          q->act.scale * q->weight_scale[j] *
              static_cast<float>(acc[i * out + j] -
                                 q->act.zero_point * q->col_sum[j]) +
          bias[j];
      ASSERT_EQ(want, got[i * out + j]) << "i=" << i << " j=" << j;
    }
  }
}

TEST(QuantTest, QLinearForwardApproximatesFp32) {
  // End-to-end error sanity: quantized Linear within ~1% of fp32 on a
  // well-conditioned random layer.
  const int64_t m = 8, in = 64, out = 32;
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> w(static_cast<size_t>(in * out));
  std::vector<float> bias(static_cast<size_t>(out));
  std::vector<float> x(static_cast<size_t>(m * in));
  for (auto& v : w) v = dist(rng);
  for (auto& v : bias) v = dist(rng);
  for (auto& v : x) v = dist(rng);

  auto q = quant::QuantizeLinearWeights(w.data(), in, out, bias.data(), -1.0f,
                                        1.0f);
  std::vector<float> got(static_cast<size_t>(m * out));
  quant::QLinearForward(*q, x.data(), m, got.data());

  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < out; ++j) {
      float want = bias[j];
      for (int64_t p = 0; p < in; ++p) {
        want += x[i * in + p] * w[p * out + j];
      }
      ASSERT_NEAR(want, got[i * out + j], 0.05f) << "i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace dader
