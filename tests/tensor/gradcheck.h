// Numeric gradient checking for differentiable ops.
//
// CheckGradients perturbs every input element with central differences and
// compares the numeric derivative of a scalar function against the autograd
// gradient. All fused losses (MMD, CORAL, KD, ...) are validated this way.

#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace dader::testing_util {

/// \brief Builds a scalar from the inputs (must use only tape-recorded ops).
using ScalarFn = std::function<Tensor(std::vector<Tensor>&)>;

/// \brief Verifies autograd gradients of `fn` w.r.t. every input tensor.
///
/// Uses relative-or-absolute tolerance: |num - ana| <= tol * (1 + |num|).
inline void CheckGradients(const ScalarFn& fn, std::vector<Tensor> inputs,
                           float eps = 1e-2f, float tol = 2e-2f) {
  // Analytic gradients.
  for (auto& t : inputs) t.ZeroGrad();
  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (auto& t : inputs) {
    analytic.push_back(t.grad().empty()
                           ? std::vector<float>(t.vec().size(), 0.0f)
                           : t.grad());
  }

  // Numeric gradients via central differences.
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    for (size_t i = 0; i < t.vec().size(); ++i) {
      const float orig = t.vec()[i];
      t.vec()[i] = orig + eps;
      const float up = fn(inputs).item();
      t.vec()[i] = orig - eps;
      const float down = fn(inputs).item();
      t.vec()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float ana = analytic[ti][i];
      EXPECT_NEAR(ana, numeric, tol * (1.0f + std::fabs(numeric)))
          << "input " << ti << " element " << i;
    }
  }
}

/// \brief Random test tensor with requires_grad.
inline Tensor RandomInput(Shape shape, Rng* rng, float scale = 1.0f) {
  Tensor t = Tensor::RandomUniform(std::move(shape), -scale, scale, rng,
                                   /*requires_grad=*/true);
  return t;
}

}  // namespace dader::testing_util
