// Sharded-serving tests: routing determinism (identical match decisions at
// any shard count), stable shard assignment, feature-cache exactness and
// reload invalidation, per-shard fault/breaker isolation, and hot-reload
// fan-out across replicas.

#include "serve/sharded_service.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>
#include <vector>

#include "core/guard.h"
#include "serve/router.h"
#include "util/fault.h"

namespace dader::serve {
namespace {

using core::DaderConfig;

DaderConfig TinyModelConfig() {
  DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, TinyModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

data::Schema TestSchema() { return data::Schema({"title", "price"}); }

MatchRequest MakeRequest(const std::string& title_a,
                         const std::string& title_b) {
  MatchRequest request;
  request.a = data::Record({title_a, "10"});
  request.b = data::Record({title_b, "10"});
  return request;
}

ServeConfig ShardTemplate() {
  ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 10000.0;  // latency is not under test
  config.retry.base_backoff_ms = 1.0;
  config.retry.max_backoff_ms = 4.0;
  return config;
}

Result<std::unique_ptr<ShardedMatchService>> MakeSharded(
    int num_shards, ServeConfig shard_template, uint64_t model_seed = 21) {
  ShardedServeConfig config;
  config.num_shards = num_shards;
  config.shard = std::move(shard_template);
  return ShardedMatchService::Create(config, TestSchema(), TestSchema(),
                                     MakeModel(core::ExtractorKind::kLM,
                                               model_seed));
}

// A request stream with repeats and case/spacing variants, wide enough to
// touch several of 8 shards.
std::vector<MatchRequest> TestStream() {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"sony wh-1000xm4 headphones", "sony wh1000xm4"},
      {"apple iphone 12 128gb", "apple iphone 12 128 gb"},
      {"apple iphone 12 128gb", "makita cordless drill"},
      {"canon eos r6 body", "canon eos r6"},
      {"dell xps 13 9310", "dell xps13 9310 laptop"},
      {"logitech mx master 3", "logitech mx master 3s"},
      {"bosch gsr 12v drill", "canon eos r6"},
      {"samsung galaxy s21", "samsung galaxy s21 5g"},
  };
  std::vector<MatchRequest> stream;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& [a, b] : pairs) stream.push_back(MakeRequest(a, b));
  }
  return stream;
}

TEST(RouterTest, PairKeyNormalizesFormattingAndKeepsBoundaries) {
  const data::Record a({"Apple iPhone  12", "10"});
  const data::Record a_variant({"apple IPHONE 12", "10"});
  const data::Record b({"makita drill", "10"});
  // Case/extra-whitespace variants normalize to the same key...
  EXPECT_EQ(PairKey(a, b), PairKey(a_variant, b));
  EXPECT_EQ(PairKeyHash(a, b), PairKeyHash(a_variant, b));
  // ...but token boundaries survive: "ab c" != "a bc".
  const data::Record ab_c({"ab c", "10"});
  const data::Record a_bc({"a bc", "10"});
  EXPECT_NE(PairKey(ab_c, b), PairKey(a_bc, b));
  // The pair is ordered: (a, b) and (b, a) are different questions.
  EXPECT_NE(PairKey(a, b), PairKey(b, a));
}

TEST(RouterTest, ShardAssignmentIsStableAndInRange) {
  const auto stream = TestStream();
  for (int num_shards : {1, 2, 8}) {
    for (const MatchRequest& request : stream) {
      const int shard = ShardForPair(request.a, request.b, num_shards);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, num_shards);
      // Pure function of the pair: re-asking never moves the request.
      EXPECT_EQ(shard, ShardForPair(request.a, request.b, num_shards));
    }
  }
}

// The core tentpole guarantee: the same request stream produces
// bit-identical match decisions through 1, 2, and 8 shards. Replicas are
// deep copies and the extractor's per-pair features are independent of
// batch composition, so resharding may only change throughput, never
// answers.
TEST(ShardedMatchServiceTest, DecisionsBitIdenticalAcrossShardCounts) {
  std::vector<std::vector<MatchResponse>> per_count;
  std::vector<int> used_shards;
  for (int num_shards : {1, 2, 8}) {
    auto service_or = MakeSharded(num_shards, ShardTemplate());
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    auto service = std::move(service_or).ValueOrDie();
    EXPECT_EQ(service->num_shards(), num_shards);
    per_count.push_back(service->MatchBatch(TestStream()));
    int shards_touched = 0;
    for (int i = 0; i < num_shards; ++i) {
      if (service->shard(i).stats().admitted > 0) ++shards_touched;
    }
    used_shards.push_back(shards_touched);
    service->Stop();
  }
  ASSERT_EQ(per_count.size(), 3u);
  const std::vector<MatchResponse>& ref = per_count[0];
  for (size_t c = 1; c < per_count.size(); ++c) {
    ASSERT_EQ(per_count[c].size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_TRUE(per_count[c][i].status.ok())
          << per_count[c][i].status.ToString();
      EXPECT_EQ(per_count[c][i].label, ref[i].label) << "request " << i;
      EXPECT_EQ(per_count[c][i].prob, ref[i].prob)
          << "request " << i << " not bit-identical";
      EXPECT_FALSE(per_count[c][i].degraded);
    }
  }
  // The stream must actually have exercised the partitioning.
  EXPECT_EQ(used_shards[0], 1);
  EXPECT_GE(used_shards[2], 2) << "8-shard run never split the stream";
}

// Cache on vs cache off is invisible in the answers: a hit replays the
// exact feature row the extractor produced, and the matcher head is
// row-independent.
TEST(ShardedMatchServiceTest, FeatureCacheKeepsDecisionsBitIdentical) {
  ServeConfig with_cache = ShardTemplate();
  with_cache.feature_cache_capacity = 64;

  auto cached_or = MakeSharded(2, with_cache);
  auto plain_or = MakeSharded(2, ShardTemplate());
  ASSERT_TRUE(cached_or.ok() && plain_or.ok());
  auto cached = std::move(cached_or).ValueOrDie();
  auto plain = std::move(plain_or).ValueOrDie();

  // Two passes over the stream: the second is all repeats, so the cached
  // service must serve it mostly from feature hits.
  const auto pass1_cached = cached->MatchBatch(TestStream());
  const auto pass2_cached = cached->MatchBatch(TestStream());
  const auto pass1_plain = plain->MatchBatch(TestStream());
  const auto pass2_plain = plain->MatchBatch(TestStream());

  ASSERT_EQ(pass1_cached.size(), pass1_plain.size());
  for (size_t i = 0; i < pass1_cached.size(); ++i) {
    ASSERT_TRUE(pass1_cached[i].status.ok());
    ASSERT_TRUE(pass2_cached[i].status.ok());
    EXPECT_EQ(pass1_cached[i].prob, pass1_plain[i].prob) << "pass 1, " << i;
    EXPECT_EQ(pass2_cached[i].prob, pass2_plain[i].prob) << "pass 2, " << i;
    EXPECT_EQ(pass1_cached[i].prob, pass2_cached[i].prob)
        << "repeat lookup changed the answer, " << i;
  }

  const ServeStats stats = cached->stats();
  EXPECT_GT(stats.cache_hits, 0) << "repeats never hit the cache";
  EXPECT_GT(stats.cache_misses, 0);
  EXPECT_EQ(plain->stats().cache_hits, 0);
  cached->Stop();
  plain->Stop();
}

// Breaker isolation: a fault storm confined to shard k (shard-filtered
// FaultSpec) trips only shard k's breaker; the sibling shard keeps serving
// primary traffic with no degradation.
TEST(ShardedMatchServiceTest, ShardFaultDoesNotShedSiblingTraffic) {
  FaultInjector fault;
  ServeConfig shard_template = ShardTemplate();
  shard_template.fault = &fault;
  shard_template.retry.max_attempts = 1;  // fail fast into degraded
  shard_template.breaker.failure_threshold = 1;
  shard_template.breaker.cooldown_ms = 60000.0;  // stays open for the test

  auto service_or = MakeSharded(2, shard_template);
  ASSERT_TRUE(service_or.ok());
  auto service = std::move(service_or).ValueOrDie();

  // Find request templates that land on each shard.
  std::vector<MatchRequest> on_shard[2];
  for (int i = 0; i < 32; ++i) {
    MatchRequest request = MakeRequest("widget model " + std::to_string(i),
                                       "widget model " + std::to_string(i));
    on_shard[service->ShardFor(request)].push_back(std::move(request));
  }
  ASSERT_FALSE(on_shard[0].empty());
  ASSERT_FALSE(on_shard[1].empty());

  const int victim = 0;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.shard = victim;
  spec.max_hits = 1000000;
  fault.Arm(spec);

  // Hammer the victim shard until its breaker opens, then verify the
  // sibling still serves primary traffic.
  for (const MatchRequest& request : on_shard[victim]) {
    const MatchResponse r = service->Match(request);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.degraded) << "victim shard served primary through a fault";
  }
  EXPECT_EQ(service->shard(victim).breaker_state(), BreakerState::kOpen);

  for (const MatchRequest& request : on_shard[1 - victim]) {
    const MatchResponse r = service->Match(request);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.degraded) << "fault on shard " << victim
                             << " leaked to the sibling shard";
  }
  EXPECT_EQ(service->shard(1 - victim).breaker_state(),
            BreakerState::kClosed);
  EXPECT_EQ(service->shard(1 - victim).stats().primary_failures, 0);
  EXPECT_GT(service->shard(victim).stats().primary_failures, 0);
  service->Stop();
}

// Hot reload fans out to every replica, and the feature cache cannot serve
// stale old-weight features afterwards.
TEST(ShardedMatchServiceTest, ReloadFansOutAndInvalidatesCaches) {
  const std::string dir = testing::TempDir() + "/sharded_reload";
  ::mkdir(dir.c_str(), 0755);
  const std::string donor_path = dir + "/donor.ckpt";
  const std::string corrupt_path = dir + "/corrupt.ckpt";

  core::DaModel donor = MakeModel(core::ExtractorKind::kLM, 99);
  ASSERT_TRUE(core::SaveModules(donor_path, {{"F", donor.extractor.get()},
                                             {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(core::SaveModules(corrupt_path, {{"F", donor.extractor.get()},
                                               {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(FaultInjector::CorruptByte(corrupt_path, 200).ok());

  ServeConfig with_cache = ShardTemplate();
  with_cache.feature_cache_capacity = 64;
  auto service_or = MakeSharded(2, with_cache);
  ASSERT_TRUE(service_or.ok());
  auto service = std::move(service_or).ValueOrDie();

  // Warm every shard's cache with probes that route to different shards.
  std::vector<MatchRequest> probes;
  for (int i = 0; probes.size() < 2 && i < 32; ++i) {
    MatchRequest candidate = MakeRequest("probe item " + std::to_string(i),
                                         "probe item " + std::to_string(i));
    if (probes.empty() ||
        service->ShardFor(candidate) != service->ShardFor(probes[0])) {
      probes.push_back(std::move(candidate));
    }
  }
  ASSERT_EQ(probes.size(), 2u);
  std::vector<float> before;
  for (const MatchRequest& probe : probes) {
    const MatchResponse r = service->Match(probe);
    ASSERT_TRUE(r.status.ok());
    before.push_back(r.prob);
  }

  // A corrupt checkpoint is rejected before any shard swaps.
  EXPECT_FALSE(service->ReloadModel(corrupt_path).ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(service->Match(probes[i]).prob, before[i]);
  }
  EXPECT_EQ(service->stats().reloads, 0);

  // A valid reload takes effect on every shard: the probes' answers come
  // from the donor weights now, so the warmed cache entries cannot have
  // been replayed.
  ASSERT_TRUE(service->ReloadModel(donor_path).ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    const MatchResponse r = service->Match(probes[i]);
    ASSERT_TRUE(r.status.ok());
    EXPECT_NE(r.prob, before[i])
        << "shard " << service->ShardFor(probes[i])
        << " still answers with pre-reload weights (stale cache?)";
  }
  for (int i = 0; i < service->num_shards(); ++i) {
    EXPECT_EQ(service->shard(i).stats().reloads, 1) << "shard " << i;
  }
  service->Stop();
}

// Direct per-shard cache accounting across a hot reload: every shard's
// cache is populated by its own traffic, every shard's cache is emptied by
// the reload (not just shard 0's), and re-asking after the reload is a
// miss (features recomputed under the new weights), not a hit.
TEST(ShardedMatchServiceTest, EveryShardsFeatureCacheInvalidatesOnReload) {
  const std::string dir = testing::TempDir() + "/per_shard_cache_reload";
  ::mkdir(dir.c_str(), 0755);
  const std::string donor_path = dir + "/donor.ckpt";
  core::DaModel donor = MakeModel(core::ExtractorKind::kLM, 77);
  ASSERT_TRUE(core::SaveModules(donor_path, {{"F", donor.extractor.get()},
                                             {"M", donor.matcher.get()}})
                  .ok());

  ServeConfig with_cache = ShardTemplate();
  with_cache.feature_cache_capacity = 64;
  auto service_or = MakeSharded(2, with_cache);
  ASSERT_TRUE(service_or.ok());
  auto service = std::move(service_or).ValueOrDie();

  // Warm both shards.
  std::vector<MatchRequest> warm;
  for (int i = 0; i < 16; ++i) {
    warm.push_back(MakeRequest("gadget " + std::to_string(i),
                               "gadget " + std::to_string(i) + " pro"));
  }
  service->MatchBatch(warm);
  for (int i = 0; i < service->num_shards(); ++i) {
    const FeatureCache* cache = service->shard(i).feature_cache();
    ASSERT_NE(cache, nullptr);
    EXPECT_GT(cache->size(), 0u) << "shard " << i << " cache never warmed";
  }
  // Replay: all hits, proving the entries are live.
  const int64_t hits_before = service->stats().cache_hits;
  service->MatchBatch(warm);
  EXPECT_EQ(service->stats().cache_hits - hits_before,
            static_cast<int64_t>(warm.size()));

  // The reload must empty EVERY shard's cache in the same swap.
  ASSERT_TRUE(service->ReloadModel(donor_path).ok());
  for (int i = 0; i < service->num_shards(); ++i) {
    EXPECT_EQ(service->shard(i).feature_cache()->size(), 0u)
        << "shard " << i << " kept old-weight features across the reload";
  }

  // Replaying the stream now misses (recomputed), then hits again.
  const int64_t misses_before = service->stats().cache_misses;
  service->MatchBatch(warm);
  EXPECT_EQ(service->stats().cache_misses - misses_before,
            static_cast<int64_t>(warm.size()));
  const int64_t hits_after = service->stats().cache_hits;
  service->MatchBatch(warm);
  EXPECT_EQ(service->stats().cache_hits - hits_after,
            static_cast<int64_t>(warm.size()));
  service->Stop();
}

}  // namespace
}  // namespace dader::serve
