// End-to-end fault-scenario tests for MatchService: overload shedding,
// deadline expiry, transient-fault retry, breaker trip -> degraded serving ->
// half-open recovery, and hot model reload with corrupt-checkpoint rollback.

#include "serve/match_service.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "util/fault.h"

namespace dader::serve {
namespace {

using core::DaderConfig;

DaderConfig TinyModelConfig() {
  DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 4;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, const DaderConfig& config,
                        uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, config, seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

data::Schema TestSchema() { return data::Schema({"title", "price"}); }

MatchRequest MakeRequest(const std::string& title_a, const std::string& title_b,
                         double deadline_ms = -1.0) {
  MatchRequest request;
  request.a = data::Record({title_a, "10"});
  request.b = data::Record({title_b, "10"});
  request.deadline_ms = deadline_ms;
  return request;
}

ServeConfig TestServeConfig() {
  ServeConfig config;
  config.queue_capacity = 64;
  config.max_batch = 8;
  config.batch_wait_ms = 0.5;
  config.default_deadline_ms = 10000.0;  // generous: latency is not under test
  config.retry.base_backoff_ms = 1.0;
  config.retry.max_backoff_ms = 4.0;
  return config;
}

std::unique_ptr<MatchService> MakeService(
    ServeConfig config, std::unique_ptr<core::DaModel> fallback = nullptr) {
  const DaderConfig model_config = TinyModelConfig();
  return std::make_unique<MatchService>(
      std::move(config), TestSchema(), TestSchema(),
      MakeModel(core::ExtractorKind::kLM, model_config, 21),
      std::move(fallback));
}

std::unique_ptr<core::DaModel> MakeFallbackModel() {
  return std::make_unique<core::DaModel>(
      MakeModel(core::ExtractorKind::kRNN, TinyModelConfig(), 33));
}

TEST(MatchServiceTest, ServesBatchedRequests) {
  auto service = MakeService(TestServeConfig(), MakeFallbackModel());
  std::vector<MatchRequest> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(MakeRequest("sony camera a" + std::to_string(i),
                                   "sony camera a" + std::to_string(i)));
  }
  const std::vector<MatchResponse> responses =
      service->MatchBatch(std::move(requests));
  ASSERT_EQ(responses.size(), 12u);
  for (const MatchResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.degraded);
    EXPECT_GE(r.prob, 0.0f);
    EXPECT_LE(r.prob, 1.0f);
    EXPECT_TRUE(r.label == 0 || r.label == 1);
    EXPECT_GE(r.attempts, 1);
  }
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.completed, 12);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.degraded, 0);
}

TEST(MatchServiceTest, SchemaMismatchIsRejectedUpFront) {
  auto service = MakeService(TestServeConfig());
  MatchRequest bad;
  bad.a = data::Record({"only one value"});  // schema expects two
  bad.b = data::Record({"x", "y"});
  const MatchResponse response = service->Match(std::move(bad));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(MatchServiceTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  ServeConfig config = TestServeConfig();
  config.queue_capacity = 4;
  config.max_batch = 2;
  auto service = MakeService(std::move(config));

  constexpr int kRequests = 200;
  std::vector<std::future<MatchResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(service->SubmitAsync(
        MakeRequest("item " + std::to_string(i), "item " + std::to_string(i))));
    EXPECT_LE(service->queue_depth(), 4u);  // no unbounded growth
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const MatchResponse r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
          << r.status.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GT(shed, 0);  // submission outpaces tiny-batch forwards
  EXPECT_GT(ok, 0);    // admitted requests are all answered
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.admitted, ok);
  EXPECT_EQ(stats.completed, ok);
}

TEST(MatchServiceTest, ExpiredDeadlinesAreReportedNotComputed) {
  auto service = MakeService(TestServeConfig());
  // A deadline this tight expires while queued or during the batch forward;
  // both accounting paths must answer DeadlineExceeded.
  const MatchResponse response =
      service->Match(MakeRequest("a", "b", /*deadline_ms=*/0.0005));
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded)
      << response.status.ToString();
  EXPECT_EQ(service->stats().deadline_expired, 1);
  // The service keeps serving normal traffic afterwards.
  EXPECT_TRUE(service->Match(MakeRequest("a", "a")).status.ok());
}

TEST(MatchServiceTest, TransientFaultIsRetriedWithinTheBatch) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorNan;
  spec.max_hits = 1;  // only the first attempt is poisoned
  injector.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.fault = &injector;
  config.breaker.failure_threshold = 10;  // stay closed; retry is under test
  auto service = MakeService(std::move(config));

  const MatchResponse response = service->Match(MakeRequest("x", "x"));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.attempts, 2);  // failed once, succeeded on retry
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.primary_failures, 1);
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(injector.hits(FaultKind::kExtractorNan), 1);
}

// The acceptance scenario: a primary fault streak trips the breaker,
// degraded responses keep flowing (fallback model, degraded=true), and once
// the fault clears a half-open probe restores full service.
TEST(MatchServiceTest, BreakerTripsDegradesAndRecovers) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.max_hits = 1000;  // persistent outage until disarmed
  injector.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.fault = &injector;
  config.retry.max_attempts = 2;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_ms = 150.0;
  config.breaker.half_open_successes = 2;
  auto service = MakeService(std::move(config), MakeFallbackModel());

  // Outage phase: every response must still arrive, degraded.
  for (int i = 0; i < 6; ++i) {
    const MatchResponse r = service->Match(MakeRequest("dell laptop", "dell laptop"));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.degraded);
  }
  ServeStats stats = service->stats();
  EXPECT_GE(stats.breaker_trips, 1);
  EXPECT_EQ(stats.degraded, 6);
  EXPECT_GT(stats.primary_failures, 0);
  EXPECT_NE(service->breaker_state(), BreakerState::kClosed);

  // Fault clears; after the cooldown the half-open probes re-close the
  // breaker and full-quality responses resume.
  injector.Disarm(FaultKind::kExtractorFault);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  int full_quality = 0;
  for (int i = 0; i < 4; ++i) {
    const MatchResponse r = service->Match(MakeRequest("dell laptop", "dell laptop"));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (!r.degraded) ++full_quality;
  }
  EXPECT_GE(full_quality, 2);  // at most the first two are probe/degraded
  EXPECT_EQ(service->breaker_state(), BreakerState::kClosed);
  const MatchResponse recovered = service->Match(MakeRequest("hp printer", "canon scanner"));
  ASSERT_TRUE(recovered.status.ok());
  EXPECT_FALSE(recovered.degraded);
}

TEST(MatchServiceTest, HeuristicFallbackServesWhenNoFallbackModel) {
  FaultInjector injector;
  FaultSpec spec;
  spec.kind = FaultKind::kExtractorFault;
  spec.max_hits = 1000;
  injector.Arm(spec);

  ServeConfig config = TestServeConfig();
  config.fault = &injector;
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 1;
  config.breaker.cooldown_ms = 60000.0;
  auto service = MakeService(std::move(config));  // no fallback model

  const MatchResponse match =
      service->Match(MakeRequest("apple iphone 12 pro", "apple iphone 12 pro"));
  ASSERT_TRUE(match.status.ok());
  EXPECT_TRUE(match.degraded);
  EXPECT_GT(match.prob, 0.5f);
  EXPECT_EQ(match.label, 1);

  const MatchResponse nonmatch =
      service->Match(MakeRequest("apple iphone 12 pro", "garden hose reel"));
  ASSERT_TRUE(nonmatch.status.ok());
  EXPECT_TRUE(nonmatch.degraded);
  EXPECT_LT(nonmatch.prob, 0.5f);
  EXPECT_EQ(nonmatch.label, 0);
}

TEST(MatchServiceTest, ReloadSwapsWeightsAndRollsBackOnCorruption) {
  const std::string dir = testing::TempDir() + "/serve_reload";
  ::mkdir(dir.c_str(), 0755);
  const std::string good_path = dir + "/good.ckpt";
  const std::string corrupt_path = dir + "/corrupt.ckpt";
  const std::string mismatch_path = dir + "/mismatch.ckpt";

  // A donor model with the same architecture but different weights.
  core::DaModel donor = MakeModel(core::ExtractorKind::kLM, TinyModelConfig(), 99);
  ASSERT_TRUE(core::SaveModules(good_path, {{"F", donor.extractor.get()},
                                            {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(core::SaveModules(corrupt_path, {{"F", donor.extractor.get()},
                                               {"M", donor.matcher.get()}})
                  .ok());
  // An architecture that cannot serve this service's schema/width.
  DaderConfig wide = TinyModelConfig();
  wide.hidden_dim = 16;
  wide.ffn_dim = 32;
  core::DaModel mismatch = MakeModel(core::ExtractorKind::kLM, wide, 5);
  ASSERT_TRUE(core::SaveModules(mismatch_path, {{"F", mismatch.extractor.get()},
                                                {"M", mismatch.matcher.get()}})
                  .ok());

  auto service = MakeService(TestServeConfig());
  const MatchRequest probe = MakeRequest("canon eos r6", "canon eos r6");
  const float before = service->Match(probe).prob;

  // 1. A valid checkpoint swaps in and serving continues.
  ASSERT_TRUE(service->ReloadModel(good_path).ok());
  const MatchResponse after = service->Match(probe);
  ASSERT_TRUE(after.status.ok());
  EXPECT_NE(after.prob, before);  // different weights actually took effect

  // 2. A corrupted checkpoint (payload bit flip caught by the CRC footer)
  //    is rejected and the live model keeps serving.
  ASSERT_TRUE(FaultInjector::CorruptByte(corrupt_path, 200).ok());
  const Status corrupt_status = service->ReloadModel(corrupt_path);
  EXPECT_FALSE(corrupt_status.ok());
  const MatchResponse still_serving = service->Match(probe);
  ASSERT_TRUE(still_serving.status.ok());
  EXPECT_FLOAT_EQ(still_serving.prob, after.prob);  // rollback: weights untouched

  // 3. Same for an architecture-mismatched checkpoint and a missing file.
  EXPECT_FALSE(service->ReloadModel(mismatch_path).ok());
  EXPECT_FALSE(service->ReloadModel(dir + "/does_not_exist.ckpt").ok());
  EXPECT_TRUE(service->Match(probe).status.ok());

  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.reloads, 1);
  EXPECT_EQ(stats.reload_rollbacks, 3);
}

// Hot reload must not interrupt serving: a client hammers the service while
// good and corrupt reloads happen concurrently; every admitted request gets
// an answer and the service never serves from a half-swapped model.
TEST(MatchServiceTest, ReloadWhileServingIsUninterrupted) {
  const std::string dir = testing::TempDir() + "/serve_reload_live";
  ::mkdir(dir.c_str(), 0755);
  const std::string good_path = dir + "/good.ckpt";
  const std::string corrupt_path = dir + "/corrupt.ckpt";
  core::DaModel donor = MakeModel(core::ExtractorKind::kLM, TinyModelConfig(), 77);
  ASSERT_TRUE(core::SaveModules(good_path, {{"F", donor.extractor.get()},
                                            {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(core::SaveModules(corrupt_path, {{"F", donor.extractor.get()},
                                               {"M", donor.matcher.get()}})
                  .ok());
  ASSERT_TRUE(FaultInjector::TruncateFile(corrupt_path, 0.5).ok());

  auto service = MakeService(TestServeConfig());
  std::atomic<int> answered{0};
  std::atomic<bool> all_ok{true};
  std::thread client([&] {
    for (int i = 0; i < 40; ++i) {
      const MatchResponse r =
          service->Match(MakeRequest("lenovo thinkpad", "lenovo thinkpad"));
      if (!r.status.ok()) all_ok.store(false);
      answered.fetch_add(1);
    }
  });
  ASSERT_TRUE(service->ReloadModel(good_path).ok());
  EXPECT_FALSE(service->ReloadModel(corrupt_path).ok());
  ASSERT_TRUE(service->ReloadModel(good_path).ok());
  client.join();
  EXPECT_EQ(answered.load(), 40);
  EXPECT_TRUE(all_ok.load());
  const ServeStats stats = service->stats();
  EXPECT_EQ(stats.reloads, 2);
  EXPECT_EQ(stats.reload_rollbacks, 1);
  EXPECT_EQ(stats.completed, 40);
}

TEST(MatchServiceTest, StopAnswersLateSubmissionsUnavailable) {
  auto service = MakeService(TestServeConfig());
  EXPECT_TRUE(service->Match(MakeRequest("a", "a")).status.ok());
  service->Stop();
  const MatchResponse late = service->Match(MakeRequest("b", "b"));
  EXPECT_EQ(late.status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace dader::serve
