// Unit tests for the serving building blocks: retry backoff, the circuit
// breaker state machine, the bounded admission queue, the degraded-mode
// similarity heuristic, the feature LRU cache, and the adaptive batch-cap
// controller.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/adaptive_batch.h"
#include "serve/admission_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/feature_cache.h"
#include "serve/match_service.h"
#include "serve/retry.h"

namespace dader::serve {
namespace {

TEST(RetryTest, ExponentialGrowthWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, nullptr), 8.0);
}

TEST(RetryTest, CappedAtMaxBackoff) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.max_backoff_ms = 25.0;
  policy.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 5, nullptr), 25.0);
}

TEST(RetryTest, JitterStaysInRangeAndIsSeeded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_frac = 0.5;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double d = BackoffDelayMs(policy, 1, &rng);
    EXPECT_GE(d, 4.0);
    EXPECT_LE(d, 8.0);
  }
  // Same seed, same schedule.
  Rng a(11), b(11);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, i, &a), BackoffDelayMs(policy, i, &b));
  }
}

TEST(RetryScheduleTest, SameSeedReplaysTheExactDelaySequence) {
  RetryPolicy policy;
  policy.base_backoff_ms = 4.0;
  policy.max_backoff_ms = 64.0;
  policy.jitter_frac = 0.5;
  RetrySchedule a(policy, /*jitter_seed=*/0xBEEF);
  RetrySchedule b(policy, /*jitter_seed=*/0xBEEF);
  RetrySchedule other(policy, /*jitter_seed=*/0xF00D);
  bool diverged = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double da = a.NextDelayMs(attempt);
    EXPECT_DOUBLE_EQ(da, b.NextDelayMs(attempt)) << "attempt " << attempt;
    EXPECT_GE(da, 0.0);
    EXPECT_LE(da, policy.max_backoff_ms);
    if (da != other.NextDelayMs(attempt)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical jitter";
}

TEST(RetryScheduleTest, ManualClockMakesSleepsVirtual) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.max_backoff_ms = 1000.0;
  policy.jitter_frac = 0.0;
  util::ManualClock clock;
  RetrySchedule schedule(policy, 1, &clock);

  const auto wall_start = std::chrono::steady_clock::now();
  double total = 0.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const double delay = schedule.NextDelayMs(attempt);
    schedule.Sleep(delay);
    total += delay;
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  // 10+20+...+320 = 630 virtual ms elapsed; essentially no real time did.
  EXPECT_DOUBLE_EQ(clock.slept_ms(), total);
  EXPECT_DOUBLE_EQ(total, 630.0);
  EXPECT_GE(clock.NowMs(), 630.0);
  EXPECT_LT(wall_ms, 500.0) << "ManualClock sleeps burned real time";
}

TEST(CircuitBreakerTest, TripsAfterFailureStreakAndBlocksWhileOpen) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_ms = 10000.0;  // stays open for the whole test
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowPrimary());
    breaker.OnFailure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  // A success resets the streak.
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnSuccess();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowPrimary());
    breaker.OnFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowPrimary());
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccesses) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 20.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);

  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Cooldown elapsed: exactly one probe at a time is admitted.
  ASSERT_TRUE(breaker.AllowPrimary());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowPrimary());  // probe already in flight
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // 1 of 2 successes
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 20.0;
  CircuitBreaker breaker(config);

  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowPrimary());  // cooldown restarted
}

// Regression: reports from calls admitted in an earlier state (stale
// successes/failures) must not move the half-open accounting. Before the
// probe_in_flight_ guard, two concurrent successes could close the breaker
// off a single real probe — or off none.
TEST(CircuitBreakerTest, StaleReportsCannotDoubleCloseOrRetrip) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 20.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);

  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  ASSERT_TRUE(breaker.AllowPrimary());  // the one admitted probe
  breaker.OnSuccess();                  // 1 of 2: legitimate
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // Stale successes (no probe admitted): without the in-flight guard the
  // second one here would have closed the breaker.
  breaker.OnSuccess();
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen)
      << "stale successes closed the breaker without a probe";

  // A stale failure likewise must not cancel a probe that never ran.
  const int64_t trips_before = breaker.trips();
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.trips(), trips_before);

  // The real second probe still closes it.
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

PendingRequest MakePending() {
  PendingRequest p;
  p.admitted_at = std::chrono::steady_clock::now();
  p.deadline = p.admitted_at + std::chrono::seconds(10);
  return p;
}

TEST(AdmissionQueueTest, ShedsBeyondCapacity) {
  AdmissionQueue queue(2);
  PendingRequest a = MakePending(), b = MakePending(), c = MakePending();
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_FALSE(queue.TryPush(c));  // full: shed, queue growth is bounded
  EXPECT_EQ(queue.size(), 2u);
  // The rejected request still owns its promise; it must be resolvable.
  c.promise.set_value(MatchResponse{});
}

TEST(AdmissionQueueTest, PopBatchRespectsMaxBatch) {
  AdmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    PendingRequest p = MakePending();
    ASSERT_TRUE(queue.TryPush(p));
  }
  std::vector<PendingRequest> batch = queue.PopBatch(3, 0.0);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(queue.size(), 2u);
  batch = queue.PopBatch(3, 0.0);
  EXPECT_EQ(batch.size(), 2u);
  for (auto& p : batch) p.promise.set_value(MatchResponse{});
}

TEST(AdmissionQueueTest, CloseWakesAndRejects) {
  AdmissionQueue queue(4);
  std::thread popper([&queue] {
    // Blocks until Close, then must return empty rather than hang.
    EXPECT_TRUE(queue.PopBatch(4, 1000.0).empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.join();
  PendingRequest late = MakePending();
  EXPECT_FALSE(queue.TryPush(late));
  EXPECT_TRUE(queue.closed());
}

TEST(HeuristicTest, SeparatesOverlapFromDisjoint) {
  data::Record same_a({"apple iphone 12", "599"});
  data::Record same_b({"apple iphone 12", "599"});
  data::Record other({"makita drill xfd10", "129"});
  const float p_match = HeuristicMatchProbability(same_a, same_b);
  const float p_nonmatch = HeuristicMatchProbability(same_a, other);
  EXPECT_GT(p_match, 0.8f);
  EXPECT_LT(p_nonmatch, 0.2f);
  EXPECT_GT(p_match, p_nonmatch);
}

TEST(HeuristicTest, EmptyRecordsAreUncertain) {
  data::Record empty_a({""});
  data::Record empty_b({""});
  EXPECT_FLOAT_EQ(HeuristicMatchProbability(empty_a, empty_b), 0.5f);
}

TEST(FeatureCacheTest, HitMissAndCopySemantics) {
  FeatureCache cache(4);
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.misses(), 1);
  cache.Put("a", {1.0f, 2.0f});
  auto row = cache.Get("a");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (std::vector<float>{1.0f, 2.0f}));
  // Get returns a copy: mutating it must not change the cached row.
  (*row)[0] = 99.0f;
  EXPECT_EQ((*cache.Get("a"))[0], 1.0f);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FeatureCacheTest, EvictsLeastRecentlyUsed) {
  FeatureCache cache(2);
  cache.Put("a", {1.0f});
  cache.Put("b", {2.0f});
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_TRUE(cache.Get("a").has_value());
  cache.Put("c", {3.0f});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value()) << "LRU entry survived eviction";
  EXPECT_TRUE(cache.Get("c").has_value());
}

TEST(FeatureCacheTest, PutRefreshesExistingEntryAndClearDropsAll) {
  FeatureCache cache(2);
  cache.Put("a", {1.0f});
  cache.Put("b", {2.0f});
  cache.Put("a", {10.0f});  // refresh, not insert: no eviction
  EXPECT_EQ(cache.evictions(), 0);
  EXPECT_EQ((*cache.Get("a"))[0], 10.0f);
  // Refreshing "a" made it MRU, so inserting "c" evicts "b".
  cache.Put("c", {3.0f});
  EXPECT_FALSE(cache.Get("b").has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

namespace {
AdaptiveBatchConfig FastAdaptiveConfig() {
  AdaptiveBatchConfig config;
  config.enabled = true;
  config.min_batch = 2;
  config.max_batch = 32;
  config.window = 2;
  config.hold_windows = 2;
  config.cooldown_windows = 2;
  return config;
}

// Feeds `windows` full decision windows of identical samples.
void FeedWindows(AdaptiveBatchController& controller, int windows,
                 double queue_ms, double forward_ms, int64_t batch_size) {
  for (int i = 0; i < windows * 2; ++i) {
    controller.Observe(queue_ms, forward_ms, batch_size);
  }
}
}  // namespace

TEST(AdaptiveBatchTest, DisabledControllerNeverMoves) {
  AdaptiveBatchConfig config;  // enabled = false
  AdaptiveBatchController controller(config, 8, /*shard=*/-1);
  FeedWindows(controller, 16, /*queue_ms=*/50.0, /*forward_ms=*/0.1, 8);
  EXPECT_EQ(controller.cap(), 8);
  EXPECT_EQ(controller.grows(), 0);
  EXPECT_EQ(controller.shrinks(), 0);
}

TEST(AdaptiveBatchTest, GrowsUnderSustainedQueuePressure) {
  AdaptiveBatchController controller(FastAdaptiveConfig(), 4, /*shard=*/0);
  // High queue wait with full batches: pressure a bigger cap can drain.
  // One window is not enough (hold_windows = 2)...
  FeedWindows(controller, 1, /*queue_ms=*/10.0, /*forward_ms=*/1.0, 4);
  EXPECT_EQ(controller.cap(), 4);
  // ...a second consecutive window is.
  FeedWindows(controller, 1, /*queue_ms=*/10.0, /*forward_ms=*/1.0, 4);
  EXPECT_EQ(controller.cap(), 8);
  EXPECT_EQ(controller.grows(), 1);
}

TEST(AdaptiveBatchTest, ShrinksWhenForwardDominatesIdleQueue) {
  AdaptiveBatchController controller(FastAdaptiveConfig(), 16, /*shard=*/0);
  // Slow forwards, near-empty queue: compute dominates, cap halves.
  FeedWindows(controller, 2, /*queue_ms=*/0.1, /*forward_ms=*/20.0, 16);
  EXPECT_EQ(controller.cap(), 8);
  EXPECT_EQ(controller.shrinks(), 1);
}

TEST(AdaptiveBatchTest, DeadBandHoldsCapSteady) {
  AdaptiveBatchController controller(FastAdaptiveConfig(), 8, /*shard=*/0);
  // Moderate signals satisfy neither grow (queue too calm) nor shrink
  // (queue not idle): the cap must not move, ever.
  FeedWindows(controller, 32, /*queue_ms=*/1.0, /*forward_ms=*/4.0, 6);
  EXPECT_EQ(controller.cap(), 8);
  EXPECT_EQ(controller.grows(), 0);
  EXPECT_EQ(controller.shrinks(), 0);
}

TEST(AdaptiveBatchTest, CooldownAndClampsPreventOscillation) {
  auto config = FastAdaptiveConfig();
  config.max_batch = 16;
  AdaptiveBatchController controller(config, 8, /*shard=*/0);
  FeedWindows(controller, 2, /*queue_ms=*/10.0, /*forward_ms=*/1.0, 8);
  EXPECT_EQ(controller.cap(), 16);
  // Immediately after a grow the controller is in cooldown: two more
  // pressure windows change nothing...
  FeedWindows(controller, 2, /*queue_ms=*/10.0, /*forward_ms=*/1.0, 16);
  EXPECT_EQ(controller.cap(), 16);
  // ...and even after cooldown the max_batch clamp holds.
  FeedWindows(controller, 8, /*queue_ms=*/10.0, /*forward_ms=*/1.0, 16);
  EXPECT_EQ(controller.cap(), 16);
  EXPECT_EQ(controller.grows(), 1);
  // Symmetric check at the bottom clamp.
  AdaptiveBatchController floor_ctl(config, 4, /*shard=*/0);
  FeedWindows(floor_ctl, 12, /*queue_ms=*/0.0, /*forward_ms=*/20.0, 1);
  EXPECT_EQ(floor_ctl.cap(), config.min_batch);
}

}  // namespace
}  // namespace dader::serve
