// Unit tests for the serving building blocks: retry backoff, the circuit
// breaker state machine, the bounded admission queue, and the degraded-mode
// similarity heuristic.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/admission_queue.h"
#include "serve/circuit_breaker.h"
#include "serve/match_service.h"
#include "serve/retry.h"

namespace dader::serve {
namespace {

TEST(RetryTest, ExponentialGrowthWithoutJitter) {
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 1, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 2, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 3, nullptr), 8.0);
}

TEST(RetryTest, CappedAtMaxBackoff) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.max_backoff_ms = 25.0;
  policy.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, 5, nullptr), 25.0);
}

TEST(RetryTest, JitterStaysInRangeAndIsSeeded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 8.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_frac = 0.5;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double d = BackoffDelayMs(policy, 1, &rng);
    EXPECT_GE(d, 4.0);
    EXPECT_LE(d, 8.0);
  }
  // Same seed, same schedule.
  Rng a(11), b(11);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_DOUBLE_EQ(BackoffDelayMs(policy, i, &a), BackoffDelayMs(policy, i, &b));
  }
}

TEST(CircuitBreakerTest, TripsAfterFailureStreakAndBlocksWhileOpen) {
  BreakerConfig config;
  config.failure_threshold = 3;
  config.cooldown_ms = 10000.0;  // stays open for the whole test
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowPrimary());
    breaker.OnFailure();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  // A success resets the streak.
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnSuccess();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.AllowPrimary());
    breaker.OnFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowPrimary());
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccesses) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 20.0;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config);

  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Cooldown elapsed: exactly one probe at a time is admitted.
  ASSERT_TRUE(breaker.AllowPrimary());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowPrimary());  // probe already in flight
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // 1 of 2 successes
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown_ms = 20.0;
  CircuitBreaker breaker(config);

  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(breaker.AllowPrimary());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowPrimary());  // cooldown restarted
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

PendingRequest MakePending() {
  PendingRequest p;
  p.admitted_at = std::chrono::steady_clock::now();
  p.deadline = p.admitted_at + std::chrono::seconds(10);
  return p;
}

TEST(AdmissionQueueTest, ShedsBeyondCapacity) {
  AdmissionQueue queue(2);
  PendingRequest a = MakePending(), b = MakePending(), c = MakePending();
  EXPECT_TRUE(queue.TryPush(a));
  EXPECT_TRUE(queue.TryPush(b));
  EXPECT_FALSE(queue.TryPush(c));  // full: shed, queue growth is bounded
  EXPECT_EQ(queue.size(), 2u);
  // The rejected request still owns its promise; it must be resolvable.
  c.promise.set_value(MatchResponse{});
}

TEST(AdmissionQueueTest, PopBatchRespectsMaxBatch) {
  AdmissionQueue queue(8);
  for (int i = 0; i < 5; ++i) {
    PendingRequest p = MakePending();
    ASSERT_TRUE(queue.TryPush(p));
  }
  std::vector<PendingRequest> batch = queue.PopBatch(3, 0.0);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(queue.size(), 2u);
  batch = queue.PopBatch(3, 0.0);
  EXPECT_EQ(batch.size(), 2u);
  for (auto& p : batch) p.promise.set_value(MatchResponse{});
}

TEST(AdmissionQueueTest, CloseWakesAndRejects) {
  AdmissionQueue queue(4);
  std::thread popper([&queue] {
    // Blocks until Close, then must return empty rather than hang.
    EXPECT_TRUE(queue.PopBatch(4, 1000.0).empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.join();
  PendingRequest late = MakePending();
  EXPECT_FALSE(queue.TryPush(late));
  EXPECT_TRUE(queue.closed());
}

TEST(HeuristicTest, SeparatesOverlapFromDisjoint) {
  data::Record same_a({"apple iphone 12", "599"});
  data::Record same_b({"apple iphone 12", "599"});
  data::Record other({"makita drill xfd10", "129"});
  const float p_match = HeuristicMatchProbability(same_a, same_b);
  const float p_nonmatch = HeuristicMatchProbability(same_a, other);
  EXPECT_GT(p_match, 0.8f);
  EXPECT_LT(p_nonmatch, 0.2f);
  EXPECT_GT(p_match, p_nonmatch);
}

TEST(HeuristicTest, EmptyRecordsAreUncertain) {
  data::Record empty_a({""});
  data::Record empty_b({""});
  EXPECT_FLOAT_EQ(HeuristicMatchProbability(empty_a, empty_b), 0.5f);
}

}  // namespace
}  // namespace dader::serve
