#include "serve/stream_submit.h"

#include <gtest/gtest.h>

#include "core/feature_extractor.h"
#include "core/matcher.h"

namespace dader::serve {
namespace {

core::DaderConfig TinyConfig() {
  core::DaderConfig c;
  c.vocab_size = 256;
  c.max_len = 16;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 16;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel TinyModel(uint64_t seed) {
  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, TinyConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::unique_ptr<ShardedMatchService> TinyService(size_t queue_capacity) {
  ShardedServeConfig config;
  config.num_shards = 2;
  config.shard.queue_capacity = queue_capacity;
  config.shard.max_batch = 8;
  config.shard.batch_wait_ms = 0.2;
  config.shard.default_deadline_ms = 60000.0;
  config.shard.num_workers = 1;
  data::Schema schema({"title"});
  auto service =
      ShardedMatchService::Create(config, schema, schema, TinyModel(5));
  service.status().CheckOK();
  return std::move(service).ValueOrDie();
}

MatchRequest Req(int id) {
  MatchRequest r;
  r.a = data::Record({"item " + std::to_string(id)});
  r.b = data::Record({"item " + std::to_string(id)});
  r.deadline_ms = 60000.0;
  return r;
}

TEST(StreamSubmitterTest, DeliversEveryResponseInSubmissionOrder) {
  auto service = TinyService(/*queue_capacity=*/64);
  std::vector<size_t> order;
  int64_t ok = 0;
  {
    StreamSubmitter::Options options;
    options.max_in_flight = 8;
    StreamSubmitter submitter(
        service.get(), options,
        [&](size_t index, const MatchRequest&, const MatchResponse& response) {
          order.push_back(index);
          if (response.status.ok()) ++ok;
        });
    for (int i = 0; i < 40; ++i) submitter.Submit(Req(i));
    submitter.Drain();
    EXPECT_EQ(submitter.submitted(), 40);
    EXPECT_EQ(submitter.in_flight(), 0u);
  }
  service->Stop();
  ASSERT_EQ(order.size(), 40u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(ok, 40);
}

TEST(StreamSubmitterTest, WindowBoundsInFlightRequests) {
  auto service = TinyService(/*queue_capacity=*/64);
  StreamSubmitter::Options options;
  options.max_in_flight = 4;
  size_t max_seen = 0;
  StreamSubmitter submitter(service.get(), options,
                            [](size_t, const MatchRequest&,
                               const MatchResponse&) {});
  for (int i = 0; i < 32; ++i) {
    submitter.Submit(Req(i));
    max_seen = std::max(max_seen, submitter.in_flight());
  }
  submitter.Drain();
  service->Stop();
  EXPECT_LE(max_seen, options.max_in_flight);
}

TEST(StreamSubmitterTest, DestructorDrains) {
  auto service = TinyService(/*queue_capacity=*/64);
  int64_t responses = 0;
  {
    StreamSubmitter submitter(
        service.get(), {},
        [&](size_t, const MatchRequest&, const MatchResponse&) {
          ++responses;
        });
    for (int i = 0; i < 10; ++i) submitter.Submit(Req(i));
    // No explicit Drain: the destructor must complete the window.
  }
  service->Stop();
  EXPECT_EQ(responses, 10);
}

}  // namespace
}  // namespace dader::serve
