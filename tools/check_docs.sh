#!/usr/bin/env bash
# Cross-checks docs/OBSERVABILITY.md against the instrumentation in src/,
# and link-checks the repo's markdown docs.
#
# Direction 1 (no stale docs): every backticked metric/span name in the doc
# whose first segment is train./serve./tensor./threadpool./dist./block.
# must appear as a string literal somewhere under src/.
# Direction 2 (no undocumented metrics): every such name registered in src/
# (the first string argument of GetCounter/GetGauge/GetHistogram/LabeledName
# and every TraceSpan/DADER_TRACE_SPAN name) must appear in the doc.
# Direction 3 (no dead links): every relative markdown link target in
# README.md and docs/*.md must exist on disk.
#
# Run from the repo root (the ctest entry sets WORKING_DIRECTORY to it).
set -u

DOC="docs/OBSERVABILITY.md"
SRC="src"
fail=0

if [[ ! -f "$DOC" ]]; then
  echo "check_docs: $DOC is missing" >&2
  exit 1
fi

# Backticked dotted names in the doc, e.g. `serve.latency.total_ms`.
doc_names=$(grep -oE '`(train|serve|tensor|threadpool|dist|block)\.[a-z0-9._]+`' "$DOC" \
  | tr -d '`' | sort -u)

# Names registered in code: any string literal starting with one of the
# instrumented prefixes.
src_names=$(grep -rhoE '"(train|serve|tensor|threadpool|dist|block)\.[a-z0-9._]+"' "$SRC" \
  | tr -d '"' | sort -u)

if [[ -z "$doc_names" ]]; then
  echo "check_docs: no metric names found in $DOC" >&2
  exit 1
fi

for name in $doc_names; do
  if ! grep -qF "$name" <<<"$src_names"; then
    echo "check_docs: documented name not found in $SRC: $name" >&2
    fail=1
  fi
done

for name in $src_names; do
  if ! grep -qF "$name" <<<"$doc_names"; then
    echo "check_docs: registered name not documented in $DOC: $name" >&2
    fail=1
  fi
done

# Direction 2b: the GEMM kernel dispatch counters (`tensor.gemm.kernel.*`)
# are label-valued — the base name alone doesn't tell an operator what can
# appear on the wire. Every label value the dispatcher can emit must be
# documented verbatim, and must still exist as a literal in the emitting
# source (so a renamed enum shows up here, not in a dashboard).
kernel_src="$SRC/tensor/gemm.cc"
for pair in 'path:direct' 'path:blocked' 'path:blocked_mt' \
            'isa:portable' 'isa:avx2' 'isa:avx512'; do
  key="${pair%%:*}"; value="${pair##*:}"
  if ! grep -qE "\`$value\`" "$DOC"; then
    echo "check_docs: tensor.gemm.kernel label value not documented in $DOC: $key=$value" >&2
    fail=1
  fi
  if ! grep -qF "\"$value\"" "$kernel_src"; then
    echo "check_docs: documented tensor.gemm.kernel label value not emitted by $kernel_src: $key=$value" >&2
    fail=1
  fi
done

# Same contract for the int8 GEMM dispatch counters
# (`tensor.qgemm.kernel.*`): the path vocabulary differs (fast/exact acc16
# split instead of blocked/blocked_mt), so it gets its own list against its
# own emitting TU.
qkernel_src="$SRC/tensor/qgemm.cc"
for pair in 'path:direct' 'path:fast' 'path:exact' \
            'isa:portable' 'isa:avx2' 'isa:avx512'; do
  key="${pair%%:*}"; value="${pair##*:}"
  if ! grep -qE "\`$value\`" "$DOC"; then
    echo "check_docs: tensor.qgemm.kernel label value not documented in $DOC: $key=$value" >&2
    fail=1
  fi
  if ! grep -qF "\"$value\"" "$qkernel_src"; then
    echo "check_docs: documented tensor.qgemm.kernel label value not emitted by $qkernel_src: $key=$value" >&2
    fail=1
  fi
done

# Direction 3: dead relative links. Markdown inline links whose target is
# a relative path (no scheme, no pure #anchor) must resolve from the
# linking file's directory. Anchors are stripped before the check.
links_checked=0
for md in README.md docs/*.md; do
  [[ -f "$md" ]] || continue
  base=$(dirname "$md")
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    links_checked=$((links_checked + 1))
    if [[ ! -e "$base/$path" && ! -e "$path" ]]; then
      echo "check_docs: dead link in $md: $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED — keep docs/ and src/ in sync" >&2
  exit 1
fi
echo "check_docs: OK ($(wc -l <<<"$doc_names") documented names match src/," \
  "$links_checked relative links resolve)"
