#!/usr/bin/env bash
# Cross-checks docs/OBSERVABILITY.md against the instrumentation in src/.
#
# Direction 1 (no stale docs): every backticked metric/span name in the doc
# whose first segment is train./serve./tensor./threadpool./dist. must appear as a string
# literal somewhere under src/.
# Direction 2 (no undocumented metrics): every such name registered in src/
# (the first string argument of GetCounter/GetGauge/GetHistogram/LabeledName
# and every TraceSpan/DADER_TRACE_SPAN name) must appear in the doc.
#
# Run from the repo root (the ctest entry sets WORKING_DIRECTORY to it).
set -u

DOC="docs/OBSERVABILITY.md"
SRC="src"
fail=0

if [[ ! -f "$DOC" ]]; then
  echo "check_docs: $DOC is missing" >&2
  exit 1
fi

# Backticked dotted names in the doc, e.g. `serve.latency.total_ms`.
doc_names=$(grep -oE '`(train|serve|tensor|threadpool|dist)\.[a-z0-9._]+`' "$DOC" \
  | tr -d '`' | sort -u)

# Names registered in code: any string literal starting with one of the
# instrumented prefixes.
src_names=$(grep -rhoE '"(train|serve|tensor|threadpool|dist)\.[a-z0-9._]+"' "$SRC" \
  | tr -d '"' | sort -u)

if [[ -z "$doc_names" ]]; then
  echo "check_docs: no metric names found in $DOC" >&2
  exit 1
fi

for name in $doc_names; do
  if ! grep -qF "$name" <<<"$src_names"; then
    echo "check_docs: documented name not found in $SRC: $name" >&2
    fail=1
  fi
done

for name in $src_names; do
  if ! grep -qF "$name" <<<"$doc_names"; then
    echo "check_docs: registered name not documented in $DOC: $name" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED — keep docs/OBSERVABILITY.md and src/ in sync" >&2
  exit 1
fi
echo "check_docs: OK ($(wc -l <<<"$doc_names") documented names all match src/)"
