// dader_worker: one worker node of the distributed match plane as a real
// OS process, spawned and babysat by dist::WorkerSupervisor.
//
// Contract with the supervisor (src/dist/supervisor.h):
//
//   * stdout carries exactly one line — "READY <port>" — once the
//     RpcServer is listening (this is how an ephemeral port travels back;
//     everything chatty goes to stderr via the logger);
//   * stdin EOF is the graceful-shutdown signal (the supervisor closes its
//     end of the pipe; no signal-handler gymnastics needed);
//   * SIGKILL is the crash fault — no cleanup runs, which is the point;
//   * PR_SET_PDEATHSIG re-armed here as a second line of defense: if the
//     supervisor dies, the kernel kills this process, so CI can never
//     accumulate orphan workers.
//
// The model is rebuilt from --seed: seeded construction is
// bit-deterministic (the dist tests assert replicas answer identically),
// so no weight shipping is needed for replicas to agree across process
// boundaries. The model shape flags default to the dist test fixture's
// tiny config; production deployments would pass a checkpoint instead.

#include <sys/prctl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"
#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "dist/worker.h"
#include "util/logging.h"

namespace {

struct Flags {
  int node_id = 0;
  uint64_t seed = 21;
  int port = 0;  // 0 = ephemeral
  std::string schema = "title,price";
  int vocab = 256;
  int max_len = 16;
  int hidden = 8;
  int heads = 2;
  int layers = 1;
  int ffn = 16;
  int rnn = 4;
};

bool ParseInt(const std::string& value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "dader_worker: bad argument %s\n", arg.c_str());
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "seed") {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "schema") {
      flags->schema = value;
    } else {
      int parsed = 0;
      if (!ParseInt(value, &parsed)) {
        std::fprintf(stderr, "dader_worker: bad value for --%s\n",
                     key.c_str());
        return false;
      }
      if (key == "node_id") flags->node_id = parsed;
      else if (key == "port") flags->port = parsed;
      else if (key == "vocab") flags->vocab = parsed;
      else if (key == "max_len") flags->max_len = parsed;
      else if (key == "hidden") flags->hidden = parsed;
      else if (key == "heads") flags->heads = parsed;
      else if (key == "layers") flags->layers = parsed;
      else if (key == "ffn") flags->ffn = parsed;
      else if (key == "rnn") flags->rnn = parsed;
      else {
        std::fprintf(stderr, "dader_worker: unknown flag --%s\n",
                     key.c_str());
        return false;
      }
    }
  }
  return true;
}

std::vector<std::string> SplitFields(const std::string& spec) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : spec) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

int main(int argc, char** argv) {
  // Second line of defense against orphans (the supervisor arms this
  // between fork and exec too, but a future non-supervisor launcher may
  // not).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  namespace core = dader::core;
  namespace dist = dader::dist;

  core::DaderConfig mc;
  mc.vocab_size = flags.vocab;
  mc.max_len = flags.max_len;
  mc.hidden_dim = flags.hidden;
  mc.num_heads = flags.heads;
  mc.num_layers = flags.layers;
  mc.ffn_dim = flags.ffn;
  mc.rnn_hidden = flags.rnn;
  mc.dropout = 0.0f;

  core::DaModel model;
  model.extractor =
      core::MakeExtractor(core::ExtractorKind::kLM, mc, flags.seed);
  model.matcher = std::make_unique<core::Matcher>(
      model.extractor->feature_dim(), flags.seed + 1);

  dist::WorkerNodeConfig config;
  config.node_id = flags.node_id;
  config.serve.queue_capacity = 64;
  config.serve.max_batch = 8;
  config.serve.batch_wait_ms = 0.5;
  config.serve.default_deadline_ms = 10000.0;

  dader::data::Schema schema(SplitFields(flags.schema));
  auto worker = dist::WorkerNode::Create(config, schema, schema,
                                         std::move(model));
  if (!worker.ok()) {
    std::fprintf(stderr, "dader_worker: create failed: %s\n",
                 worker.status().ToString().c_str());
    return 1;
  }
  dader::Status started = worker.ValueOrDie()->Start(flags.port);
  if (!started.ok()) {
    std::fprintf(stderr, "dader_worker: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // The one line stdout ever carries.
  std::printf("READY %d\n", worker.ValueOrDie()->port());
  std::fflush(stdout);

  // Serve until the supervisor closes our stdin (EOF = graceful stop).
  char buf[64];
  while (true) {
    const ssize_t r = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (r == 0) break;            // EOF: supervisor says stop
    if (r < 0 && errno != EINTR) break;
  }
  worker.ValueOrDie()->Stop();
  return 0;
}
