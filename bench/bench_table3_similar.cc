// Table 3: domain adaptation between SIMILAR domains — six source->target
// pairs within the product / citation / restaurant domains, NoDA baseline
// against all six Feature Aligner designs, mean +/- std F1 and the best-DA
// improvement column.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  auto env = dader::bench::ParseBenchArgs(argc, argv, "table3_similar.csv");
  // Single-core runtime guard: one seed at smoke scale (std column omitted);
  // --scale=small/full restores the paper's repeated runs.
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;
  dader::bench::RunDaTable("Table 3: similar domains",
                           dader::bench::SimilarPairs(), env);
  return 0;
}
