// Table 2: the benchmark dataset inventory. Prints paper statistics next to
// the generated datasets' statistics at the selected scale, validating that
// the synthetic re-creations mirror the paper's shapes (#attrs, match rate).

#include "bench/bench_common.h"
#include "data/generators.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "table2_datasets.csv");

  std::printf("== Table 2: real-world ER datasets (generated at scale=%s) ==\n",
              env.scale.name.c_str());
  std::printf("%-22s %-10s | %8s %8s %6s | %8s %8s %9s\n", "Dataset", "Domain",
              "#Pairs", "#Match", "#Attr", "genPairs", "genMatch", "genRate");

  bench::CsvReport csv({"short_name", "full_name", "domain", "paper_pairs",
                        "paper_matches", "num_attrs", "generated_pairs",
                        "generated_matches", "generated_match_rate"});
  for (const auto& spec : data::AllDatasetSpecs()) {
    data::GenerateOptions opts;
    opts.scale = env.scale.data_scale;
    opts.min_pairs = env.scale.min_pairs;
    opts.seed = env.seed;
    auto ds = data::GenerateDataset(spec.short_name, opts);
    ds.status().CheckOK();
    const data::ERDataset& d = ds.ValueOrDie();
    std::printf("%-22s %-10s | %8lld %8lld %6lld | %8zu %8zu %8.1f%%\n",
                spec.full_name.c_str(), spec.domain.c_str(),
                static_cast<long long>(spec.paper_pairs),
                static_cast<long long>(spec.paper_matches),
                static_cast<long long>(spec.num_attrs), d.size(),
                d.NumMatches(), d.MatchRate() * 100);
    csv.AddRow({spec.short_name, spec.full_name, spec.domain,
                std::to_string(spec.paper_pairs),
                std::to_string(spec.paper_matches),
                std::to_string(spec.num_attrs), std::to_string(d.size()),
                std::to_string(d.NumMatches()),
                std::to_string(d.MatchRate())});
  }
  csv.WriteIfRequested(env.csv_path);
  DumpTraceIfRequested(env);
  return 0;
}
