// Figure 7: convergence of MMD vs InvGAN+KD at three learning rates on
// Books2 -> Fodors-Zagats. Prints per-epoch validation F1 series. The
// paper's Finding 3: MMD converges stably; InvGAN+KD oscillates, and a
// smaller learning rate smooths it at the cost of more epochs.
//
// (The paper sweeps 1e-5/1e-6/1e-7 on BERT; this scaled-down model trains
// at 4e-4, so the sweep covers 4e-4 / 1e-4 / 4e-5.)

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "fig7_convergence.csv");
  const std::string source = "B2", target = "FZ";
  const int64_t epochs = 40;  // as in the paper's figure

  std::printf("== Figure 7: convergence on %s -> %s (%lld epochs) ==\n",
              source.c_str(), target.c_str(),
              static_cast<long long>(epochs));
  bench::CsvReport csv({"learning_rate", "method", "epoch", "valid_f1"});

  core::ExperimentScale scale = env.scale;
  scale.model.epochs = epochs;
  auto task = core::BuildDaTask(source, target, scale).ValueOrDie();

  for (float lr : {4e-4f, 1e-4f, 4e-5f}) {
    std::printf("\n-- learning rate %g --\n", lr);
    std::printf("%-10s", "epoch");
    for (int e = 1; e <= epochs; ++e) {
      if (e % 4 == 0) std::printf(" %5d", e);
    }
    std::printf("\n");
    for (core::AlignMethod method :
         {core::AlignMethod::kNoDA, core::AlignMethod::kMMD,
          core::AlignMethod::kInvGANKD}) {
      core::ExperimentScale run_scale = scale;
      run_scale.model.learning_rate = lr;
      run_scale.model.seed = env.seed;
      auto model = core::BuildModel(core::ExtractorKind::kLM, run_scale, true,
                                    env.seed)
                       .ValueOrDie();
      std::vector<double> series;
      auto outcome =
          core::RunSingleDa(method, run_scale, task, &model, false,
                            [&series](const core::EpochStats& s) {
                              series.push_back(s.valid_f1);
                            })
              .ValueOrDie();
      std::printf("%-10s", core::AlignMethodName(method));
      for (int e = 1; e <= epochs; ++e) {
        if (e % 4 == 0) {
          std::printf(" %5.1f", series[static_cast<size_t>(e - 1)] * 100);
        }
        csv.AddRow({std::to_string(lr), core::AlignMethodName(method),
                    std::to_string(e),
                    std::to_string(series[static_cast<size_t>(e - 1)])});
      }
      std::printf("   (test %.1f)\n", outcome.test_f1 * 100);
    }
  }
  std::printf("\nFinding 3: the MMD series should be smoother than the\n"
              "InvGAN+KD series, and lower learning rates should smooth the\n"
              "adversarial curve while delaying its best epoch.\n");
  csv.WriteIfRequested(env.csv_path);
  DumpTraceIfRequested(env);
  return 0;
}
