// Ablations of this reproduction's two key design substitutions (DESIGN.md):
//
//   1. MLM pre-training of the LM extractor (the stand-in for BERT's
//      pre-training). Expectation: without it, transfer quality drops —
//      the mechanism behind the paper's Finding 5.
//   2. Cross-entity token-overlap flags (the Ditto-style injection that
//      makes matching learnable at this model scale). Expectation: without
//      them, the scaled-down model cannot learn matching at all.
//
// Each ablation runs NoDA and MMD on one similar-domain and one
// cross-domain pair.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "ablation.csv");
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;

  const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"WA", "AB"}, {"B2", "FZ"}};
  struct Variant {
    const char* name;
    bool pretrained;
    bool overlap;
  };
  const Variant kVariants[] = {
      {"full (pretrain+overlap)", true, true},
      {"- pretraining", false, true},
      {"- overlap flags", true, false},
      {"- both", false, false},
  };

  std::printf("== Ablation: pre-training and overlap-flag injection ==\n");
  bench::CsvReport csv(
      {"source", "target", "variant", "method", "f1_mean", "f1_std"});
  for (const auto& [src, tgt] : kPairs) {
    std::printf("\n-- %s -> %s --\n", src.c_str(), tgt.c_str());
    std::printf("%-26s %10s %10s\n", "variant", "NoDA", "MMD");
    for (const Variant& v : kVariants) {
      core::ExperimentScale scale = env.scale;
      scale.model.use_overlap_flags = v.overlap;
      std::printf("%-26s", v.name);
      for (core::AlignMethod m :
           {core::AlignMethod::kNoDA, core::AlignMethod::kMMD}) {
        core::DaCellOptions options;
        options.pretrained_lm = v.pretrained;
        options.base_seed = env.seed;
        auto cell = core::RunDaCell(src, tgt, m, scale, options);
        cell.status().CheckOK();
        const auto& f1 = cell.ValueOrDie().f1;
        std::printf(" %10.1f", f1.mean * 100);
        std::fflush(stdout);
        csv.AddRow({src, tgt, v.name, core::AlignMethodName(m),
                    std::to_string(f1.mean), std::to_string(f1.std)});
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected: removing pre-training lowers F1 (Finding-5 mechanism);\n"
      "removing the overlap flags collapses learnability at this scale,\n"
      "which is why DESIGN.md adopts the Ditto-style injection.\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
