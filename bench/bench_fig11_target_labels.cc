// Figure 11: performance as target labels become available. Four rounds of
// max-entropy active labeling; NoDA and InvGAN+KD fine-tune their adapted
// models on the labels, while Ditto- and DeepMatcher-style baselines train
// from the labels alone. The paper's Finding 7: DA-based models dominate at
// small label budgets.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "fig11_target_labels.csv");

  // (target, DA source) pairs; the paper shows AB, WA, DA, DS as targets.
  const std::vector<std::pair<std::string, std::string>> kPanels = {
      {"AB", "WA"}, {"WA", "AB"}, {"DA", "DS"}, {"DS", "DA"}};
  const std::vector<core::SemiMethod> kMethods = {
      core::SemiMethod::kNoDA, core::SemiMethod::kInvGANKD,
      core::SemiMethod::kDitto, core::SemiMethod::kDeepMatcher};

  // The paper labels 200/round on full-size datasets; scale proportionally.
  const int64_t per_round = std::max<int64_t>(
      10, static_cast<int64_t>(200 * env.scale.data_scale * 4));
  const int64_t rounds = 4;

  bench::CsvReport csv({"target", "method", "labels", "test_f1"});
  for (const auto& [target, source] : kPanels) {
    std::printf("== Figure 11 (%s): target labels sweep, +%lld/round ==\n",
                target.c_str(), static_cast<long long>(per_round));
    std::printf("%-8s", "#labels");
    for (auto m : kMethods) std::printf(" %12s", core::SemiMethodName(m));
    std::printf("\n");

    std::vector<std::vector<core::SemiPoint>> series;
    for (auto m : kMethods) {
      auto r = core::RunSemiSupervised(source, target, m, env.scale,
                                       per_round, rounds, env.seed);
      r.status().CheckOK();
      series.push_back(std::move(r).ValueOrDie());
      for (const auto& pt : series.back()) {
        csv.AddRow({target, core::SemiMethodName(m),
                    std::to_string(pt.labels_used),
                    std::to_string(pt.test_f1)});
      }
    }
    for (int64_t round = 0; round < rounds; ++round) {
      std::printf("%-8lld",
                  static_cast<long long>(
                      series[0][static_cast<size_t>(round)].labels_used));
      for (const auto& s : series) {
        std::printf(" %12.1f", s[static_cast<size_t>(round)].test_f1 * 100);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Finding 7: InvGAN+KD should lead at small budgets; Ditto\n"
              "catches up with labels; DeepMatcher (RNN, no pre-training)\n"
              "needs the most labels.\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
