// Table 4: domain adaptation between DIFFERENT domains — six cross-domain
// source->target pairs (movies -> products, music -> citations,
// books -> restaurants), where the paper finds the largest DA gains.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  auto env = dader::bench::ParseBenchArgs(argc, argv, "table4_different.csv");
  // Single-core runtime guard: one seed at smoke scale (std column omitted);
  // --scale=small/full restores the paper's repeated runs.
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;
  dader::bench::RunDaTable("Table 4: different domains",
                           dader::bench::DifferentPairs(), env);
  return 0;
}
