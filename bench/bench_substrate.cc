// Substrate microbenchmarks (google-benchmark): the hot paths every DADER
// experiment exercises — GEMM, tokenization/serialization, extractor
// forward/backward, and the DA losses.

#include <benchmark/benchmark.h>

#include "core/dader.h"
#include "tensor/da_losses.h"
#include "tensor/nn_ops.h"
#include "tensor/ops.h"

namespace dader {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomUniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::RandomUniform({n, n}, -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandomUniform({n, n}, -1, 1, &rng, true);
  Tensor b = Tensor::RandomUniform({n, n}, -1, 1, &rng, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    ops::SumAll(ops::MatMul(a, b)).Backward();
  }
  state.SetItemsProcessed(state.iterations() * 6 * n * n * n);
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Tokenize(benchmark::State& state) {
  const std::string text =
      "samsung 52 ' series 7 black flat panel lcd television with dynamic "
      "contrast ratio 120hz response time and premium warranty";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::WordTokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_SerializePair(benchmark::State& state) {
  data::GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 50;
  auto ds = data::GenerateDataset("WA", opts).ValueOrDie();
  text::HashingVocab vocab(4096);
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = ds.pair(i++ % ds.size());
    benchmark::DoNotOptimize(
        text::EncodePair(p.a.ToAttrValues(ds.schema_a()),
                         p.b.ToAttrValues(ds.schema_b()), vocab, 32));
  }
}
BENCHMARK(BM_SerializePair);

void BM_LmExtractorForward(benchmark::State& state) {
  core::DaderConfig config;  // smoke-scale model
  core::LMFeatureExtractor extractor(config, 1);
  extractor.SetTraining(false);
  data::GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 64;
  auto ds = data::GenerateDataset("WA", opts).ValueOrDie();
  std::vector<size_t> indices;
  for (size_t i = 0; i < 16; ++i) indices.push_back(i);
  core::EncodedBatch batch = extractor.EncodePairs(ds, indices);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Forward(batch, &rng).data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_LmExtractorForward);

void BM_RnnExtractorForward(benchmark::State& state) {
  core::DaderConfig config;
  core::RNNFeatureExtractor extractor(config, 1);
  extractor.SetTraining(false);
  data::GenerateOptions opts;
  opts.scale = 0.01;
  opts.min_pairs = 64;
  auto ds = data::GenerateDataset("WA", opts).ValueOrDie();
  std::vector<size_t> indices;
  for (size_t i = 0; i < 16; ++i) indices.push_back(i);
  core::EncodedBatch batch = extractor.EncodePairs(ds, indices);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Forward(batch, &rng).data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_RnnExtractorForward);

void BM_MmdLoss(benchmark::State& state) {
  Rng rng(3);
  Tensor xs = Tensor::RandomUniform({32, 32}, -1, 1, &rng, true);
  Tensor xt = Tensor::RandomUniform({32, 32}, -1, 1, &rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MmdLoss(xs, xt).item());
  }
}
BENCHMARK(BM_MmdLoss);

void BM_CoralLoss(benchmark::State& state) {
  Rng rng(4);
  Tensor xs = Tensor::RandomUniform({32, 32}, -1, 1, &rng, true);
  Tensor xt = Tensor::RandomUniform({32, 32}, -1, 1, &rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::CoralLoss(xs, xt).item());
  }
}
BENCHMARK(BM_CoralLoss);

void BM_GenerateDataset(benchmark::State& state) {
  data::GenerateOptions opts;
  opts.scale = 0.02;
  opts.min_pairs = 200;
  for (auto _ : state) {
    opts.seed++;
    benchmark::DoNotOptimize(data::GenerateDataset("WA", opts).ValueOrDie());
  }
}
BENCHMARK(BM_GenerateDataset);

void BM_OverlapBlocking(benchmark::State& state) {
  auto tables = data::GenerateTables("AB", 300, 5).ValueOrDie();
  data::OverlapBlocker blocker;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocker.GenerateCandidates(tables.a, tables.b));
  }
}
BENCHMARK(BM_OverlapBlocking);

}  // namespace
}  // namespace dader

BENCHMARK_MAIN();
