// Shared plumbing for the experiment bench binaries: scale selection,
// report formatting, and CSV output of every table/figure series.

#pragma once

#include <algorithm>

#include <cstdio>
#include <string>
#include <vector>

#include "core/dader.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/flags.h"
#include "util/timer.h"

namespace dader::bench {

/// \brief Parsed bench environment.
struct BenchEnv {
  core::ExperimentScale scale;
  std::string csv_path;   ///< machine-readable copy of the report
  std::string metrics_jsonl_path;  ///< metrics registry dump (empty = none)
  std::string trace_jsonl_path;    ///< trace span dump (empty = none)
  std::string json_path;  ///< structured results JSON (empty = none)
  uint64_t seed = 42;
};

/// \brief Parses --scale / --csv / --seed / --metrics_jsonl / --trace_jsonl /
/// --trace_clock; honors $DADER_SCALE when --scale is not given. Exits on
/// flag errors.
///
/// --trace_clock selects the default tracer's timestamp source:
/// "wall" (default) for real durations when profiling, "logical" for the
/// deterministic tick clock whose export is bit-identical across runs —
/// use logical when diffing trace goldens (see src/obs/trace.h).
inline BenchEnv ParseBenchArgs(int argc, char** argv,
                               const std::string& default_csv) {
  FlagParser flags;
  flags.DefineString("scale", "", "smoke|small|full (default: $DADER_SCALE or smoke)");
  flags.DefineString("csv", default_csv, "CSV output path (empty = none)");
  flags.DefineString("metrics_jsonl", "",
                     "metrics registry JSONL dump path (empty = none)");
  flags.DefineString("trace_jsonl", "",
                     "trace span JSONL dump path (empty = none)");
  flags.DefineString("trace_clock", "wall",
                     "trace timestamp source: wall|logical");
  flags.DefineString("json", "",
                     "structured results JSON path (empty = none; e.g. "
                     "bench_serving writes BENCH_serving.json)");
  flags.DefineInt("seed", 42, "base seed");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    std::exit(1);
  }
  BenchEnv env;
  env.scale = core::ResolveScale(flags.GetString("scale"));
  env.csv_path = flags.GetString("csv");
  env.metrics_jsonl_path = flags.GetString("metrics_jsonl");
  env.trace_jsonl_path = flags.GetString("trace_jsonl");
  env.json_path = flags.GetString("json");
  env.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string clock = flags.GetString("trace_clock");
  if (clock == "logical") {
    obs::Tracer::Default().set_clock_mode(obs::ClockMode::kLogical);
  } else if (clock != "wall") {
    std::fprintf(stderr, "--trace_clock must be wall or logical, got %s\n",
                 clock.c_str());
    std::exit(1);
  }
  return env;
}

/// \brief Writes the default tracer's spans as JSON lines to
/// env.trace_jsonl_path (no-op when the flag was not given). Call at the
/// end of a bench, after the last traced phase finished.
inline void DumpTraceIfRequested(const BenchEnv& env) {
  if (env.trace_jsonl_path.empty()) return;
  const auto& tracer = obs::Tracer::Default();
  std::string error;
  if (!obs::WriteTextFile(env.trace_jsonl_path, tracer.ToJsonLines(),
                          &error)) {
    std::fprintf(stderr, "trace write failed: %s\n", error.c_str());
    return;
  }
  std::printf("[trace written to %s (%lld spans, %lld dropped)]\n",
              env.trace_jsonl_path.c_str(),
              static_cast<long long>(tracer.recorded()),
              static_cast<long long>(tracer.dropped()));
}

/// \brief Collects rows and writes them to CSV at the end.
class CsvReport {
 public:
  explicit CsvReport(std::vector<std::string> header) {
    table_.header = std::move(header);
  }

  void AddRow(std::vector<std::string> row) {
    table_.rows.push_back(std::move(row));
  }

  void WriteIfRequested(const std::string& path) const {
    if (path.empty()) return;
    Status st = WriteCsvFile(path, table_);
    if (!st.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", st.ToString().c_str());
    } else {
      std::printf("[csv written to %s]\n", path.c_str());
    }
  }

 private:
  CsvTable table_;
};

/// \brief "62.4 +/- 1.3" formatting of a MeanStd (scaled to F1*100).
inline std::string FormatF1(const core::MeanStd& ms) {
  return dader::StrFormat("%5.1f +/- %4.1f", ms.mean * 100, ms.std * 100);
}

/// \brief Source->target pairs of the Table 3 "similar domains" experiment.
inline const std::vector<std::pair<std::string, std::string>>& SimilarPairs() {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"WA", "AB"}, {"AB", "WA"}, {"DS", "DA"},
      {"DA", "DS"}, {"ZY", "FZ"}, {"FZ", "ZY"}};
  return kPairs;
}

/// \brief Pairs of the Table 4 "different domains" experiment.
inline const std::vector<std::pair<std::string, std::string>>& DifferentPairs() {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"RI", "AB"}, {"RI", "WA"}, {"IA", "DA"},
      {"IA", "DS"}, {"B2", "FZ"}, {"B2", "ZY"}};
  return kPairs;
}

/// \brief The 12 directed WDC category pairs of Table 5.
inline const std::vector<std::pair<std::string, std::string>>& WdcPairs() {
  static const std::vector<std::pair<std::string, std::string>> kPairs = {
      {"CO", "WT"}, {"WT", "CO"}, {"CA", "WT"}, {"WT", "CA"},
      {"SH", "WT"}, {"WT", "SH"}, {"CO", "SH"}, {"SH", "CO"},
      {"CA", "SH"}, {"SH", "CA"}, {"CO", "CA"}, {"CA", "CO"}};
  return kPairs;
}

/// \brief Runs one full table (NoDA + all six aligners per pair) and prints
/// rows in the paper's layout.
inline void RunDaTable(const char* title,
                       const std::vector<std::pair<std::string, std::string>>& pairs,
                       const BenchEnv& env) {
  std::printf("== %s (scale=%s, %lld seeds) ==\n", title,
              env.scale.name.c_str(),
              static_cast<long long>(env.scale.num_seeds));
  std::printf("%-6s %-6s | %-15s", "Source", "Target", "NoDA");
  for (core::AlignMethod m : core::AllAlignMethods()) {
    std::printf(" %-15s", core::AlignMethodName(m));
  }
  std::printf(" %-6s\n", "dF1");

  CsvReport csv({"source", "target", "method", "f1_mean", "f1_std"});
  Stopwatch total;
  for (const auto& [src, tgt] : pairs) {
    core::DaCellOptions options;
    options.base_seed = env.seed;
    auto noda = core::RunDaCell(src, tgt, core::AlignMethod::kNoDA, env.scale,
                                options);
    noda.status().CheckOK();
    std::printf("%-6s %-6s | %-15s", src.c_str(), tgt.c_str(),
                FormatF1(noda.ValueOrDie().f1).c_str());
    std::fflush(stdout);
    csv.AddRow({src, tgt, "NoDA", std::to_string(noda.ValueOrDie().f1.mean),
                std::to_string(noda.ValueOrDie().f1.std)});
    double best_da = -1.0;
    for (core::AlignMethod m : core::AllAlignMethods()) {
      auto cell = core::RunDaCell(src, tgt, m, env.scale, options);
      cell.status().CheckOK();
      const auto& f1 = cell.ValueOrDie().f1;
      best_da = std::max(best_da, f1.mean);
      std::printf(" %-15s", FormatF1(f1).c_str());
      std::fflush(stdout);
      csv.AddRow({src, tgt, core::AlignMethodName(m),
                  std::to_string(f1.mean), std::to_string(f1.std)});
    }
    std::printf(" %+6.1f\n", (best_da - noda.ValueOrDie().f1.mean) * 100);
  }
  std::printf("[%s done in %.0fs]\n", title, total.ElapsedSeconds());
  csv.WriteIfRequested(env.csv_path);
}

}  // namespace dader::bench
