// EXTENSION bench (beyond the paper's tables): exercises the two additions
// this repo makes to the DADER design space, both directions the paper
// explicitly names:
//
//   1. CMD (central moment discrepancy) as a third discrepancy-based
//      aligner, compared against the paper's MMD and K-order on two pairs.
//   2. Source selection by MMD distance (Finding 2's "choose a close
//      domain"): rank candidate sources for a target without target labels
//      and report the DA F1 of the closest vs the farthest choice.

#include "bench/bench_common.h"
#include "core/source_selection.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "ext_design_space.csv");
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;
  bench::CsvReport csv({"experiment", "detail", "method", "value"});

  // --- 1. CMD vs the paper's discrepancy aligners ---
  std::printf("== Extension 1: CMD vs MMD vs K-order ==\n");
  std::printf("%-6s %-6s %10s %10s %10s %10s\n", "Source", "Target", "NoDA",
              "MMD", "K-order", "CMD");
  for (const auto& [src, tgt] :
       std::vector<std::pair<std::string, std::string>>{{"RI", "AB"},
                                                        {"B2", "FZ"}}) {
    std::printf("%-6s %-6s", src.c_str(), tgt.c_str());
    for (core::AlignMethod m :
         {core::AlignMethod::kNoDA, core::AlignMethod::kMMD,
          core::AlignMethod::kKOrder, core::AlignMethod::kCMD}) {
      core::DaCellOptions options;
      options.base_seed = env.seed;
      auto cell = core::RunDaCell(src, tgt, m, env.scale, options);
      cell.status().CheckOK();
      std::printf(" %10.1f", cell.ValueOrDie().f1.mean * 100);
      std::fflush(stdout);
      csv.AddRow({"cmd_vs_discrepancy", src + "->" + tgt,
                  core::AlignMethodName(m),
                  std::to_string(cell.ValueOrDie().f1.mean)});
    }
    std::printf("\n");
  }

  // --- 2. Source selection by MMD distance ---
  std::printf("\n== Extension 2: unsupervised source selection for AB ==\n");
  auto probe = core::BuildModel(core::ExtractorKind::kLM, env.scale, true,
                                env.seed)
                   .ValueOrDie();
  Rng rng(env.seed);
  auto ranking = core::RankSourcesByDistance({"WA", "RI", "B2", "IA"}, "AB",
                                             env.scale, probe.extractor.get(),
                                             128, &rng);
  ranking.status().CheckOK();
  std::printf("%-8s %10s %12s\n", "source", "MMD", "DA F1(KD)");
  for (const auto& r : ranking.ValueOrDie()) {
    core::DaCellOptions options;
    options.base_seed = env.seed;
    auto cell = core::RunDaCell(r.source_name, "AB",
                                core::AlignMethod::kInvGANKD, env.scale,
                                options);
    cell.status().CheckOK();
    std::printf("%-8s %10.4f %12.1f\n", r.source_name.c_str(), r.mmd,
                cell.ValueOrDie().f1.mean * 100);
    csv.AddRow({"source_selection", r.source_name, "InvGAN+KD",
                std::to_string(cell.ValueOrDie().f1.mean)});
  }
  std::printf("(sources listed closest-first by MMD; Finding 2 predicts the\n"
              " top of the list to be the better label source)\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
