// Figure 6: relationship between the source-target MMD distance (under the
// pre-trained extractor) and the F1 that DA achieves. For each target, runs
// several sources, printing (MMD, DA F1) pairs; the paper's Finding 2 is a
// negative association: closer source => higher F1.

#include <map>

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "fig6_mmd_distance.csv");
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;

  // Targets with candidate sources (mixing similar- and different-domain).
  const std::map<std::string, std::vector<std::string>> kSweep = {
      {"AB", {"WA", "RI", "B2"}},
      {"DS", {"DA", "IA", "B2"}},
      {"ZY", {"FZ", "B2", "RI"}},
  };

  std::printf("== Figure 6: MMD(source, target) vs DA F1 ==\n");
  std::printf("%-7s %-7s %10s %12s\n", "Target", "Source", "MMD", "DA F1(MMD)");
  bench::CsvReport csv({"target", "source", "mmd", "da_f1"});

  auto probe = core::BuildModel(core::ExtractorKind::kLM, env.scale,
                                /*pretrained=*/true, env.seed)
                   .ValueOrDie();
  for (const auto& [target, sources] : kSweep) {
    struct Row { std::string source; double mmd; double f1; };
    std::vector<Row> rows;
    for (const auto& source : sources) {
      auto task = core::BuildDaTask(source, target, env.scale).ValueOrDie();
      Rng rng(env.seed);
      const double mmd = core::DatasetMmdDistance(
          probe.extractor.get(), task.source, task.target_test, 128, &rng);
      core::DaCellOptions options;
      options.base_seed = env.seed;
      auto cell = core::RunDaCell(source, target, core::AlignMethod::kMMD,
                                  env.scale, options);
      cell.status().CheckOK();
      rows.push_back({source, mmd, cell.ValueOrDie().f1.mean});
    }
    // Print sorted by distance so the monotone trend is visible.
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.mmd < b.mmd; });
    for (const auto& r : rows) {
      std::printf("%-7s %-7s %10.4f %12.1f\n", target.c_str(),
                  r.source.c_str(), r.mmd, r.f1 * 100);
      csv.AddRow({target, r.source, std::to_string(r.mmd),
                  std::to_string(r.f1)});
    }
    std::printf("\n");
  }
  std::printf("Finding 2: within each target block, smaller MMD should give\n"
              "higher F1 (closer source domains transfer better).\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
