// Figure 5: visualization of the DA effect on feature distributions for
// Abt-Buy -> Walmart-Amazon. The paper shows t-SNE scatter plots; here the
// bench prints a quantitative domain-mixing score (fraction of cross-domain
// k-NN, normalized; 1.0 = perfectly mixed) before and after InvGAN+KD
// adaptation, and writes the 2-D t-SNE coordinates to CSV for plotting.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "fig5_tsne.csv");
  const std::string source = "AB", target = "WA";
  std::printf("== Figure 5: t-SNE / feature mixing for %s -> %s ==\n",
              source.c_str(), target.c_str());

  auto task = core::BuildDaTask(source, target, env.scale).ValueOrDie();
  // Cap sample sizes: t-SNE and the mixing score are O(n^2).
  Rng sample_rng(env.seed);
  const size_t cap = 150;
  data::ERDataset src_sample = task.source.Subset(sample_rng.SampleIndices(
      task.source.size(), std::min(cap, task.source.size())));
  data::ERDataset tgt_sample = task.target_test.Subset(sample_rng.SampleIndices(
      task.target_test.size(), std::min(cap, task.target_test.size())));

  bench::CsvReport csv({"variant", "domain", "x", "y"});
  auto analyze = [&](const char* variant, core::FeatureExtractor* extractor) {
    Rng rng(env.seed ^ 1);
    Tensor fs = core::ExtractAllFeatures(extractor, src_sample, 32, &rng);
    Tensor ft = core::ExtractAllFeatures(extractor, tgt_sample, 32, &rng);
    const double mixing = core::DomainMixingScore(fs, ft, 10);
    std::printf("%-18s domain-mixing score = %.3f\n", variant, mixing);

    // t-SNE of the pooled features -> CSV coordinates.
    Tensor pooled = ops::Concat({fs, ft}, 0);
    core::TsneConfig tsne;
    tsne.iterations = 200;
    tsne.seed = env.seed;
    const auto coords = core::RunTsne(pooled, tsne);
    for (size_t i = 0; i < coords.size(); ++i) {
      csv.AddRow({variant,
                  i < static_cast<size_t>(fs.dim(0)) ? "source" : "target",
                  std::to_string(coords[i][0]), std::to_string(coords[i][1])});
    }
    return mixing;
  };

  // (a) NoDA: extractor trained on the source only.
  auto noda_model =
      core::BuildModel(core::ExtractorKind::kLM, env.scale, true, env.seed)
          .ValueOrDie();
  auto noda = core::RunSingleDa(core::AlignMethod::kNoDA, env.scale, task,
                                &noda_model)
                  .ValueOrDie();
  const double mix_before = analyze("(a) NoDA", noda.trainer->final_extractor());

  // (b) DA (InvGAN+KD): adapted extractor F'.
  auto da_model =
      core::BuildModel(core::ExtractorKind::kLM, env.scale, true, env.seed)
          .ValueOrDie();
  auto da = core::RunSingleDa(core::AlignMethod::kInvGANKD, env.scale, task,
                              &da_model)
                .ValueOrDie();
  const double mix_after = analyze("(b) DA(InvGAN+KD)", da.trainer->final_extractor());

  std::printf(
      "\npaper's qualitative claim: source/target features are more mixed\n"
      "after DA. mixing before=%.3f after=%.3f (%s)\n",
      mix_before, mix_after,
      mix_after > mix_before ? "REPRODUCED" : "NOT reproduced at this scale");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
