// Table 5: the WDC product corpus — 12 directed pairs among four categories
// that share a common Title vocabulary, where domain shift is small and the
// paper finds DA gains between -1.5 and +8.3.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  auto env = dader::bench::ParseBenchArgs(argc, argv, "table5_wdc.csv");
  // 12 directed pairs x 7 methods: one seed at smoke scale keeps this
  // tractable on a single core; --scale=small/full restores repeats.
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;
  dader::bench::RunDaTable("Table 5: WDC categories (same website style)",
                           dader::bench::WdcPairs(), env);
  return 0;
}
