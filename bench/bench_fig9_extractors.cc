// Figure 9: Feature Extractor comparison — pre-trained LM (transformer) vs
// bidirectional RNN, each under NoDA / MMD / InvGAN+KD, across the three
// dataset groups. The paper's Finding 5: DA gains depend on the pre-trained
// LM's transferability; the RNN transfers poorly.
//
// Two representative pairs per group keep single-core runtime tractable;
// pass --scale=full for wider sweeps.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "fig9_extractors.csv");
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;

  const std::vector<std::pair<std::string,
                              std::vector<std::pair<std::string, std::string>>>>
      kGroups = {
          {"(a) similar domains", {{"WA", "AB"}, {"FZ", "ZY"}}},
          {"(b) different domains", {{"RI", "AB"}, {"B2", "FZ"}}},
          {"(c) WDC", {{"CO", "WT"}, {"SH", "CA"}}},
      };
  const std::vector<core::AlignMethod> kMethods = {
      core::AlignMethod::kNoDA, core::AlignMethod::kMMD,
      core::AlignMethod::kInvGANKD};

  bench::CsvReport csv({"group", "source", "target", "extractor", "method",
                        "f1_mean", "f1_std"});
  for (const auto& [group, pairs] : kGroups) {
    std::printf("== Figure 9 %s ==\n", group.c_str());
    std::printf("%-10s |", "pair");
    for (const char* extractor : {"RNN", "LM"}) {
      for (auto m : kMethods) {
        std::printf(" %4s:%-9s", extractor, core::AlignMethodName(m));
      }
    }
    std::printf("\n");
    for (const auto& [src, tgt] : pairs) {
      std::printf("%-4s->%-4s |", src.c_str(), tgt.c_str());
      for (core::ExtractorKind kind :
           {core::ExtractorKind::kRNN, core::ExtractorKind::kLM}) {
        for (auto m : kMethods) {
          core::DaCellOptions options;
          options.extractor = kind;
          options.pretrained_lm = kind == core::ExtractorKind::kLM;
          options.base_seed = env.seed;
          auto cell = core::RunDaCell(src, tgt, m, env.scale, options);
          cell.status().CheckOK();
          const auto& f1 = cell.ValueOrDie().f1;
          std::printf(" %14.1f", f1.mean * 100);
          std::fflush(stdout);
          csv.AddRow({group, src, tgt,
                      kind == core::ExtractorKind::kLM ? "LM" : "RNN",
                      core::AlignMethodName(m), std::to_string(f1.mean),
                      std::to_string(f1.std)});
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Finding 5: LM columns should dominate RNN columns, and the\n"
              "RNN's DA gains should be smaller than the LM's.\n");
  csv.WriteIfRequested(env.csv_path);
  DumpTraceIfRequested(env);
  return 0;
}
