// Distributed control-plane bench: what the loopback-TCP hop costs and what
// degraded mode does to throughput.
//
// Five experiments:
//   1. wire tax: the same closed-loop stream through a local MatchService
//      vs a 3-node coordinator fleet (frame encode + TCP round trip +
//      decode per request, serial client)
//   2. concurrent clients: K threads driving the coordinator — the
//      per-node channel pool is what lets the worker-side batcher batch
//   3. serial Match loop vs pipelined MatchBatch over the same fleet:
//      how much of the serial wire tax the per-node lane fan-out buys back
//   4. degraded fleet: one node dead, its keys rescued to survivors —
//      throughput and rescue share with N-1 nodes doing N nodes' work
//   5. failover spike: the first post-failover round under replica groups
//      (hot standby, mirrored cache) vs rescue-on-demand (cold survivor)
//
//   ./bench_dist [--scale=smoke|small|full] [--csv=dist.csv]
//                [--json=BENCH_dist.json]

#include <future>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "util/clock.h"
#include "util/fault.h"

using namespace dader;

namespace {

core::DaderConfig DistModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(core::ExtractorKind::kLM,
                                        DistModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::vector<serve::MatchRequest> MakeRequests(int n, Rng* rng) {
  std::vector<serve::MatchRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int id = static_cast<int>(rng->NextInt(0, 1000));
    serve::MatchRequest request;
    request.a = data::Record({"product item " + std::to_string(id), "10"});
    request.b = data::Record(
        {"product item " + std::to_string(rng->NextDouble() < 0.5 ? id : id + 1),
         "10"});
    requests.push_back(std::move(request));
  }
  return requests;
}

serve::ServeConfig WorkerConfig(int requests, uint64_t seed) {
  serve::ServeConfig config;
  config.queue_capacity = static_cast<size_t>(requests);
  config.max_batch = 16;
  config.batch_wait_ms = 0.2;
  config.default_deadline_ms = 60000.0;
  config.seed = seed;
  return config;
}

struct Fleet {
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  std::vector<int> ports;
};

Fleet MakeFleet(int nodes, int requests, uint64_t seed,
                size_t cache_capacity = 0) {
  Fleet fleet;
  core::DaModel base = MakeModel(seed);
  data::Schema schema({"title", "price"});
  for (int node = 0; node < nodes; ++node) {
    auto replica = core::CloneModel(base, seed + 100 + node);
    if (!replica.ok()) std::exit(1);
    dist::WorkerNodeConfig config;
    config.node_id = node;
    config.serve = WorkerConfig(requests, seed);
    config.serve.feature_cache_capacity = cache_capacity;
    auto worker = dist::WorkerNode::Create(config, schema, schema,
                                           std::move(replica).ValueOrDie());
    if (!worker.ok()) std::exit(1);
    fleet.workers.push_back(std::move(worker).ValueOrDie());
    if (!fleet.workers.back()->Start(0).ok()) std::exit(1);
    fleet.ports.push_back(fleet.workers.back()->port());
  }
  return fleet;
}

dist::CoordinatorConfig CoordConfig(uint64_t seed) {
  dist::CoordinatorConfig config;
  config.match_deadline_ms = 60000.0;
  config.heartbeat_deadline_ms = 1000.0;
  config.max_inflight_per_node = 256;
  config.seed = seed;
  return config;
}

// One primary death under a given routing policy (replication 1 = PR 6's
// rescue-on-demand, replication 2 = hot standby with mirrored warming):
// warm the fleet, kill the home of stream[0], measure the FIRST
// post-failover round — the spike window the replica groups exist for.
struct FailoverResult {
  int ok = 0;
  double round_rps = 0.0;
  long long cold_misses = 0;  ///< fleet-wide cache misses in that round
  long long rescued = 0;
  long long promoted = 0;
};

FailoverResult RunFailoverSpike(int replication, int requests, uint64_t seed,
                                const std::vector<serve::MatchRequest>& stream) {
  const int kNodes = 4;
  Fleet fleet = MakeFleet(kNodes, requests, seed,
                          /*cache_capacity=*/2 * stream.size() + 16);
  dist::CoordinatorConfig config = CoordConfig(seed);
  config.replication_factor = replication;
  dist::Coordinator coordinator(config, fleet.ports);
  coordinator.Start();  // heartbeats + (replication > 1) the warm mirror

  FailoverResult out;
  for (const auto& request : stream) {  // warm round: primaries cache keys
    coordinator.Match(request);
  }
  if (replication > 1) {
    // Wait for the mirror thread to warm the standbys.
    for (int spin = 0;
         spin < 2000 &&
         coordinator.warm_sent() < static_cast<int64_t>(stream.size());
         ++spin) {
      util::Clock::Real()->SleepForMs(5.0);
    }
  }

  const int victim = coordinator.Route(stream[0]).node;
  fleet.workers[static_cast<size_t>(victim)]->StopServer();
  for (int spin = 0;
       spin < 2000 &&
       coordinator.membership().state(victim) != dist::NodeState::kDead;
       ++spin) {
    util::Clock::Real()->SleepForMs(5.0);
  }

  auto fleet_misses = [&fleet] {
    long long misses = 0;
    for (auto& worker : fleet.workers) {
      misses += worker->service().stats().cache_misses;
    }
    return misses;
  };
  const long long misses_before = fleet_misses();
  const int64_t rescued_before = coordinator.rescued();
  const int64_t promoted_before = coordinator.promoted();
  Stopwatch timer;
  for (const auto& request : stream) {
    if (coordinator.Match(request).status.ok()) ++out.ok;
  }
  out.round_rps = out.ok / timer.ElapsedSeconds();
  out.cold_misses = fleet_misses() - misses_before;
  out.rescued = static_cast<long long>(coordinator.rescued() - rescued_before);
  out.promoted =
      static_cast<long long>(coordinator.promoted() - promoted_before);

  coordinator.Stop();
  for (auto& worker : fleet.workers) worker->Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "dist.csv");
  const int kRequests = env.scale.name == "smoke" ? 128
                        : env.scale.name == "small" ? 512
                                                    : 2048;
  const int kNodes = 3;
  Rng rng(env.seed);
  const std::vector<serve::MatchRequest> stream = MakeRequests(kRequests, &rng);
  data::Schema schema({"title", "price"});
  bench::CsvReport csv({"experiment", "setting", "requests", "ok", "shed",
                        "rescued", "throughput_rps"});

  std::printf("== 1. wire tax: local service vs %d-node fleet (%d requests, "
              "serial client) ==\n", kNodes, kRequests);
  std::printf("%-22s %12s %10s\n", "path", "rps", "ok");
  double local_rps = 0.0;
  {
    serve::MatchService service(WorkerConfig(kRequests, env.seed), schema,
                                schema, MakeModel(env.seed));
    Stopwatch timer;
    int ok = 0;
    for (const auto& request : stream) {
      if (service.Match(request).status.ok()) ++ok;
    }
    local_rps = ok / timer.ElapsedSeconds();
    std::printf("%-22s %12.1f %10d\n", "local MatchService", local_rps, ok);
    csv.AddRow({"wire_tax", "local", std::to_string(kRequests),
                std::to_string(ok), "0", "0", StrFormat("%.1f", local_rps)});
  }
  double serial_rps = 0.0;
  double pipelined_rps = 0.0;
  {
    Fleet fleet = MakeFleet(kNodes, kRequests, env.seed);
    dist::Coordinator coordinator(CoordConfig(env.seed), fleet.ports);
    Stopwatch timer;
    int ok = 0;
    for (const auto& request : stream) {
      if (coordinator.Match(request).status.ok()) ++ok;
    }
    serial_rps = ok / timer.ElapsedSeconds();
    std::printf("%-22s %12.1f %10d   (%.1f%% of local)\n", "coordinator+TCP",
                serial_rps, ok, 100.0 * serial_rps / local_rps);
    csv.AddRow({"wire_tax", "fleet_serial", std::to_string(kRequests),
                std::to_string(ok), "0", "0", StrFormat("%.1f", serial_rps)});

    std::printf("\n== 2. concurrent clients against the same fleet ==\n");
    std::printf("%-10s %12s %10s\n", "clients", "rps", "ok");
    for (int clients : {2, 4}) {
      Stopwatch ctimer;
      std::vector<std::future<int>> futures;
      for (int c = 0; c < clients; ++c) {
        futures.push_back(std::async(std::launch::async, [&, c] {
          int cok = 0;
          for (size_t i = c; i < stream.size();
               i += static_cast<size_t>(clients)) {
            if (coordinator.Match(stream[i]).status.ok()) ++cok;
          }
          return cok;
        }));
      }
      int ok2 = 0;
      for (auto& f : futures) ok2 += f.get();
      const double crps = ok2 / ctimer.ElapsedSeconds();
      std::printf("%-10d %12.1f %10d\n", clients, crps, ok2);
      csv.AddRow({"concurrency", std::to_string(clients),
                  std::to_string(kRequests), std::to_string(ok2), "0", "0",
                  StrFormat("%.1f", crps)});
    }

    std::printf("\n== 3. serial Match loop vs pipelined MatchBatch ==\n");
    std::printf("%-22s %12s %10s\n", "path", "rps", "ok");
    std::printf("%-22s %12.1f %10d\n", "serial loop (above)", serial_rps, ok);
    {
      std::vector<serve::MatchRequest> batch = stream;  // MatchBatch consumes
      Stopwatch btimer;
      const std::vector<serve::MatchResponse> responses =
          coordinator.MatchBatch(std::move(batch));
      int bok = 0;
      for (const auto& r : responses) {
        if (r.status.ok()) ++bok;
      }
      pipelined_rps = bok / btimer.ElapsedSeconds();
      std::printf("%-22s %12.1f %10d   (%.1f%% of local, %.2fx serial)\n",
                  "pipelined MatchBatch", pipelined_rps, bok,
                  100.0 * pipelined_rps / local_rps,
                  pipelined_rps / serial_rps);
      csv.AddRow({"wire_tax", "fleet_pipelined", std::to_string(kRequests),
                  std::to_string(bok), "0", "0",
                  StrFormat("%.1f", pipelined_rps)});
    }

    std::printf("\n== 4. degraded fleet: node 0 dead, keys rescued ==\n");
    fleet.workers[0]->StopServer();
    // Walk node 0 to DEAD deterministically; the first data-path failures
    // would get there too, but ticks keep the measurement clean.
    for (int tick = 0; tick < 5; ++tick) coordinator.HeartbeatTick();
    const int64_t rescued_before = coordinator.rescued();
    const int64_t shed_before = coordinator.shed();
    Stopwatch dtimer;
    int ok3 = 0;
    for (const auto& request : stream) {
      if (coordinator.Match(request).status.ok()) ++ok3;
    }
    const double drps = ok3 / dtimer.ElapsedSeconds();
    const int64_t rescued = coordinator.rescued() - rescued_before;
    const int64_t shed = coordinator.shed() - shed_before;
    std::printf("%-22s %12.1f %10d   (rescued %lld, shed %lld)\n",
                "2-of-3 survivors", drps, ok3, static_cast<long long>(rescued),
                static_cast<long long>(shed));
    csv.AddRow({"degraded", "2_of_3", std::to_string(kRequests),
                std::to_string(ok3), std::to_string(shed),
                std::to_string(rescued), StrFormat("%.1f", drps)});

    coordinator.Stop();
    for (auto& worker : fleet.workers) worker->Stop();
  }

  std::printf("\n== 5. failover spike: first round after a primary dies ==\n");
  std::printf("%-22s %12s %10s %8s %8s %8s\n", "policy", "rps", "ok",
              "cold", "rescued", "promoted");
  const FailoverResult replica =
      RunFailoverSpike(/*replication=*/2, kRequests, env.seed, stream);
  std::printf("%-22s %12.1f %10d %8lld %8lld %8lld\n", "replica groups (R=2)",
              replica.round_rps, replica.ok, replica.cold_misses,
              replica.rescued, replica.promoted);
  csv.AddRow({"failover", "replica_groups", std::to_string(kRequests),
              std::to_string(replica.ok), "0",
              std::to_string(replica.rescued),
              StrFormat("%.1f", replica.round_rps)});
  const FailoverResult rescue =
      RunFailoverSpike(/*replication=*/1, kRequests, env.seed, stream);
  std::printf("%-22s %12.1f %10d %8lld %8lld %8lld\n", "rescue-on-demand",
              rescue.round_rps, rescue.ok, rescue.cold_misses, rescue.rescued,
              rescue.promoted);
  csv.AddRow({"failover", "rescue_on_demand", std::to_string(kRequests),
              std::to_string(rescue.ok), "0", std::to_string(rescue.rescued),
              StrFormat("%.1f", rescue.round_rps)});

  if (!env.json_path.empty()) {
    std::string json = "{\n";
    json += StrFormat(
        "  \"wire_tax\": {\"requests\": %d, \"local_rps\": %.1f, "
        "\"serial_rps\": %.1f, \"pipelined_rps\": %.1f, "
        "\"serial_tax_pct\": %.1f, \"pipelined_tax_pct\": %.1f, "
        "\"pipelined_speedup\": %.2f},\n",
        kRequests, local_rps, serial_rps, pipelined_rps,
        100.0 * (1.0 - serial_rps / local_rps),
        100.0 * (1.0 - pipelined_rps / local_rps), pipelined_rps / serial_rps);
    json += StrFormat(
        "  \"failover_spike\": {\n"
        "    \"replica_groups\": {\"rps\": %.1f, \"ok\": %d, "
        "\"cold_misses\": %lld, \"rescued\": %lld, \"promoted\": %lld},\n"
        "    \"rescue_on_demand\": {\"rps\": %.1f, \"ok\": %d, "
        "\"cold_misses\": %lld, \"rescued\": %lld, \"promoted\": %lld}\n"
        "  }\n",
        replica.round_rps, replica.ok, replica.cold_misses, replica.rescued,
        replica.promoted, rescue.round_rps, rescue.ok, rescue.cold_misses,
        rescue.rescued, rescue.promoted);
    json += "}\n";
    std::string error;
    if (obs::WriteTextFile(env.json_path, json, &error)) {
      std::printf("[json written to %s]\n", env.json_path.c_str());
    } else {
      std::fprintf(stderr, "json write failed: %s\n", error.c_str());
    }
  }

  csv.WriteIfRequested(env.csv_path);
  return 0;
}
