// Distributed control-plane bench: what the loopback-TCP hop costs and what
// degraded mode does to throughput.
//
// Three experiments:
//   1. wire tax: the same closed-loop stream through a local MatchService
//      vs a 3-node coordinator fleet (frame encode + TCP round trip +
//      decode per request, serial client)
//   2. concurrent clients: K threads driving the coordinator — the
//      per-node channel pool is what lets the worker-side batcher batch
//   3. degraded fleet: one node dead, its keys rescued to survivors —
//      throughput and rescue share with N-1 nodes doing N nodes' work
//
//   ./bench_dist [--scale=smoke|small|full] [--csv=dist.csv]

#include <future>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "serve/match_service.h"
#include "util/fault.h"

using namespace dader;

namespace {

core::DaderConfig DistModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(core::ExtractorKind::kLM,
                                        DistModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::vector<serve::MatchRequest> MakeRequests(int n, Rng* rng) {
  std::vector<serve::MatchRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int id = static_cast<int>(rng->NextInt(0, 1000));
    serve::MatchRequest request;
    request.a = data::Record({"product item " + std::to_string(id), "10"});
    request.b = data::Record(
        {"product item " + std::to_string(rng->NextDouble() < 0.5 ? id : id + 1),
         "10"});
    requests.push_back(std::move(request));
  }
  return requests;
}

serve::ServeConfig WorkerConfig(int requests, uint64_t seed) {
  serve::ServeConfig config;
  config.queue_capacity = static_cast<size_t>(requests);
  config.max_batch = 16;
  config.batch_wait_ms = 0.2;
  config.default_deadline_ms = 60000.0;
  config.seed = seed;
  return config;
}

struct Fleet {
  std::vector<std::unique_ptr<dist::WorkerNode>> workers;
  std::vector<int> ports;
};

Fleet MakeFleet(int nodes, int requests, uint64_t seed) {
  Fleet fleet;
  core::DaModel base = MakeModel(seed);
  data::Schema schema({"title", "price"});
  for (int node = 0; node < nodes; ++node) {
    auto replica = core::CloneModel(base, seed + 100 + node);
    if (!replica.ok()) std::exit(1);
    dist::WorkerNodeConfig config;
    config.node_id = node;
    config.serve = WorkerConfig(requests, seed);
    auto worker = dist::WorkerNode::Create(config, schema, schema,
                                           std::move(replica).ValueOrDie());
    if (!worker.ok()) std::exit(1);
    fleet.workers.push_back(std::move(worker).ValueOrDie());
    if (!fleet.workers.back()->Start(0).ok()) std::exit(1);
    fleet.ports.push_back(fleet.workers.back()->port());
  }
  return fleet;
}

dist::CoordinatorConfig CoordConfig(uint64_t seed) {
  dist::CoordinatorConfig config;
  config.match_deadline_ms = 60000.0;
  config.heartbeat_deadline_ms = 1000.0;
  config.max_inflight_per_node = 256;
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "dist.csv");
  const int kRequests = env.scale.name == "smoke" ? 128
                        : env.scale.name == "small" ? 512
                                                    : 2048;
  const int kNodes = 3;
  Rng rng(env.seed);
  const std::vector<serve::MatchRequest> stream = MakeRequests(kRequests, &rng);
  data::Schema schema({"title", "price"});
  bench::CsvReport csv({"experiment", "setting", "requests", "ok", "shed",
                        "rescued", "throughput_rps"});

  std::printf("== 1. wire tax: local service vs %d-node fleet (%d requests, "
              "serial client) ==\n", kNodes, kRequests);
  std::printf("%-22s %12s %10s\n", "path", "rps", "ok");
  double local_rps = 0.0;
  {
    serve::MatchService service(WorkerConfig(kRequests, env.seed), schema,
                                schema, MakeModel(env.seed));
    Stopwatch timer;
    int ok = 0;
    for (const auto& request : stream) {
      if (service.Match(request).status.ok()) ++ok;
    }
    local_rps = ok / timer.ElapsedSeconds();
    std::printf("%-22s %12.1f %10d\n", "local MatchService", local_rps, ok);
    csv.AddRow({"wire_tax", "local", std::to_string(kRequests),
                std::to_string(ok), "0", "0", StrFormat("%.1f", local_rps)});
  }
  {
    Fleet fleet = MakeFleet(kNodes, kRequests, env.seed);
    dist::Coordinator coordinator(CoordConfig(env.seed), fleet.ports);
    Stopwatch timer;
    int ok = 0;
    for (const auto& request : stream) {
      if (coordinator.Match(request).status.ok()) ++ok;
    }
    const double rps = ok / timer.ElapsedSeconds();
    std::printf("%-22s %12.1f %10d   (%.1f%% of local)\n", "coordinator+TCP",
                rps, ok, 100.0 * rps / local_rps);
    csv.AddRow({"wire_tax", "fleet_serial", std::to_string(kRequests),
                std::to_string(ok), "0", "0", StrFormat("%.1f", rps)});

    std::printf("\n== 2. concurrent clients against the same fleet ==\n");
    std::printf("%-10s %12s %10s\n", "clients", "rps", "ok");
    for (int clients : {2, 4}) {
      Stopwatch ctimer;
      std::vector<std::future<int>> futures;
      for (int c = 0; c < clients; ++c) {
        futures.push_back(std::async(std::launch::async, [&, c] {
          int cok = 0;
          for (size_t i = c; i < stream.size();
               i += static_cast<size_t>(clients)) {
            if (coordinator.Match(stream[i]).status.ok()) ++cok;
          }
          return cok;
        }));
      }
      int ok2 = 0;
      for (auto& f : futures) ok2 += f.get();
      const double crps = ok2 / ctimer.ElapsedSeconds();
      std::printf("%-10d %12.1f %10d\n", clients, crps, ok2);
      csv.AddRow({"concurrency", std::to_string(clients),
                  std::to_string(kRequests), std::to_string(ok2), "0", "0",
                  StrFormat("%.1f", crps)});
    }

    std::printf("\n== 3. degraded fleet: node 0 dead, keys rescued ==\n");
    fleet.workers[0]->StopServer();
    // Walk node 0 to DEAD deterministically; the first data-path failures
    // would get there too, but ticks keep the measurement clean.
    for (int tick = 0; tick < 5; ++tick) coordinator.HeartbeatTick();
    const int64_t rescued_before = coordinator.rescued();
    const int64_t shed_before = coordinator.shed();
    Stopwatch dtimer;
    int ok3 = 0;
    for (const auto& request : stream) {
      if (coordinator.Match(request).status.ok()) ++ok3;
    }
    const double drps = ok3 / dtimer.ElapsedSeconds();
    const int64_t rescued = coordinator.rescued() - rescued_before;
    const int64_t shed = coordinator.shed() - shed_before;
    std::printf("%-22s %12.1f %10d   (rescued %lld, shed %lld)\n",
                "2-of-3 survivors", drps, ok3, static_cast<long long>(rescued),
                static_cast<long long>(shed));
    csv.AddRow({"degraded", "2_of_3", std::to_string(kRequests),
                std::to_string(ok3), std::to_string(shed),
                std::to_string(rescued), StrFormat("%.1f", drps)});

    coordinator.Stop();
    for (auto& worker : fleet.workers) worker->Stop();
  }

  csv.WriteIfRequested(env.csv_path);
  return 0;
}
