// Serving bench: throughput, latency percentiles, and overload behavior of
// the fault-tolerant MatchService.
//
// Six experiments:
//   1. closed-loop throughput/latency vs max_batch (batching is the
//      single-core throughput lever)
//   2. open-loop overload: offered load above capacity must be shed by the
//      bounded queue, never queued unboundedly (goodput stays flat, shed
//      rate absorbs the excess)
//   3. degraded-path cost: primary LM vs RNN fallback vs heuristic
//   4. shard-count x feature-cache sweep on a repeat-heavy stream — the
//      numbers behind the >= 2x guard in tests/perf/serving_perf_test.cc
//   5. bursty arrivals against the adaptive batch-cap controller: the cap
//      must grow under the bursts and hold still (converge) once the
//      arrival pattern stabilizes
//   6. quantized (--quantize, int8) vs fp32 serving throughput per shard
//      count and feature-cache setting on a Linear-dominated model — the
//      numbers behind the >= 1.5x guard in tests/perf/qgemm_perf_test.cc
//
// At exit the process-wide metrics registry is dumped (Prometheus text
// format); --metrics_jsonl=path additionally writes the JSON-lines export
// (see docs/OBSERVABILITY.md). --json=BENCH_serving.json writes the
// sweep + adaptive results as structured JSON (the checked-in
// BENCH_serving.json is this file at the default smoke scale).
//
//   ./bench_serving [--scale=smoke|small|full] [--csv=serving.csv]
//                   [--json=BENCH_serving.json]
//                   [--metrics_jsonl=serving_metrics.jsonl]

#include <algorithm>
#include <future>
#include <memory>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "util/fault.h"
#include "serve/match_service.h"
#include "serve/sharded_service.h"

using namespace dader;

namespace {

core::DaderConfig ServeModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, ServeModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::vector<serve::MatchRequest> MakeRequests(int n, Rng* rng) {
  std::vector<serve::MatchRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int id = static_cast<int>(rng->NextInt(0, 1000));
    serve::MatchRequest request;
    request.a = data::Record({"product item " + std::to_string(id), "10"});
    request.b = data::Record(
        {"product item " + std::to_string(rng->NextDouble() < 0.5 ? id : id + 1),
         "10"});
    requests.push_back(std::move(request));
  }
  return requests;
}

// Repeat-heavy stream: `n` requests drawn from a small pool of unique
// pairs — the shape of a matcher sitting behind a blocking stage that
// keeps surfacing the same candidates. This is the workload the feature
// cache is for.
std::vector<serve::MatchRequest> MakeRepeatHeavyRequests(int n, int unique,
                                                         Rng* rng) {
  std::vector<serve::MatchRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int id = static_cast<int>(rng->NextInt(0, unique));
    serve::MatchRequest request;
    request.a = data::Record(
        {"catalog entry " + std::to_string(id) + " deluxe", "10"});
    request.b = data::Record({"catalog entry " + std::to_string(id), "10"});
    requests.push_back(std::move(request));
  }
  return requests;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "serving.csv");
  const int kRequests = env.scale.name == "smoke" ? 64
                        : env.scale.name == "small" ? 256
                                                    : 1024;
  Rng rng(env.seed);
  bench::CsvReport csv({"experiment", "setting", "requests", "ok", "shed",
                        "degraded", "throughput_rps", "p50_ms", "p95_ms"});

  std::printf("== 1. closed-loop throughput vs max_batch (%d requests) ==\n",
              kRequests);
  std::printf("%-10s %12s %10s %10s\n", "max_batch", "rps", "p50 ms", "p95 ms");
  for (int64_t max_batch : {1, 4, 16}) {
    serve::ServeConfig config;
    config.queue_capacity = static_cast<size_t>(kRequests);
    config.max_batch = max_batch;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.seed = env.seed;
    data::Schema schema({"title", "price"});
    serve::MatchService service(config, schema, schema,
                                MakeModel(core::ExtractorKind::kLM, env.seed));
    Stopwatch timer;
    const std::vector<serve::MatchResponse> responses =
        service.MatchBatch(MakeRequests(kRequests, &rng));
    const double elapsed_s = timer.ElapsedSeconds();
    std::vector<double> lat;
    for (const auto& r : responses) {
      if (r.status.ok()) lat.push_back(r.total_ms);
    }
    const double rps = lat.size() / elapsed_s;
    const double p50 = Percentile(lat, 0.5), p95 = Percentile(lat, 0.95);
    std::printf("%-10lld %12.1f %10.2f %10.2f\n",
                static_cast<long long>(max_batch), rps, p50, p95);
    csv.AddRow({"throughput", StrFormat("max_batch=%lld", (long long)max_batch),
                std::to_string(kRequests), std::to_string(lat.size()), "0", "0",
                StrFormat("%.1f", rps), StrFormat("%.3f", p50),
                StrFormat("%.3f", p95)});
  }

  std::printf("\n== 2. open-loop overload: bounded queue sheds excess ==\n");
  std::printf("%-12s %8s %8s %12s\n", "burst", "ok", "shed", "goodput rps");
  for (int burst : {kRequests / 2, kRequests, kRequests * 4}) {
    serve::ServeConfig config;
    config.queue_capacity = 16;
    config.max_batch = 8;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.seed = env.seed;
    data::Schema schema({"title", "price"});
    serve::MatchService service(config, schema, schema,
                                MakeModel(core::ExtractorKind::kLM, env.seed));
    std::vector<serve::MatchRequest> requests = MakeRequests(burst, &rng);
    Stopwatch timer;
    std::vector<std::future<serve::MatchResponse>> futures;
    futures.reserve(requests.size());
    for (auto& request : requests) {
      futures.push_back(service.SubmitAsync(std::move(request)));
    }
    int ok = 0, shed = 0;
    std::vector<double> lat;
    for (auto& f : futures) {
      const serve::MatchResponse r = f.get();
      if (r.status.ok()) {
        ++ok;
        lat.push_back(r.total_ms);
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        ++shed;
      }
    }
    const double elapsed_s = timer.ElapsedSeconds();
    const double rps = ok / elapsed_s;
    std::printf("%-12d %8d %8d %12.1f\n", burst, ok, shed, rps);
    csv.AddRow({"overload", StrFormat("burst=%d", burst),
                std::to_string(burst), std::to_string(ok),
                std::to_string(shed), "0", StrFormat("%.1f", rps),
                StrFormat("%.3f", Percentile(lat, 0.5)),
                StrFormat("%.3f", Percentile(lat, 0.95))});
  }

  std::printf("\n== 3. degraded-path cost (primary vs fallback paths) ==\n");
  std::printf("%-22s %12s %10s\n", "path", "rps", "p50 ms");
  struct PathCase {
    const char* name;
    bool arm_fault;       // force every primary attempt to fail
    bool with_fallback;   // RNN fallback model vs heuristic
  };
  for (const PathCase& pc :
       {PathCase{"primary (LM)", false, true},
        PathCase{"fallback (RNN)", true, true},
        PathCase{"heuristic", true, false}}) {
    FaultInjector fault;
    serve::ServeConfig config;
    config.queue_capacity = static_cast<size_t>(kRequests);
    config.max_batch = 8;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.retry.max_attempts = 1;
    config.breaker.failure_threshold = 1;  // trip immediately
    config.breaker.cooldown_ms = 60000.0;  // stay degraded for the whole run
    config.seed = env.seed;
    config.fault = &fault;
    if (pc.arm_fault) {
      FaultSpec spec;
      spec.kind = FaultKind::kExtractorFault;
      spec.probability = 1.0;
      spec.max_hits = 1u << 20;
      fault.Arm(spec);
    }
    data::Schema schema({"title", "price"});
    serve::MatchService service(
        config, schema, schema, MakeModel(core::ExtractorKind::kLM, env.seed),
        pc.with_fallback
            ? std::make_unique<core::DaModel>(
                  MakeModel(core::ExtractorKind::kRNN, env.seed + 100))
            : nullptr);
    Stopwatch timer;
    const std::vector<serve::MatchResponse> responses =
        service.MatchBatch(MakeRequests(kRequests, &rng));
    const double elapsed_s = timer.ElapsedSeconds();
    std::vector<double> lat;
    int degraded = 0;
    for (const auto& r : responses) {
      if (!r.status.ok()) continue;
      lat.push_back(r.total_ms);
      degraded += r.degraded ? 1 : 0;
    }
    const double rps = lat.size() / elapsed_s;
    const double p50 = Percentile(lat, 0.5);
    std::printf("%-22s %12.1f %10.2f  (degraded %d/%zu)\n", pc.name, rps, p50,
                degraded, lat.size());
    csv.AddRow({"degraded_path", pc.name, std::to_string(kRequests),
                std::to_string(lat.size()), "0", std::to_string(degraded),
                StrFormat("%.1f", rps), StrFormat("%.3f", p50),
                StrFormat("%.3f", Percentile(lat, 0.95))});
  }

  // -- 4. shard-count x feature-cache sweep ---------------------------------
  // Closed loop over a repeat-heavy stream. On a single core the parallel
  // shard forwards cannot add throughput; the win in the cached columns is
  // the feature cache skipping the extractor on repeats. Decisions are
  // bit-identical down every column (see ShardedMatchServiceTest).
  // The sweep has its own request floor: splitting a smoke-sized stream
  // four ways starves every shard's batcher and measures fixed costs, not
  // steady-state throughput.
  const int kSweepRequests = std::max(512, kRequests);
  std::printf("\n== 4. shard-count x feature-cache sweep (%d requests, "
              "repeat-heavy) ==\n", kSweepRequests);
  std::printf("%-8s %-7s %12s %10s %10s %10s\n", "shards", "cache", "rps",
              "p50 ms", "p95 ms", "hit rate");
  struct SweepPoint {
    int shards;
    bool cache;
    double rps, p50, p95, hit_ratio;
    int64_t hits;
  };
  std::vector<SweepPoint> sweep;
  {
    Rng sweep_rng(env.seed + 400);
    const std::vector<serve::MatchRequest> stream =
        MakeRepeatHeavyRequests(kSweepRequests, /*unique=*/16, &sweep_rng);
    for (int shards : {1, 2, 4}) {
      for (bool cache : {false, true}) {
        serve::ShardedServeConfig config;
        config.num_shards = shards;
        config.shard.queue_capacity = static_cast<size_t>(kSweepRequests);
        config.shard.max_batch = 8;
        config.shard.batch_wait_ms = 0.2;
        config.shard.default_deadline_ms = 60000.0;
        config.shard.seed = env.seed;
        config.shard.feature_cache_capacity = cache ? 256 : 0;
        data::Schema schema({"title", "price"});
        auto service_or = serve::ShardedMatchService::Create(
            config, schema, schema,
            MakeModel(core::ExtractorKind::kLM, env.seed));
        if (!service_or.ok()) {
          std::fprintf(stderr, "shard sweep setup failed: %s\n",
                       service_or.status().ToString().c_str());
          return 1;
        }
        auto service = std::move(service_or).ValueOrDie();
        Stopwatch timer;
        const std::vector<serve::MatchResponse> responses =
            service->MatchBatch(stream);
        const double elapsed_s = timer.ElapsedSeconds();
        std::vector<double> lat;
        for (const auto& r : responses) {
          if (r.status.ok()) lat.push_back(r.total_ms);
        }
        const serve::ServeStats stats = service->stats();
        const int64_t lookups = stats.cache_hits + stats.cache_misses;
        SweepPoint point;
        point.shards = shards;
        point.cache = cache;
        point.rps = lat.size() / elapsed_s;
        point.p50 = Percentile(lat, 0.5);
        point.p95 = Percentile(lat, 0.95);
        point.hits = stats.cache_hits;
        point.hit_ratio =
            lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
        sweep.push_back(point);
        service->Stop();
        std::printf("%-8d %-7s %12.1f %10.2f %10.2f %9.0f%%\n", shards,
                    cache ? "on" : "off", point.rps, point.p50, point.p95,
                    point.hit_ratio * 100.0);
        csv.AddRow({"shard_sweep",
                    StrFormat("shards=%d cache=%s", shards,
                              cache ? "on" : "off"),
                    std::to_string(kSweepRequests), std::to_string(lat.size()), "0",
                    "0", StrFormat("%.1f", point.rps),
                    StrFormat("%.3f", point.p50),
                    StrFormat("%.3f", point.p95)});
      }
    }
  }
  double speedup_4shard = 0.0;
  for (const SweepPoint& p : sweep) {
    if (p.shards == 4 && p.cache) speedup_4shard = p.rps / sweep[0].rps;
  }
  std::printf("4-shard cached vs 1-shard uncached: %.2fx\n", speedup_4shard);

  // -- 5. bursty arrivals vs the adaptive batch cap -------------------------
  // Open-loop bursts create queue pressure (cap should grow), then a calm
  // closed-loop tail where the controller must hold the cap still. The
  // convergence flag is the acceptance criterion: caps recorded over the
  // final phase must not change.
  std::printf("\n== 5. adaptive batch cap under bursty arrivals ==\n");
  std::vector<int64_t> cap_trajectory;
  int64_t adaptive_grows = 0, adaptive_shrinks = 0;
  bool adaptive_converged = false;
  {
    Rng burst_rng(env.seed + 500);
    serve::ServeConfig config;
    config.queue_capacity = static_cast<size_t>(kRequests * 4);
    config.max_batch = 2;  // start small: the bursts must earn the growth
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.seed = env.seed;
    config.adaptive.enabled = true;
    config.adaptive.min_batch = 1;
    config.adaptive.max_batch = 32;
    config.adaptive.window = 4;
    data::Schema schema({"title", "price"});
    serve::MatchService service(config, schema, schema,
                                MakeModel(core::ExtractorKind::kLM, env.seed));
    cap_trajectory.push_back(service.batch_cap());
    const int bursts = 6;
    for (int b = 0; b < bursts; ++b) {
      std::vector<std::future<serve::MatchResponse>> futures;
      for (auto& request : MakeRequests(kRequests, &burst_rng)) {
        futures.push_back(service.SubmitAsync(std::move(request)));
      }
      for (auto& f : futures) f.get();
      cap_trajectory.push_back(service.batch_cap());
    }
    // Calm tail: single-request trickle, window means fall inside the
    // dead band, the cap must not move.
    const int64_t cap_before_tail = service.batch_cap();
    for (int i = 0; i < 32; ++i) {
      service.Match(MakeRequests(1, &burst_rng)[0]);
    }
    cap_trajectory.push_back(service.batch_cap());
    adaptive_converged = service.batch_cap() == cap_before_tail;
    adaptive_grows = service.batch_controller().grows();
    adaptive_shrinks = service.batch_controller().shrinks();
    std::printf("cap trajectory:");
    for (int64_t cap : cap_trajectory) {
      std::printf(" %lld", static_cast<long long>(cap));
    }
    std::printf("\ngrows=%lld shrinks=%lld converged=%s\n",
                static_cast<long long>(adaptive_grows),
                static_cast<long long>(adaptive_shrinks),
                adaptive_converged ? "yes" : "no");
  }

  // -- 6. quantized vs fp32 serving sweep -----------------------------------
  // The --quantize before/after, per shard count and feature-cache setting,
  // on a Linear-dominated model (hidden 64 / ffn 128 — the regime int8
  // GEMM accelerates; the hidden-16 model above spends its time outside
  // the Linears). Cache-off rows run the full forward per request, where
  // quantization pays; cache-on rows mostly skip the extractor on the
  // repeat-heavy stream, so the quantized win shrinks toward the
  // matcher-head share. Uses agreement gate 0: the bench model is
  // untrained (probabilities near 0.5, argmax agreement is a coin flip);
  // accuracy gates live in the quant test suite on trained models.
  std::printf("\n== 6. quantized vs fp32 serving sweep ==\n");
  std::printf("%-8s %-7s %-9s %12s %10s %10s\n", "shards", "cache", "weights",
              "rps", "p50 ms", "p95 ms");
  struct QuantPoint {
    int shards;
    bool cache;
    bool quantized;
    double rps, p50, p95;
  };
  std::vector<QuantPoint> quant_sweep;
  {
    core::DaderConfig quant_model_config;
    quant_model_config.vocab_size = 1024;
    quant_model_config.max_len = 32;
    quant_model_config.hidden_dim = 64;
    quant_model_config.num_heads = 2;
    quant_model_config.num_layers = 2;
    quant_model_config.ffn_dim = 128;
    quant_model_config.rnn_hidden = 16;
    quant_model_config.dropout = 0.0f;
    auto make_quant_model = [&](uint64_t seed) {
      core::DaModel model;
      model.extractor = core::MakeExtractor(core::ExtractorKind::kLM,
                                            quant_model_config, seed);
      model.matcher = std::make_unique<core::Matcher>(
          model.extractor->feature_dim(), seed + 1);
      return model;
    };
    data::Schema schema({"title", "price"});
    data::ERDataset calib("calib", "serve", schema, schema);
    for (int i = 0; i < 48; ++i) {
      calib.AddPair({data::Record({"calib widget model " + std::to_string(i) +
                                       " pro edition",
                                   std::to_string(i)}),
                     data::Record({"calib widget model " + std::to_string(i),
                                   std::to_string(i)}),
                     /*label=*/-1});
    }
    const int kQuantRequests = std::max(128, kRequests);
    Rng quant_rng(env.seed + 600);
    const std::vector<serve::MatchRequest> stream =
        MakeRepeatHeavyRequests(kQuantRequests, /*unique=*/16, &quant_rng);
    for (int shards : {1, 2}) {
      for (bool cache : {false, true}) {
        for (bool quantize : {false, true}) {
          serve::ShardedServeConfig config;
          config.num_shards = shards;
          config.shard.queue_capacity = static_cast<size_t>(kQuantRequests);
          config.shard.max_batch = 8;
          config.shard.batch_wait_ms = 0.2;
          config.shard.default_deadline_ms = 60000.0;
          config.shard.seed = env.seed;
          config.shard.feature_cache_capacity = cache ? 256 : 0;
          config.shard.quantize = quantize;
          config.shard.quant_calib = quantize ? &calib : nullptr;
          config.shard.quant_min_agreement = 0.0;
          auto service_or = serve::ShardedMatchService::Create(
              config, schema, schema, make_quant_model(env.seed));
          if (!service_or.ok()) {
            std::fprintf(stderr, "quant sweep setup failed: %s\n",
                         service_or.status().ToString().c_str());
            return 1;
          }
          auto service = std::move(service_or).ValueOrDie();
          if (quantize && service->stats().quant_calibrations == 0) {
            std::fprintf(stderr, "quant sweep: quantization did not engage\n");
            return 1;
          }
          Stopwatch timer;
          const std::vector<serve::MatchResponse> responses =
              service->MatchBatch(stream);
          const double elapsed_s = timer.ElapsedSeconds();
          std::vector<double> lat;
          for (const auto& r : responses) {
            if (r.status.ok()) lat.push_back(r.total_ms);
          }
          QuantPoint point;
          point.shards = shards;
          point.cache = cache;
          point.quantized = quantize;
          point.rps = lat.size() / elapsed_s;
          point.p50 = Percentile(lat, 0.5);
          point.p95 = Percentile(lat, 0.95);
          quant_sweep.push_back(point);
          service->Stop();
          std::printf("%-8d %-7s %-9s %12.1f %10.2f %10.2f\n", shards,
                      cache ? "on" : "off", quantize ? "int8" : "fp32",
                      point.rps, point.p50, point.p95);
          csv.AddRow({"quant_sweep",
                      StrFormat("shards=%d cache=%s weights=%s", shards,
                                cache ? "on" : "off",
                                quantize ? "int8" : "fp32"),
                      std::to_string(kQuantRequests),
                      std::to_string(lat.size()), "0", "0",
                      StrFormat("%.1f", point.rps),
                      StrFormat("%.3f", point.p50),
                      StrFormat("%.3f", point.p95)});
        }
      }
    }
  }
  double quant_speedup_uncached = 0.0;
  for (size_t i = 0; i + 1 < quant_sweep.size(); i += 2) {
    // Points come in fp32/int8 neighbor pairs per (shards, cache) cell.
    if (quant_sweep[i].shards == 1 && !quant_sweep[i].cache) {
      quant_speedup_uncached = quant_sweep[i + 1].rps / quant_sweep[i].rps;
    }
  }
  std::printf("1-shard uncached int8 vs fp32: %.2fx\n", quant_speedup_uncached);

  if (!env.json_path.empty()) {
    std::string json = "{\n  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      json += StrFormat(
          "    {\"shards\": %d, \"cache\": %s, \"requests\": %d, "
          "\"rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
          "\"cache_hits\": %lld, \"cache_hit_ratio\": %.3f}%s\n",
          p.shards, p.cache ? "true" : "false", kSweepRequests, p.rps, p.p50, p.p95,
          static_cast<long long>(p.hits), p.hit_ratio,
          i + 1 < sweep.size() ? "," : "");
    }
    json += StrFormat(
        "  ],\n  \"speedup_4shard_cached_vs_1shard_uncached\": %.2f,\n",
        speedup_4shard);
    json += "  \"quant_sweep\": [\n";
    for (size_t i = 0; i < quant_sweep.size(); ++i) {
      const QuantPoint& p = quant_sweep[i];
      json += StrFormat(
          "    {\"shards\": %d, \"cache\": %s, \"quantized\": %s, "
          "\"rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f}%s\n",
          p.shards, p.cache ? "true" : "false",
          p.quantized ? "true" : "false", p.rps, p.p50, p.p95,
          i + 1 < quant_sweep.size() ? "," : "");
    }
    json += StrFormat(
        "  ],\n  \"quant_speedup_1shard_uncached\": %.2f,\n",
        quant_speedup_uncached);
    json += "  \"adaptive\": {\"cap_trajectory\": [";
    for (size_t i = 0; i < cap_trajectory.size(); ++i) {
      json += StrFormat("%s%lld", i ? ", " : "",
                        static_cast<long long>(cap_trajectory[i]));
    }
    json += StrFormat(
        "], \"grows\": %lld, \"shrinks\": %lld, \"converged\": %s}\n}\n",
        static_cast<long long>(adaptive_grows),
        static_cast<long long>(adaptive_shrinks),
        adaptive_converged ? "true" : "false");
    std::string error;
    if (obs::WriteTextFile(env.json_path, json, &error)) {
      std::printf("[json written to %s]\n", env.json_path.c_str());
    } else {
      std::fprintf(stderr, "json write failed: %s\n", error.c_str());
    }
  }

  csv.WriteIfRequested(env.csv_path);

  // Exit-time metrics dump. Counter values are reproducible for a fixed
  // seed/scale; histogram values reflect measured wall time (see
  // docs/OBSERVABILITY.md for the format and a worked reading).
  std::printf("\n== metrics (ScrapeText) ==\n%s",
              obs::MetricsRegistry::Default().ScrapeText().c_str());
  if (!env.metrics_jsonl_path.empty()) {
    std::string error;
    if (obs::WriteTextFile(env.metrics_jsonl_path,
                           obs::MetricsRegistry::Default().ToJsonLines(),
                           &error)) {
      std::printf("[metrics written to %s]\n", env.metrics_jsonl_path.c_str());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n", error.c_str());
    }
  }
  DumpTraceIfRequested(env);
  return 0;
}
