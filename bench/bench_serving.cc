// Serving bench: throughput, latency percentiles, and overload behavior of
// the fault-tolerant MatchService.
//
// Three experiments:
//   1. closed-loop throughput/latency vs max_batch (batching is the
//      single-core throughput lever)
//   2. open-loop overload: offered load above capacity must be shed by the
//      bounded queue, never queued unboundedly (goodput stays flat, shed
//      rate absorbs the excess)
//   3. degraded-path cost: primary LM vs RNN fallback vs heuristic
//
// At exit the process-wide metrics registry is dumped (Prometheus text
// format); --metrics_jsonl=path additionally writes the JSON-lines export
// (see docs/OBSERVABILITY.md).
//
//   ./bench_serving [--scale=smoke|small|full] [--csv=serving.csv]
//                   [--metrics_jsonl=serving_metrics.jsonl]

#include <algorithm>
#include <future>
#include <memory>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "util/fault.h"
#include "serve/match_service.h"

using namespace dader;

namespace {

core::DaderConfig ServeModelConfig() {
  core::DaderConfig c;
  c.vocab_size = 512;
  c.max_len = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.ffn_dim = 32;
  c.rnn_hidden = 8;
  c.dropout = 0.0f;
  return c;
}

core::DaModel MakeModel(core::ExtractorKind kind, uint64_t seed) {
  core::DaModel model;
  model.extractor = core::MakeExtractor(kind, ServeModelConfig(), seed);
  model.matcher =
      std::make_unique<core::Matcher>(model.extractor->feature_dim(), seed + 1);
  return model;
}

std::vector<serve::MatchRequest> MakeRequests(int n, Rng* rng) {
  std::vector<serve::MatchRequest> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int id = static_cast<int>(rng->NextInt(0, 1000));
    serve::MatchRequest request;
    request.a = data::Record({"product item " + std::to_string(id), "10"});
    request.b = data::Record(
        {"product item " + std::to_string(rng->NextDouble() < 0.5 ? id : id + 1),
         "10"});
    requests.push_back(std::move(request));
  }
  return requests;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "serving.csv");
  const int kRequests = env.scale.name == "smoke" ? 64
                        : env.scale.name == "small" ? 256
                                                    : 1024;
  Rng rng(env.seed);
  bench::CsvReport csv({"experiment", "setting", "requests", "ok", "shed",
                        "degraded", "throughput_rps", "p50_ms", "p95_ms"});

  std::printf("== 1. closed-loop throughput vs max_batch (%d requests) ==\n",
              kRequests);
  std::printf("%-10s %12s %10s %10s\n", "max_batch", "rps", "p50 ms", "p95 ms");
  for (int64_t max_batch : {1, 4, 16}) {
    serve::ServeConfig config;
    config.queue_capacity = static_cast<size_t>(kRequests);
    config.max_batch = max_batch;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.seed = env.seed;
    data::Schema schema({"title", "price"});
    serve::MatchService service(config, schema, schema,
                                MakeModel(core::ExtractorKind::kLM, env.seed));
    Stopwatch timer;
    const std::vector<serve::MatchResponse> responses =
        service.MatchBatch(MakeRequests(kRequests, &rng));
    const double elapsed_s = timer.ElapsedSeconds();
    std::vector<double> lat;
    for (const auto& r : responses) {
      if (r.status.ok()) lat.push_back(r.total_ms);
    }
    const double rps = lat.size() / elapsed_s;
    const double p50 = Percentile(lat, 0.5), p95 = Percentile(lat, 0.95);
    std::printf("%-10lld %12.1f %10.2f %10.2f\n",
                static_cast<long long>(max_batch), rps, p50, p95);
    csv.AddRow({"throughput", StrFormat("max_batch=%lld", (long long)max_batch),
                std::to_string(kRequests), std::to_string(lat.size()), "0", "0",
                StrFormat("%.1f", rps), StrFormat("%.3f", p50),
                StrFormat("%.3f", p95)});
  }

  std::printf("\n== 2. open-loop overload: bounded queue sheds excess ==\n");
  std::printf("%-12s %8s %8s %12s\n", "burst", "ok", "shed", "goodput rps");
  for (int burst : {kRequests / 2, kRequests, kRequests * 4}) {
    serve::ServeConfig config;
    config.queue_capacity = 16;
    config.max_batch = 8;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.seed = env.seed;
    data::Schema schema({"title", "price"});
    serve::MatchService service(config, schema, schema,
                                MakeModel(core::ExtractorKind::kLM, env.seed));
    std::vector<serve::MatchRequest> requests = MakeRequests(burst, &rng);
    Stopwatch timer;
    std::vector<std::future<serve::MatchResponse>> futures;
    futures.reserve(requests.size());
    for (auto& request : requests) {
      futures.push_back(service.SubmitAsync(std::move(request)));
    }
    int ok = 0, shed = 0;
    std::vector<double> lat;
    for (auto& f : futures) {
      const serve::MatchResponse r = f.get();
      if (r.status.ok()) {
        ++ok;
        lat.push_back(r.total_ms);
      } else if (r.status.code() == StatusCode::kResourceExhausted) {
        ++shed;
      }
    }
    const double elapsed_s = timer.ElapsedSeconds();
    const double rps = ok / elapsed_s;
    std::printf("%-12d %8d %8d %12.1f\n", burst, ok, shed, rps);
    csv.AddRow({"overload", StrFormat("burst=%d", burst),
                std::to_string(burst), std::to_string(ok),
                std::to_string(shed), "0", StrFormat("%.1f", rps),
                StrFormat("%.3f", Percentile(lat, 0.5)),
                StrFormat("%.3f", Percentile(lat, 0.95))});
  }

  std::printf("\n== 3. degraded-path cost (primary vs fallback paths) ==\n");
  std::printf("%-22s %12s %10s\n", "path", "rps", "p50 ms");
  struct PathCase {
    const char* name;
    bool arm_fault;       // force every primary attempt to fail
    bool with_fallback;   // RNN fallback model vs heuristic
  };
  for (const PathCase& pc :
       {PathCase{"primary (LM)", false, true},
        PathCase{"fallback (RNN)", true, true},
        PathCase{"heuristic", true, false}}) {
    FaultInjector fault;
    serve::ServeConfig config;
    config.queue_capacity = static_cast<size_t>(kRequests);
    config.max_batch = 8;
    config.batch_wait_ms = 0.2;
    config.default_deadline_ms = 60000.0;
    config.retry.max_attempts = 1;
    config.breaker.failure_threshold = 1;  // trip immediately
    config.breaker.cooldown_ms = 60000.0;  // stay degraded for the whole run
    config.seed = env.seed;
    config.fault = &fault;
    if (pc.arm_fault) {
      FaultSpec spec;
      spec.kind = FaultKind::kExtractorFault;
      spec.probability = 1.0;
      spec.max_hits = 1u << 20;
      fault.Arm(spec);
    }
    data::Schema schema({"title", "price"});
    serve::MatchService service(
        config, schema, schema, MakeModel(core::ExtractorKind::kLM, env.seed),
        pc.with_fallback
            ? std::make_unique<core::DaModel>(
                  MakeModel(core::ExtractorKind::kRNN, env.seed + 100))
            : nullptr);
    Stopwatch timer;
    const std::vector<serve::MatchResponse> responses =
        service.MatchBatch(MakeRequests(kRequests, &rng));
    const double elapsed_s = timer.ElapsedSeconds();
    std::vector<double> lat;
    int degraded = 0;
    for (const auto& r : responses) {
      if (!r.status.ok()) continue;
      lat.push_back(r.total_ms);
      degraded += r.degraded ? 1 : 0;
    }
    const double rps = lat.size() / elapsed_s;
    const double p50 = Percentile(lat, 0.5);
    std::printf("%-22s %12.1f %10.2f  (degraded %d/%zu)\n", pc.name, rps, p50,
                degraded, lat.size());
    csv.AddRow({"degraded_path", pc.name, std::to_string(kRequests),
                std::to_string(lat.size()), "0", std::to_string(degraded),
                StrFormat("%.1f", rps), StrFormat("%.3f", p50),
                StrFormat("%.3f", Percentile(lat, 0.95))});
  }

  csv.WriteIfRequested(env.csv_path);

  // Exit-time metrics dump. Counter values are reproducible for a fixed
  // seed/scale; histogram values reflect measured wall time (see
  // docs/OBSERVABILITY.md for the format and a worked reading).
  std::printf("\n== metrics (ScrapeText) ==\n%s",
              obs::MetricsRegistry::Default().ScrapeText().c_str());
  if (!env.metrics_jsonl_path.empty()) {
    std::string error;
    if (obs::WriteTextFile(env.metrics_jsonl_path,
                           obs::MetricsRegistry::Default().ToJsonLines(),
                           &error)) {
      std::printf("[metrics written to %s]\n", env.metrics_jsonl_path.c_str());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n", error.c_str());
    }
  }
  DumpTraceIfRequested(env);
  return 0;
}
