// GEMM kernel benchmark: naive triple-loop vs. the runtime-dispatched
// kernel layer across the matrix shapes the model actually produces, plus
// the canonical 256^3 square and a thread-scaling sweep. Emits
// BENCH_gemm.json (schema: docs/BENCHMARKS.md) so regressions are visible
// in CI artifacts.
//
//   ./bench_gemm [--json=BENCH_gemm.json] [--reps=7]
//
// Three timings per shape:
//   * naive_ms     — the seed repo's scalar loops (gemm::NaiveGemm*), the
//                    fixed baseline every PR is compared against.
//   * blocked_ms   — GemmForcePath::kBlocked: the packed cache-blocked
//                    path only, i.e. the pre-dispatch behavior (what PR-8
//                    shipped, now running the active tier's microkernel).
//   * dispatch_ms  — the shipped auto path: the per-ISA direct/blocked
//                    break-even decides, batched shapes take the
//                    batch-strided small-GEMM path. This is what ops.cc
//                    actually gets, so "speedup" is quoted against it.
// blocked_ms vs dispatch_ms is the before/after for the batch-strided
// small-GEMM work: shapes where the direct kernels win show dispatch
// beating forced-blocked (attn_ctx, matcher_head); shapes past the
// break-even show the two within noise of each other.
//
// Per shape the benchmark also records which path the dispatcher picked
// (read back from the tensor.gemm.kernel.calls{path=...} counters — the
// bench is also a smoke test that the obs wiring fires) and the active ISA
// tier, so a JSON diff between machines explains itself.
//
// Shape provenance (core/config.h smoke preset and config.cc full preset):
// hidden_dim 32..64, ffn_dim 64..128, max_len 32..64, 4 heads, batch 16..32,
// rnn_hidden 24..48. The entries below use the full-scale numbers, where the
// kernels spend the most time.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tensor/cpu_dispatch.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dader {
namespace {

using Clock = std::chrono::steady_clock;

enum class Variant { kNN, kNT, kTN };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNN: return "NN";
    case Variant::kNT: return "NT";
    case Variant::kTN: return "TN";
  }
  return "?";
}

struct ShapeCase {
  const char* name;   // which model layer this shape comes from
  Variant variant;
  int64_t bsz, m, n, k;
};

// Forward projections, FFN, attention (batched over batch*heads), GRU gate
// stack, matcher head, and the linear backward shapes (NT/TN). square_256
// is the canonical size the perf smoke test and docs quote.
const ShapeCase kCases[] = {
    {"linear_qkv", Variant::kNN, 1, 2048, 64, 64},
    {"linear_qkv_dA", Variant::kNT, 1, 2048, 64, 64},
    {"linear_qkv_dB", Variant::kTN, 1, 64, 64, 2048},
    {"ffn_up", Variant::kNN, 1, 2048, 128, 64},
    {"ffn_down", Variant::kNN, 1, 2048, 64, 128},
    {"attn_scores", Variant::kNT, 128, 64, 64, 16},
    {"attn_ctx", Variant::kNN, 128, 64, 16, 64},
    {"gru_step", Variant::kNN, 1, 32, 144, 112},
    {"matcher_head", Variant::kNN, 1, 32, 2, 64},
    {"square_256", Variant::kNN, 1, 256, 256, 256},
};

std::vector<float> RandomVec(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const std::chrono::duration<double, std::milli> ms = Clock::now() - t0;
    if (ms.count() < best) best = ms.count();
  }
  return best;
}

void RunNaive(const ShapeCase& s, const float* a, const float* b, float* c) {
  for (int64_t i = 0; i < s.bsz; ++i) {
    const float* ai = a + i * s.m * s.k;
    const float* bi = b + i * s.k * s.n;
    float* ci = c + i * s.m * s.n;
    switch (s.variant) {
      case Variant::kNN: gemm::NaiveGemmNN(s.m, s.n, s.k, ai, bi, ci); break;
      case Variant::kNT: gemm::NaiveGemmNT(s.m, s.n, s.k, ai, bi, ci); break;
      case Variant::kTN: gemm::NaiveGemmTN(s.m, s.n, s.k, ai, bi, ci); break;
    }
  }
}

void RunDispatched(const ShapeCase& s, const float* a, const float* b,
                   float* c, const gemm::GemmOptions& options) {
  switch (s.variant) {
    case Variant::kNN:
      gemm::BatchGemmNN(s.bsz, s.m, s.n, s.k, a, b, c, options);
      break;
    case Variant::kNT:
      gemm::BatchGemmNT(s.bsz, s.m, s.n, s.k, a, b, c, options);
      break;
    case Variant::kTN:
      gemm::BatchGemmTN(s.bsz, s.m, s.n, s.k, a, b, c, options);
      break;
  }
}

double Gflops(const ShapeCase& s, double ms) {
  const double flops =
      2.0 * static_cast<double>(s.bsz) * s.m * s.n * s.k;
  return flops / (ms * 1e6);
}

// Which dispatch path did the auto tier choice take for this shape? Read
// back from the obs counters the kernel layer increments — doubles as a
// smoke test that the tensor.gemm.kernel.* wiring fires.
const char* ObservedPath(const ShapeCase& s, const float* a, const float* b,
                         float* c) {
  auto& reg = obs::MetricsRegistry::Default();
  obs::Counter* paths[3] = {
      reg.GetCounter(obs::LabeledName("tensor.gemm.kernel.calls", "path",
                                      "direct")),
      reg.GetCounter(obs::LabeledName("tensor.gemm.kernel.calls", "path",
                                      "blocked")),
      reg.GetCounter(obs::LabeledName("tensor.gemm.kernel.calls", "path",
                                      "blocked_mt")),
  };
  const char* names[3] = {"direct", "blocked", "blocked_mt"};
  int64_t before[3];
  for (int i = 0; i < 3; ++i) before[i] = paths[i]->value();
  RunDispatched(s, a, b, c, {});
  for (int i = 0; i < 3; ++i) {
    if (paths[i]->value() > before[i]) return names[i];
  }
  return "unknown";
}

}  // namespace

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.DefineString("json", "BENCH_gemm.json", "JSON output path (empty = none)");
  flags.DefineInt("reps", 7, "timed repetitions per measurement (best-of)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), flags.Help().c_str());
    return 1;
  }
  const std::string json_path = flags.GetString("json");
  const int reps = static_cast<int>(flags.GetInt("reps"));

  const unsigned hw = std::thread::hardware_concurrency();
  const char* isa = cpu::IsaName(cpu::ActiveIsa());
  std::printf("isa=%s hardware_concurrency=%u\n\n", isa, hw);
  std::string json = StrFormat(
      "{\n  \"host\": {\"isa\": \"%s\", \"hardware_concurrency\": %u},\n"
      "  \"shapes\": [\n",
      isa, hw);

  std::printf("%-15s %-3s %5s %5s %5s %5s %-10s | %9s %9s %9s %8s %7s %7s\n",
              "shape", "var", "bsz", "m", "n", "k", "path", "naive_ms",
              "blk_ms", "disp_ms", "disp_GF", "speedup", "vs_blk");

  bool first = true;
  for (const ShapeCase& s : kCases) {
    const auto a = RandomVec(static_cast<size_t>(s.bsz * s.m * s.k), 1);
    const auto b = RandomVec(static_cast<size_t>(s.bsz * s.k * s.n), 2);
    std::vector<float> c(static_cast<size_t>(s.bsz * s.m * s.n), 0.0f);

    const char* path = ObservedPath(s, a.data(), b.data(), c.data());
    gemm::GemmOptions forced_blocked;
    forced_blocked.force_path = gemm::GemmForcePath::kBlocked;

    // Interleave the three paths per rep so ambient scheduler drift in a
    // shared container lands on all of them alike.
    double naive_ms = 1e300, blocked_ms = 1e300, dispatch_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      naive_ms = std::min(naive_ms, BestOfMs(1, [&] {
        RunNaive(s, a.data(), b.data(), c.data());
      }));
      blocked_ms = std::min(blocked_ms, BestOfMs(1, [&] {
        RunDispatched(s, a.data(), b.data(), c.data(), forced_blocked);
      }));
      dispatch_ms = std::min(dispatch_ms, BestOfMs(1, [&] {
        RunDispatched(s, a.data(), b.data(), c.data(), {});
      }));
    }
    const double speedup = naive_ms / dispatch_ms;
    const double vs_blocked = blocked_ms / dispatch_ms;

    std::printf(
        "%-15s %-3s %5lld %5lld %5lld %5lld %-10s | %9.4f %9.4f %9.4f "
        "%8.1f %6.2fx %6.2fx\n",
        s.name, VariantName(s.variant), static_cast<long long>(s.bsz),
        static_cast<long long>(s.m), static_cast<long long>(s.n),
        static_cast<long long>(s.k), path, naive_ms, blocked_ms, dispatch_ms,
        Gflops(s, dispatch_ms), speedup, vs_blocked);

    json += StrFormat(
        "%s    {\"name\": \"%s\", \"variant\": \"%s\", \"bsz\": %lld, "
        "\"m\": %lld, \"n\": %lld, \"k\": %lld, \"path\": \"%s\", "
        "\"naive_ms\": %.5f, \"blocked_ms\": %.5f, \"dispatch_ms\": %.5f, "
        "\"naive_gflops\": %.2f, \"dispatch_gflops\": %.2f, "
        "\"speedup\": %.3f, \"vs_blocked\": %.3f}",
        first ? "" : ",\n", s.name, VariantName(s.variant),
        static_cast<long long>(s.bsz), static_cast<long long>(s.m),
        static_cast<long long>(s.n), static_cast<long long>(s.k), path,
        naive_ms, blocked_ms, dispatch_ms, Gflops(s, naive_ms),
        Gflops(s, dispatch_ms), speedup, vs_blocked);
    first = false;
  }
  // --- int8 quantized GEMM vs the fp32 dispatch on serving shapes -------
  // The shapes the quantized serving path actually runs (8 pairs x 32
  // tokens through the hidden-64 serving model; see bench_serving). The
  // expected ratio is tier-dependent: vpdpbusd (VNNI) quadruples the MAC
  // density over fp32 FMA, while the maddubs tiers' int16 pair step lands
  // them near parity — the recorded isa/vnni fields say which regime a
  // JSON came from.
  json += "\n  ],\n";
  {
    const bool vnni = cpu::HostSupportsVnni();
    const cpu::QGemmKernels& qk = cpu::ActiveQKernels();
    std::printf("\nint8 qgemm (isa=%s vnni=%s)\n", cpu::IsaName(qk.isa),
                vnni ? "yes" : "no");
    json += StrFormat(
        "  \"qgemm\": {\"isa\": \"%s\", \"vnni\": %s, \"shapes\": [\n",
        cpu::IsaName(qk.isa), vnni ? "true" : "false");
    struct QShape {
      const char* name;
      int64_t m, n, k;
    };
    const QShape qshapes[] = {
        {"serve_qkv", 256, 64, 64},
        {"serve_ffn_up", 256, 128, 64},
        {"serve_ffn_down", 256, 64, 128},
        {"square_256", 256, 256, 256},
    };
    std::printf("%-15s %9s %9s %8s\n", "shape", "fp32_ms", "int8_ms",
                "speedup");
    first = true;
    for (const QShape& s : qshapes) {
      const auto fa = RandomVec(static_cast<size_t>(s.m * s.k), 5);
      const auto fb = RandomVec(static_cast<size_t>(s.k * s.n), 6);
      std::vector<float> fc(static_cast<size_t>(s.m * s.n), 0.0f);

      const int64_t lda = qgemm::PaddedLda(s.k);
      std::mt19937 qrng(7);
      std::uniform_int_distribution<int> adist(0, 255), bdist(-127, 127);
      std::vector<uint8_t> qa(static_cast<size_t>(s.m * lda), 0);
      std::vector<int8_t> qb(static_cast<size_t>(s.k * s.n));
      std::vector<int32_t> qc(static_cast<size_t>(s.m * s.n));
      for (int64_t i = 0; i < s.m; ++i) {
        for (int64_t p = 0; p < s.k; ++p) {
          qa[i * lda + p] = static_cast<uint8_t>(adist(qrng));
        }
      }
      for (auto& x : qb) x = static_cast<int8_t>(bdist(qrng));
      const int32_t bound = qgemm::MaddubsPairBound(qb.data(), s.k, s.n);

      double fp32_ms = 1e300, int8_ms = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        fp32_ms = std::min(fp32_ms, BestOfMs(1, [&] {
          gemm::GemmNN(s.m, s.n, s.k, fa.data(), fb.data(), fc.data());
        }));
        int8_ms = std::min(int8_ms, BestOfMs(1, [&] {
          qgemm::QGemmNN(s.m, s.n, s.k, qa.data(), lda, qb.data(), qc.data(),
                         255, bound);
        }));
      }
      std::printf("%-15s %9.4f %9.4f %7.2fx\n", s.name, fp32_ms, int8_ms,
                  fp32_ms / int8_ms);
      json += StrFormat(
          "%s    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
          "\"fp32_ms\": %.5f, \"int8_ms\": %.5f, \"speedup\": %.3f}",
          first ? "" : ",\n", s.name, static_cast<long long>(s.m),
          static_cast<long long>(s.n), static_cast<long long>(s.k), fp32_ms,
          int8_ms, fp32_ms / int8_ms);
      first = false;
    }
    json += "\n  ]},\n";
  }

  // On a single-core host every pool width resolves to the serial plan, so
  // the sweep cannot say anything about scaling — record why instead of
  // leaving readers to wonder about four identical rows.
  if (hw <= 1) {
    json +=
        "  \"threads_256_skip_reason\": \"single-core host "
        "(hardware_concurrency=1): auto dispatch resolves every pool width "
        "to the serial plan, so the sweep measures overhead, not "
        "scaling\",\n";
    std::printf(
        "\n[threads_256: single-core host, sweep records the serial plan "
        "at every width]\n");
  }
  json += "  \"threads_256\": [\n";

  // Thread-scaling sweep at 256^3 on explicit pools (the default path uses
  // the global pool; this isolates pool size as the only variable). The
  // sweep measures the SHIPPED dispatch — auto thresholds decide whether a
  // pool fans out — because forcing the parallel path is exactly what
  // produced the 2t/4t < 1.0x regression this file once recorded: on a
  // machine without spare cores the extra tasks only add overhead. With
  // auto dispatch the floor is 1.0x by construction (worst case the plan
  // is identical to 1-thread). On hosts where hardware_concurrency caps
  // below a sweep width the wider pools resolve to the same serial plan —
  // the recorded hardware_concurrency says whether scaling was possible.
  const ShapeCase sq = kCases[sizeof(kCases) / sizeof(kCases[0]) - 1];
  const auto a = RandomVec(static_cast<size_t>(sq.m * sq.k), 3);
  const auto b = RandomVec(static_cast<size_t>(sq.k * sq.n), 4);
  std::vector<float> c(static_cast<size_t>(sq.m * sq.n), 0.0f);
  // Reps are interleaved across the pool widths (1t, 2t, 4t, 8t, 1t, ...)
  // rather than measured in back-to-back blocks: in a shared container
  // ambient scheduler drift between blocks is larger than the effect
  // being measured, and interleaving lands it on every width alike.
  const std::vector<size_t> widths = {1u, 2u, 4u, 8u};
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (size_t threads : widths) {
    pools.push_back(std::make_unique<ThreadPool>(threads));
  }
  std::vector<double> best(widths.size(), 1e300);
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t w = 0; w < widths.size(); ++w) {
      gemm::GemmOptions options;
      options.pool = pools[w].get();
      best[w] = std::min(best[w], BestOfMs(1, [&] {
        gemm::GemmNN(sq.m, sq.n, sq.k, a.data(), b.data(), c.data(), options);
      }));
    }
  }
  const double ms_1t = best[0];
  std::printf("\n%-10s %10s %8s %10s\n", "threads", "ms", "GF/s", "vs 1t");
  first = true;
  for (size_t w = 0; w < widths.size(); ++w) {
    const double ms = best[w];
    std::printf("%-10zu %10.4f %8.1f %9.2fx\n", widths[w], ms, Gflops(sq, ms),
                ms_1t / ms);
    json += StrFormat(
        "%s    {\"threads\": %zu, \"ms\": %.5f, \"gflops\": %.2f, "
        "\"speedup_vs_1t\": %.3f}",
        first ? "" : ",\n", widths[w], ms, Gflops(sq, ms), ms_1t / ms);
    first = false;
  }
  json += "\n  ]\n}\n";

  if (!json_path.empty()) {
    std::string error;
    if (!obs::WriteTextFile(json_path, json, &error)) {
      std::fprintf(stderr, "json write failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("[json written to %s]\n", json_path.c_str());
  }
  return 0;
}

}  // namespace dader

int main(int argc, char** argv) { return dader::Main(argc, argv); }
