// End-to-end dedup bench: the first true raw-records-in, clusters-out
// workload (ROADMAP "blocking + candidate generation").
//
// Three experiments:
//   1. blocking at scale — a >= 100k-record synthetic domain through the
//      inverted index, MinHash/LSH, and the combined deduplicated stream:
//      records/sec, pair-reduction ratio vs the cross product, and
//      candidate recall vs generator ground truth (the recall budget that
//      bounds everything downstream)
//   2. recall vs candidate budget — sweeping the per-probe candidate cap:
//      the curve that justifies the default budget
//   3. end-to-end dedup — a DA-adapted matcher (MMD, labeled source ->
//      unlabeled target, no target labels) behind the blocking stage:
//      candidates stream through a bounded window into a 2-shard
//      ShardedMatchService, accepted matches union-find into entity
//      clusters; records/sec and end-to-end F1 vs gold
//
// --json=BENCH_dedup.json writes the structured results (the checked-in
// BENCH_dedup.json is this file at the default smoke scale). At exit the
// process-wide metrics registry (block.* / serve.* series) is dumped in
// Prometheus text format; see docs/BENCHMARKS.md for the JSON schema.
//
//   ./bench_dedup [--scale=smoke|small|full] [--csv=dedup.csv]
//                 [--json=BENCH_dedup.json] [--metrics_jsonl=PATH]

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "block/pipeline.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "serve/sharded_service.h"
#include "util/thread_pool.h"

using namespace dader;

namespace {

struct BlockRun {
  std::string generator;
  int64_t candidates = 0;
  int64_t duplicates = 0;
  double recall = 0.0;
  double reduction = 0.0;
  double seconds = 0.0;
  double records_per_sec = 0.0;
};

BlockRun RunBlocking(const std::string& label,
                     const data::GeneratedTables& tables,
                     const block::CandidateGenConfig& config) {
  const double records =
      static_cast<double>(tables.a.size() + tables.b.size());
  const double cross = static_cast<double>(tables.a.size()) *
                       static_cast<double>(tables.b.size());
  Stopwatch timer;
  block::CandidateStats stats;
  const auto candidates =
      block::CollectCandidates(tables.a, tables.b, config, &stats);
  BlockRun run;
  run.generator = label;
  run.seconds = timer.ElapsedSeconds();
  run.candidates = stats.emitted;
  run.duplicates = stats.duplicates;
  run.recall = block::CandidateRecall(candidates, tables.gold_matches);
  run.reduction = stats.emitted > 0
                      ? cross / static_cast<double>(stats.emitted)
                      : cross;
  run.records_per_sec = records / run.seconds;
  std::printf("%-10s %12lld %10lld %8.4f %12.0fx %10.2fs %12.0f\n",
              label.c_str(), static_cast<long long>(run.candidates),
              static_cast<long long>(run.duplicates), run.recall,
              run.reduction, run.seconds, run.records_per_sec);
  return run;
}

core::DaModel TrainedMatcher(const std::string& source,
                             const std::string& target,
                             const core::ExperimentScale& scale,
                             uint64_t seed, double* train_seconds,
                             double* holdout_f1) {
  Stopwatch timer;
  auto task = core::BuildDaTask(source, target, scale).ValueOrDie();
  auto model =
      core::BuildModel(core::ExtractorKind::kLM, scale, /*pretrained=*/true,
                       seed)
          .ValueOrDie();
  auto outcome =
      core::RunSingleDa(core::AlignMethod::kMMD, scale, task, &model)
          .ValueOrDie();
  *train_seconds = timer.ElapsedSeconds();
  *holdout_f1 = outcome.test_f1;
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "dedup.csv");

  // Entity counts per stage. The blocking-at-scale stage must cross the
  // 100k-record line even at smoke scale — that is the workload the
  // subsystem exists for; only the matcher-bound stages shrink with scale.
  const bool smoke = env.scale.name == "smoke";
  const bool small = env.scale.name == "small";
  const int64_t scale_entities = smoke ? 60000 : small ? 120000 : 400000;
  const int64_t budget_entities = smoke ? 8000 : small ? 16000 : 40000;
  const int64_t e2e_entities = smoke ? 1000 : small ? 2500 : 6000;
  // WA is the headline blocking corpus: like its real counterpart it
  // carries a model-number key, the evidence blocking systems live on.
  // AB is the stress corpus — the same products behind Abt-Buy-style
  // noise (30% word drops, no reliable key), reported alongside as the
  // hard-domain datapoint.
  const std::string dataset = "WA";
  const std::string hard_dataset = "AB";

  bench::CsvReport csv({"experiment", "setting", "records", "candidates",
                        "recall", "reduction", "records_per_sec", "f1"});

  // ------------------------------------------------------------------
  std::printf("== 1. blocking at scale: %s x %lld entities ==\n",
              dataset.c_str(), static_cast<long long>(scale_entities));
  Stopwatch gen_timer;
  auto tables =
      data::GenerateTables(dataset, scale_entities, env.seed).ValueOrDie();
  const size_t records = tables.a.size() + tables.b.size();
  std::printf(
      "generated %zu records (A=%zu, B=%zu, %zu gold matches) in %.1fs\n",
      records, tables.a.size(), tables.b.size(), tables.gold_matches.size(),
      gen_timer.ElapsedSeconds());
  std::printf("%-10s %12s %10s %8s %12s %10s %12s\n", "generator",
              "candidates", "dupes", "recall", "reduction", "time",
              "records/s");

  block::CandidateGenConfig index_only;
  index_only.use_lsh = false;
  block::CandidateGenConfig lsh_only;
  lsh_only.use_index = false;
  lsh_only.sign_threads = 4;
  lsh_only.minhash.max_bucket_size = 256;
  block::CandidateGenConfig combined;
  combined.sign_threads = 4;
  combined.minhash.max_bucket_size = 256;

  const BlockRun index_run = RunBlocking("index", tables, index_only);
  const BlockRun lsh_run = RunBlocking("lsh", tables, lsh_only);
  const BlockRun combined_run = RunBlocking("combined", tables, combined);
  for (const BlockRun* r : {&index_run, &lsh_run, &combined_run}) {
    csv.AddRow({"scale", r->generator, std::to_string(records),
                std::to_string(r->candidates), StrFormat("%.4f", r->recall),
                StrFormat("%.0f", r->reduction),
                StrFormat("%.0f", r->records_per_sec), ""});
  }

  std::printf("-- hard domain: %s (noisy views, no reliable key) --\n",
              hard_dataset.c_str());
  auto hard_tables =
      data::GenerateTables(hard_dataset, scale_entities, env.seed)
          .ValueOrDie();
  const size_t hard_records = hard_tables.a.size() + hard_tables.b.size();
  const BlockRun hard_run = RunBlocking("combined", hard_tables, combined);
  csv.AddRow({"scale_hard", hard_run.generator, std::to_string(hard_records),
              std::to_string(hard_run.candidates),
              StrFormat("%.4f", hard_run.recall),
              StrFormat("%.0f", hard_run.reduction),
              StrFormat("%.0f", hard_run.records_per_sec), ""});

  // ------------------------------------------------------------------
  std::printf("\n== 2. recall vs candidate budget (%lld entities) ==\n",
              static_cast<long long>(budget_entities));
  auto budget_tables =
      data::GenerateTables(dataset, budget_entities, env.seed + 1)
          .ValueOrDie();
  const size_t budget_records =
      budget_tables.a.size() + budget_tables.b.size();
  std::printf("%-10s %12s %8s %12s\n", "budget", "candidates", "recall",
              "reduction");
  struct BudgetPoint {
    size_t budget;
    BlockRun run;
  };
  std::vector<BudgetPoint> budget_curve;
  for (size_t budget : {4u, 8u, 16u, 32u, 64u}) {
    block::CandidateGenConfig config;
    config.index.max_candidates_per_probe = budget;
    config.sign_threads = 4;
    Stopwatch timer;
    block::CandidateStats stats;
    const auto candidates = block::CollectCandidates(
        budget_tables.a, budget_tables.b, config, &stats);
    BlockRun run;
    run.generator = StrFormat("budget=%zu", budget);
    run.candidates = stats.emitted;
    run.recall =
        block::CandidateRecall(candidates, budget_tables.gold_matches);
    run.reduction = static_cast<double>(budget_tables.a.size()) *
                    static_cast<double>(budget_tables.b.size()) /
                    static_cast<double>(std::max<int64_t>(stats.emitted, 1));
    run.seconds = timer.ElapsedSeconds();
    run.records_per_sec = static_cast<double>(budget_records) / run.seconds;
    budget_curve.push_back({budget, run});
    std::printf("%-10zu %12lld %8.4f %12.0fx\n", budget,
                static_cast<long long>(run.candidates), run.recall,
                run.reduction);
    csv.AddRow({"budget", run.generator, std::to_string(budget_records),
                std::to_string(run.candidates), StrFormat("%.4f", run.recall),
                StrFormat("%.0f", run.reduction),
                StrFormat("%.0f", run.records_per_sec), ""});
  }

  // ------------------------------------------------------------------
  // Adaptation direction: labeled source = the hard domain, unlabeled
  // target = the corpus being deduped (no target labels anywhere — the
  // paper's scenario).
  std::printf("\n== 3. end-to-end dedup: %s -> %s (MMD), %lld entities ==\n",
              hard_dataset.c_str(), dataset.c_str(),
              static_cast<long long>(e2e_entities));
  auto e2e_tables =
      data::GenerateTables(dataset, e2e_entities, env.seed + 2).ValueOrDie();
  const size_t e2e_records = e2e_tables.a.size() + e2e_tables.b.size();
  double train_seconds = 0.0;
  double holdout_f1 = 0.0;
  core::DaModel model = TrainedMatcher(hard_dataset, dataset, env.scale,
                                       env.seed, &train_seconds, &holdout_f1);
  std::printf("adapted matcher in %.1fs (held-out pair F1 %.1f)\n",
              train_seconds, holdout_f1 * 100);

  serve::ShardedServeConfig serve_config;
  serve_config.num_shards = 2;
  serve_config.shard.queue_capacity = 256;
  serve_config.shard.max_batch = 32;
  serve_config.shard.batch_wait_ms = 0.2;
  serve_config.shard.default_deadline_ms = 120000.0;
  serve_config.shard.num_workers = 1;
  serve_config.shard.feature_cache_capacity = 4096;
  serve_config.shard.seed = env.seed;
  auto service =
      serve::ShardedMatchService::Create(serve_config, e2e_tables.a.schema(),
                                         e2e_tables.b.schema(),
                                         std::move(model))
          .ValueOrDie();

  block::DedupConfig dedup_config;
  dedup_config.queue_capacity = 2048;
  dedup_config.max_in_flight = 256;  // <= 2 shards x 256 queue slots
  dedup_config.deadline_ms = 120000.0;
  dedup_config.candidates.sign_threads = 4;
  Stopwatch e2e_timer;
  auto result = block::RunDedup(e2e_tables.a, e2e_tables.b,
                                &e2e_tables.gold_matches, service.get(),
                                dedup_config)
                    .ValueOrDie();
  const double e2e_seconds = e2e_timer.ElapsedSeconds();
  const serve::ServeStats serve_stats = service->stats();
  service->Stop();
  const double e2e_rps = static_cast<double>(e2e_records) / e2e_seconds;
  std::printf(
      "records=%zu candidates=%lld (reduction %.0fx, recall %.4f) "
      "matches=%lld clusters=%zu\n",
      e2e_records, static_cast<long long>(result.candidates.emitted),
      result.pair_reduction, result.candidate_recall,
      static_cast<long long>(result.matches), result.clusters);
  std::printf(
      "end-to-end: P=%.3f R=%.3f F1=%.3f in %.1fs (%.0f records/s, "
      "cache hits %lld/%lld)\n",
      result.precision, result.recall, result.f1, e2e_seconds, e2e_rps,
      static_cast<long long>(serve_stats.cache_hits),
      static_cast<long long>(serve_stats.cache_hits +
                             serve_stats.cache_misses));
  csv.AddRow({"e2e", hard_dataset + "_to_" + dataset,
              std::to_string(e2e_records),
              std::to_string(result.candidates.emitted),
              StrFormat("%.4f", result.candidate_recall),
              StrFormat("%.0f", result.pair_reduction),
              StrFormat("%.0f", e2e_rps), StrFormat("%.4f", result.f1)});
  csv.WriteIfRequested(env.csv_path);

  // ------------------------------------------------------------------
  if (!env.json_path.empty()) {
    std::string json = "{\n";
    json += StrFormat(
        "  \"scale\": {\"dataset\": \"%s\", \"entities\": %lld, "
        "\"records\": %zu, \"gold_matches\": %zu, \"generators\": [\n",
        dataset.c_str(), static_cast<long long>(scale_entities), records,
        tables.gold_matches.size());
    bool first = true;
    for (const BlockRun* r : {&index_run, &lsh_run, &combined_run}) {
      json += StrFormat(
          "    %s{\"generator\": \"%s\", \"candidates\": %lld, "
          "\"duplicates\": %lld, \"recall\": %.4f, "
          "\"pair_reduction\": %.1f, \"seconds\": %.3f, "
          "\"records_per_sec\": %.1f}",
          first ? "" : ", ", r->generator.c_str(),
          static_cast<long long>(r->candidates),
          static_cast<long long>(r->duplicates), r->recall, r->reduction,
          r->seconds, r->records_per_sec);
      json += "\n";
      first = false;
    }
    json += "  ]},\n";
    json += StrFormat(
        "  \"scale_hard\": {\"dataset\": \"%s\", \"entities\": %lld, "
        "\"records\": %zu, \"gold_matches\": %zu, \"generator\": "
        "\"combined\", \"candidates\": %lld, \"recall\": %.4f, "
        "\"pair_reduction\": %.1f, \"seconds\": %.3f, "
        "\"records_per_sec\": %.1f},\n",
        hard_dataset.c_str(), static_cast<long long>(scale_entities),
        hard_records, hard_tables.gold_matches.size(),
        static_cast<long long>(hard_run.candidates), hard_run.recall,
        hard_run.reduction, hard_run.seconds, hard_run.records_per_sec);
    json += "  \"budget_curve\": [\n";
    for (size_t i = 0; i < budget_curve.size(); ++i) {
      const auto& point = budget_curve[i];
      json += StrFormat(
          "    %s{\"max_candidates_per_probe\": %zu, \"records\": %zu, "
          "\"candidates\": %lld, \"recall\": %.4f, "
          "\"pair_reduction\": %.1f}\n",
          i ? ", " : "", point.budget, budget_records,
          static_cast<long long>(point.run.candidates), point.run.recall,
          point.run.reduction);
    }
    json += StrFormat(
        "  ],\n  \"e2e\": {\"source\": \"%s\", \"target\": \"%s\", "
        "\"align\": \"MMD\", \"entities\": %lld, \"records\": %zu, "
        "\"shards\": %d, \"candidates\": %lld, \"pair_reduction\": %.1f, "
        "\"candidate_recall\": %.4f, \"matches\": %lld, \"clusters\": %zu, "
        "\"precision\": %.4f, \"recall\": %.4f, \"f1\": %.4f, "
        "\"train_seconds\": %.1f, \"dedup_seconds\": %.1f, "
        "\"records_per_sec\": %.1f, \"cache_hits\": %lld, "
        "\"cache_misses\": %lld, \"holdout_pair_f1\": %.4f}\n",
        hard_dataset.c_str(), dataset.c_str(),
        static_cast<long long>(e2e_entities), e2e_records,
        service->num_shards(), static_cast<long long>(result.candidates.emitted),
        result.pair_reduction, result.candidate_recall,
        static_cast<long long>(result.matches), result.clusters,
        result.precision, result.recall, result.f1, train_seconds,
        e2e_seconds, e2e_rps, static_cast<long long>(serve_stats.cache_hits),
        static_cast<long long>(serve_stats.cache_misses), holdout_f1);
    json += "}\n";
    std::string error;
    if (obs::WriteTextFile(env.json_path, json, &error)) {
      std::printf("[json written to %s]\n", env.json_path.c_str());
    } else {
      std::fprintf(stderr, "json write failed: %s\n", error.c_str());
    }
  }

  if (!env.metrics_jsonl_path.empty()) {
    std::string error;
    if (obs::WriteTextFile(env.metrics_jsonl_path,
                           obs::MetricsRegistry::Default().ToJsonLines(),
                           &error)) {
      std::printf("[metrics written to %s]\n",
                  env.metrics_jsonl_path.c_str());
    } else {
      std::fprintf(stderr, "metrics write failed: %s\n", error.c_str());
    }
  }
  bench::DumpTraceIfRequested(env);
  std::printf("\n== metrics (block.* excerpt) ==\n");
  const std::string scrape = obs::MetricsRegistry::Default().ScrapeText();
  // Print only the block_ series; the full dump is bench_serving's job.
  size_t pos = 0;
  while (pos < scrape.size()) {
    size_t end = scrape.find('\n', pos);
    if (end == std::string::npos) end = scrape.size();
    const std::string line = scrape.substr(pos, end - pos);
    if (line.rfind("block_", 0) == 0 || line.find(" block_") != std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    pos = end + 1;
  }
  return 0;
}
