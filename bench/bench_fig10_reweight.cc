// Figure 10: DADER (feature-level DA, InvGAN+KD) vs the Reweight baseline
// (instance-level DA: re-weighting source pairs by target similarity over
// fixed embeddings). The paper's Finding 6: feature-level DA wins.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::ParseBenchArgs(argc, argv, "fig10_reweight.csv");
  if (env.scale.name == "smoke") env.scale.num_seeds = 1;

  std::printf("== Figure 10: Reweight vs DADER(InvGAN+KD) ==\n");
  std::printf("%-6s %-6s %12s %12s\n", "Source", "Target", "Reweight",
              "InvGAN+KD");
  bench::CsvReport csv({"source", "target", "reweight_f1", "invgankd_f1"});

  auto all_pairs = bench::SimilarPairs();
  for (const auto& p : bench::DifferentPairs()) all_pairs.push_back(p);

  for (const auto& [src, tgt] : all_pairs) {
    auto task = core::BuildDaTask(src, tgt, env.scale).ValueOrDie();
    core::ReweightConfig rw_config;
    rw_config.seed = env.seed;
    const double rw_f1 =
        core::RunReweightBaseline(task.source, task.target_test, rw_config)
            .F1();
    core::DaCellOptions options;
    options.base_seed = env.seed;
    auto kd = core::RunDaCell(src, tgt, core::AlignMethod::kInvGANKD,
                              env.scale, options);
    kd.status().CheckOK();
    const double kd_f1 = kd.ValueOrDie().f1.mean;
    std::printf("%-6s %-6s %12.1f %12.1f\n", src.c_str(), tgt.c_str(),
                rw_f1 * 100, kd_f1 * 100);
    std::fflush(stdout);
    csv.AddRow({src, tgt, std::to_string(rw_f1), std::to_string(kd_f1)});
  }
  std::printf("\nFinding 6: the InvGAN+KD column should dominate Reweight.\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
