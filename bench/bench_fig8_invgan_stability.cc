// Figure 8: InvGAN vs InvGAN+KD on Fodors-Zagats <-> Zomato-Yelp, tracking
// per-epoch F1 on BOTH source and target. The paper's failure analysis:
// plain InvGAN can destroy the features' discriminative power (both curves
// collapse), while knowledge distillation preserves it.

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "fig8_invgan_stability.csv");
  bench::CsvReport csv(
      {"direction", "method", "epoch", "source_f1", "target_f1"});

  core::ExperimentScale scale = env.scale;
  scale.model.epochs = 24;  // adaptation epochs shown in the figure

  for (const auto& [src, tgt] : std::vector<std::pair<std::string, std::string>>{
           {"FZ", "ZY"}, {"ZY", "FZ"}}) {
    std::printf("== Figure 8: %s -> %s ==\n", src.c_str(), tgt.c_str());
    auto task = core::BuildDaTask(src, tgt, scale).ValueOrDie();
    for (core::AlignMethod method :
         {core::AlignMethod::kInvGAN, core::AlignMethod::kInvGANKD}) {
      auto model = core::BuildModel(core::ExtractorKind::kLM, scale, true,
                                    env.seed)
                       .ValueOrDie();
      std::printf("%-10s %7s %7s\n", core::AlignMethodName(method), "srcF1",
                  "tgtF1");
      const std::string direction = src + "->" + tgt;
      auto outcome = core::RunSingleDa(
          method, scale, task, &model, /*track_source_f1=*/true,
          [&](const core::EpochStats& s) {
            if (s.epoch % 2 == 0) {
              std::printf("  epoch %2d %7.1f %7.1f\n", s.epoch,
                          s.source_f1 * 100, s.valid_f1 * 100);
            }
            csv.AddRow({direction, core::AlignMethodName(method),
                        std::to_string(s.epoch), std::to_string(s.source_f1),
                        std::to_string(s.valid_f1)});
          });
      outcome.status().CheckOK();
      std::printf("%s final target test F1: %.1f\n\n",
                  core::AlignMethodName(method),
                  outcome.ValueOrDie().test_f1 * 100);
    }
  }
  std::printf("Expected shape: InvGAN's source AND target F1 can collapse\n"
              "during adaptation; InvGAN+KD stays high on both (Finding 4).\n");
  csv.WriteIfRequested(env.csv_path);
  return 0;
}
