// Figure 8: InvGAN vs InvGAN+KD on Fodors-Zagats <-> Zomato-Yelp, tracking
// per-epoch F1 on BOTH source and target. The paper's failure analysis:
// plain InvGAN can destroy the features' discriminative power (both curves
// collapse), while knowledge distillation preserves it.
//
// Runs go through the guarded Run() entry point, so each run also reports
// the stability guard's verdict and the number of reseeded retries: the CSV
// distinguishes "converged", "recovered-after-retry", "diverged", and
// "collapsed" runs (see DESIGN.md "Failure modes & recovery").

#include "bench/bench_common.h"

using namespace dader;

int main(int argc, char** argv) {
  bench::BenchEnv env =
      bench::ParseBenchArgs(argc, argv, "fig8_invgan_stability.csv");
  bench::CsvReport csv({"direction", "method", "epoch", "source_f1",
                        "target_f1", "disc_accuracy", "epoch_verdict",
                        "run_verdict", "retries", "rollbacks"});

  core::ExperimentScale scale = env.scale;
  scale.model.epochs = 24;  // adaptation epochs shown in the figure

  for (const auto& [src, tgt] : std::vector<std::pair<std::string, std::string>>{
           {"FZ", "ZY"}, {"ZY", "FZ"}}) {
    std::printf("== Figure 8: %s -> %s ==\n", src.c_str(), tgt.c_str());
    auto task = core::BuildDaTask(src, tgt, scale).ValueOrDie();
    for (core::AlignMethod method :
         {core::AlignMethod::kInvGAN, core::AlignMethod::kInvGANKD}) {
      auto model = core::BuildModel(core::ExtractorKind::kLM, scale, true,
                                    env.seed)
                       .ValueOrDie();
      std::printf("%-10s %7s %7s\n", core::AlignMethodName(method), "srcF1",
                  "tgtF1");
      const std::string direction = src + "->" + tgt;
      auto outcome = core::RunSingleDa(
          method, scale, task, &model, /*track_source_f1=*/true,
          [&](const core::EpochStats& s) {
            if (s.epoch % 2 == 0) {
              std::printf("  epoch %2d %7.1f %7.1f %s\n", s.epoch,
                          s.source_f1 * 100, s.valid_f1 * 100,
                          s.verdict == core::GuardVerdict::kHealthy
                              ? ""
                              : core::GuardVerdictName(s.verdict));
            }
          });
      outcome.status().CheckOK();
      const core::DaRunOutcome& run = outcome.ValueOrDie();
      // Rows come from the final attempt's history so every row carries the
      // run-level verdict and retry count alongside the per-epoch verdict.
      const char* run_verdict = core::RunVerdictLabel(run.train);
      for (const core::EpochStats& s : run.train.history) {
        csv.AddRow({direction, core::AlignMethodName(method),
                    std::to_string(s.epoch), std::to_string(s.source_f1),
                    std::to_string(s.valid_f1),
                    std::to_string(s.disc_accuracy),
                    core::GuardVerdictName(s.verdict), run_verdict,
                    std::to_string(run.train.retries),
                    std::to_string(run.train.rollbacks)});
      }
      std::printf("%s final target test F1: %.1f (%s, %d retries, %d "
                  "rollbacks)\n\n",
                  core::AlignMethodName(method), run.test_f1 * 100,
                  run_verdict, run.train.retries, run.train.rollbacks);
    }
  }
  std::printf("Expected shape: InvGAN's source AND target F1 can collapse\n"
              "during adaptation; InvGAN+KD stays high on both (Finding 4).\n"
              "The guard column shows when the stability layer intervened.\n");
  csv.WriteIfRequested(env.csv_path);
  DumpTraceIfRequested(env);
  return 0;
}
