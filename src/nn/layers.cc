#include "nn/layers.h"

#include "tensor/init.h"

namespace dader::nn {

namespace ops = ::dader::ops;

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = RegisterParameter("weight", XavierUniform(in_, out_, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_}, true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  DADER_CHECK_GE(x.rank(), 1u);
  DADER_CHECK_EQ(x.shape().back(), in_);
  // Int8 path: eval-mode only, and never while a calibration pass needs the
  // fp32 activations observed. The output is a plain value tensor — serving
  // forwards never backprop, so skipping the tape is free.
  if (quant_ != nullptr && !training() && !calibrating_) {
    const int64_t rows = x.numel() / in_;
    std::vector<float> out(static_cast<size_t>(rows * out_));
    quant::QLinearForward(*quant_, x.data(), rows, out.data());
    Shape out_shape(x.shape().begin(), x.shape().end() - 1);
    out_shape.push_back(out_);
    return Tensor::FromVector(std::move(out_shape), std::move(out));
  }
  if (calibrating_ && !training()) {
    observer_.Observe(x.data(), x.numel());
  }
  Tensor flat = x;
  const bool needs_reshape = x.rank() != 2;
  Shape orig = x.shape();
  if (needs_reshape) {
    flat = ops::Reshape(x, {x.numel() / in_, in_});
  }
  Tensor y = ops::MatMul(flat, weight_);
  if (bias_.defined()) y = ops::Add(y, bias_);
  if (needs_reshape) {
    Shape out_shape(orig.begin(), orig.end() - 1);
    out_shape.push_back(out_);
    y = ops::Reshape(y, std::move(out_shape));
  }
  return y;
}

LayerNorm::LayerNorm(int64_t dim) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}, true));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}, true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return ops::LayerNorm(x, gamma_, beta_);
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng* rng)
    : vocab_(vocab_size), dim_(dim) {
  table_ = RegisterParameter("table", EmbeddingInit(vocab_, dim_, rng));
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return ops::EmbeddingLookup(table_, ids);
}

Mlp::Mlp(std::vector<int64_t> dims, Activation activation, float dropout,
         Rng* rng)
    : activation_(activation), dropout_(dropout) {
  DADER_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x, Rng* rng) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      switch (activation_) {
        case Activation::kRelu:
          h = ops::Relu(h);
          break;
        case Activation::kLeakyRelu:
          h = ops::LeakyRelu(h, 0.2f);
          break;
        case Activation::kTanh:
          h = ops::Tanh(h);
          break;
      }
      if (dropout_ > 0.0f) {
        h = ops::Dropout(h, dropout_, rng, training());
      }
    }
  }
  return h;
}

}  // namespace dader::nn
