// Basic layers: Linear, LayerNorm wrapper, Embedding, Dropout, and MLP.
//
// The MLP here doubles as the paper's Matcher M (one hidden layer + softmax
// output, as in Ditto) and as the domain classifier of the adversarial
// aligners (three LeakyReLU layers + sigmoid head, Section 6.1).

#pragma once

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/nn_ops.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace dader::nn {

/// \brief Fully connected layer y = x W + b over the last dimension.
///
/// Int8 inference: after post-training calibration (core/quantize.h), a
/// frozen quant::QuantizedLinear can be attached. An eval-mode Forward then
/// runs the dispatched int8 GEMM and returns a plain (tape-free) tensor;
/// training-mode forwards always use the fp32 parameters, so quantization
/// never touches gradients. The attached state is shared — CloneModel'd
/// replicas point at the same immutable object.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  /// \brief x [..., in] -> [..., out].
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

  /// \brief Fp32 parameters ([in, out] and [out]; bias may be undefined).
  Tensor weight() const { return weight_; }
  Tensor bias() const { return bias_; }

  /// \brief Attaches (or, with null, detaches) frozen int8 state. The
  /// caller guarantees shape agreement with this layer.
  void AttachQuantState(std::shared_ptr<const quant::QuantizedLinear> q) {
    if (q != nullptr) {
      DADER_CHECK(q->in == in_ && q->out == out_);
    }
    quant_ = std::move(q);
  }
  const std::shared_ptr<const quant::QuantizedLinear>& quant_state() const {
    return quant_;
  }

  /// \brief While true, eval-mode fp32 forwards feed their inputs to the
  /// range observer (the calibration pass of core/quantize.h).
  void SetCalibrating(bool on) { calibrating_ = on; }
  const quant::RangeObserver& observer() const { return observer_; }
  void ResetObserver() { observer_ = quant::RangeObserver(); }

 private:
  int64_t in_, out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
  std::shared_ptr<const quant::QuantizedLinear> quant_;
  bool calibrating_ = false;
  mutable quant::RangeObserver observer_;
};

/// \brief Learnable layer normalization over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// \brief Token embedding table.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng* rng);

  /// \brief ids (flattened) -> [ids.size(), dim].
  Tensor Forward(const std::vector<int64_t>& ids) const;

  int64_t vocab_size() const { return vocab_; }
  int64_t dim() const { return dim_; }
  Tensor table() const { return table_; }

 private:
  int64_t vocab_, dim_;
  Tensor table_;
};

/// \brief Hidden-layer activation for MLPs.
enum class Activation { kRelu, kLeakyRelu, kTanh };

/// \brief Multi-layer perceptron: Linear (+ activation + dropout) stack.
/// The final Linear has no activation; callers apply softmax/sigmoid/losses.
class Mlp : public Module {
 public:
  /// \param dims layer widths, e.g. {768, 2} or {768, 256, 256, 1}.
  Mlp(std::vector<int64_t> dims, Activation activation, float dropout,
      Rng* rng);

  /// \brief x [n, dims.front()] -> logits [n, dims.back()].
  Tensor Forward(const Tensor& x, Rng* rng) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
  float dropout_;
};

}  // namespace dader::nn
