// A BERT-style transformer encoder: learned token + position embeddings,
// multi-head self-attention blocks with residual connections and post-layer
// normalization. This is the paper's "pre-trained LM" Feature Extractor at
// reduced scale; core/pretrain.h gives it its pre-training.

#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace dader::nn {

/// \brief Transformer encoder hyper-parameters.
struct TransformerConfig {
  int64_t vocab_size = 8192;   ///< hashing-vocabulary size incl. specials
  int64_t max_len = 64;        ///< maximum sequence length
  int64_t hidden_dim = 64;     ///< model width d
  int64_t num_heads = 4;       ///< attention heads (hidden_dim % heads == 0)
  int64_t num_layers = 2;      ///< encoder blocks
  int64_t ffn_dim = 128;       ///< feed-forward inner width
  float dropout = 0.1f;
};

/// \brief One multi-head self-attention block.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, float dropout,
                         Rng* rng);

  /// \brief x [B,L,d] with `mask` (B*L floats, 1=token, 0=pad) -> [B,L,d].
  Tensor Forward(const Tensor& x, const std::vector<float>& mask,
                 Rng* rng) const;

 private:
  int64_t dim_, heads_, head_dim_;
  float dropout_;
  std::unique_ptr<Linear> q_, k_, v_, out_;
};

/// \brief Attention + feed-forward block with residuals and post-LN.
class TransformerBlock : public Module {
 public:
  TransformerBlock(const TransformerConfig& config, Rng* rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& mask,
                 Rng* rng) const;

 private:
  float dropout_;
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<Linear> ffn1_, ffn2_;
  std::unique_ptr<LayerNorm> ln1_, ln2_;
};

/// \brief The full encoder stack.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng* rng);

  /// \brief Encodes a batch of token-id sequences.
  /// \param token_ids B*L ids (row-major), each in [0, vocab_size).
  /// \param mask B*L floats, 1 for real tokens, 0 for padding.
  /// \param overlap B*L cross-entity overlap flags (see
  ///   text::EncodedSequence); pass empty for all-zero flags.
  /// \param batch B
  /// \returns hidden states [B, L, hidden_dim].
  Tensor Forward(const std::vector<int64_t>& token_ids,
                 const std::vector<float>& mask,
                 const std::vector<float>& overlap, int64_t batch,
                 Rng* rng) const;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::unique_ptr<Embedding> token_emb_;
  std::unique_ptr<Embedding> pos_emb_;
  std::unique_ptr<Embedding> overlap_emb_;  // 2 rows: flag 0 / flag 1
  std::unique_ptr<LayerNorm> emb_ln_;
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
};

}  // namespace dader::nn
