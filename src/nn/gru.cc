#include "nn/gru.h"

#include "tensor/ops.h"

namespace dader::nn {

namespace ops = ::dader::ops;

Gru::Gru(int64_t in_dim, int64_t hidden_dim, Rng* rng)
    : in_(in_dim), hidden_(hidden_dim) {
  xz_ = std::make_unique<Linear>(in_, hidden_, rng);
  xr_ = std::make_unique<Linear>(in_, hidden_, rng);
  xh_ = std::make_unique<Linear>(in_, hidden_, rng);
  hz_ = std::make_unique<Linear>(hidden_, hidden_, rng, /*bias=*/false);
  hr_ = std::make_unique<Linear>(hidden_, hidden_, rng, /*bias=*/false);
  hh_ = std::make_unique<Linear>(hidden_, hidden_, rng, /*bias=*/false);
  RegisterModule("xz", xz_.get());
  RegisterModule("xr", xr_.get());
  RegisterModule("xh", xh_.get());
  RegisterModule("hz", hz_.get());
  RegisterModule("hr", hr_.get());
  RegisterModule("hh", hh_.get());
}

Tensor Gru::Forward(const Tensor& x, bool reverse) const {
  DADER_CHECK_EQ(x.rank(), 3u);
  DADER_CHECK_EQ(x.dim(2), in_);
  const int64_t b = x.dim(0), l = x.dim(1);

  Tensor h = Tensor::Zeros({b, hidden_});
  std::vector<Tensor> states(static_cast<size_t>(l));
  for (int64_t step = 0; step < l; ++step) {
    const int64_t t = reverse ? l - 1 - step : step;
    Tensor xt = ops::SelectAxis(x, 1, t);  // [B, in]
    Tensor z = ops::Sigmoid(ops::Add(xz_->Forward(xt), hz_->Forward(h)));
    Tensor r = ops::Sigmoid(ops::Add(xr_->Forward(xt), hr_->Forward(h)));
    Tensor hcand =
        ops::Tanh(ops::Add(xh_->Forward(xt), hh_->Forward(ops::Mul(r, h))));
    // h = (1 - z) * h + z * hcand.
    Tensor one_minus_z = ops::AddScalar(ops::Neg(z), 1.0f);
    h = ops::Add(ops::Mul(one_minus_z, h), ops::Mul(z, hcand));
    states[static_cast<size_t>(t)] = h;
  }
  Tensor stacked = ops::Stack0(states);       // [L, B, H]
  return ops::SwapAxes(stacked, 0, 1);        // [B, L, H]
}

BiGru::BiGru(int64_t in_dim, int64_t hidden_dim, Rng* rng) {
  fwd_ = std::make_unique<Gru>(in_dim, hidden_dim, rng);
  bwd_ = std::make_unique<Gru>(in_dim, hidden_dim, rng);
  RegisterModule("fwd", fwd_.get());
  RegisterModule("bwd", bwd_.get());
}

Tensor BiGru::Forward(const Tensor& x) const {
  Tensor f = fwd_->Forward(x, /*reverse=*/false);
  Tensor b = bwd_->Forward(x, /*reverse=*/true);
  return ops::Concat({f, b}, /*axis=*/2);
}

}  // namespace dader::nn
