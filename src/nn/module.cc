#include "nn/module.h"

namespace dader::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : params_) out.push_back(t);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::CollectNamed(const std::string& prefix,
                          std::map<std::string, Tensor>* out) const {
  for (const auto& [name, t] : params_) {
    (*out)[prefix.empty() ? name : prefix + "." + name] = t;
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::map<std::string, Tensor> Module::NamedParameters() const {
  std::map<std::string, Tensor> out;
  CollectNamed("", &out);
  return out;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

std::map<std::string, Tensor> Module::SnapshotWeights() const {
  std::map<std::string, Tensor> out;
  for (const auto& [name, t] : NamedParameters()) out[name] = t.Detach();
  return out;
}

Status Module::RestoreWeights(const std::map<std::string, Tensor>& snapshot) {
  auto named = NamedParameters();
  if (named.size() != snapshot.size()) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(snapshot.size()) +
        " tensors, module has " + std::to_string(named.size()));
  }
  for (auto& [name, param] : named) {
    auto it = snapshot.find(name);
    if (it == snapshot.end()) {
      return Status::NotFound("snapshot missing parameter '" + name + "'");
    }
    if (it->second.shape() != param.shape()) {
      return Status::InvalidArgument("shape mismatch for parameter '" + name +
                                     "'");
    }
    param.CopyDataFrom(it->second);
  }
  return Status::OK();
}

Status Module::CopyWeightsFrom(const Module& other) {
  return RestoreWeights(other.SnapshotWeights());
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& t : Parameters()) total += t.numel();
  return total;
}

void Module::Apply(const std::function<void(Module*)>& fn) {
  fn(this);
  for (auto& [name, child] : children_) child->Apply(fn);
}

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  DADER_CHECK(t.defined());
  DADER_CHECK_MSG(t.requires_grad(), name.c_str());
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  DADER_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace dader::nn
