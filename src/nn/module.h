// Module: base class for neural-network components with a parameter
// registry, hierarchical naming, training-mode propagation, and weight
// snapshot/restore (used by the trainers' best-epoch model selection).

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace dader::nn {

/// \brief Base class for layers and models.
///
/// Subclasses register their parameters and child modules in their
/// constructor. Parameters are Tensors with requires_grad=true; registering
/// makes them visible to optimizers, snapshots, and serialization.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// \brief All parameters of this module and its descendants.
  std::vector<Tensor> Parameters() const;

  /// \brief Parameters with hierarchical "child.name" keys.
  std::map<std::string, Tensor> NamedParameters() const;

  /// \brief Sets training mode (dropout on/off) for this subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// \brief Deep copy of all parameter values, keyed like NamedParameters.
  std::map<std::string, Tensor> SnapshotWeights() const;

  /// \brief Restores parameter values from a snapshot with matching keys
  /// and shapes. Extra keys in `snapshot` are an error; missing keys too.
  Status RestoreWeights(const std::map<std::string, Tensor>& snapshot);

  /// \brief Copies parameter values from another module with an identical
  /// architecture (same parameter names/shapes). This is the F' <- F clone
  /// step of Algorithm 2.
  Status CopyWeightsFrom(const Module& other);

  /// \brief Total number of scalar parameters.
  int64_t NumParameters() const;

  /// \brief Calls `fn` on this module and every descendant, parents first.
  /// Used by the quantizer to find all Linear layers in a model tree.
  void Apply(const std::function<void(Module*)>& fn);

 protected:
  /// \brief Registers an owned parameter tensor under `name`.
  Tensor RegisterParameter(const std::string& name, Tensor t);

  /// \brief Registers a child module (not owned; usually a member).
  void RegisterModule(const std::string& name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::map<std::string, Tensor>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace dader::nn
