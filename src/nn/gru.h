// Gated recurrent units: unidirectional GRU and a bidirectional wrapper.
//
// This realizes the paper's RNN Feature Extractor family (DeepMatcher-style
// "hybrid" models use bidirectional RNNs over serialized attribute text).
// Unlike the transformer, the GRU is never pre-trained — exactly the setup
// whose weak transfer Figure 9 measures.

#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace dader::nn {

/// \brief Single-direction GRU over [B, L, in_dim] sequences.
class Gru : public Module {
 public:
  Gru(int64_t in_dim, int64_t hidden_dim, Rng* rng);

  /// \brief Runs the recurrence.
  /// \param x input [B, L, in_dim].
  /// \param reverse process timesteps from L-1 down to 0.
  /// \returns hidden states [B, L, hidden_dim] in natural time order.
  Tensor Forward(const Tensor& x, bool reverse = false) const;

  int64_t hidden_dim() const { return hidden_; }

 private:
  int64_t in_, hidden_;
  // Update gate z, reset gate r, candidate h.
  std::unique_ptr<Linear> xz_, xr_, xh_;  // input -> gates (with bias)
  std::unique_ptr<Linear> hz_, hr_, hh_;  // hidden -> gates (no bias)
};

/// \brief Bidirectional GRU: concatenates forward and backward states.
class BiGru : public Module {
 public:
  BiGru(int64_t in_dim, int64_t hidden_dim, Rng* rng);

  /// \brief x [B, L, in_dim] -> [B, L, 2*hidden_dim].
  Tensor Forward(const Tensor& x) const;

  int64_t output_dim() const { return 2 * fwd_->hidden_dim(); }

 private:
  std::unique_ptr<Gru> fwd_, bwd_;
};

}  // namespace dader::nn
