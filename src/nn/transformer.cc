#include "nn/transformer.h"

#include <cmath>

namespace dader::nn {

namespace ops = ::dader::ops;

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               float dropout, Rng* rng)
    : dim_(dim), heads_(num_heads), head_dim_(dim / num_heads),
      dropout_(dropout) {
  DADER_CHECK_EQ(dim_ % heads_, 0);
  q_ = std::make_unique<Linear>(dim_, dim_, rng);
  k_ = std::make_unique<Linear>(dim_, dim_, rng);
  v_ = std::make_unique<Linear>(dim_, dim_, rng);
  out_ = std::make_unique<Linear>(dim_, dim_, rng);
  RegisterModule("q", q_.get());
  RegisterModule("k", k_.get());
  RegisterModule("v", v_.get());
  RegisterModule("out", out_.get());
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x,
                                       const std::vector<float>& mask,
                                       Rng* rng) const {
  DADER_CHECK_EQ(x.rank(), 3u);
  const int64_t b = x.dim(0), l = x.dim(1);
  DADER_CHECK_EQ(static_cast<size_t>(b * l), mask.size());

  // [B,L,d] -> per-head [B*H, L, dh].
  auto split_heads = [&](const Tensor& t) {
    Tensor r = ops::Reshape(t, {b, l, heads_, head_dim_});
    r = ops::SwapAxes(r, 1, 2);  // [B,H,L,dh]
    return ops::Reshape(r, {b * heads_, l, head_dim_});
  };
  Tensor q = split_heads(q_->Forward(x));
  Tensor k = split_heads(k_->Forward(x));
  Tensor v = split_heads(v_->Forward(x));

  Tensor scores = ops::BatchMatMulNT(q, k);           // q · kᵀ, [B*H,L,L]
  scores = ops::MulScalar(scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));

  // Additive mask: -1e9 on padded key positions (constant, no grad).
  std::vector<float> add_mask(static_cast<size_t>(b * heads_ * l * l), 0.0f);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t kj = 0; kj < l; ++kj) {
      if (mask[static_cast<size_t>(bi * l + kj)] != 0.0f) continue;
      for (int64_t h = 0; h < heads_; ++h) {
        float* base = add_mask.data() + ((bi * heads_ + h) * l) * l;
        for (int64_t qi = 0; qi < l; ++qi) base[qi * l + kj] = -1e9f;
      }
    }
  }
  scores = ops::Add(scores, Tensor::FromVector({b * heads_, l, l},
                                               std::move(add_mask)));
  Tensor probs = ops::Softmax(scores);
  probs = ops::Dropout(probs, dropout_, rng, training());

  Tensor ctx = ops::BatchMatMul(probs, v);            // [B*H, L, dh]
  ctx = ops::Reshape(ctx, {b, heads_, l, head_dim_});
  ctx = ops::SwapAxes(ctx, 1, 2);                     // [B, L, H, dh]
  ctx = ops::Reshape(ctx, {b, l, dim_});
  return out_->Forward(ctx);
}

TransformerBlock::TransformerBlock(const TransformerConfig& config, Rng* rng)
    : dropout_(config.dropout) {
  attn_ = std::make_unique<MultiHeadSelfAttention>(config.hidden_dim,
                                                   config.num_heads,
                                                   config.dropout, rng);
  ffn1_ = std::make_unique<Linear>(config.hidden_dim, config.ffn_dim, rng);
  ffn2_ = std::make_unique<Linear>(config.ffn_dim, config.hidden_dim, rng);
  ln1_ = std::make_unique<LayerNorm>(config.hidden_dim);
  ln2_ = std::make_unique<LayerNorm>(config.hidden_dim);
  RegisterModule("attn", attn_.get());
  RegisterModule("ffn1", ffn1_.get());
  RegisterModule("ffn2", ffn2_.get());
  RegisterModule("ln1", ln1_.get());
  RegisterModule("ln2", ln2_.get());
}

Tensor TransformerBlock::Forward(const Tensor& x,
                                 const std::vector<float>& mask,
                                 Rng* rng) const {
  Tensor a = attn_->Forward(x, mask, rng);
  a = ops::Dropout(a, dropout_, rng, training());
  Tensor h = ln1_->Forward(ops::Add(x, a));
  Tensor f = ffn2_->Forward(ops::Relu(ffn1_->Forward(h)));
  f = ops::Dropout(f, dropout_, rng, training());
  return ln2_->Forward(ops::Add(h, f));
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config,
                                       Rng* rng)
    : config_(config) {
  token_emb_ = std::make_unique<Embedding>(config.vocab_size,
                                           config.hidden_dim, rng);
  pos_emb_ = std::make_unique<Embedding>(config.max_len, config.hidden_dim,
                                         rng);
  overlap_emb_ = std::make_unique<Embedding>(2, config.hidden_dim, rng);
  emb_ln_ = std::make_unique<LayerNorm>(config.hidden_dim);
  RegisterModule("token_emb", token_emb_.get());
  RegisterModule("pos_emb", pos_emb_.get());
  RegisterModule("overlap_emb", overlap_emb_.get());
  RegisterModule("emb_ln", emb_ln_.get());
  for (int64_t i = 0; i < config.num_layers; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(config, rng));
    RegisterModule("block" + std::to_string(i), blocks_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const std::vector<int64_t>& token_ids,
                                   const std::vector<float>& mask,
                                   const std::vector<float>& overlap,
                                   int64_t batch, Rng* rng) const {
  DADER_CHECK_GT(batch, 0);
  DADER_CHECK_EQ(token_ids.size() % static_cast<size_t>(batch), 0u);
  const int64_t l = static_cast<int64_t>(token_ids.size()) / batch;
  DADER_CHECK_LE(l, config_.max_len);
  DADER_CHECK_EQ(mask.size(), token_ids.size());

  Tensor tok = token_emb_->Forward(token_ids);  // [B*L, d]
  std::vector<int64_t> positions(token_ids.size());
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t t = 0; t < l; ++t) positions[static_cast<size_t>(bi * l + t)] = t;
  }
  Tensor pos = pos_emb_->Forward(positions);    // [B*L, d]
  Tensor h = ops::Add(tok, pos);
  if (!overlap.empty()) {
    DADER_CHECK_EQ(overlap.size(), token_ids.size());
    std::vector<int64_t> flags(overlap.size());
    for (size_t i = 0; i < overlap.size(); ++i) {
      flags[i] = overlap[i] != 0.0f ? 1 : 0;
    }
    h = ops::Add(h, overlap_emb_->Forward(flags));
  }
  h = emb_ln_->Forward(h);
  h = ops::Dropout(h, config_.dropout, rng, training());
  h = ops::Reshape(h, {batch, l, config_.hidden_dim});
  for (const auto& block : blocks_) {
    h = block->Forward(h, mask, rng);
  }
  return h;
}

}  // namespace dader::nn
