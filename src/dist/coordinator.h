// Coordinator: heartbeat membership + degrade-don't-die routing over a
// fixed roster of WorkerNodes, organized into replica groups, with durable
// state so a coordinator restart resumes instead of re-learning the fleet.
//
//                          ┌──────────────── coordinator ───────────────┐
//   client Match() ───────▶│ route: group = PairKeyHash % S             │
//                          │   pick first routable member in promotion  │
//                          │   order (primary, then hot standbys)       │
//                          │   whole group dead? -> rescue permutation  │
//                          │   survivor over capacity? -> shed          │
//                          │ warm thread: mirror served traffic to the  │
//                          │   group's standbys (kWarm) so their caches │
//                          │   are hot when promotion happens           │
//                          │ heartbeat thread: ping every node each     │
//                          │   tick, feed MembershipTable; canary-probe │
//                          │   recovering nodes; journal changes        │
//                          │ durable state: snapshot + journal          │
//                          │   (dist/snapshot.h) in config.state_dir    │
//                          └──────┬──────────────┬──────────────┬──────┘
//                             loopback TCP    loopback TCP   loopback TCP
//                          ┌─ node 0 ─┐   ┌─ node 1 ─┐   ┌─ node N-1 ─┐
//                          │WorkerNode│   │WorkerNode│   │ WorkerNode │
//
// Replica groups (replication_factor = R, S = N/R groups): the strided
// layout of dist/replica_group.h assigns group g the members {g, g+S,
// g+2S, ...} in promotion order. R = 1 makes every group a single node and
// reproduces the pre-replica routing bit for bit. With R > 1 a pair's home
// group is ShardForPair(a, b, S); the request goes to the first *routable*
// member in promotion order, so the death of a primary promotes its hot
// standby instantly and deterministically — every client computes the same
// promotion from the same membership view, per-pair stickiness holds, and
// because standbys receive mirrored model pushes and warming traffic the
// promoted node answers bit-identically with a warm cache. Only when an
// entire group is out does the pre-existing splitmix64 rescue permutation
// take over; only an unroutable fleet or an over-capacity survivor sheds.
//
// Durability (config.state_dir non-empty): membership — including canary
// streaks — reload epoch, and any in-flight rolling reload are journaled
// (dist/snapshot.h). A restarted coordinator replays them: recovered nodes
// keep their canary progress, a roll interrupted between node acks resumes
// from the last acked node (ResumePendingReload), and a torn current
// snapshot falls back to the previous generation — never to re-canarying
// the world.
//
// RollingReload pushes a checkpoint node by node (routable nodes only),
// journaling each ack; a bad push rolls back on the worker and aborts the
// roll here, leaving a mixed fleet of old+new weights. That is deliberate:
// both versions passed their canary, and per-pair stickiness means each
// pair sees one version consistently.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/membership.h"
#include "dist/replica_group.h"
#include "dist/rpc.h"
#include "dist/snapshot.h"
#include "obs/trace.h"
#include "serve/match_types.h"
#include "serve/router.h"
#include "util/fault.h"

namespace dader::dist {

/// \brief Coordinator tuning (per-node deadlines, cadence, capacity).
struct CoordinatorConfig {
  double heartbeat_period_ms = 25.0;    ///< tick cadence
  double heartbeat_deadline_ms = 60.0;  ///< per-ping budget; miss beyond it
  double match_deadline_ms = 1000.0;    ///< per-match RPC budget
  double canary_deadline_ms = 2000.0;   ///< warm-up canary probe budget
  double reload_deadline_ms = 20000.0;  ///< checkpoint restore is slow
  MembershipConfig membership;
  /// Data-path channels per node. One RpcChannel serializes; a small pool
  /// lets concurrent clients pipeline, which is what lets the worker-side
  /// batcher actually form batches. MatchBatch fans out across the pool.
  int channels_per_node = 2;
  /// In-flight match RPCs per node before new arrivals shed (Unavailable).
  int max_inflight_per_node = 64;
  /// Nodes per replica group; must divide the roster. 1 = no replication
  /// (every group is one node; routing is the pre-replica behavior).
  int replication_factor = 1;
  /// Mirror served match traffic to the group's standbys as kWarm frames
  /// so a promoted standby starts with a hot feature cache. Only matters
  /// when replication_factor > 1.
  bool mirror_warm = true;
  /// Bounded warm-mirror queue; overflow drops the mirror (the primary's
  /// answer was already returned — warming is best-effort by design).
  int warm_queue_capacity = 128;
  /// Directory for the durable snapshot + journal (dist/snapshot.h).
  /// Empty = no durability (state lives and dies in RAM).
  std::string state_dir;
  /// Journaled membership appends between automatic checkpoints.
  int checkpoint_every = 32;
  serve::RetryPolicy reconnect;  ///< channel re-establishment backoff
  uint64_t seed = 0xc00dULL;     ///< jitter seeds (per channel, derived)
  /// Injector for kCoordinatorCrash / kSnapshotTorn; null = no faults.
  FaultInjector* fault = nullptr;
  /// Clock for heartbeat pacing and backoff sleeps; null = real. Socket
  /// deadlines are always real-time.
  util::Clock* clock = nullptr;
};

/// \brief Where a request went and why (exposed for tests/observability).
struct RouteDecision {
  int home = -1;          ///< the group's primary (promotion rank 0)
  int node = -1;          ///< chosen node; -1 = nothing routable
  bool promoted = false;  ///< served by a standby of the home group
  bool rescued = false;   ///< whole group out; splitmix64 rescue chose node
};

/// \brief Client-facing façade over N worker nodes (see file comment).
class Coordinator {
 public:
  /// \param worker_ports loopback ports of nodes 0..N-1, in node order.
  Coordinator(CoordinatorConfig config, std::vector<int> worker_ports);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// \brief Starts the heartbeat thread (and the warm-mirror thread when
  /// replication is on). Until the first tick every node is presumed ALIVE
  /// unless persisted state said otherwise (the data path reports failures
  /// on its own).
  void Start();

  /// \brief Stops the background threads, checkpoints durable state, and
  /// closes every channel. Stop may block up to one heartbeat period.
  /// Idempotent; dtor calls.
  void Stop();

  /// \brief Routes, calls the worker over RPC, and returns its answer.
  /// Transport failures mark the node and fail over first to the group's
  /// remaining members (promotion order), then to the rescue permutation;
  /// only an unroutable/over-capacity fleet sheds.
  serve::MatchResponse Match(serve::MatchRequest request);

  /// \brief Pipelined batch: requests are grouped by routed node and
  /// issued concurrently across each node's channel pool (bounded by
  /// channels_per_node lanes per node), so one slow node no longer
  /// serializes the whole batch. Responses keep request order.
  std::vector<serve::MatchResponse> MatchBatch(
      std::vector<serve::MatchRequest> requests);

  /// \brief Pushes the checkpoint to every routable node in node order,
  /// journaling each ack; aborts on the first failure (that worker already
  /// rolled back).
  Status RollingReload(const std::string& path);

  /// \brief True when persisted state carries a roll interrupted between
  /// node acks (a previous coordinator died mid-RollingReload).
  bool HasPendingReload() const;

  /// \brief Resumes the persisted in-flight roll from the last acked node:
  /// already-acked nodes are not pushed again (no double reload).
  Status ResumePendingReload();

  /// \brief One synchronous heartbeat round (ping every node + canary
  /// recovering ones), journaling membership changes. The background
  /// thread calls this every period; tests call it directly for
  /// step-by-step determinism.
  void HeartbeatTick();

  /// \brief Routing decision for a request under the current membership
  /// view — pure, no RPC.
  RouteDecision Route(const serve::MatchRequest& request) const;

  MembershipTable& membership() { return membership_; }
  const MembershipTable& membership() const { return membership_; }
  const ReplicaGroupTable& replica_groups() const { return groups_; }
  int num_nodes() const { return static_cast<int>(ports_.size()); }
  uint64_t reload_epoch() const { return reload_epoch_.load(); }

  int64_t routed() const { return routed_.load(); }
  int64_t rescued() const { return rescued_.load(); }
  int64_t promoted() const { return promoted_.load(); }
  int64_t shed() const { return shed_.load(); }
  int64_t warm_sent() const { return warm_sent_.load(); }

 private:
  struct WarmTask {
    int group = 0;
    int served_node = 0;
    std::string payload;  ///< pre-encoded match request
  };

  void HeartbeatLoop();
  void WarmLoop();
  /// Mirrors one served request to the group's other routable members.
  void EnqueueWarm(int group, int served_node, const std::string& payload);
  /// Picks the rescue node for `hash` given nodes to skip; -1 when the
  /// whole fleet is out.
  int RescueNode(uint64_t hash, const std::vector<bool>& skip) const;
  /// Next failover candidate: untried routable group members in promotion
  /// order first, then the rescue permutation.
  int NextCandidate(uint64_t hash, int group,
                    const std::vector<bool>& tried) const;
  RpcChannel& DataChannel(int node);
  /// Journals the membership table when it changed since the last append;
  /// checkpoints every config_.checkpoint_every appends.
  void JournalMembership();
  /// Restores persisted state into the live tables (construction only).
  void RestoreFromJournal();
  CoordinatorState CurrentState() const;
  /// Shared by RollingReload and ResumePendingReload: pushes `path` to
  /// every routable node not yet acked in `pending`, journaling acks.
  Status RunReload(uint64_t epoch, const std::string& path);

  CoordinatorConfig config_;
  std::vector<int> ports_;
  MembershipTable membership_;
  ReplicaGroupTable groups_;

  // Heartbeats ride dedicated channels so data-path head-of-line blocking
  // can never fake a miss; warm mirrors likewise so cache warming can
  // never crowd out live traffic.
  std::vector<std::unique_ptr<RpcChannel>> hb_channels_;
  std::vector<std::unique_ptr<RpcChannel>> warm_channels_;
  std::vector<std::vector<std::unique_ptr<RpcChannel>>> data_channels_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> rr_;        // pool pick
  std::vector<std::unique_ptr<std::atomic<int64_t>>> inflight_;  // cap

  std::thread hb_thread_;
  std::thread warm_thread_;
  std::atomic<bool> running_{false};

  std::mutex warm_mu_;
  std::condition_variable warm_cv_;
  std::deque<WarmTask> warm_queue_;

  // Durable state (null journal_ = durability off).
  std::unique_ptr<CoordinatorJournal> journal_;
  mutable std::mutex journal_mu_;
  std::vector<NodeSnapshot> last_journaled_;
  int appends_since_checkpoint_ = 0;
  std::atomic<uint64_t> reload_epoch_{0};
  mutable std::mutex pending_mu_;
  PendingReload pending_;

  std::atomic<int64_t> routed_{0};
  std::atomic<int64_t> rescued_{0};
  std::atomic<int64_t> promoted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> warm_sent_{0};

  obs::Counter* m_requests_;
  obs::Counter* m_rescued_;
  obs::Counter* m_promoted_;
  obs::Counter* m_shed_;
  obs::Counter* m_warm_sent_;
  obs::Counter* m_warm_dropped_;
  obs::Counter* m_hb_sent_;
  obs::Counter* m_reload_ok_;
  obs::Counter* m_reload_rollback_;
  obs::Counter* m_reload_resume_;
};

}  // namespace dader::dist
