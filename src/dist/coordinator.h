// Coordinator: heartbeat membership + degrade-don't-die routing over a
// fixed roster of WorkerNodes.
//
//                          ┌──────────────── coordinator ───────────────┐
//   client Match() ───────▶│ route: home = PairKeyHash % N              │
//                          │   home dead? -> rescue permutation         │
//                          │   survivor over capacity? -> shed          │
//                          │ heartbeat thread: ping every node each     │
//                          │   tick, feed MembershipTable; canary-probe │
//                          │   recovering nodes                        │
//                          └──────┬──────────────┬──────────────┬──────┘
//                             loopback TCP    loopback TCP   loopback TCP
//                          ┌─ node 0 ─┐   ┌─ node 1 ─┐   ┌─ node N-1 ─┐
//                          │WorkerNode│   │WorkerNode│   │ WorkerNode │
//
// Routing invariants:
//
//   * The home node is serve::ShardForPair — the identical pure function
//     the in-process ShardedMatchService uses, so moving a deployment from
//     threads to processes reshuffles nothing.
//   * A pair only leaves its home when the home is DEAD (not SUSPECT — one
//     dropped heartbeat must not reshuffle the key space). The rescue node
//     is drawn by a deterministic splitmix64 probe sequence over the
//     pair's own hash, so while the membership view is stable every client
//     sends a given pair to the same survivor (its cache keeps hitting),
//     and because every worker serves a bit-identical model replica the
//     rescued answer equals the answer the home would have given.
//   * Degrade, don't die: overload sheds (Unavailable) only past the
//     per-node in-flight cap instead of dog-piling survivors, and a fleet
//     with zero routable nodes answers Unavailable rather than blocking.
//
// Failure evidence flows from both planes: the heartbeat thread reports
// ping outcomes, and the data path reports transport failures (a reset
// connection marks a miss immediately — detection does not wait for the
// next tick). Recovery is deliberately slower than detection: a node that
// answers pings again only re-enters the rotation after the warm-up canary
// (kCanary -> MatchService::CanaryCheck) passes `readmit_canary_successes`
// times in a row.
//
// RollingReload pushes a checkpoint node by node (routable nodes only).
// Each worker stages, validates, and canaries locally — a bad push rolls
// back on the worker and aborts the roll here, leaving a mixed fleet of
// old+new weights. That is deliberate: both versions passed their canary,
// and per-pair stickiness means each pair sees one version consistently.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/membership.h"
#include "dist/rpc.h"
#include "obs/trace.h"
#include "serve/match_types.h"
#include "serve/router.h"

namespace dader::dist {

/// \brief Coordinator tuning (per-node deadlines, cadence, capacity).
struct CoordinatorConfig {
  double heartbeat_period_ms = 25.0;    ///< tick cadence
  double heartbeat_deadline_ms = 60.0;  ///< per-ping budget; miss beyond it
  double match_deadline_ms = 1000.0;    ///< per-match RPC budget
  double canary_deadline_ms = 2000.0;   ///< warm-up canary probe budget
  double reload_deadline_ms = 20000.0;  ///< checkpoint restore is slow
  MembershipConfig membership;
  /// Data-path channels per node. One RpcChannel serializes; a small pool
  /// lets concurrent clients pipeline, which is what lets the worker-side
  /// batcher actually form batches.
  int channels_per_node = 2;
  /// In-flight match RPCs per node before new arrivals shed (Unavailable).
  int max_inflight_per_node = 64;
  serve::RetryPolicy reconnect;  ///< channel re-establishment backoff
  uint64_t seed = 0xc00dULL;     ///< jitter seeds (per channel, derived)
  /// Clock for heartbeat pacing and backoff sleeps; null = real. Socket
  /// deadlines are always real-time.
  util::Clock* clock = nullptr;
};

/// \brief Where a request went and why (exposed for tests/observability).
struct RouteDecision {
  int home = -1;         ///< ShardForPair home node
  int node = -1;         ///< chosen node; -1 = nothing routable
  bool rescued = false;  ///< true when node != home because home is dead
};

/// \brief Client-facing façade over N worker nodes (see file comment).
class Coordinator {
 public:
  /// \param worker_ports loopback ports of nodes 0..N-1, in node order.
  Coordinator(CoordinatorConfig config, std::vector<int> worker_ports);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// \brief Starts the heartbeat thread. Until the first tick every node
  /// is presumed ALIVE (optimistic start; the data path will report
  /// failures on its own).
  void Start();

  /// \brief Stops the heartbeat thread and closes every channel. Stop may
  /// block up to one heartbeat period. Idempotent; dtor calls.
  void Stop();

  /// \brief Routes, calls the worker over RPC, and returns its answer.
  /// Transport failures mark the node and fail over to the next rescue
  /// candidate; only an unroutable/over-capacity fleet sheds.
  serve::MatchResponse Match(serve::MatchRequest request);

  /// \brief Convenience loop over Match (serial; concurrency is the
  /// caller's business — see the channel-pool note in CoordinatorConfig).
  std::vector<serve::MatchResponse> MatchBatch(
      std::vector<serve::MatchRequest> requests);

  /// \brief Pushes the checkpoint to every routable node in node order;
  /// aborts on the first failure (that worker already rolled back).
  Status RollingReload(const std::string& path);

  /// \brief One synchronous heartbeat round (ping every node + canary
  /// recovering ones). The background thread calls this every period;
  /// tests call it directly for step-by-step determinism.
  void HeartbeatTick();

  /// \brief Routing decision for a request under the current membership
  /// view — pure, no RPC.
  RouteDecision Route(const serve::MatchRequest& request) const;

  MembershipTable& membership() { return membership_; }
  const MembershipTable& membership() const { return membership_; }
  int num_nodes() const { return static_cast<int>(ports_.size()); }

  int64_t routed() const { return routed_.load(); }
  int64_t rescued() const { return rescued_.load(); }
  int64_t shed() const { return shed_.load(); }

 private:
  void HeartbeatLoop();
  /// Picks the rescue node for `hash` given nodes to skip; -1 when the
  /// whole fleet is out.
  int RescueNode(uint64_t hash, const std::vector<bool>& skip) const;
  RpcChannel& DataChannel(int node);

  CoordinatorConfig config_;
  std::vector<int> ports_;
  MembershipTable membership_;

  // Heartbeats ride dedicated channels so data-path head-of-line blocking
  // can never fake a miss.
  std::vector<std::unique_ptr<RpcChannel>> hb_channels_;
  std::vector<std::vector<std::unique_ptr<RpcChannel>>> data_channels_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> rr_;        // pool pick
  std::vector<std::unique_ptr<std::atomic<int64_t>>> inflight_;  // cap

  std::thread hb_thread_;
  std::atomic<bool> running_{false};

  std::atomic<int64_t> routed_{0};
  std::atomic<int64_t> rescued_{0};
  std::atomic<int64_t> shed_{0};

  obs::Counter* m_requests_;
  obs::Counter* m_rescued_;
  obs::Counter* m_shed_;
  obs::Counter* m_hb_sent_;
  obs::Counter* m_reload_ok_;
  obs::Counter* m_reload_rollback_;
};

}  // namespace dader::dist
