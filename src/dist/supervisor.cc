#include "dist/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/logging.h"

namespace dader::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

// Reads the child's stdout until one "READY <port>" line arrives (the
// binary prints nothing else to stdout). Returns the port.
Result<int> AwaitReadyLine(int fd, double timeout_ms) {
  const SteadyClock::time_point start = SteadyClock::now();
  std::string line;
  char ch = 0;
  while (true) {
    const double remaining = timeout_ms - MsSince(start);
    if (remaining <= 0.0) {
      return Status::DeadlineExceeded(
          "worker process never reported READY within " +
          std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (pr == 0) continue;
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll on worker stdout failed: " +
                             std::string(std::strerror(errno)));
    }
    const ssize_t r = ::read(fd, &ch, 1);
    if (r == 0) {
      return Status::Unavailable(
          "worker process exited before reporting READY");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read from worker stdout failed");
    }
    if (ch == '\n') {
      int port = 0;
      if (std::sscanf(line.c_str(), "READY %d", &port) == 1 && port > 0) {
        return port;
      }
      return Status::Internal("unexpected worker handshake line: " + line);
    }
    line.push_back(ch);
    if (line.size() > 256) {
      return Status::Internal("worker handshake line never terminated");
    }
  }
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(WorkerSupervisorConfig config)
    : config_(std::move(config)),
      backoff_(config_.restart_backoff, config_.seed) {
  port_.store(config_.port);
  auto& reg = obs::MetricsRegistry::Default();
  m_spawn_ = reg.GetCounter("dist.supervisor.spawn.total",
                            "Worker processes spawned (first launches and "
                            "respawns)",
                            "processes");
  m_restart_ = reg.GetCounter(
      "dist.supervisor.restart.total",
      "Worker processes respawned after an unexpected exit", "processes");
  m_exit_ = reg.GetCounter("dist.supervisor.exit.total",
                           "Worker process exits observed (reaped)",
                           "processes");
}

WorkerSupervisor::~WorkerSupervisor() { Stop(); }

Status WorkerSupervisor::SpawnLocked() {
  int in_pipe[2];   // supervisor writes -> child stdin
  int out_pipe[2];  // child stdout -> supervisor reads
  if (::pipe(in_pipe) != 0) {
    return Status::IOError("pipe() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return Status::IOError("pipe() failed: " +
                           std::string(std::strerror(errno)));
  }

  std::vector<std::string> args;
  args.push_back(config_.binary_path);
  args.push_back("--node_id=" + std::to_string(config_.node_id));
  args.push_back("--seed=" + std::to_string(config_.model_seed));
  args.push_back("--port=" + std::to_string(port_.load()));
  for (const std::string& extra : config_.extra_args) args.push_back(extra);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return Status::IOError("fork() failed: " +
                           std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    // Child. A dying supervisor must never leak a worker: the kernel
    // delivers SIGKILL the moment our parent exits.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) _exit(127);  // parent died before prctl armed
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the parent sees the exit via waitpid
  }

  // Supervisor side.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  stdin_fd_ = in_pipe[1];
  pid_.store(pid);
  m_spawn_->Increment();

  Result<int> ready = AwaitReadyLine(out_pipe[0], config_.ready_timeout_ms);
  ::close(out_pipe[0]);  // one line is all the channel carries
  if (!ready.ok()) {
    KillAndReapLocked();
    return Status(ready.status().code(),
                  "worker " + std::to_string(config_.node_id) +
                      " handshake failed: " + ready.status().message());
  }
  // Pin the port: every respawn rebinds the same address so coordinator
  // channels reconnect without re-configuration.
  port_.store(ready.ValueOrDie());
  alive_.store(true);
  DADER_LOG(Info) << "dist supervisor: worker " << config_.node_id
                  << " ready as pid " << pid << " on port "
                  << ready.ValueOrDie();
  return Status::OK();
}

void WorkerSupervisor::KillAndReapLocked() {
  const pid_t pid = pid_.load();
  if (pid > 0) {
    ::kill(pid, SIGKILL);
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    m_exit_->Increment();
    pid_.store(-1);
  }
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
  alive_.store(false);
}

Status WorkerSupervisor::Start() {
  std::lock_guard<std::mutex> lock(spawn_mu_);
  if (pid_.load() > 0) {
    return Status::InvalidArgument("supervisor already has a live child");
  }
  stopping_.store(false);
  DADER_RETURN_NOT_OK(SpawnLocked());
  if (monitor_.joinable()) monitor_.join();  // a finished previous monitor
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

Status WorkerSupervisor::Kill() {
  const pid_t pid = pid_.load();
  if (pid <= 0) return Status::InvalidArgument("no child to kill");
  DADER_LOG(Warning) << "dist supervisor: killing worker "
                     << config_.node_id << " (pid " << pid << ")";
  if (::kill(pid, SIGKILL) != 0) {
    return Status::IOError("kill failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void WorkerSupervisor::MonitorLoop() {
  while (true) {
    const pid_t pid = pid_.load();
    if (pid <= 0) return;
    int status = 0;
    pid_t reaped = -1;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    {
      std::lock_guard<std::mutex> lock(spawn_mu_);
      m_exit_->Increment();
      alive_.store(false);
      pid_.store(-1);
      if (stdin_fd_ >= 0) {
        ::close(stdin_fd_);
        stdin_fd_ = -1;
      }
    }
    exited_cv_.notify_all();
    if (stopping_.load() || !config_.auto_restart) return;

    DADER_LOG(Warning) << "dist supervisor: worker " << config_.node_id
                       << " exited unexpectedly (status " << status
                       << "); restarting";
    bool respawned = false;
    const int max_attempts = std::max(1, config_.restart_backoff.max_attempts);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      backoff_.Sleep(backoff_.NextDelayMs(attempt));
      if (stopping_.load()) return;
      std::lock_guard<std::mutex> lock(spawn_mu_);
      if (stopping_.load()) return;
      Status spawned = SpawnLocked();
      if (spawned.ok()) {
        restarts_.fetch_add(1);
        m_restart_->Increment();
        respawned = true;
        break;
      }
      DADER_LOG(Warning) << "dist supervisor: respawn attempt " << attempt
                         << " failed: " << spawned.ToString();
    }
    if (!respawned) {
      DADER_LOG(Error) << "dist supervisor: worker " << config_.node_id
                       << " gave up after " << max_attempts
                       << " respawn attempts";
      return;
    }
  }
}

void WorkerSupervisor::Stop() {
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    if (stdin_fd_ >= 0) {
      // EOF on stdin is the graceful-shutdown signal.
      ::close(stdin_fd_);
      stdin_fd_ = -1;
    }
  }
  // Bounded grace: the monitor reaps the exit; past the grace we escalate.
  {
    std::unique_lock<std::mutex> lock(spawn_mu_);
    const bool exited = exited_cv_.wait_for(
        lock,
        std::chrono::milliseconds(
            static_cast<int64_t>(config_.stop_grace_ms)),
        [this] { return pid_.load() <= 0; });
    if (!exited) {
      const pid_t pid = pid_.load();
      if (pid > 0) {
        DADER_LOG(Warning) << "dist supervisor: worker " << config_.node_id
                           << " ignored EOF; escalating to SIGKILL";
        ::kill(pid, SIGKILL);
      }
    }
  }
  if (monitor_.joinable()) monitor_.join();
  // Belt and braces: if Start() failed mid-way or the monitor never ran,
  // there may still be a child to reap.
  std::lock_guard<std::mutex> lock(spawn_mu_);
  KillAndReapLocked();
}

}  // namespace dader::dist
