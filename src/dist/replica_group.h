// Replica groups: a shard's keys get a hot standby instead of
// rescue-on-demand.
//
// PR 6's coordinator treated every worker as its own shard: when a node
// died, its keys were rescued to an arbitrary (deterministic) survivor
// whose feature cache had never seen them — correct answers, cold caches,
// a latency/shed spike exactly when the fleet is already degraded. Replica
// groups trade capacity for failover quality: with replication factor R,
// the N-node roster folds into S = N / R groups of R members each, every
// member serving a bit-identical model replica of the same key range.
//
//   group g members (promotion order):  { g, g + S, g + 2S, ... }
//
// The strided layout means member k of every group lives on a different
// "rack" of the roster: killing nodes 0..S-1 takes out every group's
// primary but no group entirely. Member order IS the promotion order —
// routing walks it and picks the first routable member, so when a primary
// dies every client deterministically promotes the same standby (per-pair
// stickiness and cache affinity survive the failover with no coordination).
// The splitmix64 rescue permutation remains the backstop for the case
// replica groups cannot help with: the whole group is out.
//
// With R = 1 the table is the identity (S = N, every node its own group)
// and routing degenerates to exactly the PR 6 behavior.
//
// The table is immutable after construction and reads no shared state —
// any thread computes group membership without synchronization. Liveness
// is the MembershipTable's business; this table only answers "who could
// serve shard s, in what order".

#pragma once

#include <vector>

#include "util/status.h"

namespace dader::dist {

/// \brief Deterministic node -> group assignment (see file comment).
class ReplicaGroupTable {
 public:
  /// \param num_nodes roster size N; must be a positive multiple of
  /// `replication_factor` (a partial group would have a different
  /// durability story than its siblings — refuse instead of guessing).
  /// \param replication_factor members per group R >= 1.
  static Result<ReplicaGroupTable> Create(int num_nodes,
                                          int replication_factor);

  int num_nodes() const { return num_nodes_; }
  int num_groups() const { return num_groups_; }
  int replication_factor() const { return replication_factor_; }

  /// \brief Members of `group` in promotion order (primary first). The
  /// returned reference lives as long as the table.
  const std::vector<int>& members(int group) const;

  /// \brief The group owning `node`.
  int group_of(int node) const { return node % num_groups_; }

  /// \brief Promotion rank of `node` inside its group (0 = primary).
  int rank_of(int node) const { return node / num_groups_; }

 private:
  ReplicaGroupTable(int num_nodes, int replication_factor);

  int num_nodes_;
  int replication_factor_;
  int num_groups_;
  std::vector<std::vector<int>> members_;  // [group][rank] -> node
};

}  // namespace dader::dist
