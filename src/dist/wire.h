// Wire protocol of the distributed serving plane: length-prefixed binary
// frames over loopback TCP.
//
//   frame := [u32 length][u8 type][u64 request_id][payload ...]
//
// `length` counts everything after itself (type + id + payload) and is
// bounded by kMaxFrameBytes, so a corrupt or adversarial length prefix can
// never balloon a read. All integers are little-endian (the plane is
// loopback-only by design — see dist/rpc.h — so there is no cross-endian
// peer to negotiate with; the explicit encode keeps the format well-defined
// anyway).
//
// Payload encoding is a flat Writer/Reader pair: u8/u32/u64/f32/f64 and
// length-prefixed strings, with every Reader access bounds-checked and
// returning Status instead of trusting the peer. On top of that sit the
// typed codecs for the match request/response — the only structured
// payloads the plane ships.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/match_types.h"
#include "util/status.h"

namespace dader::dist {

/// \brief Frame types of the control/data plane.
enum class FrameType : uint8_t {
  kPing = 1,         ///< coordinator -> worker heartbeat probe
  kPong = 2,         ///< worker -> coordinator heartbeat answer
  kMatch = 3,        ///< routed match request (payload: EncodeMatchRequest)
  kMatchReply = 4,   ///< match answer (payload: EncodeMatchResponse)
  kReload = 5,       ///< rolling reload command (payload: checkpoint path)
  kReloadReply = 6,  ///< reload outcome (payload: EncodeStatus)
  kCanary = 7,       ///< re-admission warm-up probe (no payload)
  kCanaryReply = 8,  ///< canary outcome (payload: EncodeStatus)
  kWarm = 9,         ///< standby feature-warming mirror (payload:
                     ///< EncodeMatchRequest; answer is discarded)
  kWarmAck = 10,     ///< warm acknowledged (no payload)
};

/// \brief "ping", "pong", "match", ... (unknown values stringify to "?").
const char* FrameTypeName(FrameType type);

/// \brief Hard ceiling on length-prefix values (1 MiB). Match payloads are
/// a few hundred bytes; anything near the ceiling is a corrupt frame.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// \brief One parsed frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// \brief Serializes a frame (header + payload) into one contiguous buffer
/// ready for a single send.
std::string EncodeFrame(const Frame& frame);

/// \brief Parses one frame out of `data` (which must hold a whole frame:
/// the transport reads the length prefix first). Rejects short buffers,
/// oversized lengths, and unknown types.
Result<Frame> DecodeFrame(const std::string& data);

/// \brief Appends little-endian scalars / length-prefixed strings.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutF32(float v);
  void PutF64(double v);
  void PutString(const std::string& s);

  std::string Take() { return std::move(buf_); }
  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// \brief Bounds-checked reader over an encoded payload.
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<float> GetF32();
  Result<double> GetF64();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n);

  const std::string& data_;
  size_t pos_ = 0;
};

// --- typed payload codecs ---

std::string EncodeMatchRequest(const serve::MatchRequest& request);
Result<serve::MatchRequest> DecodeMatchRequest(const std::string& payload);

std::string EncodeMatchResponse(const serve::MatchResponse& response);
Result<serve::MatchResponse> DecodeMatchResponse(const std::string& payload);

/// \brief Status as (code, message) — used by reload/canary replies.
/// Decode returns the *transport* verdict (corrupt payload etc.) and
/// writes the shipped status to `decoded` (Result<Status> would be
/// ambiguous — both roles are a Status).
std::string EncodeStatus(const Status& status);
Status DecodeStatus(const std::string& payload, Status* decoded);

}  // namespace dader::dist
