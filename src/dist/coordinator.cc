#include "dist/coordinator.h"

#include <utility>

#include "util/check.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dader::dist {

namespace {

// How many distinct nodes one Match call will try before giving up: the
// routed node plus this many failovers.
constexpr int kMaxFailovers = 2;

uint64_t Mix(uint64_t x) {
  SplitMix64 sm(x);
  return sm.Next();
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config,
                         std::vector<int> worker_ports)
    : config_(config),
      ports_(std::move(worker_ports)),
      membership_(static_cast<int>(ports_.size()), config.membership) {
  DADER_CHECK_GT(ports_.size(), 0u);
  DADER_CHECK_GT(config_.channels_per_node, 0);
  DADER_CHECK_GT(config_.max_inflight_per_node, 0);

  SplitMix64 seeds(config_.seed);
  for (size_t node = 0; node < ports_.size(); ++node) {
    RpcChannelConfig hb;
    hb.default_deadline_ms = config_.heartbeat_deadline_ms;
    hb.reconnect = config_.reconnect;
    hb.seed = seeds.Next();
    hb.clock = config_.clock;
    hb_channels_.push_back(
        std::make_unique<RpcChannel>(ports_[node], hb));

    std::vector<std::unique_ptr<RpcChannel>> pool;
    for (int c = 0; c < config_.channels_per_node; ++c) {
      RpcChannelConfig data;
      data.default_deadline_ms = config_.match_deadline_ms;
      data.reconnect = config_.reconnect;
      data.seed = seeds.Next();
      data.clock = config_.clock;
      pool.push_back(std::make_unique<RpcChannel>(ports_[node], data));
    }
    data_channels_.push_back(std::move(pool));
    rr_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    inflight_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }

  auto& reg = obs::MetricsRegistry::Default();
  m_requests_ = reg.GetCounter("dist.route.requests.total",
                               "Match requests routed by the coordinator",
                               "requests");
  m_rescued_ = reg.GetCounter(
      "dist.route.rescued.total",
      "Requests served by a survivor because their home node was dead",
      "requests");
  m_shed_ = reg.GetCounter(
      "dist.route.shed.total",
      "Requests shed Unavailable (fleet unroutable or node over capacity)",
      "requests");
  m_hb_sent_ = reg.GetCounter("dist.heartbeat.sent.total",
                              "Heartbeat pings sent to workers", "probes");
  m_reload_ok_ = reg.GetCounter("dist.reload.node.success.total",
                                "Per-node checkpoint pushes that succeeded",
                                "nodes");
  m_reload_rollback_ = reg.GetCounter(
      "dist.reload.node.rollback.total",
      "Per-node checkpoint pushes that failed (worker rolled back)",
      "nodes");
}

Coordinator::~Coordinator() { Stop(); }

void Coordinator::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  hb_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void Coordinator::Stop() {
  running_.store(false);
  if (hb_thread_.joinable()) hb_thread_.join();
}

void Coordinator::HeartbeatLoop() {
  util::Clock* clock = config_.clock ? config_.clock : util::Clock::Real();
  while (running_.load()) {
    HeartbeatTick();
    clock->SleepForMs(config_.heartbeat_period_ms);
  }
}

void Coordinator::HeartbeatTick() {
  obs::TraceSpan tick("dist.heartbeat.tick");
  for (int node = 0; node < num_nodes(); ++node) {
    m_hb_sent_->Increment();
    Result<Frame> pong = hb_channels_[static_cast<size_t>(node)]->Call(
        FrameType::kPing, "", config_.heartbeat_deadline_ms);
    if (pong.ok() && pong.ValueOrDie().type == FrameType::kPong) {
      membership_.OnHeartbeatOk(node);
    } else {
      membership_.OnHeartbeatMiss(node);
    }
  }
  // Recovering nodes answer pings but earn traffic back through the
  // warm-up canary: an end-to-end forward on the worker's live model.
  for (int node = 0; node < num_nodes(); ++node) {
    if (membership_.state(node) != NodeState::kCanary) continue;
    obs::TraceSpan readmit("dist.readmit");
    Result<Frame> reply = hb_channels_[static_cast<size_t>(node)]->Call(
        FrameType::kCanary, "", config_.canary_deadline_ms);
    bool ok = false;
    if (reply.ok() && reply.ValueOrDie().type == FrameType::kCanaryReply) {
      Status inner = Status::OK();
      ok = DecodeStatus(reply.ValueOrDie().payload, &inner).ok() &&
           inner.ok();
    }
    if (ok) {
      membership_.OnCanaryOk(node);
    } else {
      membership_.OnCanaryFailure(node);
    }
  }
}

int Coordinator::RescueNode(uint64_t hash,
                            const std::vector<bool>& skip) const {
  // Deterministic probe sequence over the pair's own hash: while the
  // membership view is stable every client maps a pair to the same
  // survivor, so per-pair stickiness (and its cache locality) survives a
  // node death.
  const int n = num_nodes();
  for (int probe = 1; probe <= 8 * n; ++probe) {
    const int cand = static_cast<int>(
        Mix(hash + static_cast<uint64_t>(probe)) % static_cast<uint64_t>(n));
    if (skip[static_cast<size_t>(cand)]) continue;
    if (!membership_.routable(cand)) continue;
    return cand;
  }
  // The probe sequence can (rarely) keep landing on skipped nodes; fall
  // back to a deterministic pick from whatever is routable.
  std::vector<int> routable = membership_.RoutableNodes();
  for (size_t i = 0; i < routable.size(); ++i) {
    const int cand =
        routable[(hash + i) % routable.size()];
    if (!skip[static_cast<size_t>(cand)]) return cand;
  }
  return -1;
}

RouteDecision Coordinator::Route(const serve::MatchRequest& request) const {
  RouteDecision decision;
  decision.home =
      serve::ShardForPair(request.a, request.b, num_nodes());
  if (membership_.routable(decision.home)) {
    decision.node = decision.home;
    return decision;
  }
  std::vector<bool> skip(static_cast<size_t>(num_nodes()), false);
  skip[static_cast<size_t>(decision.home)] = true;
  decision.node =
      RescueNode(serve::PairKeyHash(request.a, request.b), skip);
  decision.rescued = decision.node >= 0;
  return decision;
}

serve::MatchResponse Coordinator::Match(serve::MatchRequest request) {
  m_requests_->Increment();
  serve::MatchResponse response;

  const RouteDecision first = Route(request);
  if (first.node < 0) {
    shed_.fetch_add(1);
    m_shed_->Increment();
    response.status =
        Status::Unavailable("no routable worker node (fleet down)");
    return response;
  }

  const uint64_t hash = serve::PairKeyHash(request.a, request.b);
  const std::string payload = EncodeMatchRequest(request);
  std::vector<bool> tried(static_cast<size_t>(num_nodes()), false);
  int node = first.node;
  bool rescued = first.rescued;
  Status last = Status::Unavailable("never attempted");

  for (int attempt = 0; attempt <= kMaxFailovers; ++attempt) {
    auto& inflight = *inflight_[static_cast<size_t>(node)];
    if (inflight.fetch_add(1) >= config_.max_inflight_per_node) {
      // Past capacity we shed rather than dog-pile the rest of the fleet;
      // the worker's own admission queue sheds its overload the same way.
      inflight.fetch_sub(1);
      shed_.fetch_add(1);
      m_shed_->Increment();
      response.status = Status::Unavailable(
          "worker node " + std::to_string(node) + " over capacity");
      return response;
    }
    Result<Frame> reply =
        DataChannel(node).Call(FrameType::kMatch, payload,
                               config_.match_deadline_ms);
    inflight.fetch_sub(1);

    if (reply.ok()) {
      const Frame& frame = reply.ValueOrDie();
      if (frame.type != FrameType::kMatchReply) {
        response.status =
            Status::Internal("unexpected reply frame: " +
                             std::string(FrameTypeName(frame.type)));
        return response;
      }
      Result<serve::MatchResponse> decoded =
          DecodeMatchResponse(frame.payload);
      if (!decoded.ok()) {
        response.status = decoded.status();
        return response;
      }
      routed_.fetch_add(1);
      if (rescued) {
        rescued_.fetch_add(1);
        m_rescued_->Increment();
      }
      return std::move(decoded).ValueOrDie();
    }

    // Transport failure: evidence for membership (detection must not wait
    // for the next heartbeat tick), then fail over along the same
    // deterministic probe sequence.
    last = reply.status();
    membership_.OnHeartbeatMiss(node);
    tried[static_cast<size_t>(node)] = true;
    obs::TraceSpan recovery("dist.recovery");
    const int next = RescueNode(hash, tried);
    if (next < 0) break;
    node = next;
    rescued = true;
  }

  shed_.fetch_add(1);
  m_shed_->Increment();
  response.status = Status::Unavailable("match rpc failed after failover: " +
                                        last.message());
  return response;
}

std::vector<serve::MatchResponse> Coordinator::MatchBatch(
    std::vector<serve::MatchRequest> requests) {
  std::vector<serve::MatchResponse> responses;
  responses.reserve(requests.size());
  for (auto& request : requests) {
    responses.push_back(Match(std::move(request)));
  }
  return responses;
}

Status Coordinator::RollingReload(const std::string& path) {
  obs::TraceSpan roll("dist.reload.rolling");
  for (int node = 0; node < num_nodes(); ++node) {
    if (!membership_.routable(node)) {
      DADER_LOG(Warning) << "dist reload: skipping unroutable node " << node
                         << " (it will canary back in on old weights; "
                            "re-push after it recovers)";
      continue;
    }
    Result<Frame> reply =
        DataChannel(node).Call(FrameType::kReload, path,
                               config_.reload_deadline_ms);
    Status pushed = Status::Unavailable("no reply");
    if (!reply.ok()) {
      pushed = reply.status();
    } else if (reply.ValueOrDie().type != FrameType::kReloadReply) {
      pushed = Status::Internal("unexpected reload reply frame");
    } else {
      Status inner = Status::OK();
      Status wire = DecodeStatus(reply.ValueOrDie().payload, &inner);
      pushed = wire.ok() ? inner : wire;
    }
    if (!pushed.ok()) {
      m_reload_rollback_->Increment();
      return Status(pushed.code(),
                    "rolling reload aborted at node " + std::to_string(node) +
                        " (worker rolled back): " + pushed.message());
    }
    m_reload_ok_->Increment();
  }
  return Status::OK();
}

RpcChannel& Coordinator::DataChannel(int node) {
  auto& pool = data_channels_[static_cast<size_t>(node)];
  const int64_t pick = rr_[static_cast<size_t>(node)]->fetch_add(1);
  return *pool[static_cast<size_t>(pick % static_cast<int64_t>(pool.size()))];
}

}  // namespace dader::dist
