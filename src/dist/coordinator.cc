#include "dist/coordinator.h"

#include <sys/stat.h>

#include <map>
#include <utility>

#include "util/check.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dader::dist {

namespace {

// How many extra candidates one Match call will try beyond the group's own
// members before giving up.
constexpr int kMaxFailovers = 2;

uint64_t Mix(uint64_t x) {
  SplitMix64 sm(x);
  return sm.Next();
}

bool SameMembership(const std::vector<NodeSnapshot>& a,
                    const std::vector<NodeSnapshot>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].state != b[i].state || a[i].misses != b[i].misses ||
        a[i].canary_successes != b[i].canary_successes) {
      return false;
    }
  }
  return true;
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config,
                         std::vector<int> worker_ports)
    : config_(config),
      ports_(std::move(worker_ports)),
      membership_(static_cast<int>(ports_.size()), config.membership),
      groups_(ReplicaGroupTable::Create(static_cast<int>(ports_.size()),
                                        config.replication_factor)
                  .ValueOrDie()) {
  DADER_CHECK_GT(ports_.size(), 0u);
  DADER_CHECK_GT(config_.channels_per_node, 0);
  DADER_CHECK_GT(config_.max_inflight_per_node, 0);
  DADER_CHECK_GT(config_.checkpoint_every, 0);

  SplitMix64 seeds(config_.seed);
  for (size_t node = 0; node < ports_.size(); ++node) {
    RpcChannelConfig hb;
    hb.default_deadline_ms = config_.heartbeat_deadline_ms;
    hb.reconnect = config_.reconnect;
    hb.seed = seeds.Next();
    hb.clock = config_.clock;
    hb_channels_.push_back(
        std::make_unique<RpcChannel>(ports_[node], hb));

    RpcChannelConfig warm;
    warm.default_deadline_ms = config_.match_deadline_ms;
    warm.reconnect = config_.reconnect;
    warm.seed = seeds.Next();
    warm.clock = config_.clock;
    warm_channels_.push_back(
        std::make_unique<RpcChannel>(ports_[node], warm));

    std::vector<std::unique_ptr<RpcChannel>> pool;
    for (int c = 0; c < config_.channels_per_node; ++c) {
      RpcChannelConfig data;
      data.default_deadline_ms = config_.match_deadline_ms;
      data.reconnect = config_.reconnect;
      data.seed = seeds.Next();
      data.clock = config_.clock;
      pool.push_back(std::make_unique<RpcChannel>(ports_[node], data));
    }
    data_channels_.push_back(std::move(pool));
    rr_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    inflight_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }

  auto& reg = obs::MetricsRegistry::Default();
  m_requests_ = reg.GetCounter("dist.route.requests.total",
                               "Match requests routed by the coordinator",
                               "requests");
  m_rescued_ = reg.GetCounter(
      "dist.route.rescued.total",
      "Requests served outside their home replica group because the whole "
      "group was dead",
      "requests");
  m_promoted_ = reg.GetCounter(
      "dist.replica.promotions.total",
      "Requests served by a hot standby because the group primary was dead",
      "requests");
  m_shed_ = reg.GetCounter(
      "dist.route.shed.total",
      "Requests shed Unavailable (fleet unroutable or node over capacity)",
      "requests");
  m_warm_sent_ = reg.GetCounter(
      "dist.replica.warm.sent.total",
      "Served requests mirrored to standby replicas as warm traffic",
      "requests");
  m_warm_dropped_ = reg.GetCounter(
      "dist.replica.warm.dropped.total",
      "Warm mirrors dropped because the warm queue was full (best-effort "
      "by design)",
      "requests");
  m_hb_sent_ = reg.GetCounter("dist.heartbeat.sent.total",
                              "Heartbeat pings sent to workers", "probes");
  m_reload_ok_ = reg.GetCounter("dist.reload.node.success.total",
                                "Per-node checkpoint pushes that succeeded",
                                "nodes");
  m_reload_rollback_ = reg.GetCounter(
      "dist.reload.node.rollback.total",
      "Per-node checkpoint pushes that failed (worker rolled back)",
      "nodes");
  m_reload_resume_ = reg.GetCounter(
      "dist.reload.resume.total",
      "Rolling reloads resumed from persisted state after a coordinator "
      "restart",
      "rolls");

  RestoreFromJournal();
}

Coordinator::~Coordinator() { Stop(); }

void Coordinator::RestoreFromJournal() {
  if (config_.state_dir.empty()) return;
  ::mkdir(config_.state_dir.c_str(), 0755);  // EEXIST is fine
  journal_ = std::make_unique<CoordinatorJournal>(config_.state_dir,
                                                  config_.fault);
  Result<CoordinatorState> state =
      journal_->Load(num_nodes(), groups_.replication_factor());
  if (!state.ok()) {
    if (state.status().code() != StatusCode::kNotFound) {
      DADER_LOG(Error) << "dist coordinator: persisted state unusable ("
                       << state.status().ToString() << "); starting fresh";
    }
    return;
  }
  const CoordinatorState& restored = state.ValueOrDie();
  membership_.Restore(restored.membership);
  reload_epoch_.store(restored.reload_epoch);
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_ = restored.pending_reload;
  }
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    last_journaled_ = restored.membership;
  }
  DADER_LOG(Info) << "dist coordinator: resumed from " << config_.state_dir
                  << " (reload epoch " << restored.reload_epoch
                  << (restored.pending_reload.active
                          ? ", roll in flight)"
                          : ")");
}

CoordinatorState Coordinator::CurrentState() const {
  CoordinatorState state;
  state.num_nodes = num_nodes();
  state.replication_factor = groups_.replication_factor();
  state.reload_epoch = reload_epoch_.load();
  state.membership = membership_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    state.pending_reload = pending_;
  }
  return state;
}

void Coordinator::JournalMembership() {
  if (journal_ == nullptr) return;
  std::vector<NodeSnapshot> snap = membership_.Snapshot();
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (SameMembership(snap, last_journaled_)) return;
  Status appended = journal_->AppendMembership(snap);
  if (!appended.ok()) {
    DADER_LOG(Error) << "dist coordinator: membership journal append "
                        "failed: "
                     << appended.ToString();
    return;
  }
  last_journaled_ = std::move(snap);
  if (++appends_since_checkpoint_ >= config_.checkpoint_every) {
    Status cp = journal_->Checkpoint(CurrentState());
    if (!cp.ok()) {
      DADER_LOG(Error) << "dist coordinator: checkpoint failed: "
                       << cp.ToString();
    }
    appends_since_checkpoint_ = 0;
  }
}

void Coordinator::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  hb_thread_ = std::thread([this] { HeartbeatLoop(); });
  if (config_.mirror_warm && groups_.replication_factor() > 1) {
    warm_thread_ = std::thread([this] { WarmLoop(); });
  }
}

void Coordinator::Stop() {
  running_.store(false);
  warm_cv_.notify_all();
  if (hb_thread_.joinable()) hb_thread_.join();
  if (warm_thread_.joinable()) warm_thread_.join();
  if (journal_ != nullptr) {
    // Final checkpoint: the next coordinator resumes from here (including
    // any roll still in flight).
    std::lock_guard<std::mutex> lock(journal_mu_);
    Status cp = journal_->Checkpoint(CurrentState());
    if (!cp.ok()) {
      DADER_LOG(Error) << "dist coordinator: final checkpoint failed: "
                       << cp.ToString();
    }
    appends_since_checkpoint_ = 0;
  }
}

void Coordinator::HeartbeatLoop() {
  util::Clock* clock = config_.clock ? config_.clock : util::Clock::Real();
  while (running_.load()) {
    HeartbeatTick();
    clock->SleepForMs(config_.heartbeat_period_ms);
  }
}

void Coordinator::HeartbeatTick() {
  obs::TraceSpan tick("dist.heartbeat.tick");
  for (int node = 0; node < num_nodes(); ++node) {
    m_hb_sent_->Increment();
    Result<Frame> pong = hb_channels_[static_cast<size_t>(node)]->Call(
        FrameType::kPing, "", config_.heartbeat_deadline_ms);
    if (pong.ok() && pong.ValueOrDie().type == FrameType::kPong) {
      membership_.OnHeartbeatOk(node);
    } else {
      membership_.OnHeartbeatMiss(node);
    }
  }
  // Recovering nodes answer pings but earn traffic back through the
  // warm-up canary: an end-to-end forward on the worker's live model.
  for (int node = 0; node < num_nodes(); ++node) {
    if (membership_.state(node) != NodeState::kCanary) continue;
    obs::TraceSpan readmit("dist.readmit");
    Result<Frame> reply = hb_channels_[static_cast<size_t>(node)]->Call(
        FrameType::kCanary, "", config_.canary_deadline_ms);
    bool ok = false;
    if (reply.ok() && reply.ValueOrDie().type == FrameType::kCanaryReply) {
      Status inner = Status::OK();
      ok = DecodeStatus(reply.ValueOrDie().payload, &inner).ok() &&
           inner.ok();
    }
    if (ok) {
      membership_.OnCanaryOk(node);
    } else {
      membership_.OnCanaryFailure(node);
    }
  }
  // Persist what this tick learned (canary streaks included) so a
  // restarted coordinator resumes the same view.
  JournalMembership();
}

int Coordinator::RescueNode(uint64_t hash,
                            const std::vector<bool>& skip) const {
  // Deterministic probe sequence over the pair's own hash: while the
  // membership view is stable every client maps a pair to the same
  // survivor, so per-pair stickiness (and its cache locality) survives a
  // group death.
  const int n = num_nodes();
  for (int probe = 1; probe <= 8 * n; ++probe) {
    const int cand = static_cast<int>(
        Mix(hash + static_cast<uint64_t>(probe)) % static_cast<uint64_t>(n));
    if (skip[static_cast<size_t>(cand)]) continue;
    if (!membership_.routable(cand)) continue;
    return cand;
  }
  // The probe sequence can (rarely) keep landing on skipped nodes; fall
  // back to a deterministic pick from whatever is routable.
  std::vector<int> routable = membership_.RoutableNodes();
  for (size_t i = 0; i < routable.size(); ++i) {
    const int cand =
        routable[(hash + i) % routable.size()];
    if (!skip[static_cast<size_t>(cand)]) return cand;
  }
  return -1;
}

int Coordinator::NextCandidate(uint64_t hash, int group,
                               const std::vector<bool>& tried) const {
  // Promotion order first: the standbys hold mirrored weights and warmed
  // caches, so they are strictly better rescuers than a random survivor.
  for (const int member : groups_.members(group)) {
    if (tried[static_cast<size_t>(member)]) continue;
    if (!membership_.routable(member)) continue;
    return member;
  }
  std::vector<bool> skip = tried;
  for (const int member : groups_.members(group)) {
    skip[static_cast<size_t>(member)] = true;
  }
  return RescueNode(hash, skip);
}

RouteDecision Coordinator::Route(const serve::MatchRequest& request) const {
  RouteDecision decision;
  const int group =
      serve::ShardForPair(request.a, request.b, groups_.num_groups());
  const std::vector<int>& members = groups_.members(group);
  decision.home = members[0];
  for (size_t rank = 0; rank < members.size(); ++rank) {
    if (membership_.routable(members[rank])) {
      decision.node = members[rank];
      decision.promoted = rank > 0;
      return decision;
    }
  }
  std::vector<bool> skip(static_cast<size_t>(num_nodes()), false);
  for (const int member : members) skip[static_cast<size_t>(member)] = true;
  decision.node =
      RescueNode(serve::PairKeyHash(request.a, request.b), skip);
  decision.rescued = decision.node >= 0;
  return decision;
}

serve::MatchResponse Coordinator::Match(serve::MatchRequest request) {
  m_requests_->Increment();
  serve::MatchResponse response;

  const int group =
      serve::ShardForPair(request.a, request.b, groups_.num_groups());
  const RouteDecision first = Route(request);
  if (first.node < 0) {
    shed_.fetch_add(1);
    m_shed_->Increment();
    response.status =
        Status::Unavailable("no routable worker node (fleet down)");
    return response;
  }

  const uint64_t hash = serve::PairKeyHash(request.a, request.b);
  const std::string payload = EncodeMatchRequest(request);
  std::vector<bool> tried(static_cast<size_t>(num_nodes()), false);
  int node = first.node;
  Status last = Status::Unavailable("never attempted");

  const int max_attempts = groups_.replication_factor() + kMaxFailovers;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto& inflight = *inflight_[static_cast<size_t>(node)];
    if (inflight.fetch_add(1) >= config_.max_inflight_per_node) {
      // Past capacity we shed rather than dog-pile the rest of the fleet;
      // the worker's own admission queue sheds its overload the same way.
      inflight.fetch_sub(1);
      shed_.fetch_add(1);
      m_shed_->Increment();
      response.status = Status::Unavailable(
          "worker node " + std::to_string(node) + " over capacity");
      return response;
    }
    Result<Frame> reply =
        DataChannel(node).Call(FrameType::kMatch, payload,
                               config_.match_deadline_ms);
    inflight.fetch_sub(1);

    if (reply.ok()) {
      const Frame& frame = reply.ValueOrDie();
      if (frame.type != FrameType::kMatchReply) {
        response.status =
            Status::Internal("unexpected reply frame: " +
                             std::string(FrameTypeName(frame.type)));
        return response;
      }
      Result<serve::MatchResponse> decoded =
          DecodeMatchResponse(frame.payload);
      if (!decoded.ok()) {
        response.status = decoded.status();
        return response;
      }
      routed_.fetch_add(1);
      const bool in_group = groups_.group_of(node) == group;
      if (!in_group) {
        rescued_.fetch_add(1);
        m_rescued_->Increment();
      } else if (node != first.home) {
        promoted_.fetch_add(1);
        m_promoted_->Increment();
      }
      if (in_group && config_.mirror_warm &&
          groups_.replication_factor() > 1) {
        EnqueueWarm(group, node, payload);
      }
      return std::move(decoded).ValueOrDie();
    }

    // Transport failure: evidence for membership (detection must not wait
    // for the next heartbeat tick), then fail over — remaining group
    // members in promotion order, then the rescue permutation.
    last = reply.status();
    membership_.OnHeartbeatMiss(node);
    JournalMembership();
    tried[static_cast<size_t>(node)] = true;
    obs::TraceSpan recovery("dist.recovery");
    const int next = NextCandidate(hash, group, tried);
    if (next < 0) break;
    node = next;
  }

  shed_.fetch_add(1);
  m_shed_->Increment();
  response.status = Status::Unavailable("match rpc failed after failover: " +
                                        last.message());
  return response;
}

void Coordinator::EnqueueWarm(int group, int served_node,
                              const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    if (static_cast<int>(warm_queue_.size()) >=
        config_.warm_queue_capacity) {
      m_warm_dropped_->Increment();
      return;
    }
    warm_queue_.push_back(WarmTask{group, served_node, payload});
  }
  warm_cv_.notify_one();
}

void Coordinator::WarmLoop() {
  while (true) {
    WarmTask task;
    {
      std::unique_lock<std::mutex> lock(warm_mu_);
      warm_cv_.wait(lock, [this] {
        return !warm_queue_.empty() || !running_.load();
      });
      if (warm_queue_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      task = std::move(warm_queue_.front());
      warm_queue_.pop_front();
    }
    for (const int member : groups_.members(task.group)) {
      if (member == task.served_node) continue;
      if (!membership_.routable(member)) continue;
      // Best-effort: a failed warm is not membership evidence (the
      // heartbeat plane owns that) and is not retried — the next served
      // request mirrors again anyway.
      Result<Frame> ack = warm_channels_[static_cast<size_t>(member)]->Call(
          FrameType::kWarm, task.payload, config_.match_deadline_ms);
      if (ack.ok() && ack.ValueOrDie().type == FrameType::kWarmAck) {
        warm_sent_.fetch_add(1);
        m_warm_sent_->Increment();
      }
    }
  }
}

std::vector<serve::MatchResponse> Coordinator::MatchBatch(
    std::vector<serve::MatchRequest> requests) {
  const size_t n = requests.size();
  std::vector<serve::MatchResponse> responses(n);
  if (n == 0) return responses;

  // Group request indices by routed node, then fan each node's slice
  // across up to channels_per_node lanes. Match() round-robins the node's
  // channel pool, so concurrent lanes land on distinct connections and
  // genuinely pipeline; failover semantics are Match()'s own.
  std::map<int, std::vector<size_t>> by_node;
  for (size_t i = 0; i < n; ++i) {
    by_node[Route(requests[i]).node].push_back(i);
  }
  std::vector<std::thread> lanes;
  for (const auto& [node, indices] : by_node) {
    const int lane_count =
        node < 0 ? 1
                 : std::min(static_cast<size_t>(config_.channels_per_node),
                            indices.size());
    for (int lane = 0; lane < static_cast<int>(lane_count); ++lane) {
      lanes.emplace_back([this, &requests, &responses, &indices, lane,
                          lane_count] {
        for (size_t k = static_cast<size_t>(lane); k < indices.size();
             k += static_cast<size_t>(lane_count)) {
          const size_t i = indices[k];
          responses[i] = Match(std::move(requests[i]));
        }
      });
    }
  }
  for (std::thread& lane : lanes) lane.join();
  return responses;
}

Status Coordinator::RunReload(uint64_t epoch, const std::string& path) {
  obs::TraceSpan roll("dist.reload.rolling");
  int acks_done = 0;
  for (int node = 0; node < num_nodes(); ++node) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (pending_.active &&
          node < static_cast<int>(pending_.acked.size()) &&
          pending_.acked[static_cast<size_t>(node)]) {
        continue;  // a previous coordinator already landed this node
      }
    }
    if (!membership_.routable(node)) {
      DADER_LOG(Warning) << "dist reload: skipping unroutable node " << node
                         << " (it will canary back in on old weights; "
                            "re-push after it recovers)";
      continue;
    }
    Result<Frame> reply =
        DataChannel(node).Call(FrameType::kReload, path,
                               config_.reload_deadline_ms);
    Status pushed = Status::Unavailable("no reply");
    if (!reply.ok()) {
      pushed = reply.status();
    } else if (reply.ValueOrDie().type != FrameType::kReloadReply) {
      pushed = Status::Internal("unexpected reload reply frame");
    } else {
      Status inner = Status::OK();
      Status wire = DecodeStatus(reply.ValueOrDie().payload, &inner);
      pushed = wire.ok() ? inner : wire;
    }
    if (!pushed.ok()) {
      m_reload_rollback_->Increment();
      // The roll is over (aborted), and the journal must say so — a
      // restarted coordinator must not resume a roll whose checkpoint a
      // worker just refused.
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        pending_ = PendingReload{};
      }
      if (journal_ != nullptr) {
        std::lock_guard<std::mutex> lock(journal_mu_);
        Status logged = journal_->AppendReloadEnd(epoch, /*ok=*/false);
        if (!logged.ok()) {
          DADER_LOG(Error) << "dist reload: journal append failed: "
                           << logged.ToString();
        }
      }
      return Status(pushed.code(),
                    "rolling reload aborted at node " + std::to_string(node) +
                        " (worker rolled back): " + pushed.message());
    }
    m_reload_ok_->Increment();
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (pending_.active &&
          node < static_cast<int>(pending_.acked.size())) {
        pending_.acked[static_cast<size_t>(node)] = true;
      }
    }
    if (journal_ != nullptr) {
      std::lock_guard<std::mutex> lock(journal_mu_);
      Status logged = journal_->AppendReloadAck(epoch, node);
      if (!logged.ok()) {
        DADER_LOG(Error) << "dist reload: journal append failed: "
                         << logged.ToString();
      }
    }
    ++acks_done;
    if (config_.fault != nullptr &&
        config_.fault->ShouldFire(FaultKind::kCoordinatorCrash,
                                  /*epoch=*/-1, acks_done - 1)) {
      // The injected coordinator death: the roll stops here with the end
      // record never journaled, exactly what a real crash between node
      // acks leaves behind. The pending state survives for the successor.
      DADER_LOG(Warning) << "dist reload: injected coordinator crash after "
                         << acks_done << " ack(s)";
      return Status::Unavailable(
          "coordinator crashed mid-reload (injected) after " +
          std::to_string(acks_done) + " acks");
    }
  }
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_ = PendingReload{};
  }
  if (journal_ != nullptr) {
    std::lock_guard<std::mutex> lock(journal_mu_);
    Status logged = journal_->AppendReloadEnd(epoch, /*ok=*/true);
    if (!logged.ok()) {
      DADER_LOG(Error) << "dist reload: journal append failed: "
                       << logged.ToString();
    }
  }
  return Status::OK();
}

Status Coordinator::RollingReload(const std::string& path) {
  const uint64_t epoch = reload_epoch_.fetch_add(1) + 1;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.active = true;
    pending_.reload_epoch = epoch;
    pending_.checkpoint_path = path;
    pending_.acked.assign(static_cast<size_t>(num_nodes()), false);
  }
  if (journal_ != nullptr) {
    std::lock_guard<std::mutex> lock(journal_mu_);
    Status logged = journal_->AppendReloadStart(epoch, path);
    if (!logged.ok()) {
      DADER_LOG(Error) << "dist reload: journal append failed: "
                       << logged.ToString();
    }
  }
  return RunReload(epoch, path);
}

bool Coordinator::HasPendingReload() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.active;
}

Status Coordinator::ResumePendingReload() {
  uint64_t epoch = 0;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (!pending_.active) {
      return Status::InvalidArgument("no pending reload to resume");
    }
    epoch = pending_.reload_epoch;
    path = pending_.checkpoint_path;
  }
  m_reload_resume_->Increment();
  DADER_LOG(Info) << "dist reload: resuming roll " << epoch
                  << " from persisted state";
  return RunReload(epoch, path);
}

RpcChannel& Coordinator::DataChannel(int node) {
  auto& pool = data_channels_[static_cast<size_t>(node)];
  const int64_t pick = rr_[static_cast<size_t>(node)]->fetch_add(1);
  return *pool[static_cast<size_t>(pick % static_cast<int64_t>(pool.size()))];
}

}  // namespace dader::dist
