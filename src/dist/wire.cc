#include "dist/wire.h"

#include <cstring>

namespace dader::dist {

namespace {

// Header after the length prefix: type byte + request id.
constexpr size_t kHeaderBytes = 1 + 8;

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kPing) &&
         t <= static_cast<uint8_t>(FrameType::kWarmAck);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing:
      return "ping";
    case FrameType::kPong:
      return "pong";
    case FrameType::kMatch:
      return "match";
    case FrameType::kMatchReply:
      return "match-reply";
    case FrameType::kReload:
      return "reload";
    case FrameType::kReloadReply:
      return "reload-reply";
    case FrameType::kCanary:
      return "canary";
    case FrameType::kCanaryReply:
      return "canary-reply";
    case FrameType::kWarm:
      return "warm";
    case FrameType::kWarmAck:
      return "warm-ack";
  }
  return "?";
}

void WireWriter::PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

Status WireReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("wire payload truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(data_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::GetU8() {
  DADER_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WireReader::GetU32() {
  DADER_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  DADER_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<float> WireReader::GetF32() {
  uint32_t bits = 0;
  DADER_ASSIGN_OR_RETURN(bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> WireReader::GetF64() {
  uint64_t bits = 0;
  DADER_ASSIGN_OR_RETURN(bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString() {
  uint32_t len = 0;
  DADER_ASSIGN_OR_RETURN(len, GetU32());
  if (len > kMaxFrameBytes) {
    return Status::OutOfRange("wire string length " + std::to_string(len) +
                              " exceeds the frame ceiling");
  }
  DADER_RETURN_NOT_OK(Need(len));
  std::string s = data_.substr(pos_, len);
  pos_ += len;
  return s;
}

std::string EncodeFrame(const Frame& frame) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(kHeaderBytes + frame.payload.size()));
  w.PutU8(static_cast<uint8_t>(frame.type));
  w.PutU64(frame.request_id);
  std::string out = w.Take();
  out.append(frame.payload);
  return out;
}

Result<Frame> DecodeFrame(const std::string& data) {
  WireReader r(data);
  uint32_t length = 0;
  DADER_ASSIGN_OR_RETURN(length, r.GetU32());
  if (length < kHeaderBytes || length > kMaxFrameBytes) {
    return Status::OutOfRange("frame length " + std::to_string(length) +
                              " outside [" + std::to_string(kHeaderBytes) +
                              ", " + std::to_string(kMaxFrameBytes) + "]");
  }
  if (r.remaining() != length) {
    return Status::OutOfRange("frame body truncated: length prefix says " +
                              std::to_string(length) + ", buffer holds " +
                              std::to_string(r.remaining()));
  }
  uint8_t type = 0;
  DADER_ASSIGN_OR_RETURN(type, r.GetU8());
  if (!KnownType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(static_cast<int>(type)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  DADER_ASSIGN_OR_RETURN(frame.request_id, r.GetU64());
  frame.payload = data.substr(4 + kHeaderBytes);
  return frame;
}

namespace {

void PutRecord(WireWriter* w, const data::Record& record) {
  w->PutU32(static_cast<uint32_t>(record.size()));
  for (const std::string& value : record.values()) w->PutString(value);
}

Result<data::Record> GetRecord(WireReader* r) {
  uint32_t n = 0;
  DADER_ASSIGN_OR_RETURN(n, r->GetU32());
  if (n > 1024) {
    return Status::OutOfRange("record arity " + std::to_string(n) +
                              " implausible; corrupt payload");
  }
  std::vector<std::string> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string v;
    DADER_ASSIGN_OR_RETURN(v, r->GetString());
    values.push_back(std::move(v));
  }
  return data::Record(std::move(values));
}

}  // namespace

std::string EncodeMatchRequest(const serve::MatchRequest& request) {
  WireWriter w;
  PutRecord(&w, request.a);
  PutRecord(&w, request.b);
  w.PutF64(request.deadline_ms);
  return w.Take();
}

Result<serve::MatchRequest> DecodeMatchRequest(const std::string& payload) {
  WireReader r(payload);
  serve::MatchRequest request;
  DADER_ASSIGN_OR_RETURN(request.a, GetRecord(&r));
  DADER_ASSIGN_OR_RETURN(request.b, GetRecord(&r));
  DADER_ASSIGN_OR_RETURN(request.deadline_ms, r.GetF64());
  return request;
}

std::string EncodeMatchResponse(const serve::MatchResponse& response) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(response.status.code()));
  w.PutString(response.status.message());
  w.PutU32(static_cast<uint32_t>(response.label + 1));  // -1 -> 0
  w.PutF32(response.prob);
  w.PutU8(response.degraded ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(response.attempts));
  w.PutF64(response.queue_ms);
  w.PutF64(response.total_ms);
  return w.Take();
}

Result<serve::MatchResponse> DecodeMatchResponse(const std::string& payload) {
  WireReader r(payload);
  serve::MatchResponse response;
  uint32_t code = 0;
  std::string message;
  DADER_ASSIGN_OR_RETURN(code, r.GetU32());
  DADER_ASSIGN_OR_RETURN(message, r.GetString());
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown status code on the wire: " +
                                   std::to_string(code));
  }
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  uint32_t label = 0;
  DADER_ASSIGN_OR_RETURN(label, r.GetU32());
  response.label = static_cast<int>(label) - 1;
  DADER_ASSIGN_OR_RETURN(response.prob, r.GetF32());
  uint8_t degraded = 0;
  DADER_ASSIGN_OR_RETURN(degraded, r.GetU8());
  response.degraded = degraded != 0;
  uint32_t attempts = 0;
  DADER_ASSIGN_OR_RETURN(attempts, r.GetU32());
  response.attempts = static_cast<int>(attempts);
  DADER_ASSIGN_OR_RETURN(response.queue_ms, r.GetF64());
  DADER_ASSIGN_OR_RETURN(response.total_ms, r.GetF64());
  return response;
}

std::string EncodeStatus(const Status& status) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status DecodeStatus(const std::string& payload, Status* decoded) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  DADER_ASSIGN_OR_RETURN(code, r.GetU32());
  DADER_ASSIGN_OR_RETURN(message, r.GetString());
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown status code on the wire: " +
                                   std::to_string(code));
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

}  // namespace dader::dist
