#include "dist/worker.h"

#include <utility>

#include "util/clock.h"
#include "util/logging.h"

namespace dader::dist {

Result<std::unique_ptr<WorkerNode>> WorkerNode::Create(
    WorkerNodeConfig config, data::Schema schema_a, data::Schema schema_b,
    core::DaModel primary, std::unique_ptr<core::DaModel> fallback) {
  if (config.node_id < 0) {
    return Status::InvalidArgument("worker node_id must be >= 0");
  }
  // The inner service is shard `node_id` of the fleet: its serve.shard.*
  // series and extractor-level fault specs scope by the same index the
  // node-level kinds use.
  config.serve.shard_index = config.node_id;
  auto service = std::make_unique<serve::MatchService>(
      config.serve, std::move(schema_a), std::move(schema_b),
      std::move(primary), std::move(fallback));
  return std::unique_ptr<WorkerNode>(
      new WorkerNode(std::move(config), std::move(service)));
}

WorkerNode::WorkerNode(WorkerNodeConfig config,
                       std::unique_ptr<serve::MatchService> service)
    : config_(config),
      service_(std::move(service)),
      server_([this](const Frame& frame, RpcServerConnection* conn) {
        return HandleFrame(frame, conn);
      }) {
  auto& reg = obs::MetricsRegistry::Default();
  m_requests_ = reg.GetCounter("dist.worker.requests.total",
                               "Match frames handled by worker nodes",
                               "requests");
  m_faults_ = reg.GetCounter("dist.worker.faults.total",
                             "Injected node faults fired on worker nodes",
                             "faults");
}

WorkerNode::~WorkerNode() { Stop(); }

Status WorkerNode::Start(int port) {
  hung_.store(false);
  DADER_RETURN_NOT_OK(server_.Start(port));
  port_ = server_.port();
  return Status::OK();
}

void WorkerNode::StopServer() {
  {
    std::lock_guard<std::mutex> lock(crash_mu_);
    if (crash_thread_.joinable()) crash_thread_.join();
  }
  server_.Stop();
}

Status WorkerNode::Restart() {
  StopServer();  // reaps a pending injected crash before rebinding
  hung_.store(false);
  return Start(port_);
}

void WorkerNode::Stop() {
  StopServer();
  service_->Stop();
}

void WorkerNode::CrashAsync() {
  bool expected = false;
  if (!crash_pending_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(crash_mu_);
  if (crash_thread_.joinable()) crash_thread_.join();  // a previous crash
  crash_thread_ = std::thread([this] {
    server_.Stop();
    crash_pending_.store(false);
  });
}

bool WorkerNode::HandleFrame(const Frame& frame, RpcServerConnection* conn) {
  const int node = config_.node_id;
  const int step = static_cast<int>(frames_.fetch_add(1));
  FaultInjector* fault = config_.fault;
  util::Clock* clock = config_.clock ? config_.clock : util::Clock::Real();

  if (fault != nullptr) {
    if (fault->ShouldFire(FaultKind::kNodeCrash, /*epoch=*/-1, step, node)) {
      faults_fired_.fetch_add(1);
      m_faults_->Increment();
      DADER_LOG(Warning) << "dist worker " << node
                         << ": injected node-crash at frame " << step;
      CrashAsync();
      return false;  // close this connection now; the rest follow
    }
    if (fault->ShouldFire(FaultKind::kNodeHang, /*epoch=*/-1, step, node)) {
      faults_fired_.fetch_add(1);
      m_faults_->Increment();
      DADER_LOG(Warning) << "dist worker " << node
                         << ": injected node-hang at frame " << step;
      hung_.store(true);
    }
  }
  if (hung_.load()) return true;  // swallow everything until Restart()

  switch (frame.type) {
    case FrameType::kPing: {
      const int beat = static_cast<int>(heartbeats_.fetch_add(1));
      if (fault != nullptr && fault->ShouldFire(FaultKind::kHeartbeatDrop,
                                                /*epoch=*/-1, beat, node)) {
        faults_fired_.fetch_add(1);
        m_faults_->Increment();
        return true;  // serve on, but look sick
      }
      Frame pong;
      pong.type = FrameType::kPong;
      pong.request_id = frame.request_id;
      return conn->Send(pong).ok();
    }

    case FrameType::kMatch: {
      if (fault != nullptr &&
          fault->ShouldFire(FaultKind::kConnReset, /*epoch=*/-1, step, node)) {
        faults_fired_.fetch_add(1);
        m_faults_->Increment();
        conn->ShutdownNow();
        return false;
      }
      requests_served_.fetch_add(1);
      m_requests_->Increment();
      Frame reply;
      reply.type = FrameType::kMatchReply;
      reply.request_id = frame.request_id;
      Result<serve::MatchRequest> request = DecodeMatchRequest(frame.payload);
      serve::MatchResponse response;
      if (request.ok()) {
        response = service_->Match(std::move(request).ValueOrDie());
      } else {
        response.status = request.status();
      }
      if (fault != nullptr &&
          fault->ShouldFire(FaultKind::kSlowNode, /*epoch=*/-1, step, node)) {
        faults_fired_.fetch_add(1);
        m_faults_->Increment();
        clock->SleepForMs(fault->param_ms(FaultKind::kSlowNode));
      }
      reply.payload = EncodeMatchResponse(response);
      return conn->Send(reply).ok();
    }

    case FrameType::kWarm: {
      // Standby warming: run the full match path so the feature cache and
      // batcher see the same traffic the primary sees, but the answer is
      // nobody's business — the coordinator only wants the ack.
      Frame reply;
      reply.type = FrameType::kWarmAck;
      reply.request_id = frame.request_id;
      Result<serve::MatchRequest> request = DecodeMatchRequest(frame.payload);
      if (request.ok()) {
        (void)service_->Match(std::move(request).ValueOrDie());
      }
      return conn->Send(reply).ok();
    }

    case FrameType::kCanary: {
      Frame reply;
      reply.type = FrameType::kCanaryReply;
      reply.request_id = frame.request_id;
      reply.payload = EncodeStatus(service_->CanaryCheck());
      return conn->Send(reply).ok();
    }

    case FrameType::kReload: {
      Frame reply;
      reply.type = FrameType::kReloadReply;
      reply.request_id = frame.request_id;
      // Payload is the checkpoint path; the worker's own staged reload
      // validates, canaries, and rolls back locally on failure.
      reply.payload = EncodeStatus(service_->ReloadModel(frame.payload));
      return conn->Send(reply).ok();
    }

    case FrameType::kPong:
    case FrameType::kMatchReply:
    case FrameType::kReloadReply:
    case FrameType::kCanaryReply:
    case FrameType::kWarmAck:
      // Reply types have no business arriving at a server; a peer that
      // sends them is confused enough to drop.
      DADER_LOG(Warning) << "dist worker " << node
                         << ": unexpected reply-type frame "
                         << FrameTypeName(frame.type);
      return false;
  }
  return false;
}

}  // namespace dader::dist
