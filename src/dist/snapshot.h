// Durable coordinator state: atomic CRC-tagged snapshots + an append-only
// event journal, so a restarted coordinator resumes instead of re-learning
// the fleet.
//
// PR 6's coordinator held all membership/epoch state in RAM; a coordinator
// crash re-canaried the world (every node back through the warm-up gauntlet,
// a paused rolling reload lost forever). This unit persists three things:
//
//   * the membership table — per-node state, miss count, AND canary streak,
//     so a node that was two probes into re-admission stays two probes in;
//   * the reload epoch and any in-flight rolling reload (checkpoint path +
//     per-node ack set), so a restarted coordinator pushes only the nodes
//     the dead one never reached;
//   * the replica-group shape (roster size, replication factor), rejected
//     at load when it does not match the restarting coordinator's config —
//     resuming someone else's fleet is worse than starting fresh.
//
// Durability layering (the SaveTensors v2 pattern, one level up):
//
//   state.snap       full CoordinatorState; magic + version + CRC-32
//                    footer, written tmp-then-rename so a reader never
//                    sees a half-written file
//   state.snap.prev  the previous generation, rotated on every checkpoint
//   state.journal    append-only records since the *previous* snapshot;
//                    each record is [u32 len][u32 crc][payload] so a torn
//                    tail is detected and replay stops cleanly before it
//
// Load order: current snapshot; if missing/corrupt (kSnapshotTorn fault, a
// crash mid-rename, a flipped bit) fall back to the previous snapshot —
// never to an empty state while any generation survives. Journal records
// carry monotonic sequence numbers and replay is idempotent, so whichever
// snapshot loads, records with seq <= its last_seq are skipped and the
// rest rebuild the lost tail. The journal is rewritten (not truncated) at
// checkpoint time to keep only records the .prev generation still needs.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dist/membership.h"
#include "obs/metrics.h"
#include "util/fault.h"
#include "util/status.h"

namespace dader::dist {

/// \brief An in-flight rolling reload (present when a coordinator died
/// between node acks).
struct PendingReload {
  bool active = false;
  uint64_t reload_epoch = 0;  ///< which roll this is (monotonic)
  std::string checkpoint_path;
  std::vector<bool> acked;  ///< per-node: this roll already landed here
};

/// \brief Everything a restarted coordinator needs to resume.
struct CoordinatorState {
  int num_nodes = 0;
  int replication_factor = 1;
  uint64_t reload_epoch = 0;  ///< last roll started (0 = never)
  std::vector<NodeSnapshot> membership;
  PendingReload pending_reload;
  uint64_t last_seq = 0;  ///< journal sequence this state includes
};

/// \brief Writes `state` to `path` atomically (tmp + rename), CRC-tagged.
Status SaveCoordinatorSnapshot(const std::string& path,
                               const CoordinatorState& state);

/// \brief Reads a snapshot back; corrupt/torn/missing files are a non-OK
/// status, never a partial state.
Result<CoordinatorState> LoadCoordinatorSnapshot(const std::string& path);

/// \brief The coordinator's durable store: snapshot rotation + journal.
///
/// Thread-compatibility: the coordinator serializes all writes through its
/// own journal mutex here; Load() runs before any writer exists.
class CoordinatorJournal {
 public:
  /// \param dir directory for state.snap / state.snap.prev / state.journal
  ///   (must exist; the coordinator owns creating it).
  /// \param fault optional injector for kSnapshotTorn; null = no faults.
  CoordinatorJournal(std::string dir, FaultInjector* fault = nullptr);
  ~CoordinatorJournal();

  CoordinatorJournal(const CoordinatorJournal&) = delete;
  CoordinatorJournal& operator=(const CoordinatorJournal&) = delete;

  /// \brief Replays persisted state: best available snapshot + journal
  /// records past it. NotFound when no generation exists (first boot).
  /// `expected_nodes`/`expected_replication` guard against resuming a
  /// different fleet's state.
  Result<CoordinatorState> Load(int expected_nodes, int expected_replication);

  /// \brief Appends one membership record (the full table — a handful of
  /// bytes — so replay needs no per-event diffing).
  Status AppendMembership(const std::vector<NodeSnapshot>& nodes);

  /// \brief Journals the start of rolling reload `reload_epoch` pushing
  /// `checkpoint_path`.
  Status AppendReloadStart(uint64_t reload_epoch,
                           const std::string& checkpoint_path);

  /// \brief Journals "node acked this roll" — the resume cursor.
  Status AppendReloadAck(uint64_t reload_epoch, int node);

  /// \brief Journals the end of a roll (ok or aborted); clears the
  /// pending-reload state on replay.
  Status AppendReloadEnd(uint64_t reload_epoch, bool ok);

  /// \brief Writes a full snapshot (rotating the previous generation) and
  /// compacts the journal down to records the .prev generation still
  /// needs. `state.last_seq` is stamped here.
  Status Checkpoint(CoordinatorState state);

  const std::string& dir() const { return dir_; }
  uint64_t next_seq() const { return next_seq_; }

  /// \brief Snapshot file paths (exposed for tests and fault tooling).
  std::string snap_path() const { return dir_ + "/state.snap"; }
  std::string prev_snap_path() const { return dir_ + "/state.snap.prev"; }
  std::string journal_path() const { return dir_ + "/state.journal"; }

 private:
  Status AppendRecord(const std::string& payload);
  Status OpenJournalForAppend();

  std::string dir_;
  FaultInjector* fault_;
  std::FILE* journal_ = nullptr;
  uint64_t next_seq_ = 1;
  uint64_t current_snap_seq_ = 0;  ///< last_seq of the on-disk state.snap
  uint64_t prev_last_seq_ = 0;     ///< last_seq of the .prev generation
  int checkpoints_ = 0;            ///< step coordinate for kSnapshotTorn

  obs::Counter* m_snapshot_writes_;
  obs::Counter* m_snapshot_fallback_;
  obs::Counter* m_journal_records_;
  obs::Counter* m_journal_replayed_;
  obs::Counter* m_journal_torn_;
};

}  // namespace dader::dist
