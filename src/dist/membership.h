// Worker-membership state machine of the distributed control plane.
//
// The coordinator probes every worker on a fixed heartbeat cadence and
// feeds the outcomes into this table. Per node:
//
//             misses >= suspect_after        misses >= dead_after
//   kAlive ───────────────────────▶ kSuspect ─────────────────▶ kDead
//     ▲                                │                           │
//     │            heartbeat ok        │                           │ heartbeat ok
//     ├────────────────────────────────┘                           ▼
//     │      canary successes >= readmit_canary_successes       kCanary
//     └────────────────────────────────────────────────────────────┘
//              (any canary failure or heartbeat miss → kDead)
//
// Degrade-don't-die routing reads exactly one bit per node — routable(), true
// for kAlive and kSuspect. A SUSPECT node keeps its traffic (one dropped
// heartbeat must not reshuffle the key space); only a DEAD node's keys are
// rescued to survivors. A recovered node answers heartbeats again, which
// moves it to kCanary: it still gets no regular traffic until the
// coordinator's warm-up canary probes (MatchService::CanaryCheck over RPC)
// pass `readmit_canary_successes` times in a row — a node that can ping but
// not serve stays out of the rotation.
//
// The table never talks to sockets itself; the coordinator's heartbeat loop
// drives it, and unit tests drive it directly (no threads, no clock — state
// depends only on the event sequence).

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dader::dist {

/// \brief Node health states (see file comment).
enum class NodeState { kAlive, kSuspect, kDead, kCanary };

/// \brief "alive", "suspect", "dead", "canary".
const char* NodeStateName(NodeState state);

/// \brief Thresholds of the membership state machine.
struct MembershipConfig {
  int suspect_after_misses = 2;  ///< consecutive misses: ALIVE -> SUSPECT
  int dead_after_misses = 4;     ///< consecutive misses: -> DEAD
  /// Consecutive warm-up canary successes before a recovered node is
  /// re-admitted to full traffic.
  int readmit_canary_successes = 2;
};

/// \brief One node's full state-machine coordinates, exposed for the
/// coordinator's durable snapshot (dist/snapshot.h). A restored table is
/// indistinguishable from one that lived through the event sequence — a
/// CANARY node keeps its success streak, a SUSPECT node its miss count.
struct NodeSnapshot {
  NodeState state = NodeState::kAlive;
  int misses = 0;
  int canary_successes = 0;
};

/// \brief Thread-safe membership table for a fixed node roster.
class MembershipTable {
 public:
  MembershipTable(int num_nodes, MembershipConfig config);

  /// \brief A heartbeat answered. ALIVE/SUSPECT -> ALIVE; DEAD -> CANARY
  /// (re-admission starts); CANARY stays (only canary probes promote).
  void OnHeartbeatOk(int node);

  /// \brief A heartbeat missed (timeout, reset, or refused connection).
  /// Also reported by the data path on transport failures, so a crashed
  /// node is usually SUSPECT before the next heartbeat tick even fires.
  void OnHeartbeatMiss(int node);

  /// \brief Warm-up canary outcome for a kCanary node. Enough consecutive
  /// successes promote to kAlive; any failure demotes back to kDead.
  void OnCanaryOk(int node);
  void OnCanaryFailure(int node);

  NodeState state(int node) const;

  /// \brief True when the router may send regular traffic (ALIVE/SUSPECT).
  bool routable(int node) const;

  /// \brief Nodes currently routable, in index order.
  std::vector<int> RoutableNodes() const;

  int num_routable() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// \brief Consecutive misses of a node (0 after any success).
  int misses(int node) const;

  /// \brief One consistent read of every node's state-machine coordinates.
  std::vector<NodeSnapshot> Snapshot() const;

  /// \brief Adopts a previously snapshotted view wholesale (coordinator
  /// restart). No transition counters fire — this is resuming, not
  /// transitioning — but the routable gauge is republished. The snapshot
  /// must cover exactly this roster.
  void Restore(const std::vector<NodeSnapshot>& nodes);

 private:
  struct Node {
    NodeState state = NodeState::kAlive;
    int misses = 0;
    int canary_successes = 0;
  };

  // Applies a state change + metrics. Caller holds mu_.
  void TransitionLocked(int node, NodeState to);
  void PublishRoutableLocked();

  MembershipConfig config_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;

  obs::Gauge* m_alive_;
  obs::Counter* m_miss_;
  obs::Counter* m_to_alive_;
  obs::Counter* m_to_suspect_;
  obs::Counter* m_to_dead_;
  obs::Counter* m_to_canary_;
  obs::Counter* m_readmit_;
  obs::Counter* m_readmit_fail_;
};

}  // namespace dader::dist
