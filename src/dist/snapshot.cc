#include "dist/snapshot.h"

#include <cstdio>
#include <utility>

#include "dist/wire.h"
#include "util/io.h"
#include "util/logging.h"

namespace dader::dist {

namespace {

constexpr const char kSnapMagic[] = "DADER_COORD";
constexpr uint32_t kSnapVersion = 1;

// Journal record types.
constexpr uint8_t kRecMembership = 1;
constexpr uint8_t kRecReloadStart = 2;
constexpr uint8_t kRecReloadAck = 3;
constexpr uint8_t kRecReloadEnd = 4;

// A journal record is a full membership table or a reload event — tens of
// bytes. Anything bigger is a corrupt length field.
constexpr uint32_t kMaxRecordBytes = 1u << 16;

Result<NodeState> DecodeNodeState(uint32_t raw) {
  if (raw > static_cast<uint32_t>(NodeState::kCanary)) {
    return Status::InvalidArgument("unknown node state " +
                                   std::to_string(raw) + " in snapshot");
  }
  return static_cast<NodeState>(raw);
}

// Applies one parsed journal record to `state`. Unknown types are a replay
// error (a newer coordinator wrote a record this one cannot honor).
Status ApplyRecord(uint64_t seq, uint8_t type, WireReader* reader,
                   CoordinatorState* state) {
  switch (type) {
    case kRecMembership: {
      DADER_ASSIGN_OR_RETURN(uint32_t n, reader->GetU32());
      if (n != static_cast<uint32_t>(state->num_nodes)) {
        return Status::InvalidArgument(
            "journal membership record covers " + std::to_string(n) +
            " nodes, state has " + std::to_string(state->num_nodes));
      }
      std::vector<NodeSnapshot> nodes;
      nodes.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        DADER_ASSIGN_OR_RETURN(uint32_t raw_state, reader->GetU32());
        DADER_ASSIGN_OR_RETURN(NodeState s, DecodeNodeState(raw_state));
        DADER_ASSIGN_OR_RETURN(uint32_t misses, reader->GetU32());
        DADER_ASSIGN_OR_RETURN(uint32_t canary, reader->GetU32());
        nodes.push_back(
            {s, static_cast<int>(misses), static_cast<int>(canary)});
      }
      state->membership = std::move(nodes);
      break;
    }
    case kRecReloadStart: {
      DADER_ASSIGN_OR_RETURN(uint64_t epoch, reader->GetU64());
      DADER_ASSIGN_OR_RETURN(std::string path, reader->GetString());
      state->reload_epoch = epoch;
      state->pending_reload.active = true;
      state->pending_reload.reload_epoch = epoch;
      state->pending_reload.checkpoint_path = std::move(path);
      state->pending_reload.acked.assign(
          static_cast<size_t>(state->num_nodes), false);
      break;
    }
    case kRecReloadAck: {
      DADER_ASSIGN_OR_RETURN(uint64_t epoch, reader->GetU64());
      DADER_ASSIGN_OR_RETURN(uint32_t node, reader->GetU32());
      if (node >= static_cast<uint32_t>(state->num_nodes)) {
        return Status::InvalidArgument("journal ack for node " +
                                       std::to_string(node) +
                                       " outside the roster");
      }
      if (state->pending_reload.active &&
          state->pending_reload.reload_epoch == epoch) {
        state->pending_reload.acked[node] = true;
      }
      break;
    }
    case kRecReloadEnd: {
      DADER_ASSIGN_OR_RETURN(uint64_t epoch, reader->GetU64());
      DADER_ASSIGN_OR_RETURN(uint8_t ok, reader->GetU8());
      (void)ok;
      if (state->pending_reload.active &&
          state->pending_reload.reload_epoch == epoch) {
        state->pending_reload = PendingReload{};
      }
      break;
    }
    default:
      return Status::InvalidArgument("unknown journal record type " +
                                     std::to_string(type) + " at seq " +
                                     std::to_string(seq));
  }
  state->last_seq = seq;
  return Status::OK();
}

}  // namespace

Status SaveCoordinatorSnapshot(const std::string& path,
                               const CoordinatorState& state) {
  const std::string tmp = path + ".tmp";
  Status write_status = [&]() -> Status {
    DADER_ASSIGN_OR_RETURN(BinaryWriter w,
                           BinaryWriter::Open(tmp, kSnapMagic, kSnapVersion));
    w.WriteU32(static_cast<uint32_t>(state.num_nodes));
    w.WriteU32(static_cast<uint32_t>(state.replication_factor));
    w.WriteU64(state.reload_epoch);
    w.WriteU64(state.last_seq);
    w.WriteU32(static_cast<uint32_t>(state.membership.size()));
    for (const NodeSnapshot& n : state.membership) {
      w.WriteU32(static_cast<uint32_t>(n.state));
      w.WriteU32(static_cast<uint32_t>(n.misses));
      w.WriteU32(static_cast<uint32_t>(n.canary_successes));
    }
    w.WriteU32(state.pending_reload.active ? 1 : 0);
    w.WriteU64(state.pending_reload.reload_epoch);
    w.WriteString(state.pending_reload.checkpoint_path);
    w.WriteU32(static_cast<uint32_t>(state.pending_reload.acked.size()));
    for (const bool acked : state.pending_reload.acked) {
      w.WriteU32(acked ? 1 : 0);
    }
    return w.WriteCrcFooterAndClose();
  }();
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<CoordinatorState> LoadCoordinatorSnapshot(const std::string& path) {
  DADER_ASSIGN_OR_RETURN(BinaryReader r,
                         BinaryReader::Open(path, kSnapMagic, kSnapVersion));
  CoordinatorState state;
  DADER_ASSIGN_OR_RETURN(uint32_t num_nodes, r.ReadU32());
  DADER_ASSIGN_OR_RETURN(uint32_t replication, r.ReadU32());
  state.num_nodes = static_cast<int>(num_nodes);
  state.replication_factor = static_cast<int>(replication);
  DADER_ASSIGN_OR_RETURN(state.reload_epoch, r.ReadU64());
  DADER_ASSIGN_OR_RETURN(state.last_seq, r.ReadU64());
  DADER_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  if (n != num_nodes) {
    return Status::InvalidArgument("snapshot " + path + " claims " +
                                   std::to_string(num_nodes) +
                                   " nodes but carries " + std::to_string(n));
  }
  for (uint32_t i = 0; i < n; ++i) {
    DADER_ASSIGN_OR_RETURN(uint32_t raw_state, r.ReadU32());
    DADER_ASSIGN_OR_RETURN(NodeState s, DecodeNodeState(raw_state));
    DADER_ASSIGN_OR_RETURN(uint32_t misses, r.ReadU32());
    DADER_ASSIGN_OR_RETURN(uint32_t canary, r.ReadU32());
    state.membership.push_back(
        {s, static_cast<int>(misses), static_cast<int>(canary)});
  }
  DADER_ASSIGN_OR_RETURN(uint32_t active, r.ReadU32());
  state.pending_reload.active = active != 0;
  DADER_ASSIGN_OR_RETURN(state.pending_reload.reload_epoch, r.ReadU64());
  DADER_ASSIGN_OR_RETURN(state.pending_reload.checkpoint_path,
                         r.ReadString());
  DADER_ASSIGN_OR_RETURN(uint32_t acked_n, r.ReadU32());
  if (acked_n > num_nodes) {
    return Status::InvalidArgument("snapshot " + path +
                                   " has an oversized ack set");
  }
  for (uint32_t i = 0; i < acked_n; ++i) {
    DADER_ASSIGN_OR_RETURN(uint32_t acked, r.ReadU32());
    state.pending_reload.acked.push_back(acked != 0);
  }
  // Reject any bit-flip before anyone trusts the payload.
  DADER_RETURN_NOT_OK(r.VerifyCrcFooter(path));
  return state;
}

CoordinatorJournal::CoordinatorJournal(std::string dir, FaultInjector* fault)
    : dir_(std::move(dir)), fault_(fault) {
  auto& reg = obs::MetricsRegistry::Default();
  m_snapshot_writes_ = reg.GetCounter(
      "dist.snapshot.writes.total",
      "Coordinator state snapshots written (atomic, CRC-tagged)", "writes");
  m_snapshot_fallback_ = reg.GetCounter(
      "dist.snapshot.fallback.total",
      "Loads that fell back to the previous snapshot generation because the "
      "current one was corrupt or torn",
      "loads");
  m_journal_records_ = reg.GetCounter(
      "dist.snapshot.journal.records.total",
      "Records appended to the coordinator event journal", "records");
  m_journal_replayed_ = reg.GetCounter(
      "dist.snapshot.journal.replayed.total",
      "Journal records replayed on coordinator restart", "records");
  m_journal_torn_ = reg.GetCounter(
      "dist.snapshot.journal.torn.total",
      "Journal replays that hit a torn/corrupt tail record and stopped "
      "cleanly before it",
      "replays");
}

CoordinatorJournal::~CoordinatorJournal() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Status CoordinatorJournal::OpenJournalForAppend() {
  if (journal_ != nullptr) return Status::OK();
  journal_ = std::fopen(journal_path().c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::IOError("cannot open journal " + journal_path());
  }
  return Status::OK();
}

Status CoordinatorJournal::AppendRecord(const std::string& payload) {
  DADER_RETURN_NOT_OK(OpenJournalForAppend());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = UpdateCrc32(0, payload.data(), payload.size());
  char header[8];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    header[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  if (std::fwrite(header, 1, sizeof(header), journal_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), journal_) !=
          payload.size()) {
    return Status::IOError("journal append failed");
  }
  // Flush per record: the journal exists precisely for the crash case.
  if (std::fflush(journal_) != 0) {
    return Status::IOError("journal flush failed");
  }
  m_journal_records_->Increment();
  return Status::OK();
}

Status CoordinatorJournal::AppendMembership(
    const std::vector<NodeSnapshot>& nodes) {
  WireWriter w;
  w.PutU64(next_seq_++);
  w.PutU8(kRecMembership);
  w.PutU32(static_cast<uint32_t>(nodes.size()));
  for (const NodeSnapshot& n : nodes) {
    w.PutU32(static_cast<uint32_t>(n.state));
    w.PutU32(static_cast<uint32_t>(n.misses));
    w.PutU32(static_cast<uint32_t>(n.canary_successes));
  }
  return AppendRecord(w.Take());
}

Status CoordinatorJournal::AppendReloadStart(
    uint64_t reload_epoch, const std::string& checkpoint_path) {
  WireWriter w;
  w.PutU64(next_seq_++);
  w.PutU8(kRecReloadStart);
  w.PutU64(reload_epoch);
  w.PutString(checkpoint_path);
  return AppendRecord(w.Take());
}

Status CoordinatorJournal::AppendReloadAck(uint64_t reload_epoch, int node) {
  WireWriter w;
  w.PutU64(next_seq_++);
  w.PutU8(kRecReloadAck);
  w.PutU64(reload_epoch);
  w.PutU32(static_cast<uint32_t>(node));
  return AppendRecord(w.Take());
}

Status CoordinatorJournal::AppendReloadEnd(uint64_t reload_epoch, bool ok) {
  WireWriter w;
  w.PutU64(next_seq_++);
  w.PutU8(kRecReloadEnd);
  w.PutU64(reload_epoch);
  w.PutU8(ok ? 1 : 0);
  return AppendRecord(w.Take());
}

Result<CoordinatorState> CoordinatorJournal::Load(int expected_nodes,
                                                  int expected_replication) {
  // Best available snapshot generation: current, else previous. A corrupt
  // current generation is survivable evidence, not a reason to re-canary
  // the world.
  CoordinatorState state;
  bool have_snapshot = false;
  if (FileExists(snap_path())) {
    Result<CoordinatorState> current = LoadCoordinatorSnapshot(snap_path());
    if (current.ok()) {
      state = std::move(current).ValueOrDie();
      have_snapshot = true;
    } else {
      DADER_LOG(Warning) << "dist snapshot: current generation unreadable ("
                         << current.status().ToString()
                         << "); trying previous";
      m_snapshot_fallback_->Increment();
    }
  }
  if (!have_snapshot && FileExists(prev_snap_path())) {
    Result<CoordinatorState> prev =
        LoadCoordinatorSnapshot(prev_snap_path());
    if (prev.ok()) {
      state = std::move(prev).ValueOrDie();
      have_snapshot = true;
    } else {
      DADER_LOG(Warning) << "dist snapshot: previous generation unreadable ("
                         << prev.status().ToString() << ")";
    }
  }
  const bool have_journal = FileExists(journal_path());
  if (!have_snapshot && !have_journal) {
    return Status::NotFound("no coordinator state in " + dir_);
  }
  if (!have_snapshot) {
    // Journal-only boot: the coordinator died before its first checkpoint.
    state.num_nodes = expected_nodes;
    state.replication_factor = expected_replication;
    state.membership.assign(static_cast<size_t>(expected_nodes),
                            NodeSnapshot{});
  }
  if (state.num_nodes != expected_nodes ||
      state.replication_factor != expected_replication) {
    return Status::InvalidArgument(
        "persisted coordinator state in " + dir_ + " covers " +
        std::to_string(state.num_nodes) + " nodes x" +
        std::to_string(state.replication_factor) +
        ", this coordinator runs " + std::to_string(expected_nodes) +
        " nodes x" + std::to_string(expected_replication));
  }

  // Replay journal records past the snapshot. A torn tail (crash mid-append)
  // stops the replay cleanly at the last whole record.
  current_snap_seq_ = state.last_seq;
  uint64_t replay_seq = state.last_seq;
  if (have_journal) {
    std::FILE* f = std::fopen(journal_path().c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open journal " + journal_path());
    }
    while (true) {
      unsigned char header[8];
      const size_t got = std::fread(header, 1, sizeof(header), f);
      if (got == 0) break;  // clean EOF
      uint32_t len = 0, crc = 0;
      if (got == sizeof(header)) {
        for (int i = 0; i < 4; ++i) {
          len |= static_cast<uint32_t>(header[i]) << (8 * i);
          crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
        }
      }
      if (got != sizeof(header) || len == 0 || len > kMaxRecordBytes) {
        m_journal_torn_->Increment();
        DADER_LOG(Warning) << "dist journal: torn header at tail; replay "
                              "stops at seq "
                           << replay_seq;
        break;
      }
      std::string payload(len, '\0');
      if (std::fread(payload.data(), 1, len, f) != len ||
          UpdateCrc32(0, payload.data(), payload.size()) != crc) {
        m_journal_torn_->Increment();
        DADER_LOG(Warning) << "dist journal: torn/corrupt record at tail; "
                              "replay stops at seq "
                           << replay_seq;
        break;
      }
      WireReader reader(payload);
      uint64_t seq = 0;
      uint8_t type = 0;
      {
        auto seq_or = reader.GetU64();
        auto type_or = seq_or.ok() ? reader.GetU8() : Result<uint8_t>(
                                                          seq_or.status());
        if (!seq_or.ok() || !type_or.ok()) {
          m_journal_torn_->Increment();
          break;
        }
        seq = seq_or.ValueOrDie();
        type = type_or.ValueOrDie();
      }
      if (seq <= state.last_seq) continue;  // snapshot already covers it
      Status applied = ApplyRecord(seq, type, &reader, &state);
      if (!applied.ok()) {
        std::fclose(f);
        return applied;
      }
      replay_seq = seq;
      m_journal_replayed_->Increment();
    }
    std::fclose(f);
  }
  next_seq_ = std::max(replay_seq, state.last_seq) + 1;
  return state;
}

Status CoordinatorJournal::Checkpoint(CoordinatorState state) {
  state.last_seq = next_seq_ - 1;
  const uint64_t rotated_last_seq = current_snap_seq_;

  // Rotate: the current generation becomes the fallback before the new one
  // exists, so there is never a moment with zero intact generations.
  if (FileExists(snap_path())) {
    if (std::rename(snap_path().c_str(), prev_snap_path().c_str()) != 0) {
      return Status::IOError("cannot rotate " + snap_path() + " to " +
                             prev_snap_path());
    }
  }
  DADER_RETURN_NOT_OK(SaveCoordinatorSnapshot(snap_path(), state));
  m_snapshot_writes_->Increment();
  const int step = checkpoints_++;
  if (fault_ != nullptr &&
      fault_->ShouldFire(FaultKind::kSnapshotTorn, /*epoch=*/-1, step)) {
    // The torn-write fault: the snapshot exists but its payload is damaged,
    // exactly what a crash between write and durable rename leaves behind.
    DADER_LOG(Warning) << "dist snapshot: injected snapshot-torn at write "
                       << step;
    DADER_RETURN_NOT_OK(FaultInjector::CorruptByte(snap_path(), 16));
  }

  // Compact the journal down to what the rotated generation still needs —
  // a fallback load of .prev must find every record past its last_seq.
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  std::vector<std::string> keep;
  if (FileExists(journal_path())) {
    std::FILE* f = std::fopen(journal_path().c_str(), "rb");
    if (f != nullptr) {
      while (true) {
        unsigned char header[8];
        if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) break;
        uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
          len |= static_cast<uint32_t>(header[i]) << (8 * i);
        }
        if (len == 0 || len > kMaxRecordBytes) break;
        std::string payload(len, '\0');
        if (std::fread(payload.data(), 1, len, f) != len) break;
        WireReader reader(payload);
        auto seq_or = reader.GetU64();
        if (!seq_or.ok()) break;
        if (seq_or.ValueOrDie() > rotated_last_seq) {
          keep.push_back(std::string(reinterpret_cast<char*>(header),
                                     sizeof(header)) +
                         payload);
        }
      }
      std::fclose(f);
    }
    const std::string tmp = journal_path() + ".tmp";
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      return Status::IOError("cannot rewrite journal " + journal_path());
    }
    for (const std::string& record : keep) {
      if (std::fwrite(record.data(), 1, record.size(), out) !=
          record.size()) {
        std::fclose(out);
        std::remove(tmp.c_str());
        return Status::IOError("journal compaction write failed");
      }
    }
    if (std::fflush(out) != 0 || std::fclose(out) != 0) {
      std::remove(tmp.c_str());
      return Status::IOError("journal compaction flush failed");
    }
    if (std::rename(tmp.c_str(), journal_path().c_str()) != 0) {
      std::remove(tmp.c_str());
      return Status::IOError("cannot swap compacted journal into place");
    }
  }
  current_snap_seq_ = state.last_seq;
  prev_last_seq_ = rotated_last_seq;
  return Status::OK();
}

}  // namespace dader::dist
