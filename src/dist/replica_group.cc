#include "dist/replica_group.h"

#include "util/check.h"

namespace dader::dist {

Result<ReplicaGroupTable> ReplicaGroupTable::Create(int num_nodes,
                                                   int replication_factor) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("replica groups need a positive roster");
  }
  if (replication_factor <= 0) {
    return Status::InvalidArgument("replication factor must be >= 1");
  }
  if (num_nodes % replication_factor != 0) {
    return Status::InvalidArgument(
        "roster of " + std::to_string(num_nodes) +
        " nodes does not divide into groups of " +
        std::to_string(replication_factor));
  }
  return ReplicaGroupTable(num_nodes, replication_factor);
}

ReplicaGroupTable::ReplicaGroupTable(int num_nodes, int replication_factor)
    : num_nodes_(num_nodes),
      replication_factor_(replication_factor),
      num_groups_(num_nodes / replication_factor) {
  members_.resize(static_cast<size_t>(num_groups_));
  for (int group = 0; group < num_groups_; ++group) {
    for (int rank = 0; rank < replication_factor_; ++rank) {
      members_[static_cast<size_t>(group)].push_back(group +
                                                     rank * num_groups_);
    }
  }
}

const std::vector<int>& ReplicaGroupTable::members(int group) const {
  DADER_CHECK_GE(group, 0);
  DADER_CHECK_LT(group, num_groups_);
  return members_[static_cast<size_t>(group)];
}

}  // namespace dader::dist
