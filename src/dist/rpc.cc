#include "dist/rpc.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dader::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

// RPC-client metrics; shared across channels (per-node distinctions live in
// the coordinator's routing counters, not here).
struct RpcMetrics {
  obs::Histogram* latency_ms;
  obs::Counter* retries;
  obs::Counter* failures;
  obs::Counter* reconnects;
  obs::Counter* late_replies;
};

const RpcMetrics& Metrics() {
  static const RpcMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Default();
    RpcMetrics m;
    m.latency_ms =
        reg.GetHistogram("dist.rpc.latency_ms",
                         "Client-side RPC round-trip latency", "ms");
    m.retries = reg.GetCounter(
        "dist.rpc.retries.total",
        "RPC send/connect attempts beyond the first within one call",
        "retries");
    m.failures = reg.GetCounter("dist.rpc.failures.total",
                                "RPC calls that returned a transport error",
                                "calls");
    m.reconnects = reg.GetCounter(
        "dist.rpc.reconnects.total",
        "Channel connections re-established after a drop", "connections");
    m.late_replies = reg.GetCounter(
        "dist.rpc.late_reply.total",
        "Late replies to deadline-abandoned calls discarded by request id "
        "(the connection stays up)",
        "replies");
    return m;
  }();
  return metrics;
}

// Reads exactly n bytes into buf within the poll budget. timeout_ms < 0
// waits forever. Sets *consumed_any once any byte has landed.
Status RecvExact(int fd, char* buf, size_t n,
                 SteadyClock::time_point deadline, bool has_deadline,
                 bool* consumed_any = nullptr) {
  size_t got = 0;
  while (got < n) {
    int poll_ms = -1;
    if (has_deadline) {
      const double remaining =
          std::chrono::duration<double, std::milli>(deadline -
                                                    SteadyClock::now())
              .count();
      if (remaining <= 0.0) {
        return Status::DeadlineExceeded("rpc receive deadline expired");
      }
      poll_ms = static_cast<int>(std::min(remaining + 1.0, 3600000.0));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, poll_ms);
    if (pr == 0) continue;  // re-check the deadline
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll failed: " +
                                 std::string(std::strerror(errno)));
    }
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    got += static_cast<size_t>(r);
    if (consumed_any != nullptr && got > 0) *consumed_any = true;
  }
  return Status::OK();
}

}  // namespace

Result<int> ListenLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("bind to 127.0.0.1:" + std::to_string(port) +
                           " failed: " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError("listen failed");
  }
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IOError("getsockname failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect to 127.0.0.1:" +
                               std::to_string(port) +
                               " failed: " + std::strerror(errno));
  }
  // Frames are small and latency-sensitive; never wait for Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendFrame(int fd, const Frame& frame) {
  const std::string data = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable("send failed: connection lost");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> RecvFrame(int fd, double timeout_ms, bool* consumed_any) {
  const bool has_deadline = timeout_ms >= 0.0;
  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::duration_cast<SteadyClock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   has_deadline ? timeout_ms : 0.0));
  char len_buf[4];
  DADER_RETURN_NOT_OK(
      RecvExact(fd, len_buf, 4, deadline, has_deadline, consumed_any));
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<unsigned char>(len_buf[i]))
              << (8 * i);
  }
  if (length < 9 || length > kMaxFrameBytes) {
    return Status::OutOfRange("frame length " + std::to_string(length) +
                              " outside protocol bounds");
  }
  std::string body(length, '\0');
  DADER_RETURN_NOT_OK(RecvExact(fd, body.data(), body.size(), deadline,
                                has_deadline, consumed_any));
  // Reassemble [len][body] for the codec's whole-frame validation.
  std::string whole(len_buf, 4);
  whole.append(body);
  return DecodeFrame(whole);
}

// --- RpcServerConnection ---

Status RpcServerConnection::Send(const Frame& frame) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!open_.load()) return Status::Unavailable("connection closed");
  return SendFrame(fd_, frame);
}

void RpcServerConnection::ShutdownNow() {
  open_.store(false);
  // Linger off => RST, the honest version of the conn-reset fault. Failing
  // that, a plain shutdown still surfaces as a peer EOF.
  linger lg{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::shutdown(fd_, SHUT_RDWR);
}

// --- RpcServer ---

RpcServer::RpcServer(Handler handler) : handler_(std::move(handler)) {}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start(int port) {
  if (running_.load()) {
    return Status::InvalidArgument("rpc server already running");
  }
  int fd = -1;
  DADER_ASSIGN_OR_RETURN(fd, ListenLoopback(port));
  int bound = 0;
  {
    auto bound_or = BoundPort(fd);
    if (!bound_or.ok()) {
      ::close(fd);
      return bound_or.status();
    }
    bound = bound_or.ValueOrDie();
  }
  listen_fd_ = fd;
  port_ = bound;
  running_.store(true);
  accept_thread_ = std::thread([this, fd] { AcceptLoop(fd); });
  return Status::OK();
}

void RpcServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Unblock every connection's read loop, then join. The loops close their
  // own fds on exit (they own them; see ConnLoop).
  std::vector<ConnEntry> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (ConnEntry& entry : conns) {
    entry.conn->open_.store(false);
    ::shutdown(entry.conn->fd_, SHUT_RDWR);
  }
  for (ConnEntry& entry : conns) {
    if (entry.thread.joinable()) entry.thread.join();
  }
}

void RpcServer::AcceptLoop(int listen_fd) {
  while (running_.load()) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) return;
      continue;  // EINTR etc.
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<RpcServerConnection>(client);
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (!running_.load()) {
      // Stop() raced the accept; it will not see this connection, so close
      // it here instead of leaking a thread.
      ::close(client);
      return;
    }
    ConnEntry entry;
    entry.conn = conn;
    entry.thread = std::thread([this, conn] { ConnLoop(conn); });
    conns_.push_back(std::move(entry));
  }
}

void RpcServer::ConnLoop(std::shared_ptr<RpcServerConnection> conn) {
  while (conn->open_.load() && running_.load()) {
    Result<Frame> frame = RecvFrame(conn->fd_, /*timeout_ms=*/-1.0);
    if (!frame.ok()) break;  // peer went away or Stop() shut us down
    if (!handler_(frame.ValueOrDie(), conn.get())) {
      conn->ShutdownNow();
      break;
    }
  }
  conn->open_.store(false);
  ::close(conn->fd_);
}

// --- RpcChannel ---

RpcChannel::RpcChannel(int port, RpcChannelConfig config)
    : port_(port),
      config_(config),
      backoff_(config.reconnect, config.seed, config.clock) {}

RpcChannel::~RpcChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

void RpcChannel::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  abandoned_pending_ = 0;  // a new connection owes us nothing
}

void RpcChannel::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseLocked();
}

Status RpcChannel::EnsureConnectedLocked(double budget_ms) {
  if (fd_ >= 0) return Status::OK();
  const SteadyClock::time_point start = SteadyClock::now();
  Status last = Status::Unavailable("never attempted");
  const int max_attempts = std::max(1, config_.reconnect.max_attempts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      Metrics().retries->Increment();
      const double delay =
          std::min(backoff_.NextDelayMs(attempt),
                   std::max(0.0, budget_ms - MsSince(start)));
      backoff_.Sleep(delay);
    }
    if (MsSince(start) >= budget_ms) {
      return Status::DeadlineExceeded("connect budget exhausted: " +
                                      last.message());
    }
    Result<int> fd = ConnectLoopback(port_);
    if (fd.ok()) {
      fd_ = fd.ValueOrDie();
      if (ever_connected_) {
        reconnects_.fetch_add(1);
        Metrics().reconnects->Increment();
      }
      ever_connected_ = true;
      return Status::OK();
    }
    last = fd.status();
  }
  return last;
}

Result<Frame> RpcChannel::Call(FrameType type, std::string payload,
                               double deadline_ms) {
  const double budget =
      deadline_ms > 0.0 ? deadline_ms : config_.default_deadline_ms;
  const SteadyClock::time_point start = SteadyClock::now();

  std::lock_guard<std::mutex> lock(mu_);
  const int max_attempts = std::max(1, config_.reconnect.max_attempts);
  Status last = Status::Unavailable("never attempted");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const double remaining = budget - MsSince(start);
    if (remaining <= 0.0) {
      Metrics().failures->Increment();
      return Status::DeadlineExceeded("rpc deadline expired: " +
                                      last.message());
    }
    if (attempt > 0) {
      Metrics().retries->Increment();
      backoff_.Sleep(std::min(backoff_.NextDelayMs(attempt), remaining));
    }
    Status conn = EnsureConnectedLocked(budget - MsSince(start));
    if (!conn.ok()) {
      last = conn;
      continue;
    }
    Frame frame;
    frame.type = type;
    frame.request_id = next_request_id_++;
    frame.payload = payload;
    Status sent = SendFrame(fd_, frame);
    if (!sent.ok()) {
      // Stale connection (peer restarted since the last call): drop it and
      // let the next attempt reconnect.
      CloseLocked();
      last = sent;
      continue;
    }
    // Receive until our reply arrives, discarding late replies to calls a
    // previous deadline abandoned (they are tagged with an older request
    // id — the stream stays framed, so discard costs nothing).
    while (true) {
      bool consumed = false;
      Result<Frame> reply =
          RecvFrame(fd_, budget - MsSince(start), &consumed);
      if (!reply.ok()) {
        if (reply.status().code() == StatusCode::kDeadlineExceeded &&
            !consumed) {
          // The peer is slow, not broken: nothing of the reply has hit the
          // wire yet, so the framing is intact. Keep the connection and
          // remember that one more stale reply may show up later.
          ++abandoned_pending_;
          Metrics().failures->Increment();
          return reply.status();
        }
        // Mid-frame deadline or transport error: the stream cannot be
        // trusted, poison the connection.
        CloseLocked();
        if (reply.status().code() == StatusCode::kDeadlineExceeded) {
          Metrics().failures->Increment();
          return reply.status();
        }
        last = reply.status();
        break;
      }
      const uint64_t got_id = reply.ValueOrDie().request_id;
      if (got_id == frame.request_id) {
        Metrics().latency_ms->Observe(MsSince(start));
        return reply;
      }
      if (got_id < frame.request_id && abandoned_pending_ > 0) {
        // A late reply to an abandoned call: drop it and keep waiting for
        // ours on the same (healthy) connection.
        --abandoned_pending_;
        late_replies_.fetch_add(1);
        Metrics().late_replies->Increment();
        continue;
      }
      CloseLocked();
      last = Status::Internal("rpc reply id mismatch");
      break;
    }
  }
  Metrics().failures->Increment();
  return last;
}

}  // namespace dader::dist
