// Loopback-TCP transport of the distributed serving plane.
//
// Deliberately minimal, like obs/http_exporter: IPv4 loopback only, blocking
// sockets, length-prefixed frames (dist/wire.h), no TLS. Exposing the match
// plane beyond the host is a deployment decision this layer refuses to
// make; what it does take seriously is *failure*:
//
//   * every receive is bounded by a poll() deadline — a hung peer costs the
//     caller its deadline, never a wedge;
//   * the client channel re-establishes dropped connections with seeded
//     backoff+jitter (serve::RetrySchedule, so tests replay the schedule);
//   * a deadline that expires *mid-frame* poisons the connection (the
//     stream framing is torn, nothing after it can be trusted), but a
//     deadline that expires before the reply's first byte keeps the
//     connection: the peer is slow, not broken. The abandoned request id is
//     remembered and its late reply — tagged with that id — is discarded by
//     a later call instead of being mis-matched or punished with teardown
//     (counted as dist.rpc.late_reply.total).
//
// Threading: RpcServer runs one accept thread plus one thread per live
// connection; the expected peer count is "a coordinator", not "the
// internet". RpcChannel serializes calls (one outstanding RPC per channel);
// callers that want pipelining hold several channels (see
// dist/coordinator.h).

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dist/wire.h"
#include "serve/retry.h"
#include "util/status.h"

namespace dader::dist {

// --- low-level framed-socket helpers (exposed for tests) ---

/// \brief Binds + listens on 127.0.0.1:port (0 = ephemeral); returns the fd.
Result<int> ListenLoopback(int port);

/// \brief The local port an fd is bound to.
Result<int> BoundPort(int fd);

/// \brief Blocking connect to 127.0.0.1:port.
Result<int> ConnectLoopback(int port);

/// \brief Sends one whole frame (handles partial writes). Unavailable on a
/// closed/reset connection.
Status SendFrame(int fd, const Frame& frame);

/// \brief Receives one whole frame. `timeout_ms` < 0 waits forever (the
/// server side: Stop() shutting the fd down unblocks the poll);
/// DeadlineExceeded when the budget runs out mid-frame, Unavailable on EOF
/// or reset. `consumed_any`, when non-null, is set true once any byte of
/// the frame has been read — a deadline that expires with nothing consumed
/// left the stream framing intact (the peer is slow, not broken).
Result<Frame> RecvFrame(int fd, double timeout_ms,
                        bool* consumed_any = nullptr);

/// \brief One live server-side connection, handed to the frame handler.
/// Send is mutex-serialized so a handler may reply from any thread.
class RpcServerConnection {
 public:
  explicit RpcServerConnection(int fd) : fd_(fd) {}

  Status Send(const Frame& frame);

  /// \brief Hard-closes the peer (the conn-reset fault): the client sees a
  /// reset/EOF, not a reply. The read loop then winds the connection down.
  void ShutdownNow();

  int fd() const { return fd_; }

 private:
  friend class RpcServer;
  int fd_;
  std::mutex write_mu_;
  std::atomic<bool> open_{true};
};

/// \brief Accept loop + one read loop per connection.
class RpcServer {
 public:
  /// Called once per received frame; return false to close the connection
  /// (the conn-reset fault path). The handler may block (a routed match
  /// rides the worker's own admission queue); heartbeats therefore arrive
  /// on their own dedicated connection (see dist/coordinator.h).
  using Handler = std::function<bool(const Frame&, RpcServerConnection*)>;

  explicit RpcServer(Handler handler);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// \brief Binds 127.0.0.1:port (0 = ephemeral) and starts accepting.
  Status Start(int port);

  /// \brief Closes the listener and every connection, joins all threads.
  /// Idempotent. This is also the node-crash fault: a "dead" worker is one
  /// whose server stopped answering; Start() on the same port resurrects it.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  struct ConnEntry {
    std::shared_ptr<RpcServerConnection> conn;
    std::thread thread;
  };

  void AcceptLoop(int listen_fd);
  void ConnLoop(std::shared_ptr<RpcServerConnection> conn);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  std::mutex conns_mu_;
  std::vector<ConnEntry> conns_;  // joined on Stop
};

/// \brief Reconnecting client channel configuration.
struct RpcChannelConfig {
  /// Per-call budget when the caller passes none; covers connect + send +
  /// receive + any reconnect backoff inside the call.
  double default_deadline_ms = 1000.0;
  /// Backoff between reconnect attempts inside one call.
  serve::RetryPolicy reconnect;
  /// Jitter seed for the reconnect schedule (deterministic under test).
  uint64_t seed = 0xd15cULL;
  /// Clock for backoff sleeps; null = real. Socket deadlines are always
  /// real-time (see util/clock.h).
  util::Clock* clock = nullptr;
};

/// \brief One serialized request/reply channel to 127.0.0.1:port with
/// automatic re-establishment. Thread-safe: calls from many threads simply
/// queue on the channel mutex.
class RpcChannel {
 public:
  RpcChannel(int port, RpcChannelConfig config);
  ~RpcChannel();

  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// \brief Full round trip: connect if needed (retrying with backoff
  /// +jitter inside the deadline), send, await the matching reply.
  /// `deadline_ms` <= 0 uses config.default_deadline_ms.
  Result<Frame> Call(FrameType type, std::string payload,
                     double deadline_ms = -1.0);

  /// \brief Drops the current connection (next Call reconnects). Also the
  /// test hook for "the network flaked".
  void Disconnect();

  int port() const { return port_; }

  /// \brief Connections established after the first (re-establishments).
  int64_t reconnects() const { return reconnects_.load(); }

  /// \brief Late replies to abandoned (deadline-expired) calls that were
  /// discarded by request id instead of poisoning the connection.
  int64_t late_replies() const { return late_replies_.load(); }

 private:
  // Caller holds mu_. Returns OK with fd_ >= 0, or the last connect error.
  Status EnsureConnectedLocked(double budget_ms);
  void CloseLocked();

  const int port_;
  RpcChannelConfig config_;
  serve::RetrySchedule backoff_;
  std::mutex mu_;
  int fd_ = -1;
  bool ever_connected_ = false;
  uint64_t next_request_id_ = 1;
  /// Calls abandoned at the deadline on the *current* connection whose
  /// replies may still arrive; replies with a smaller request id than the
  /// in-flight call are theirs and are discarded, not a protocol error.
  int abandoned_pending_ = 0;
  std::atomic<int64_t> reconnects_{0};
  std::atomic<int64_t> late_replies_{0};
};

}  // namespace dader::dist
