// WorkerNode: one serving process of the distributed match plane.
//
// A worker owns a single-shard serve::MatchService plus an RpcServer and
// answers the coordinator's frames:
//
//   kPing   -> kPong          (membership heartbeat; cheap, no model work)
//   kMatch  -> kMatchReply    (decode request, ride the service's admission
//                              queue / batcher / breaker, encode response)
//   kCanary -> kCanaryReply   (MatchService::CanaryCheck — the re-admission
//                              warm-up probe)
//   kWarm   -> kWarmAck       (replica-standby warming: runs the full match
//                              path so caches stay hot, answer discarded)
//   kReload -> kReloadReply   (payload = checkpoint path; the worker's own
//                              staged/canaried ReloadModel, so a bad push
//                              rolls back *locally* and the reply tells the
//                              coordinator to abort the roll)
//
// Fault injection: every received frame consults the node-scoped kinds of
// util::FaultInjector with `shard` = the node id and `step` = this worker's
// frame ordinal (heartbeat ordinal for kHeartbeatDrop), so a seeded spec
// can target "node 2's 40th frame" reproducibly:
//
//   kNodeCrash     Stop()s the whole server from a helper thread (the conn
//                  thread can't join itself) — the node goes dark exactly
//                  like a killed process; Restart() resurrects it.
//   kNodeHang      the worker keeps every connection open but stops
//                  replying until Restart(); heartbeats time out, the
//                  membership table walks it to DEAD.
//   kHeartbeatDrop swallows kPing only — the node *serves* fine but looks
//                  sick, exercising the SUSPECT-keeps-traffic rule.
//   kConnReset     RSTs the connection mid-request (client sees a reset,
//                  not a reply).
//   kSlowNode      sleeps FaultSpec::param_ms before each reply.
//
// In-process by design: tests and the flagship `ctest -L dist` integration
// run N WorkerNodes in one process over real loopback sockets — the wire,
// the deadlines, and the failure modes are identical to separate processes,
// but a "crash" is a deterministic injector decision instead of a kill(2)
// race. examples/dist_demo.cpp shows the same node hosted standalone.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "dist/rpc.h"
#include "serve/match_service.h"
#include "util/fault.h"

namespace dader::dist {

/// \brief Per-node settings beyond the inner service's ServeConfig.
struct WorkerNodeConfig {
  int node_id = 0;           ///< this node's index in the coordinator roster
  serve::ServeConfig serve;  ///< inner single-shard service (shard_index is
                             ///< overwritten with node_id)
  /// Node-scoped fault injector; null = no faults. Shared with the inner
  /// service via serve.fault for the extractor-level kinds.
  FaultInjector* fault = nullptr;
  /// Clock for slow-node delays; null = real.
  util::Clock* clock = nullptr;
};

/// \brief RPC front-end + single-shard MatchService (see file comment).
class WorkerNode {
 public:
  /// \brief Builds the inner service around `primary` (+ optional fallback)
  /// and prepares the server; call Start() to begin listening.
  static Result<std::unique_ptr<WorkerNode>> Create(
      WorkerNodeConfig config, data::Schema schema_a, data::Schema schema_b,
      core::DaModel primary, std::unique_ptr<core::DaModel> fallback = nullptr);

  ~WorkerNode();

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  /// \brief Binds 127.0.0.1:port (0 = ephemeral) and serves. The bound
  /// port is remembered so Restart() resurrects at the same address.
  Status Start(int port = 0);

  /// \brief Drops the listener and every connection (node-crash semantics).
  /// The inner MatchService keeps its model and caches — a stopped node is
  /// dark, not wiped. Idempotent.
  void StopServer();

  /// \brief Resurrects a stopped node on its original port and clears a
  /// pending node-hang. The model state is whatever it was at the crash.
  Status Restart();

  /// \brief Full shutdown: server + inner service. Idempotent; dtor calls.
  void Stop();

  int port() const { return port_; }
  bool running() const { return server_.running(); }
  int node_id() const { return config_.node_id; }

  serve::MatchService& service() { return *service_; }
  const serve::MatchService& service() const { return *service_; }

  /// \brief kMatch frames handled since construction.
  int64_t requests_served() const { return requests_served_.load(); }
  /// \brief Injected node faults fired on this worker.
  int64_t faults_fired() const { return faults_fired_.load(); }

 private:
  WorkerNode(WorkerNodeConfig config,
             std::unique_ptr<serve::MatchService> service);

  bool HandleFrame(const Frame& frame, RpcServerConnection* conn);
  /// Stops the server from a helper thread (a handler thread cannot join
  /// itself through RpcServer::Stop).
  void CrashAsync();

  WorkerNodeConfig config_;
  std::unique_ptr<serve::MatchService> service_;
  RpcServer server_;
  int port_ = 0;

  std::atomic<int64_t> frames_{0};      // step coordinate for node faults
  std::atomic<int64_t> heartbeats_{0};  // step coordinate for kHeartbeatDrop
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> faults_fired_{0};
  std::atomic<bool> hung_{false};

  std::mutex crash_mu_;
  std::thread crash_thread_;
  std::atomic<bool> crash_pending_{false};

  obs::Counter* m_requests_;
  obs::Counter* m_faults_;
};

}  // namespace dader::dist
