// WorkerSupervisor: a real OS process per worker node.
//
// PR 6's "node crash" was an in-process RpcServer::Stop — honest about
// sockets, dishonest about blast radius (a crashed worker cannot corrupt
// the coordinator's heap when it *is* the coordinator's heap). This unit
// closes that gap: the supervisor fork/execs the `dader_worker` binary
// (tools/dader_worker.cc), so killing a node is kill(2) on a process whose
// address space the test harness does not share.
//
// Lifecycle per child:
//
//   spawn:    fork/exec with two pipes — stdin (held open by the
//             supervisor; EOF is the graceful-shutdown signal) and stdout
//             (the child prints exactly one "READY <port>" line once its
//             RpcServer is listening, which is how an ephemeral port
//             travels back). The child arms prctl(PR_SET_PDEATHSIG,
//             SIGKILL) so a dying supervisor can never leak an orphan.
//   monitor:  one thread blocks in waitpid. An *expected* exit (Stop)
//             just reaps. An unexpected exit triggers a seeded-backoff
//             respawn on the same port — the port is pinned after the
//             first bind, so the coordinator's channels reconnect to the
//             resurrected node without re-configuration, and the node
//             re-enters traffic through the normal CANARY re-admission.
//   Kill():   SIGKILL, the honest crash fault. The monitor restarts it
//             (when auto_restart) exactly as it would a real crash.
//   Stop():   close stdin (EOF), give the child a bounded grace period,
//             then SIGKILL; always reaps. No CI run leaves a dader_worker
//             behind.
//
// Determinism note: the worker binary builds its model from a seed, and
// seeded construction is bit-deterministic (tests assert it), so replicas
// across process boundaries answer identically without any weight
// shipping.

#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/retry.h"
#include "util/status.h"

namespace dader::dist {

/// \brief How to spawn and babysit one worker process.
struct WorkerSupervisorConfig {
  std::string binary_path;  ///< the dader_worker executable
  int node_id = 0;
  uint64_t model_seed = 21;  ///< child rebuilds its model from this seed
  /// Port to request; 0 binds ephemeral on the first spawn and pins the
  /// bound port for every respawn.
  int port = 0;
  double ready_timeout_ms = 15000.0;  ///< budget for the READY handshake
  double stop_grace_ms = 3000.0;      ///< EOF-to-SIGKILL grace in Stop()
  bool auto_restart = true;           ///< respawn after unexpected exits
  serve::RetryPolicy restart_backoff{/*max_attempts=*/5,
                                     /*base_backoff_ms=*/20.0,
                                     /*max_backoff_ms=*/500.0,
                                     /*jitter_frac=*/0.5};
  uint64_t seed = 0x5afeULL;  ///< backoff jitter seed
  /// Extra argv entries appended verbatim (tests pass model-shape flags).
  std::vector<std::string> extra_args;
};

/// \brief Owns one dader_worker child process (see file comment).
class WorkerSupervisor {
 public:
  explicit WorkerSupervisor(WorkerSupervisorConfig config);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// \brief Spawns the child, waits for READY, starts the monitor thread.
  Status Start();

  /// \brief SIGKILLs the child — the process-level crash fault. With
  /// auto_restart the monitor respawns it after backoff; without, the node
  /// stays down until Start() is called again.
  Status Kill();

  /// \brief Graceful shutdown: stdin EOF, bounded grace, SIGKILL fallback,
  /// reap, join the monitor. Idempotent; the dtor calls it.
  void Stop();

  /// \brief The child's serving port (pinned after the first handshake).
  int port() const { return port_.load(); }

  /// \brief True between a successful handshake and the child's exit.
  bool alive() const { return alive_.load(); }

  pid_t pid() const { return pid_.load(); }

  /// \brief Respawns performed after unexpected exits.
  int64_t restarts() const { return restarts_.load(); }

 private:
  /// Forks/execs one child and completes the READY handshake. Caller holds
  /// spawn_mu_.
  Status SpawnLocked();
  /// SIGKILL + reap whatever child exists. Caller holds spawn_mu_.
  void KillAndReapLocked();
  void MonitorLoop();

  WorkerSupervisorConfig config_;
  serve::RetrySchedule backoff_;

  std::mutex spawn_mu_;
  std::condition_variable exited_cv_;
  std::atomic<pid_t> pid_{-1};
  int stdin_fd_ = -1;  ///< write end the child reads; closing = EOF
  std::atomic<int> port_{0};
  std::atomic<bool> alive_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> restarts_{0};
  std::thread monitor_;

  obs::Counter* m_spawn_;
  obs::Counter* m_restart_;
  obs::Counter* m_exit_;
};

}  // namespace dader::dist
