#include "dist/membership.h"

#include "util/check.h"
#include "util/logging.h"

namespace dader::dist {

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kAlive:
      return "alive";
    case NodeState::kSuspect:
      return "suspect";
    case NodeState::kDead:
      return "dead";
    case NodeState::kCanary:
      return "canary";
  }
  return "?";
}

MembershipTable::MembershipTable(int num_nodes, MembershipConfig config)
    : config_(config), nodes_(static_cast<size_t>(num_nodes)) {
  DADER_CHECK_GT(num_nodes, 0);
  DADER_CHECK_GT(config_.suspect_after_misses, 0);
  DADER_CHECK_GE(config_.dead_after_misses, config_.suspect_after_misses);
  DADER_CHECK_GT(config_.readmit_canary_successes, 0);
  auto& reg = obs::MetricsRegistry::Default();
  m_alive_ = reg.GetGauge("dist.membership.alive",
                          "Workers currently routable (alive or suspect)",
                          "nodes");
  m_miss_ = reg.GetCounter("dist.heartbeat.miss.total",
                           "Heartbeat probes that went unanswered", "probes");
  m_to_alive_ = reg.GetCounter(
      obs::LabeledName("dist.membership.transitions.total", "to", "alive"),
      "Membership state transitions", "transitions");
  m_to_suspect_ = reg.GetCounter(
      obs::LabeledName("dist.membership.transitions.total", "to", "suspect"),
      "Membership state transitions", "transitions");
  m_to_dead_ = reg.GetCounter(
      obs::LabeledName("dist.membership.transitions.total", "to", "dead"),
      "Membership state transitions", "transitions");
  m_to_canary_ = reg.GetCounter(
      obs::LabeledName("dist.membership.transitions.total", "to", "canary"),
      "Membership state transitions", "transitions");
  m_readmit_ = reg.GetCounter(
      "dist.readmit.total",
      "Recovered workers re-admitted to full traffic after the warm-up canary",
      "nodes");
  m_readmit_fail_ = reg.GetCounter(
      "dist.readmit.canary_fail.total",
      "Warm-up canary failures that sent a recovering worker back to dead",
      "probes");
  PublishRoutableLocked();
}

void MembershipTable::TransitionLocked(int node, NodeState to) {
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.state == to) return;
  DADER_LOG(Info) << "dist membership: node " << node << " "
                  << NodeStateName(n.state) << " -> " << NodeStateName(to);
  n.state = to;
  switch (to) {
    case NodeState::kAlive:
      m_to_alive_->Increment();
      break;
    case NodeState::kSuspect:
      m_to_suspect_->Increment();
      break;
    case NodeState::kDead:
      m_to_dead_->Increment();
      break;
    case NodeState::kCanary:
      m_to_canary_->Increment();
      break;
  }
  PublishRoutableLocked();
}

void MembershipTable::PublishRoutableLocked() {
  int routable = 0;
  for (const Node& n : nodes_) {
    if (n.state == NodeState::kAlive || n.state == NodeState::kSuspect) {
      ++routable;
    }
  }
  m_alive_->Set(static_cast<double>(routable));
}

void MembershipTable::OnHeartbeatOk(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  n.misses = 0;
  switch (n.state) {
    case NodeState::kAlive:
      break;
    case NodeState::kSuspect:
      TransitionLocked(node, NodeState::kAlive);
      break;
    case NodeState::kDead:
      // Answering again is necessary but not sufficient: the node enters
      // the re-admission canary and earns its traffic back.
      n.canary_successes = 0;
      TransitionLocked(node, NodeState::kCanary);
      break;
    case NodeState::kCanary:
      break;  // only canary probes promote
  }
}

void MembershipTable::OnHeartbeatMiss(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  m_miss_->Increment();
  ++n.misses;
  switch (n.state) {
    case NodeState::kAlive:
      if (n.misses >= config_.dead_after_misses) {
        TransitionLocked(node, NodeState::kDead);
      } else if (n.misses >= config_.suspect_after_misses) {
        TransitionLocked(node, NodeState::kSuspect);
      }
      break;
    case NodeState::kSuspect:
      if (n.misses >= config_.dead_after_misses) {
        TransitionLocked(node, NodeState::kDead);
      }
      break;
    case NodeState::kDead:
      break;
    case NodeState::kCanary:
      // A recovering node that stops answering goes straight back to dead;
      // there is no grace period for half-recovered workers.
      n.canary_successes = 0;
      TransitionLocked(node, NodeState::kDead);
      break;
  }
}

void MembershipTable::OnCanaryOk(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.state != NodeState::kCanary) return;  // stale probe result
  if (++n.canary_successes >= config_.readmit_canary_successes) {
    m_readmit_->Increment();
    TransitionLocked(node, NodeState::kAlive);
  }
}

void MembershipTable::OnCanaryFailure(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.state != NodeState::kCanary) return;
  m_readmit_fail_->Increment();
  n.canary_successes = 0;
  TransitionLocked(node, NodeState::kDead);
}

NodeState MembershipTable::state(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[static_cast<size_t>(node)].state;
}

bool MembershipTable::routable(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState s = nodes_[static_cast<size_t>(node)].state;
  return s == NodeState::kAlive || s == NodeState::kSuspect;
}

std::vector<int> MembershipTable::RoutableNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> routable;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state == NodeState::kAlive ||
        nodes_[i].state == NodeState::kSuspect) {
      routable.push_back(static_cast<int>(i));
    }
  }
  return routable;
}

int MembershipTable::num_routable() const {
  return static_cast<int>(RoutableNodes().size());
}

int MembershipTable::misses(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[static_cast<size_t>(node)].misses;
}

std::vector<NodeSnapshot> MembershipTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeSnapshot> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back({n.state, n.misses, n.canary_successes});
  }
  return out;
}

void MembershipTable::Restore(const std::vector<NodeSnapshot>& nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  DADER_CHECK_EQ(nodes.size(), nodes_.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes_[i].state = nodes[i].state;
    nodes_[i].misses = nodes[i].misses;
    nodes_[i].canary_successes = nodes[i].canary_successes;
  }
  PublishRoutableLocked();
}

}  // namespace dader::dist
