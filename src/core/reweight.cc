#include "core/reweight.h"

#include <algorithm>
#include <cmath>

#include "text/serializer.h"
#include "util/string_util.h"

namespace dader::core {

namespace {

// Deterministic pseudo-random unit-ish embedding for one word: dimensions
// derived from successive hashes — a stand-in for fastText vectors.
void AddWordEmbedding(const std::string& word, int64_t dim,
                      std::vector<float>* acc) {
  uint64_t h = Fnv1a64(word);
  for (int64_t j = 0; j < dim; ++j) {
    // SplitMix64 chain over the word hash.
    uint64_t z = (h += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    // Map to [-1, 1).
    (*acc)[static_cast<size_t>(j)] +=
        static_cast<float>(static_cast<double>(z >> 11) * 0x1.0p-53 * 2.0 - 1.0);
  }
}

void Normalize(std::vector<float>* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (auto& x : *v) x = static_cast<float>(x / norm);
}

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  float dot = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot;  // inputs are unit-normalized
}

std::vector<std::vector<float>> EmbedDataset(const data::ERDataset& ds,
                                             const ReweightConfig& config) {
  std::vector<std::vector<float>> out;
  out.reserve(ds.size());
  for (const auto& pair : ds.pairs()) {
    out.push_back(EmbedPair(pair, ds.schema_a(), ds.schema_b(), config));
  }
  return out;
}

// A weighted linear binary classifier trained by gradient descent.
// loss_kind 0 = logistic, 1 = hinge (linear SVM).
class WeightedLinearModel {
 public:
  WeightedLinearModel(int64_t dim, int loss_kind, Rng* rng)
      : loss_kind_(loss_kind), w_(static_cast<size_t>(dim)), b_(0.0f) {
    for (auto& x : w_) x = rng->NextFloat(-0.01f, 0.01f);
  }

  void Train(const std::vector<std::vector<float>>& xs,
             const std::vector<int>& ys, const std::vector<double>& weights,
             const ReweightConfig& config) {
    const size_t n = xs.size();
    for (int64_t epoch = 0; epoch < config.train_epochs; ++epoch) {
      const float lr = config.learning_rate /
                       (1.0f + 0.05f * static_cast<float>(epoch));
      for (size_t i = 0; i < n; ++i) {
        const float z = Score(xs[i]);
        const float y = ys[i] == 1 ? 1.0f : -1.0f;
        float dz;  // d(loss)/dz
        if (loss_kind_ == 0) {
          // logistic: loss = log(1 + exp(-y z))
          const float s = 1.0f / (1.0f + std::exp(y * z));
          dz = -y * s;
        } else {
          // hinge: loss = max(0, 1 - y z)
          dz = (y * z < 1.0f) ? -y : 0.0f;
        }
        const float g = static_cast<float>(weights[i]) * dz * lr;
        if (g == 0.0f) continue;
        for (size_t j = 0; j < w_.size(); ++j) w_[j] -= g * xs[i][j];
        b_ -= g;
      }
    }
  }

  int Predict(const std::vector<float>& x) const { return Score(x) >= 0 ? 1 : 0; }

 private:
  float Score(const std::vector<float>& x) const {
    float z = b_;
    for (size_t j = 0; j < w_.size(); ++j) z += w_[j] * x[j];
    return z;
  }

  int loss_kind_;
  std::vector<float> w_;
  float b_;
};

}  // namespace

std::vector<float> EmbedPair(const data::LabeledPair& pair,
                             const data::Schema& schema_a,
                             const data::Schema& schema_b,
                             const ReweightConfig& config) {
  // Embed each entity as a normalized bag of hashed word vectors, then
  // combine into similarity-sensitive pair features: |e_a - e_b| (small for
  // matches) and e_a * e_b (large where the entities agree). A linear model
  // over a single pooled bag could not express token overlap at all.
  const int64_t d = config.embedding_dim;
  auto embed_entity = [&](const data::Record& r, const data::Schema& s) {
    std::vector<float> e(static_cast<size_t>(d), 0.0f);
    for (const auto& [attr, value] : r.ToAttrValues(s)) {
      for (const auto& w : text::WordTokenize(value)) {
        AddWordEmbedding(w, d, &e);
      }
    }
    Normalize(&e);
    return e;
  };
  const std::vector<float> ea = embed_entity(pair.a, schema_a);
  const std::vector<float> eb = embed_entity(pair.b, schema_b);
  std::vector<float> out(static_cast<size_t>(2 * d));
  for (int64_t j = 0; j < d; ++j) {
    out[static_cast<size_t>(j)] = std::fabs(ea[static_cast<size_t>(j)] -
                                            eb[static_cast<size_t>(j)]);
    out[static_cast<size_t>(d + j)] =
        ea[static_cast<size_t>(j)] * eb[static_cast<size_t>(j)];
  }
  Normalize(&out);
  return out;
}

std::vector<double> ComputeSourceWeights(
    const std::vector<std::vector<float>>& source_embeddings,
    const std::vector<std::vector<float>>& target_embeddings,
    const ReweightConfig& config) {
  const size_t k = std::min<size_t>(static_cast<size_t>(config.knn),
                                    target_embeddings.size());
  std::vector<double> weights(source_embeddings.size(), 1.0);
  if (k == 0) return weights;
  for (size_t i = 0; i < source_embeddings.size(); ++i) {
    std::vector<float> sims;
    sims.reserve(target_embeddings.size());
    for (const auto& t : target_embeddings) {
      sims.push_back(Cosine(source_embeddings[i], t));
    }
    std::nth_element(sims.begin(), sims.begin() + static_cast<long>(k - 1),
                     sims.end(), std::greater<float>());
    double mean_topk = 0.0;
    for (size_t j = 0; j < k; ++j) mean_topk += sims[j];
    mean_topk /= static_cast<double>(k);
    weights[i] = std::exp(config.sharpness * mean_topk);
  }
  // Normalize to mean 1 so the learning rate keeps its meaning.
  double mean = 0.0;
  for (double w : weights) mean += w;
  mean /= static_cast<double>(weights.size());
  if (mean > 1e-12) {
    for (auto& w : weights) w /= mean;
  }
  return weights;
}

ErMetrics RunReweightBaseline(const data::ERDataset& source,
                              const data::ERDataset& target_test,
                              const ReweightConfig& config) {
  DADER_CHECK_GT(source.size(), 0u);
  DADER_CHECK_GT(target_test.size(), 0u);
  const auto src_emb = EmbedDataset(source, config);
  const auto tgt_emb = EmbedDataset(target_test, config);
  auto weights = ComputeSourceWeights(src_emb, tgt_emb, config);

  // Class-balance the weighted objective: ER datasets are ~10-25% matches
  // and an unbalanced linear objective under-predicts the positive class.
  const size_t n_pos = source.NumMatches();
  if (n_pos > 0 && n_pos < source.size()) {
    const double pos_weight =
        static_cast<double>(source.size() - n_pos) / static_cast<double>(n_pos);
    for (size_t i = 0; i < weights.size(); ++i) {
      if (source.pair(i).label == 1) weights[i] *= pos_weight;
    }
  }

  std::vector<int> src_labels;
  src_labels.reserve(source.size());
  for (const auto& p : source.pairs()) {
    DADER_CHECK(p.labeled());
    src_labels.push_back(p.label);
  }
  std::vector<int> tgt_labels;
  for (const auto& p : target_test.pairs()) {
    DADER_CHECK(p.labeled());
    tgt_labels.push_back(p.label);
  }

  // Train both classifiers and report the better (the paper reports the
  // best of its classifier set).
  ErMetrics best;
  double best_f1 = -1.0;
  for (int loss_kind : {0, 1}) {
    Rng rng(config.seed + static_cast<uint64_t>(loss_kind));
    WeightedLinearModel model(static_cast<int64_t>(src_emb[0].size()),
                              loss_kind, &rng);
    model.Train(src_emb, src_labels, weights, config);
    std::vector<int> preds;
    preds.reserve(tgt_emb.size());
    for (const auto& x : tgt_emb) preds.push_back(model.Predict(x));
    ErMetrics m = ComputeMetrics(preds, tgt_labels);
    if (m.F1() > best_f1) {
      best_f1 = m.F1();
      best = m;
    }
  }
  return best;
}

}  // namespace dader::core
