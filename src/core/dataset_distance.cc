#include "core/dataset_distance.h"

#include <numeric>

#include "core/evaluator.h"
#include "tensor/da_losses.h"

namespace dader::core {

namespace {

data::ERDataset Subsample(const data::ERDataset& ds, int64_t max_pairs,
                          Rng* rng) {
  if (static_cast<int64_t>(ds.size()) <= max_pairs) return ds;
  return ds.Subset(rng->SampleIndices(ds.size(), static_cast<size_t>(max_pairs)));
}

}  // namespace

double DatasetMmdDistance(FeatureExtractor* extractor,
                          const data::ERDataset& source,
                          const data::ERDataset& target, int64_t max_pairs,
                          Rng* rng) {
  DADER_CHECK_GT(max_pairs, 0);
  const data::ERDataset s = Subsample(source, max_pairs, rng);
  const data::ERDataset t = Subsample(target, max_pairs, rng);
  const Tensor fs = ExtractAllFeatures(extractor, s,
                                       extractor->config().batch_size, rng);
  const Tensor ft = ExtractAllFeatures(extractor, t,
                                       extractor->config().batch_size, rng);
  return static_cast<double>(ops::MmdValue(fs, ft));
}

}  // namespace dader::core
