#include "core/pretrain.h"

#include <cstdlib>

#include "data/generators.h"
#include "nn/layers.h"
#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/serialize.h"
#include "util/io.h"
#include "util/logging.h"

namespace dader::core {

namespace ops = ::dader::ops;

std::vector<text::EncodedSequence> BuildPretrainCorpus(
    const DaderConfig& model_config, const PretrainConfig& config) {
  text::HashingVocab vocab(model_config.vocab_size);
  std::vector<text::EncodedSequence> corpus;
  for (const auto& spec : data::AllDatasetSpecs()) {
    data::GenerateOptions opts;
    opts.scale = config.corpus_scale;
    opts.min_pairs = config.min_pairs_per_dataset;
    opts.seed = config.seed ^ 0xc0b95ULL;
    auto ds = data::GenerateDataset(spec.short_name, opts);
    ds.status().CheckOK();
    const data::ERDataset& dataset = ds.ValueOrDie();
    for (const auto& pair : dataset.pairs()) {
      corpus.push_back(text::EncodePair(
          pair.a.ToAttrValues(dataset.schema_a()),
          pair.b.ToAttrValues(dataset.schema_b()), vocab,
          model_config.max_len));
    }
  }
  return corpus;
}

Result<float> PretrainLM(LMFeatureExtractor* extractor,
                         const std::vector<text::EncodedSequence>& corpus,
                         const PretrainConfig& config) {
  if (corpus.empty()) {
    return Status::InvalidArgument("empty pre-training corpus");
  }
  const DaderConfig& mc = extractor->config();
  Rng rng(config.seed);
  nn::Linear mlm_head(mc.hidden_dim, mc.vocab_size, &rng);

  std::vector<Tensor> params = extractor->Parameters();
  for (const auto& p : mlm_head.Parameters()) params.push_back(p);
  AdamOptimizer opt(std::move(params), config.learning_rate);

  extractor->SetTraining(true);
  float last_avg = 0.0f;
  double window_loss = 0.0;
  int64_t window_steps = 0;
  for (int64_t step = 0; step < config.steps; ++step) {
    // Assemble a batch with BERT-style dynamic masking.
    EncodedBatch batch;
    batch.batch = config.batch_size;
    batch.max_len = mc.max_len;
    std::vector<int64_t> masked_positions;  // flat index into [B*L]
    std::vector<int64_t> original_ids;
    for (int64_t b = 0; b < config.batch_size; ++b) {
      const text::EncodedSequence& seq =
          corpus[rng.NextBelow(corpus.size())];
      const int64_t base = b * mc.max_len;
      for (int64_t t = 0; t < mc.max_len; ++t) {
        int64_t id = seq.ids[static_cast<size_t>(t)];
        batch.mask.push_back(seq.mask[static_cast<size_t>(t)]);
        batch.overlap.push_back(seq.overlap[static_cast<size_t>(t)]);
        const bool maskable = id >= text::kNumSpecialTokens;
        if (maskable && rng.NextBool(config.mask_prob)) {
          masked_positions.push_back(base + t);
          original_ids.push_back(id);
          const double roll = rng.NextDouble();
          if (roll < 0.8) {
            id = text::kMask;
          } else if (roll < 0.9) {
            id = text::kNumSpecialTokens +
                 static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(
                     mc.vocab_size - text::kNumSpecialTokens)));
          }  // else keep the original token
        }
        batch.token_ids.push_back(id);
      }
    }
    if (masked_positions.empty()) continue;

    Tensor hidden = extractor->EncodeSequence(batch, &rng);  // [B,L,d]
    Tensor flat = ops::Reshape(hidden, {batch.batch * mc.max_len, mc.hidden_dim});
    // Row-gather of masked positions (EmbeddingLookup doubles as a
    // differentiable row gather).
    Tensor picked = ops::EmbeddingLookup(flat, masked_positions);
    Tensor logits = mlm_head.Forward(picked);
    Tensor loss = ops::CrossEntropyWithLogits(logits, original_ids);

    opt.ZeroGrad();
    loss.Backward();
    opt.ClipGradNorm(5.0f);
    opt.Step();

    window_loss += loss.item();
    ++window_steps;
    if ((step + 1) % 100 == 0) {
      last_avg = static_cast<float>(window_loss / window_steps);
      DADER_LOG(Debug) << "MLM step " << (step + 1) << " avg loss " << last_avg;
      window_loss = 0.0;
      window_steps = 0;
    }
  }
  if (window_steps > 0) {
    last_avg = static_cast<float>(window_loss / window_steps);
  }
  return last_avg;
}

Status LoadOrPretrainLM(LMFeatureExtractor* extractor,
                        const std::string& cache_path,
                        const PretrainConfig& config) {
  if (FileExists(cache_path)) {
    auto loaded = LoadTensors(cache_path);
    if (loaded.ok()) {
      Status restore = extractor->RestoreWeights(loaded.ValueOrDie());
      if (restore.ok()) {
        DADER_LOG(Debug) << "loaded pre-trained LM from " << cache_path;
        return Status::OK();
      }
      DADER_LOG(Warning) << "incompatible pre-train cache " << cache_path
                         << " (" << restore.ToString() << "); re-pretraining";
    } else {
      DADER_LOG(Warning) << "unreadable pre-train cache " << cache_path
                         << " (" << loaded.status().ToString()
                         << "); re-pretraining";
    }
  }
  auto corpus = BuildPretrainCorpus(extractor->config(), config);
  DADER_LOG(Info) << "pre-training LM on " << corpus.size()
                  << " serialized pairs (" << config.steps << " steps)";
  auto loss = PretrainLM(extractor, corpus, config);
  DADER_RETURN_NOT_OK(loss.status());
  DADER_LOG(Info) << "pre-training done, final MLM loss "
                  << loss.ValueOrDie();
  return SaveTensors(cache_path, extractor->SnapshotWeights());
}

std::string PretrainCachePath(const std::string& scale_name) {
  const char* dir = std::getenv("DADER_CACHE_DIR");
  std::string base = dir != nullptr ? std::string(dir) : std::string(".");
  return base + "/dader_lm_" + scale_name + ".bin";
}

}  // namespace dader::core
