// Masked-token pre-training for the LM feature extractor.
//
// The paper piggybacks on BERT, whose value for DA comes from pre-trained,
// domain-general token representations (Finding 5). Offline we reproduce
// that property directly: the transformer is pre-trained with a BERT-style
// masked-token objective on a corpus of serialized entity pairs drawn from
// *all* benchmark domains, then cached on disk so every experiment starts
// from the same "pre-trained LM". The RNN extractor is deliberately never
// pre-trained, matching the paper's setup.

#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/feature_extractor.h"
#include "util/status.h"

namespace dader::core {

/// \brief Pre-training hyper-parameters.
struct PretrainConfig {
  int64_t steps = 300;        ///< optimizer steps
  int64_t batch_size = 16;
  float learning_rate = 1e-3f;
  double mask_prob = 0.15;    ///< per-token masking probability
  double corpus_scale = 0.02; ///< Table-2 scale of the per-dataset corpora
  int64_t min_pairs_per_dataset = 40;
  uint64_t seed = 1234;
};

/// \brief Serialized-pair token sequences from all 13 benchmark datasets.
std::vector<text::EncodedSequence> BuildPretrainCorpus(
    const DaderConfig& model_config, const PretrainConfig& config);

/// \brief Runs MLM pre-training in place; returns the final average loss.
/// The prediction head is internal and discarded afterwards.
Result<float> PretrainLM(LMFeatureExtractor* extractor,
                         const std::vector<text::EncodedSequence>& corpus,
                         const PretrainConfig& config);

/// \brief Loads cached pre-trained weights from `cache_path` into the
/// extractor, or pre-trains and writes the cache when absent/incompatible.
Status LoadOrPretrainLM(LMFeatureExtractor* extractor,
                        const std::string& cache_path,
                        const PretrainConfig& config);

/// \brief Conventional cache path for a scale preset ("dader_lm_smoke.bin"
/// under $DADER_CACHE_DIR or the current directory).
std::string PretrainCachePath(const std::string& scale_name);

}  // namespace dader::core
