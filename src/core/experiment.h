// High-level experiment runners used by the bench harness: one call per
// table cell / figure series, handling dataset generation, pre-training,
// training, model selection, and test evaluation.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "core/metrics.h"
#include "core/trainer.h"

namespace dader::core {

/// \brief Datasets of one source -> target adaptation task.
struct DaTask {
  data::ERDataset source;            ///< labeled source (D^S, Y^S)
  data::ERDataset target_unlabeled;  ///< D^T with labels stripped
  data::ERDataset target_valid;      ///< labeled 10% target slice (selection)
  data::ERDataset target_test;       ///< labeled 90% target slice (reporting)
  data::ERDataset source_eval;       ///< small labeled source slice (Fig. 8)
};

/// \brief Generates both datasets at the given scale and builds the 1:9
/// valid:test split of the target (Section 6.1 protocol).
Result<DaTask> BuildDaTask(const std::string& source_name,
                           const std::string& target_name,
                           const ExperimentScale& scale, uint64_t data_seed = 7);

/// \brief A Feature Extractor + Matcher bundle.
struct DaModel {
  std::unique_ptr<FeatureExtractor> extractor;
  std::unique_ptr<Matcher> matcher;
};

/// \brief Builds a model; when `kind` is kLM and `pretrained`, loads (or
/// creates) the cached pre-trained weights for this scale.
Result<DaModel> BuildModel(ExtractorKind kind, const ExperimentScale& scale,
                           bool pretrained, uint64_t seed);

/// \brief Deep-copies a loaded model: clones the architecture and copies
/// every parameter tensor, so the replica's outputs are bit-identical to
/// the original's. Used by sharded serving to stamp out per-shard replicas
/// from one loaded checkpoint. `seed` only decorrelates any future
/// stochastic use of the replica (dropout seeds); it does not affect the
/// copied weights.
Result<DaModel> CloneModel(const DaModel& model, uint64_t seed);

/// \brief Result of one seeded DA run.
struct DaRunOutcome {
  TrainResult train;
  double test_f1 = 0.0;   ///< F1 on target_test with the selected snapshot
  /// Keeps the adapted F' (GAN methods) alive; final_extractor() is the
  /// model to use for target prediction while `model` also stays alive.
  std::unique_ptr<DaTrainer> trainer;
};

/// \brief Trains one (method, task) run; the model is updated in place.
/// \param track_source_f1 also evaluate task.source_eval per epoch (Fig. 8).
Result<DaRunOutcome> RunSingleDa(AlignMethod method,
                                 const ExperimentScale& scale,
                                 const DaTask& task, DaModel* model,
                                 bool track_source_f1 = false,
                                 EpochCallback callback = nullptr);

/// \brief Mean +/- std test F1 of one table cell across seeds.
struct DaCellResult {
  MeanStd f1;                      ///< in [0,1]; benches print *100
  std::vector<double> per_seed_f1;
};

/// \brief Options for RunDaCell.
struct DaCellOptions {
  ExtractorKind extractor = ExtractorKind::kLM;
  bool pretrained_lm = true;
  uint64_t base_seed = 42;
};

/// \brief Runs a full table cell: num_seeds repeats of (source->target,
/// method), fresh model per seed, shared datasets.
Result<DaCellResult> RunDaCell(const std::string& source_name,
                               const std::string& target_name,
                               AlignMethod method,
                               const ExperimentScale& scale,
                               const DaCellOptions& options = {});

// ---------------------------------------------------------------------------
// Semi-supervised comparison (Figure 11)
// ---------------------------------------------------------------------------

/// \brief Competitors in the labeled-target comparison.
enum class SemiMethod {
  kNoDA,        ///< source training, then fine-tune on target labels
  kInvGANKD,    ///< DADER adaptation, then fine-tune on target labels
  kDitto,       ///< pre-trained-LM matcher trained on target labels only
  kDeepMatcher, ///< RNN matcher trained on target labels only
};

const char* SemiMethodName(SemiMethod method);

/// \brief One point of a Figure-11 series.
struct SemiPoint {
  int64_t labels_used = 0;
  double test_f1 = 0.0;
};

/// \brief Runs the active-learning label-budget sweep: `rounds` rounds of
/// `labels_per_round` max-entropy-selected target labels, evaluating on the
/// target test split after each round (3:1:1 target split, Section 6.5.2).
Result<std::vector<SemiPoint>> RunSemiSupervised(
    const std::string& source_name, const std::string& target_name,
    SemiMethod method, const ExperimentScale& scale, int64_t labels_per_round,
    int64_t rounds, uint64_t seed = 42);

}  // namespace dader::core
