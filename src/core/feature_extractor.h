// Feature Extractor F (Section 4.2): entity pair -> d-dimensional feature.
//
// Two families, as in Table 1:
//   (I)  RNNFeatureExtractor  — bidirectional GRU over the serialized pair,
//        masked mean pooling, linear projection. Never pre-trained.
//   (II) LMFeatureExtractor   — BERT-style transformer over the serialized
//        pair, [CLS] embedding through a tanh pooler. Pre-trainable with the
//        masked-token objective in core/pretrain.h.
//
// Both consume the same serialization S(a,b) from text/serializer.h, so the
// comparison in Figure 9 isolates the architecture, not the input format.

#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "nn/gru.h"
#include "nn/transformer.h"
#include "text/serializer.h"

namespace dader::core {

/// \brief A tokenized minibatch ready for either extractor.
struct EncodedBatch {
  std::vector<int64_t> token_ids;  ///< B * max_len ids
  std::vector<float> mask;         ///< B * max_len, 1=token 0=pad
  std::vector<float> overlap;      ///< B * max_len cross-entity flags
  int64_t batch = 0;
  int64_t max_len = 0;
};

/// \brief Abstract Feature Extractor F.
class FeatureExtractor : public nn::Module {
 public:
  FeatureExtractor(const DaderConfig& config)
      : config_(config), vocab_(config.vocab_size) {}
  ~FeatureExtractor() override = default;

  /// \brief Output feature dimension d.
  virtual int64_t feature_dim() const = 0;

  /// \brief Features [B, d] for an already-encoded batch.
  virtual Tensor Forward(const EncodedBatch& batch, Rng* rng) const = 0;

  /// \brief Fresh instance with the same architecture and new random
  /// weights; used as F' in Algorithm 2 (followed by CopyWeightsFrom).
  virtual std::unique_ptr<FeatureExtractor> CloneArchitecture(
      uint64_t seed) const = 0;

  /// \brief Serializes + encodes dataset pairs at `indices` into a batch.
  EncodedBatch EncodePairs(const data::ERDataset& dataset,
                           const std::vector<size_t>& indices) const;

  const text::HashingVocab& vocab() const { return vocab_; }
  const DaderConfig& config() const { return config_; }

 protected:
  DaderConfig config_;
  text::HashingVocab vocab_;
};

/// \brief (II) Pre-trained-LM-style extractor (transformer + [CLS] pooler).
class LMFeatureExtractor : public FeatureExtractor {
 public:
  LMFeatureExtractor(const DaderConfig& config, uint64_t seed);

  int64_t feature_dim() const override { return config_.hidden_dim; }
  Tensor Forward(const EncodedBatch& batch, Rng* rng) const override;
  std::unique_ptr<FeatureExtractor> CloneArchitecture(
      uint64_t seed) const override;

  /// \brief Full hidden states [B, L, d]; the MLM pre-trainer needs
  /// per-position outputs, not just [CLS].
  Tensor EncodeSequence(const EncodedBatch& batch, Rng* rng) const;

  nn::TransformerEncoder* encoder() { return encoder_.get(); }

 private:
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> pooler_;
};

/// \brief (I) RNN extractor (BiGRU + masked mean pooling + projection).
class RNNFeatureExtractor : public FeatureExtractor {
 public:
  RNNFeatureExtractor(const DaderConfig& config, uint64_t seed);

  int64_t feature_dim() const override { return config_.hidden_dim; }
  Tensor Forward(const EncodedBatch& batch, Rng* rng) const override;
  std::unique_ptr<FeatureExtractor> CloneArchitecture(
      uint64_t seed) const override;

 private:
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Embedding> overlap_emb_;
  std::unique_ptr<nn::BiGru> bigru_;
  std::unique_ptr<nn::Linear> projection_;
};

/// \brief Extractor families of Table 1.
enum class ExtractorKind { kLM, kRNN };

/// \brief Factory over ExtractorKind.
std::unique_ptr<FeatureExtractor> MakeExtractor(ExtractorKind kind,
                                                const DaderConfig& config,
                                                uint64_t seed);

}  // namespace dader::core
