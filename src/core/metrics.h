// Binary ER evaluation metrics (Section 6.1 of the paper).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dader::core {

/// \brief Confusion counts plus derived precision/recall/F1 for the
/// matching (positive) class.
struct ErMetrics {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t true_negatives = 0;

  double Precision() const;
  double Recall() const;
  /// \brief F1 = 2PR/(P+R); 0 when undefined. The paper reports F1*100.
  double F1() const;
  double Accuracy() const;

  std::string ToString() const;
};

/// \brief Computes metrics from aligned 0/1 prediction and label vectors.
ErMetrics ComputeMetrics(const std::vector<int>& predictions,
                         const std::vector<int>& labels);

/// \brief Mean and (population) standard deviation of repeated F1 scores,
/// matching the paper's "mean +/- std over three runs" reporting.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace dader::core
