// Batched inference and evaluation of a (Feature Extractor, Matcher) pair.

#pragma once

#include <vector>

#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "core/metrics.h"

namespace dader::core {

/// \brief Model outputs over a whole dataset.
struct Prediction {
  std::vector<int> labels;    ///< argmax 0/1 per pair
  std::vector<float> probs;   ///< p(match) per pair
};

/// \brief Runs M(F(x)) over every pair of `dataset` in eval mode (dropout
/// off); restores the modules' previous training mode afterwards.
Prediction Predict(FeatureExtractor* extractor, Matcher* matcher,
                   const data::ERDataset& dataset, int64_t batch_size,
                   Rng* rng);

/// \brief Predict + metrics against the dataset's labels (which must all be
/// present).
ErMetrics Evaluate(FeatureExtractor* extractor, Matcher* matcher,
                   const data::ERDataset& dataset, int64_t batch_size,
                   Rng* rng);

/// \brief Extracts features for every pair (eval mode, detached) as one
/// [N, d] tensor; used by t-SNE and the dataset-distance analysis.
Tensor ExtractAllFeatures(FeatureExtractor* extractor,
                          const data::ERDataset& dataset, int64_t batch_size,
                          Rng* rng);

}  // namespace dader::core
