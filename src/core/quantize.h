// Post-training int8 quantization of a (Feature Extractor, Matcher) model.
//
// The serving-side entry point of the quantized inference path: given a
// loaded fp32 model and a handful of calibration pairs, QuantizeDaModel
// (1) runs an observed eval pass recording each Linear's input activation
// range, (2) derives per-output-channel weight scales and per-tensor
// activation scales and attaches frozen int8 state to every Linear in both
// modules (see tensor/quant.h for the scheme), and (3) verifies the result
// against the fp32 model on held-out pairs — if predicted labels agree on
// fewer than `min_agreement` of them, quantization is rolled back and an
// error returned, so a badly calibrated model can never serve. Serving
// wires that error into the canary path: a quantize failure during
// hot-reload rejects the checkpoint like any other canary failure.

#pragma once

#include <cstdint>

#include "core/experiment.h"
#include "data/dataset.h"
#include "util/status.h"

namespace dader::core {

/// \brief Calibration / acceptance knobs for QuantizeDaModel.
struct QuantizeOptions {
  /// Pairs drawn from the calibration set for the range-observation pass.
  int64_t calib_pairs = 64;
  /// Pairs (drawn after the calibration slice when available) checked for
  /// fp32-vs-int8 label agreement.
  int64_t eval_pairs = 256;
  int64_t batch_size = 32;
  /// Minimum label-agreement fraction; below it the model is rolled back
  /// to fp32 and an error returned.
  double min_agreement = 0.99;
  uint64_t seed = 17;
};

/// \brief What quantization measured; returned on success.
struct QuantizeReport {
  int64_t linears = 0;      ///< Linear layers quantized (extractor+matcher)
  int64_t eval_pairs = 0;   ///< pairs in the agreement check
  double agreement = 0.0;   ///< fp32-vs-int8 label agreement in [0, 1]
};

/// \brief Calibrates on `calib` and attaches int8 state to every Linear of
/// `model`. On any failure the model is left fully fp32.
Result<QuantizeReport> QuantizeDaModel(DaModel* model,
                                       const data::ERDataset& calib,
                                       const QuantizeOptions& options = {});

/// \brief True if any Linear in the model carries int8 state.
bool IsQuantized(const DaModel& model);

/// \brief Detaches all int8 state (back to pure fp32 inference).
void ClearQuantization(DaModel* model);

/// \brief CloneModel plus sharing of the source's frozen int8 state, so a
/// per-shard replica serves quantized without re-calibrating. The state is
/// immutable and shared by pointer — no weight duplication.
Result<DaModel> CloneQuantized(const DaModel& model, uint64_t seed);

}  // namespace dader::core
