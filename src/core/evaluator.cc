#include "core/evaluator.h"

#include "tensor/ops.h"

namespace dader::core {

namespace ops = ::dader::ops;

namespace {

// RAII guard putting modules into eval mode.
class EvalModeGuard {
 public:
  EvalModeGuard(nn::Module* a, nn::Module* b) : a_(a), b_(b) {
    was_a_ = a_->training();
    a_->SetTraining(false);
    if (b_ != nullptr) {
      was_b_ = b_->training();
      b_->SetTraining(false);
    }
  }
  ~EvalModeGuard() {
    a_->SetTraining(was_a_);
    if (b_ != nullptr) b_->SetTraining(was_b_);
  }

 private:
  nn::Module* a_;
  nn::Module* b_;
  bool was_a_ = true;
  bool was_b_ = true;
};

}  // namespace

Prediction Predict(FeatureExtractor* extractor, Matcher* matcher,
                   const data::ERDataset& dataset, int64_t batch_size,
                   Rng* rng) {
  DADER_CHECK(extractor != nullptr);
  DADER_CHECK(matcher != nullptr);
  DADER_CHECK_GT(batch_size, 0);
  EvalModeGuard guard(extractor, matcher);

  Prediction out;
  out.labels.reserve(dataset.size());
  out.probs.reserve(dataset.size());
  for (size_t start = 0; start < dataset.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(dataset.size(), start + static_cast<size_t>(batch_size));
    std::vector<size_t> indices;
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    EncodedBatch batch = extractor->EncodePairs(dataset, indices);
    Tensor features = extractor->Forward(batch, rng).Detach();
    const std::vector<float> probs =
        matcher->PredictProbabilities(features, rng);
    for (float p : probs) {
      out.probs.push_back(p);
      out.labels.push_back(p >= 0.5f ? 1 : 0);
    }
  }
  return out;
}

ErMetrics Evaluate(FeatureExtractor* extractor, Matcher* matcher,
                   const data::ERDataset& dataset, int64_t batch_size,
                   Rng* rng) {
  const Prediction pred = Predict(extractor, matcher, dataset, batch_size, rng);
  std::vector<int> labels;
  labels.reserve(dataset.size());
  for (const auto& p : dataset.pairs()) {
    DADER_CHECK_MSG(p.labeled(), "Evaluate requires labeled pairs");
    labels.push_back(p.label);
  }
  return ComputeMetrics(pred.labels, labels);
}

Tensor ExtractAllFeatures(FeatureExtractor* extractor,
                          const data::ERDataset& dataset, int64_t batch_size,
                          Rng* rng) {
  DADER_CHECK_GT(dataset.size(), 0u);
  EvalModeGuard guard(extractor, nullptr);
  std::vector<Tensor> chunks;
  for (size_t start = 0; start < dataset.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(dataset.size(), start + static_cast<size_t>(batch_size));
    std::vector<size_t> indices;
    for (size_t i = start; i < end; ++i) indices.push_back(i);
    EncodedBatch batch = extractor->EncodePairs(dataset, indices);
    chunks.push_back(extractor->Forward(batch, rng).Detach());
  }
  return ops::Concat(chunks, 0).Detach();
}

}  // namespace dader::core
