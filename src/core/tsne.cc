#include "core/tsne.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dader::core {

namespace {

// Pairwise squared euclidean distances between rows of [n, d] data.
std::vector<double> PairwiseSqDist(const float* data, int64_t n, int64_t d) {
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = data + i * d;
      const float* b = data + j * d;
      for (int64_t k = 0; k < d; ++k) {
        const double diff = static_cast<double>(a[k]) - b[k];
        acc += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = acc;
      dist[static_cast<size_t>(j * n + i)] = acc;
    }
  }
  return dist;
}

// Row-conditional affinities with per-point bandwidth found by binary
// search so the row entropy matches log(perplexity).
std::vector<double> ConditionalAffinities(const std::vector<double>& dist,
                                          int64_t n, double perplexity) {
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  const double target_entropy = std::log(perplexity);
  for (int64_t i = 0; i < n; ++i) {
    double beta_lo = 0.0, beta_hi = 1e12, beta = 1.0;
    for (int iter = 0; iter < 50; ++iter) {
      double sum = 0.0, sum_dp = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double dij = dist[static_cast<size_t>(i * n + j)];
        const double e = std::exp(-dij * beta);
        sum += e;
        sum_dp += dij * e;
      }
      if (sum < 1e-300) {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
        continue;
      }
      // H = log(sum) + beta * <d>
      const double entropy = std::log(sum) + beta * sum_dp / sum;
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi > 1e11 ? beta * 2.0 : (beta_lo + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum += std::exp(-dist[static_cast<size_t>(i * n + j)] * beta);
    }
    if (sum < 1e-300) sum = 1e-300;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p[static_cast<size_t>(i * n + j)] =
          std::exp(-dist[static_cast<size_t>(i * n + j)] * beta) / sum;
    }
  }
  return p;
}

}  // namespace

std::vector<std::array<double, 2>> RunTsne(const Tensor& features,
                                           const TsneConfig& config) {
  DADER_CHECK_EQ(features.rank(), 2u);
  const int64_t n = features.dim(0), d = features.dim(1);
  DADER_CHECK_GE(n, 3);

  const auto dist = PairwiseSqDist(features.data(), n, d);
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);
  auto pc = ConditionalAffinities(dist, n, perplexity);

  // Symmetrize: P_ij = (p_{j|i} + p_{i|j}) / (2n), floored for stability.
  std::vector<double> P(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      P[static_cast<size_t>(i * n + j)] =
          std::max((pc[static_cast<size_t>(i * n + j)] +
                    pc[static_cast<size_t>(j * n + i)]) /
                       (2.0 * static_cast<double>(n)),
                   1e-12);
    }
  }

  Rng rng(config.seed);
  std::vector<std::array<double, 2>> y(static_cast<size_t>(n));
  std::vector<std::array<double, 2>> vel(static_cast<size_t>(n), {0.0, 0.0});
  for (auto& p : y) {
    p[0] = rng.NextGaussian() * 1e-2;
    p[1] = rng.NextGaussian() * 1e-2;
  }

  std::vector<double> Q(static_cast<size_t>(n * n));
  std::vector<double> num(static_cast<size_t>(n * n));
  const int exaggeration_end = config.iterations / 4;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exag = iter < exaggeration_end ? config.early_exaggeration : 1.0;
    // Student-t affinities in the embedding.
    double qsum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const double dx = y[static_cast<size_t>(i)][0] - y[static_cast<size_t>(j)][0];
        const double dy = y[static_cast<size_t>(i)][1] - y[static_cast<size_t>(j)][1];
        const double t = 1.0 / (1.0 + dx * dx + dy * dy);
        num[static_cast<size_t>(i * n + j)] = t;
        num[static_cast<size_t>(j * n + i)] = t;
        qsum += 2.0 * t;
      }
    }
    if (qsum < 1e-300) qsum = 1e-300;
    // Gradient step with momentum.
    for (int64_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const size_t ij = static_cast<size_t>(i * n + j);
        const double q = std::max(num[ij] / qsum, 1e-12);
        const double coeff = 4.0 * (exag * P[ij] - q) * num[ij];
        gx += coeff * (y[static_cast<size_t>(i)][0] - y[static_cast<size_t>(j)][0]);
        gy += coeff * (y[static_cast<size_t>(i)][1] - y[static_cast<size_t>(j)][1]);
      }
      vel[static_cast<size_t>(i)][0] =
          config.momentum * vel[static_cast<size_t>(i)][0] -
          config.learning_rate * gx;
      vel[static_cast<size_t>(i)][1] =
          config.momentum * vel[static_cast<size_t>(i)][1] -
          config.learning_rate * gy;
    }
    for (int64_t i = 0; i < n; ++i) {
      y[static_cast<size_t>(i)][0] += vel[static_cast<size_t>(i)][0];
      y[static_cast<size_t>(i)][1] += vel[static_cast<size_t>(i)][1];
    }
  }
  return y;
}

double DomainMixingScore(const Tensor& xs, const Tensor& xt, int k) {
  DADER_CHECK_EQ(xs.rank(), 2u);
  DADER_CHECK_EQ(xt.rank(), 2u);
  DADER_CHECK_EQ(xs.dim(1), xt.dim(1));
  const int64_t ns = xs.dim(0), nt = xt.dim(0), d = xs.dim(1);
  const int64_t n = ns + nt;
  DADER_CHECK_GT(ns, 0);
  DADER_CHECK_GT(nt, 0);
  DADER_CHECK_GE(n, k + 1);

  // Pool rows; domain[i] = 0 for source, 1 for target.
  std::vector<const float*> rows;
  std::vector<int> domain;
  for (int64_t i = 0; i < ns; ++i) {
    rows.push_back(xs.data() + i * d);
    domain.push_back(0);
  }
  for (int64_t i = 0; i < nt; ++i) {
    rows.push_back(xt.data() + i * d);
    domain.push_back(1);
  }

  double total_frac = 0.0;
  std::vector<std::pair<double, int64_t>> dists(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double diff = static_cast<double>(rows[static_cast<size_t>(i)][c]) -
                            rows[static_cast<size_t>(j)][c];
        acc += diff * diff;
      }
      dists[static_cast<size_t>(j)] = {j == i ? 1e300 : acc, j};
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    int other = 0;
    for (int j = 0; j < k; ++j) {
      if (domain[static_cast<size_t>(dists[static_cast<size_t>(j)].second)] !=
          domain[static_cast<size_t>(i)]) {
        ++other;
      }
    }
    total_frac += static_cast<double>(other) / k;
  }
  const double observed = total_frac / static_cast<double>(n);
  // Expected other-domain fraction under perfect mixing.
  const double expected =
      (static_cast<double>(ns) / n) * (static_cast<double>(nt) / (n - 1)) +
      (static_cast<double>(nt) / n) * (static_cast<double>(ns) / (n - 1));
  return expected < 1e-12 ? 0.0 : std::min(1.0, observed / expected);
}

}  // namespace dader::core
