// The DADER training algorithms.
//
// DaTrainer realizes Algorithm 1 (discrepancy / GRL / reconstruction-based
// joint training; NoDA is the beta=0 degenerate case) and Algorithm 2 (the
// GAN-based two-step training of InvGAN and InvGAN+KD). Every epoch, the
// current model is evaluated on a small labeled target validation set, and
// the best snapshot across epochs is restored at the end — the paper's model
// selection protocol (Section 6.1).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/evaluator.h"
#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "data/dataset.h"

namespace dader::core {

/// \brief The Feature Aligner design space of Table 1 (plus NoDA baseline).
enum class AlignMethod {
  kNoDA,      ///< no Feature Aligner (source-only training)
  kMMD,       ///< (1a) discrepancy: Maximum Mean Discrepancy, Eq. (5)
  kKOrder,    ///< (1b) discrepancy: K-order statistics / CORAL, Eq. (6)
  kGRL,       ///< (2c) adversarial: gradient reversal layer, Eq. (9)
  kInvGAN,    ///< (2d) adversarial: inverted-labels GAN, Eqs. (10)-(11)
  kInvGANKD,  ///< (2e) adversarial: InvGAN + knowledge distillation, (12)-(14)
  kED,        ///< (3f) reconstruction: encoder-decoder, Eq. (15)
  /// EXTENSION beyond the paper's Table 1: central moment discrepancy
  /// (higher-order-moment discrepancy family the paper cites as related
  /// work). Not part of AllAlignMethods(), so the paper's tables are
  /// unchanged; exercised by bench_ext_design_space and the tests.
  kCMD,
};

/// \brief "MMD", "K-order", "InvGAN+KD", ...
const char* AlignMethodName(AlignMethod method);

/// \brief Inverse of AlignMethodName (case-sensitive).
bool ParseAlignMethod(const std::string& name, AlignMethod* out);

/// \brief All six aligners in Table 1 order (no NoDA).
const std::vector<AlignMethod>& AllAlignMethods();

/// \brief True for Algorithm-2 (GAN-based) methods.
bool IsGanMethod(AlignMethod method);

/// \brief Per-epoch training telemetry (drives Figures 7 and 8).
struct EpochStats {
  int epoch = 0;                 ///< 1-based, across the adaptation phase
  double matching_loss = 0.0;    ///< mean L_M over the epoch
  double alignment_loss = 0.0;   ///< mean L_A over the epoch
  double valid_f1 = 0.0;         ///< F1 on the target validation set
  double source_f1 = -1.0;       ///< F1 on source_eval (-1 when not tracked)
};

/// \brief Outcome of a training run.
struct TrainResult {
  double best_valid_f1 = 0.0;
  int best_epoch = -1;
  std::vector<EpochStats> history;
};

using EpochCallback = std::function<void(const EpochStats&)>;

/// \brief Trains (F, M, A) for one source -> target adaptation task.
class DaTrainer {
 public:
  /// \param extractor F; for GAN methods this is the teacher, and the
  ///   adapted student F' is created internally (see final_extractor()).
  /// \param matcher M, trained on the labeled source.
  DaTrainer(AlignMethod method, const DaderConfig& config,
            FeatureExtractor* extractor, Matcher* matcher);

  /// \brief Runs the full training protocol.
  /// \param source labeled source pairs (D^S, Y^S).
  /// \param target_train target pairs D^T; labels, if any, are ignored.
  /// \param target_valid small labeled target validation set for snapshot
  ///   selection.
  /// \param source_eval optional labeled source set evaluated per epoch
  ///   (Figure 8 tracks source F1 during adversarial training).
  /// \param callback optional per-epoch hook.
  TrainResult Train(const data::ERDataset& source,
                    const data::ERDataset& target_train,
                    const data::ERDataset& target_valid,
                    const data::ERDataset* source_eval = nullptr,
                    EpochCallback callback = nullptr);

  /// \brief The extractor to use for target prediction after Train():
  /// F' for GAN methods, the original F otherwise.
  FeatureExtractor* final_extractor();

  AlignMethod method() const { return method_; }

 private:
  TrainResult TrainAlgorithm1(const data::ERDataset& source,
                              const data::ERDataset& target_train,
                              const data::ERDataset& target_valid,
                              const data::ERDataset* source_eval,
                              const EpochCallback& callback);
  TrainResult TrainAlgorithm2(const data::ERDataset& source,
                              const data::ERDataset& target_train,
                              const data::ERDataset& target_valid,
                              const data::ERDataset* source_eval,
                              const EpochCallback& callback);

  // Token bags (non-special tokens per row) for the ED reconstruction loss.
  static std::vector<std::vector<int64_t>> TokenBags(const EncodedBatch& batch);

  AlignMethod method_;
  DaderConfig config_;
  FeatureExtractor* extractor_;
  Matcher* matcher_;
  std::unique_ptr<FeatureExtractor> adapted_;      // F' (GAN methods)
  std::unique_ptr<DomainDiscriminator> discriminator_;
  std::unique_ptr<ReconstructionDecoder> decoder_;
  Rng rng_;
};

}  // namespace dader::core
