// The DADER training algorithms.
//
// DaTrainer realizes Algorithm 1 (discrepancy / GRL / reconstruction-based
// joint training; NoDA is the beta=0 degenerate case) and Algorithm 2 (the
// GAN-based two-step training of InvGAN and InvGAN+KD). Every epoch, the
// current model is evaluated on a small labeled target validation set, and
// the best snapshot across epochs is restored at the end — the paper's model
// selection protocol (Section 6.1).
//
// Both algorithms run under the training-stability guard (core/guard.h):
// non-finite steps are skipped, flagged epochs trigger rollback to the last
// good weights with learning-rate backoff, and Run() restarts a diverged
// adaptation phase from the pre-adaptation checkpoint with a fresh seed.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/evaluator.h"
#include "core/feature_extractor.h"
#include "core/guard.h"
#include "core/matcher.h"
#include "data/dataset.h"

namespace dader::core {

/// \brief The Feature Aligner design space of Table 1 (plus NoDA baseline).
enum class AlignMethod {
  kNoDA,      ///< no Feature Aligner (source-only training)
  kMMD,       ///< (1a) discrepancy: Maximum Mean Discrepancy, Eq. (5)
  kKOrder,    ///< (1b) discrepancy: K-order statistics / CORAL, Eq. (6)
  kGRL,       ///< (2c) adversarial: gradient reversal layer, Eq. (9)
  kInvGAN,    ///< (2d) adversarial: inverted-labels GAN, Eqs. (10)-(11)
  kInvGANKD,  ///< (2e) adversarial: InvGAN + knowledge distillation, (12)-(14)
  kED,        ///< (3f) reconstruction: encoder-decoder, Eq. (15)
  /// EXTENSION beyond the paper's Table 1: central moment discrepancy
  /// (higher-order-moment discrepancy family the paper cites as related
  /// work). Not part of AllAlignMethods(), so the paper's tables are
  /// unchanged; exercised by bench_ext_design_space and the tests.
  kCMD,
};

/// \brief "MMD", "K-order", "InvGAN+KD", ...
const char* AlignMethodName(AlignMethod method);

/// \brief Inverse of AlignMethodName (case-sensitive).
bool ParseAlignMethod(const std::string& name, AlignMethod* out);

/// \brief All six aligners in Table 1 order (no NoDA).
const std::vector<AlignMethod>& AllAlignMethods();

/// \brief True for Algorithm-2 (GAN-based) methods.
bool IsGanMethod(AlignMethod method);

/// \brief Per-epoch training telemetry (drives Figures 7 and 8).
struct EpochStats {
  int epoch = 0;                 ///< 1-based, across the adaptation phase
  double matching_loss = 0.0;    ///< mean L_M over the epoch's finite steps
  double alignment_loss = 0.0;   ///< mean L_A over the epoch's finite steps
  double valid_f1 = 0.0;         ///< F1 on the target validation set
  double source_f1 = -1.0;       ///< F1 on source_eval (-1 when not tracked)
  double disc_accuracy = -1.0;   ///< GAN discriminator accuracy (-1 = n/a)
  GuardVerdict verdict = GuardVerdict::kHealthy;  ///< guard's epoch verdict
  int nan_steps = 0;             ///< steps skipped for non-finite loss/grads
  bool rolled_back = false;      ///< guard restored last-good weights after
                                 ///< this epoch (lr/clip backed off)
};

/// \brief Outcome of a training run.
struct TrainResult {
  double best_valid_f1 = 0.0;
  int best_epoch = -1;
  std::vector<EpochStats> history;
  GuardVerdict verdict = GuardVerdict::kHealthy;  ///< run-level verdict
  int rollbacks = 0;  ///< guard-triggered last-good restores (final attempt)
  int retries = 0;    ///< reseeded restarts Run() needed (0 = first try)
};

/// \brief One word for result dashboards and CSVs: "converged",
/// "recovered-after-retry" (healthy but needed rollbacks/retries),
/// "diverged", or "collapsed".
const char* RunVerdictLabel(const TrainResult& result);

using EpochCallback = std::function<void(const EpochStats&)>;

/// \brief Trains (F, M, A) for one source -> target adaptation task.
class DaTrainer {
 public:
  /// \param extractor F; for GAN methods this is the teacher, and the
  ///   adapted student F' is created internally (see final_extractor()).
  /// \param matcher M, trained on the labeled source.
  DaTrainer(AlignMethod method, const DaderConfig& config,
            FeatureExtractor* extractor, Matcher* matcher);

  /// \brief Runs the full training protocol with recovery: after an attempt
  /// the guard classifies as diverged/collapsed, the trainer restores the
  /// pre-adaptation checkpoint (durable when config.guard.checkpoint_dir is
  /// set, in-memory otherwise) and retries with a fresh seed and backed-off
  /// learning rate, up to config.guard.max_retries times. The attempt count
  /// and final verdict are surfaced through TrainResult instead of garbage
  /// metrics; a Status error is returned only for invalid inputs.
  /// \param source labeled source pairs (D^S, Y^S).
  /// \param target_train target pairs D^T; labels, if any, are ignored.
  /// \param target_valid small labeled target validation set for snapshot
  ///   selection.
  /// \param source_eval optional labeled source set evaluated per epoch
  ///   (Figure 8 tracks source F1 during adversarial training).
  /// \param callback optional per-epoch hook (invoked for every attempt).
  Result<TrainResult> Run(const data::ERDataset& source,
                          const data::ERDataset& target_train,
                          const data::ERDataset& target_valid,
                          const data::ERDataset* source_eval = nullptr,
                          EpochCallback callback = nullptr);

  /// \brief Single guarded training attempt (no reseeded retries); Run() is
  /// the recommended entry point.
  TrainResult Train(const data::ERDataset& source,
                    const data::ERDataset& target_train,
                    const data::ERDataset& target_valid,
                    const data::ERDataset* source_eval = nullptr,
                    EpochCallback callback = nullptr);

  /// \brief The extractor to use for target prediction after Train():
  /// F' for GAN methods, the original F otherwise.
  FeatureExtractor* final_extractor();

  AlignMethod method() const { return method_; }

 private:
  TrainResult TrainAlgorithm1(const data::ERDataset& source,
                              const data::ERDataset& target_train,
                              const data::ERDataset& target_valid,
                              const data::ERDataset* source_eval,
                              const EpochCallback& callback);
  // Algorithm 2 step 1 (lines 2-7): source training of F and M.
  void PretrainSourceGan(const data::ERDataset& source);
  // Algorithm 2 step 2 (lines 8-16): adversarial adaptation of F'.
  TrainResult AdaptAlgorithm2(const data::ERDataset& source,
                              const data::ERDataset& target_train,
                              const data::ERDataset& target_valid,
                              const data::ERDataset* source_eval,
                              const EpochCallback& callback);

  // Reseeds the trainer's rng, re-initializes the aligner networks, and
  // backs off the learning rate for retry `attempt` (1-based).
  void ReseedForRetry(int attempt);

  // The aligner module A of the current method (null for NoDA/MMD/CMD/
  // K-order, whose aligners have no parameters).
  nn::Module* aligner_module();

  // Token bags (non-special tokens per row) for the ED reconstruction loss.
  static std::vector<std::vector<int64_t>> TokenBags(const EncodedBatch& batch);

  AlignMethod method_;
  DaderConfig config_;
  FeatureExtractor* extractor_;
  Matcher* matcher_;
  std::unique_ptr<FeatureExtractor> adapted_;      // F' (GAN methods)
  std::unique_ptr<DomainDiscriminator> discriminator_;
  std::unique_ptr<ReconstructionDecoder> decoder_;
  Rng rng_;
  float lr_scale_ = 1.0f;     // retry-level learning-rate backoff
  uint64_t retry_salt_ = 0;   // folded into F'/aligner seeds on retry
};

}  // namespace dader::core
