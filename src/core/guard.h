// Training-stability guardrails for the DADER trainers.
//
// Adversarial aligners — InvGAN in particular (Figure 8) — can diverge or
// collapse, and a single NaN batch used to silently poison a whole
// experiment sweep. This module provides the pieces the trainer composes
// into a recovery protocol:
//
//   * TrainingGuard      — per-step finiteness checks and per-epoch
//                          divergence / GAN-collapse classification.
//   * BestSnapshot       — best-valid-F1 model selection that refuses
//                          guard-flagged epochs and can spill the best
//                          weights to disk (crash durability).
//   * SaveModules /      — durable multi-module checkpoints on top of
//     LoadModules          SaveTensors (atomic rename + CRC footer).
//   * PoisonGradients    — the NaN-gradient fault payload used with
//                          util/fault.h in tests.
//
// See DESIGN.md "Failure modes & recovery" for thresholds and the full
// rollback / retry-with-reseed protocol.

#pragma once

#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace dader::core {

/// \brief Health classification of an epoch or of a whole training run.
enum class GuardVerdict {
  kHealthy,    ///< losses finite and within the explosion envelope
  kDiverged,   ///< NaN/Inf loss, gradients, or parameters, or loss explosion
  kCollapsed,  ///< GAN failure mode: discriminator wins while valid F1 dies
};

/// \brief "healthy", "diverged", "collapsed".
const char* GuardVerdictName(GuardVerdict verdict);

/// \brief Stateful divergence detector, one instance per training attempt.
///
/// The trainer feeds it step-level finiteness observations and one
/// EpochObservation per epoch; EndEpoch returns the epoch's verdict. After
/// a rollback the trainer calls Reset() so stale streaks from the bad
/// trajectory cannot re-trip the guard.
class TrainingGuard {
 public:
  explicit TrainingGuard(const GuardConfig& config) : config_(config) {}

  /// \brief What the trainer observed over one epoch.
  struct EpochObservation {
    double mean_loss = 0.0;      ///< mean total loss over finite steps
    int nan_steps = 0;           ///< steps skipped for non-finite loss/grads
    bool aborted = false;        ///< epoch ended early (simulated crash)
    bool params_finite = true;   ///< all model parameters finite at epoch end
    double valid_f1 = -1.0;      ///< target validation F1 (-1 = unknown)
    double disc_accuracy = -1.0; ///< GAN discriminator accuracy (-1 = n/a)
  };

  /// \brief Classifies the epoch and folds it into the guard's history.
  GuardVerdict EndEpoch(const EpochObservation& obs);

  /// \brief Last EndEpoch verdict.
  GuardVerdict verdict() const { return verdict_; }

  /// \brief Clears explosion/collapse streak state after a rollback. The
  /// loss window is kept: the pre-rollback healthy epochs remain the
  /// reference for what a sane loss looks like.
  void Reset();

  /// \brief True when every element of every tensor is finite.
  static bool AllFinite(const std::vector<Tensor>& tensors);

  /// \brief True when every gradient buffer element is finite.
  static bool GradsFinite(const std::vector<Tensor>& tensors);

 private:
  GuardConfig config_;
  std::deque<double> window_;   // trailing healthy-epoch mean losses
  int disc_streak_ = 0;         // consecutive collapse-pattern epochs
  double best_f1_ = -1.0;       // best healthy valid F1 so far
  GuardVerdict verdict_ = GuardVerdict::kHealthy;
};

/// \brief Tracks the best validation F1 and the corresponding weights.
///
/// Guard-flagged and non-finite epochs are never considered — a NaN-F1
/// epoch must never become "best". With a spill path set, every new best is
/// also persisted via SaveTensors (atomic + CRC), so the best model
/// survives a process crash.
class BestSnapshot {
 public:
  /// \brief Enables on-disk spilling of each new best to `path`.
  void set_spill_path(std::string path) { spill_path_ = std::move(path); }
  const std::string& spill_path() const { return spill_path_; }

  void Consider(double valid_f1, int epoch, const nn::Module& extractor,
                const nn::Module& matcher,
                GuardVerdict verdict = GuardVerdict::kHealthy);

  void Restore(nn::Module* extractor, nn::Module* matcher) const;

  double best_f1() const { return best_f1_; }
  int best_epoch() const { return best_epoch_; }

 private:
  double best_f1_ = -1.0;
  int best_epoch_ = -1;
  std::string spill_path_;
  std::map<std::string, Tensor> extractor_weights_;
  std::map<std::string, Tensor> matcher_weights_;
};

/// \brief A named module slot inside a multi-module checkpoint file.
using ModuleBinding = std::pair<std::string, nn::Module*>;

/// \brief Writes the named modules' weights to one checkpoint file, keys
/// prefixed "<name>." (e.g. "F.encoder.layer0.w"). Atomic + CRC-tagged.
Status SaveModules(const std::string& path,
                   const std::vector<ModuleBinding>& modules);

/// \brief Restores a SaveModules checkpoint. Validates every key against
/// the bindings before touching any module, so a corrupt or mismatched file
/// leaves the models exactly as they were.
Status LoadModules(const std::string& path,
                   const std::vector<ModuleBinding>& modules);

/// \brief Overwrites every gradient buffer of `params` with NaN — the
/// kNanGradient fault payload (tests only).
void PoisonGradients(const std::vector<Tensor>& params);

}  // namespace dader::core
