#include "core/experiment.h"

#include "core/active.h"
#include "core/evaluator.h"
#include "core/pretrain.h"
#include "data/generators.h"
#include "data/sampler.h"
#include "tensor/nn_ops.h"
#include "tensor/optimizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dader::core {

namespace ops = ::dader::ops;

namespace {

// Pre-training recipe per scale preset.
PretrainConfig PretrainForScale(const ExperimentScale& scale) {
  PretrainConfig pc;
  if (scale.name == "full") {
    pc.steps = 800;
    pc.corpus_scale = 0.05;
  } else if (scale.name == "small") {
    pc.steps = 500;
    pc.corpus_scale = 0.03;
  } else {
    pc.steps = 300;
    pc.corpus_scale = 0.02;
  }
  return pc;
}

data::GenerateOptions GenOptionsFor(const ExperimentScale& scale,
                                    uint64_t seed) {
  data::GenerateOptions opts;
  opts.scale = scale.data_scale;
  opts.min_pairs = scale.min_pairs;
  opts.seed = seed;
  return opts;
}

}  // namespace

Result<DaTask> BuildDaTask(const std::string& source_name,
                           const std::string& target_name,
                           const ExperimentScale& scale, uint64_t data_seed) {
  DaTask task;
  DADER_ASSIGN_OR_RETURN(
      task.source,
      data::GenerateDataset(source_name, GenOptionsFor(scale, data_seed)));
  data::ERDataset target;
  DADER_ASSIGN_OR_RETURN(
      target,
      data::GenerateDataset(target_name, GenOptionsFor(scale, data_seed + 1)));

  // Validation:test = 1:9 on the target (Section 6.1); training never sees
  // target labels outside the validation slice.
  Rng split_rng(data_seed ^ 0x5117ULL ^ Fnv1a64(target_name));
  data::DatasetSplits splits =
      target.Split(0.0, scale.valid_fraction, 1.0 - scale.valid_fraction,
                   &split_rng);
  task.target_valid = std::move(splits.valid);
  task.target_test = std::move(splits.test);
  task.target_unlabeled = target.WithoutLabels();

  // Small labeled source slice for the Figure-8 source-F1 curves.
  Rng eval_rng(data_seed ^ 0xe4a1ULL);
  const size_t eval_n = std::min<size_t>(task.source.size(), 150);
  task.source_eval =
      task.source.Subset(eval_rng.SampleIndices(task.source.size(), eval_n));
  return task;
}

Result<DaModel> BuildModel(ExtractorKind kind, const ExperimentScale& scale,
                           bool pretrained, uint64_t seed) {
  DaModel model;
  DaderConfig config = scale.model;
  config.seed = seed;
  model.extractor = MakeExtractor(kind, config, seed);
  model.matcher = std::make_unique<Matcher>(model.extractor->feature_dim(),
                                            seed ^ 0x3aULL);
  if (kind == ExtractorKind::kLM && pretrained) {
    auto* lm = static_cast<LMFeatureExtractor*>(model.extractor.get());
    DADER_RETURN_NOT_OK(LoadOrPretrainLM(lm, PretrainCachePath(scale.name),
                                         PretrainForScale(scale)));
  }
  return model;
}

Result<DaModel> CloneModel(const DaModel& model, uint64_t seed) {
  if (!model.extractor || !model.matcher) {
    return Status::InvalidArgument("CloneModel requires a built model");
  }
  DaModel clone;
  clone.extractor = model.extractor->CloneArchitecture(seed);
  DADER_RETURN_NOT_OK(clone.extractor->CopyWeightsFrom(*model.extractor));
  clone.matcher = std::make_unique<Matcher>(model.extractor->feature_dim(),
                                            seed ^ 0x3aULL);
  DADER_RETURN_NOT_OK(clone.matcher->CopyWeightsFrom(*model.matcher));
  return clone;
}

Result<DaRunOutcome> RunSingleDa(AlignMethod method,
                                 const ExperimentScale& scale,
                                 const DaTask& task, DaModel* model,
                                 bool track_source_f1,
                                 EpochCallback callback) {
  if (model == nullptr || !model->extractor || !model->matcher) {
    return Status::InvalidArgument("RunSingleDa requires a built model");
  }
  DaderConfig config = scale.model;
  config.seed = model->extractor->config().seed;
  DaRunOutcome out;
  out.trainer = std::make_unique<DaTrainer>(method, config,
                                            model->extractor.get(),
                                            model->matcher.get());
  DADER_ASSIGN_OR_RETURN(
      out.train,
      out.trainer->Run(task.source, task.target_unlabeled, task.target_valid,
                       track_source_f1 ? &task.source_eval : nullptr,
                       std::move(callback)));
  if (out.train.verdict != GuardVerdict::kHealthy) {
    DADER_LOG(Warning) << AlignMethodName(method) << " run "
                       << RunVerdictLabel(out.train) << " after "
                       << out.train.retries << " retries; reported metrics "
                       << "come from the last attempt's best snapshot";
  }
  Rng eval_rng(config.seed ^ 0x7e57ULL);
  out.test_f1 = Evaluate(out.trainer->final_extractor(), model->matcher.get(),
                         task.target_test, config.batch_size, &eval_rng)
                    .F1();
  return out;
}

Result<DaCellResult> RunDaCell(const std::string& source_name,
                               const std::string& target_name,
                               AlignMethod method,
                               const ExperimentScale& scale,
                               const DaCellOptions& options) {
  DADER_ASSIGN_OR_RETURN(DaTask task,
                         BuildDaTask(source_name, target_name, scale));
  DaCellResult cell;
  for (int64_t s = 0; s < scale.num_seeds; ++s) {
    ExperimentScale seeded = scale;
    seeded.model.seed = options.base_seed + static_cast<uint64_t>(s) * 1000;
    DADER_ASSIGN_OR_RETURN(
        DaModel model, BuildModel(options.extractor, seeded,
                                  options.pretrained_lm, seeded.model.seed));
    DADER_ASSIGN_OR_RETURN(DaRunOutcome outcome,
                           RunSingleDa(method, seeded, task, &model));
    cell.per_seed_f1.push_back(outcome.test_f1);
  }
  cell.f1 = ComputeMeanStd(cell.per_seed_f1);
  return cell;
}

const char* SemiMethodName(SemiMethod method) {
  switch (method) {
    case SemiMethod::kNoDA:
      return "NoDA";
    case SemiMethod::kInvGANKD:
      return "InvGAN+KD";
    case SemiMethod::kDitto:
      return "Ditto";
    case SemiMethod::kDeepMatcher:
      return "DeepMatcher";
  }
  return "?";
}

namespace {

// Supervised fine-tuning of (F, M) on a labeled dataset.
void FineTune(FeatureExtractor* extractor, Matcher* matcher,
              const data::ERDataset& labeled, const DaderConfig& config,
              int64_t epochs, Rng* rng) {
  if (labeled.size() == 0) return;
  AdamOptimizer opt_f(extractor->Parameters(), config.learning_rate);
  AdamOptimizer opt_m(matcher->Parameters(), config.learning_rate);
  data::MinibatchSampler sampler(&labeled, config.batch_size, rng->Fork(3));
  const size_t iters = sampler.BatchesPerEpoch();
  extractor->SetTraining(true);
  matcher->SetTraining(true);
  for (int64_t e = 0; e < epochs; ++e) {
    for (size_t it = 0; it < iters; ++it) {
      const std::vector<size_t> idx = sampler.NextBatch();
      const EncodedBatch batch = extractor->EncodePairs(labeled, idx);
      std::vector<int64_t> labels;
      for (size_t i : idx) labels.push_back(labeled.pair(i).label);
      Tensor logits = matcher->Forward(extractor->Forward(batch, rng), rng);
      Tensor loss = ops::CrossEntropyWithLogits(logits, labels);
      opt_f.ZeroGrad();
      opt_m.ZeroGrad();
      loss.Backward();
      opt_f.ClipGradNorm(config.grad_clip_norm);
      opt_m.ClipGradNorm(config.grad_clip_norm);
      opt_f.Step();
      opt_m.Step();
    }
  }
}

}  // namespace

Result<std::vector<SemiPoint>> RunSemiSupervised(
    const std::string& source_name, const std::string& target_name,
    SemiMethod method, const ExperimentScale& scale, int64_t labels_per_round,
    int64_t rounds, uint64_t seed) {
  // 3:1:1 target split (the DeepMatcher protocol the paper follows here).
  data::ERDataset target;
  DADER_ASSIGN_OR_RETURN(
      target, data::GenerateDataset(target_name, GenOptionsFor(scale, 8)));
  Rng split_rng(seed ^ 0x311ULL);
  data::DatasetSplits splits = target.Split(0.6, 0.2, 0.2, &split_rng);
  const data::ERDataset& pool = splits.train;  // labels drawn from here

  // Build the model, with DA pre-adaptation for the DA-based competitors.
  const ExtractorKind kind = method == SemiMethod::kDeepMatcher
                                 ? ExtractorKind::kRNN
                                 : ExtractorKind::kLM;
  const bool pretrained = kind == ExtractorKind::kLM;
  ExperimentScale seeded = scale;
  seeded.model.seed = seed;
  DADER_ASSIGN_OR_RETURN(DaModel model,
                         BuildModel(kind, seeded, pretrained, seed));

  DaderConfig config = seeded.model;
  Rng rng(seed ^ 0xf19ULL);

  // The DA competitors first train on the labeled source (NoDA) or run the
  // full InvGAN+KD adaptation against the unlabeled target pool.
  std::unique_ptr<DaTrainer> da_trainer;  // keeps F' alive
  FeatureExtractor* predictor = model.extractor.get();
  if (method == SemiMethod::kNoDA || method == SemiMethod::kInvGANKD) {
    DADER_ASSIGN_OR_RETURN(
        DaTask task, BuildDaTask(source_name, target_name, seeded, 8));
    const AlignMethod align = method == SemiMethod::kInvGANKD
                                  ? AlignMethod::kInvGANKD
                                  : AlignMethod::kNoDA;
    DADER_ASSIGN_OR_RETURN(DaRunOutcome outcome,
                           RunSingleDa(align, seeded, task, &model));
    da_trainer = std::move(outcome.trainer);
    predictor = da_trainer->final_extractor();
  }

  std::vector<SemiPoint> series;
  std::vector<bool> selected(pool.size(), false);
  std::vector<size_t> labeled_indices;
  for (int64_t round = 1; round <= rounds; ++round) {
    // Max-entropy selection against the current model.
    Prediction pred =
        Predict(predictor, model.matcher.get(), pool, config.batch_size, &rng);
    const std::vector<size_t> chosen =
        SelectMaxEntropy(pred.probs, selected, static_cast<size_t>(labels_per_round));
    for (size_t i : chosen) {
      selected[i] = true;
      labeled_indices.push_back(i);
    }
    const data::ERDataset labeled = pool.Subset(labeled_indices);

    FineTune(predictor, model.matcher.get(), labeled, config,
             /*epochs=*/4, &rng);

    SemiPoint point;
    point.labels_used = static_cast<int64_t>(labeled_indices.size());
    Rng eval_rng(seed ^ static_cast<uint64_t>(round));
    point.test_f1 = Evaluate(predictor, model.matcher.get(), splits.test,
                             config.batch_size, &eval_rng)
                        .F1();
    series.push_back(point);
  }
  return series;
}

}  // namespace dader::core
