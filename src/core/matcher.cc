#include "core/matcher.h"

#include "tensor/nn_ops.h"

namespace dader::core {

namespace ops = ::dader::ops;

Matcher::Matcher(int64_t feature_dim, uint64_t seed) {
  Rng rng(seed);
  mlp_ = std::make_unique<nn::Mlp>(std::vector<int64_t>{feature_dim, 2},
                                   nn::Activation::kRelu, 0.0f, &rng);
  RegisterModule("mlp", mlp_.get());
}

Tensor Matcher::Forward(const Tensor& features, Rng* rng) const {
  return mlp_->Forward(features, rng);
}

std::vector<float> Matcher::PredictProbabilities(const Tensor& features,
                                                 Rng* rng) const {
  Tensor probs = ops::Softmax(Forward(features.Detach(), rng));
  std::vector<float> out(static_cast<size_t>(probs.dim(0)));
  for (int64_t i = 0; i < probs.dim(0); ++i) {
    out[static_cast<size_t>(i)] = probs.at(i, 1);
  }
  return out;
}

DomainDiscriminator::DomainDiscriminator(int64_t feature_dim, int64_t hidden,
                                         bool deep, uint64_t seed) {
  Rng rng(seed ^ 0xd15cULL);
  std::vector<int64_t> dims =
      deep ? std::vector<int64_t>{feature_dim, hidden, hidden, hidden, 1}
           : std::vector<int64_t>{feature_dim, 1};
  mlp_ = std::make_unique<nn::Mlp>(std::move(dims), nn::Activation::kLeakyRelu,
                                   0.0f, &rng);
  RegisterModule("mlp", mlp_.get());
}

Tensor DomainDiscriminator::Forward(const Tensor& features, Rng* rng) const {
  return mlp_->Forward(features, rng);
}

ReconstructionDecoder::ReconstructionDecoder(int64_t feature_dim,
                                             int64_t vocab_size,
                                             uint64_t seed) {
  Rng rng(seed ^ 0xdec0deULL);
  out_ = std::make_unique<nn::Linear>(feature_dim, vocab_size, &rng);
  RegisterModule("out", out_.get());
}

Tensor ReconstructionDecoder::Forward(const Tensor& features) const {
  return out_->Forward(features);
}

}  // namespace dader::core
