// Umbrella header: the public API of the DADER library.
//
// Quickstart:
//
//   #include "core/dader.h"
//   using namespace dader;
//
//   auto scale = core::SmokeScale();
//   auto task = core::BuildDaTask("WA", "AB", scale).ValueOrDie();
//   auto model = core::BuildModel(core::ExtractorKind::kLM, scale,
//                                 /*pretrained=*/true, /*seed=*/42)
//                    .ValueOrDie();
//   auto outcome = core::RunSingleDa(core::AlignMethod::kMMD, scale, task,
//                                    &model).ValueOrDie();
//   printf("target F1 = %.1f\n", outcome.test_f1 * 100);
//
// See examples/ for runnable programs and DESIGN.md for the architecture.

#pragma once

#include "core/active.h"
#include "core/config.h"
#include "core/dataset_distance.h"
#include "core/evaluator.h"
#include "core/experiment.h"
#include "core/feature_extractor.h"
#include "core/matcher.h"
#include "core/metrics.h"
#include "core/pretrain.h"
#include "core/reweight.h"
#include "core/trainer.h"
#include "core/tsne.h"
#include "data/blocking.h"
#include "data/generators.h"
