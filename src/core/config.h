// Configuration for DADER models and experiments, with scale presets.
//
// The paper trains 12-layer BERT (768-d) on GPUs for 40 epochs; this repo
// runs on one CPU core, so presets trade model size and data volume for
// wall-clock while preserving the training dynamics the paper studies.

#pragma once

#include <cstdint>
#include <string>

namespace dader {
class FaultInjector;  // util/fault.h; only tests/benches arm one
}

namespace dader::core {

/// \brief Thresholds and recovery policy of the training-stability guard
/// (core/guard.h). Defaults are calibrated to never trip on a healthy run
/// at any scale preset; see DESIGN.md "Failure modes & recovery".
struct GuardConfig {
  bool enabled = true;       ///< disable for a pre-guard-behavior escape hatch

  // --- divergence detection ---
  int loss_window = 5;       ///< trailing healthy epochs in the loss window
  double explosion_factor = 25.0;  ///< loss > factor * window median => diverged
  double loss_floor = 0.5;   ///< reference floor so tiny losses cannot trip
  int max_nan_steps = 0;     ///< non-finite steps tolerated per epoch

  // --- GAN collapse classification (Algorithm-2 methods only) ---
  double disc_collapse_acc = 0.98;  ///< discriminator accuracy at/above this...
  int disc_collapse_epochs = 3;     ///< ...for this many consecutive epochs
  double collapse_f1_frac = 0.5;    ///< ...while valid F1 < frac * best-so-far

  // --- recovery ---
  int max_rollbacks = 2;     ///< in-run rollbacks to last-good before giving up
  double lr_backoff = 0.5;   ///< learning-rate multiplier per rollback/retry
  double clip_backoff = 0.5; ///< grad-clip-norm multiplier per rollback
  int max_retries = 2;       ///< Run()-level reseeded restarts of adaptation

  // --- durable checkpoints ---
  /// Directory for on-disk checkpoints (pre-adaptation state, periodic
  /// last-good snapshots, best-model spill). Empty = in-memory only.
  std::string checkpoint_dir;
  int checkpoint_every = 0;  ///< epochs between durable snapshots (0 = off)
};

/// \brief Hyper-parameters shared by all DADER variants.
struct DaderConfig {
  // --- tokenization ---
  int64_t vocab_size = 4096;  ///< hashing vocabulary (incl. special ids)
  int64_t max_len = 32;       ///< serialized-pair token budget

  // --- LM (transformer) feature extractor ---
  int64_t hidden_dim = 32;    ///< model width d (feature dimension)
  int64_t num_heads = 4;
  int64_t num_layers = 1;
  int64_t ffn_dim = 64;
  float dropout = 0.1f;

  /// Feed the cross-entity token-overlap flags into the extractors (the
  /// Ditto-style injection documented in DESIGN.md). Exposed for the
  /// ablation bench; disabling it removes the explicit equality signal.
  bool use_overlap_flags = true;

  // --- RNN feature extractor ---
  int64_t rnn_hidden = 24;    ///< per-direction GRU width

  // --- training ---
  int64_t batch_size = 16;
  int64_t epochs = 8;
  float learning_rate = 4e-4f;   ///< scaled-down model => larger lr than BERT's 1e-5
  /// Alignment-loss weights beta (Eq. 3 / 7). The paper selects beta per
  /// dataset from {0.001,...,5} on the validation set; the tiny smoke-scale
  /// validation sets make that unreliable, so each method instead gets a
  /// default calibrated to its loss magnitude (CORAL's 1/(4d^2) scaling
  /// makes it ~2 orders smaller than MMD). `beta_scale` multiplies all.
  float beta_mmd = 0.5f;
  float beta_coral = 15.0f;
  float beta_grl = 0.3f;         ///< GRL lambda (reversed-gradient strength)
  float beta_ed = 0.05f;
  float beta_cmd = 0.5f;       ///< extension aligner (CMD)
  float beta_scale = 1.0f;
  float kd_temperature = 2.0f;   ///< t in Eq. (12)
  float grad_clip_norm = 5.0f;
  float weight_decay = 0.01f;    ///< decoupled (AdamW-style) weight decay
  int64_t gan_pretrain_epochs = 10;  ///< Algorithm 2 step-1 epochs
  uint64_t seed = 42;

  // --- adversarial discriminator ---
  int64_t disc_hidden = 32;   ///< width of the InvGAN discriminator MLP

  // --- robustness ---
  GuardConfig guard;          ///< training-stability guard (core/guard.h)
  /// Optional fault injector consulted by the trainer/checkpoint paths;
  /// null (the default) means no instrumented site ever fires.
  FaultInjector* fault = nullptr;
};

/// \brief Per-experiment scale: model config + dataset sizing + repeats.
struct ExperimentScale {
  DaderConfig model;
  double data_scale = 0.04;   ///< multiplies Table-2 #Pairs
  int64_t min_pairs = 240;    ///< floor on generated pair count
  int64_t num_seeds = 2;      ///< repeats for mean +/- std
  /// Target validation fraction (paper: 0.1). Scaled-down datasets need a
  /// larger fraction for snapshot selection to carry signal.
  double valid_fraction = 0.2;
  std::string name = "smoke";
};

/// \brief Fast default: the whole bench suite finishes in minutes.
ExperimentScale SmokeScale();

/// \brief Mid-scale: bigger model and data, ~an order of magnitude slower.
ExperimentScale SmallScale();

/// \brief Closest to the paper this hardware allows.
ExperimentScale FullScale();

/// \brief Resolves "smoke"/"small"/"full"; falls back to SmokeScale and, if
/// `name` is empty, also consults the DADER_SCALE environment variable.
ExperimentScale ResolveScale(const std::string& name);

}  // namespace dader::core
