#include "core/guard.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "tensor/serialize.h"
#include "util/logging.h"

namespace dader::core {

const char* GuardVerdictName(GuardVerdict verdict) {
  switch (verdict) {
    case GuardVerdict::kHealthy:
      return "healthy";
    case GuardVerdict::kDiverged:
      return "diverged";
    case GuardVerdict::kCollapsed:
      return "collapsed";
  }
  return "?";
}

namespace {

double Median(std::deque<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

// One label series per verdict; pointers fetched once per process.
obs::Counter* VerdictCounter(GuardVerdict v) {
  static obs::Counter* counters[] = {
      obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("train.guard.verdicts.total", "verdict", "healthy"),
          "TrainingGuard epoch verdicts", "epochs"),
      obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("train.guard.verdicts.total", "verdict",
                           "diverged"),
          "TrainingGuard epoch verdicts", "epochs"),
      obs::MetricsRegistry::Default().GetCounter(
          obs::LabeledName("train.guard.verdicts.total", "verdict",
                           "collapsed"),
          "TrainingGuard epoch verdicts", "epochs")};
  return counters[static_cast<int>(v)];
}

}  // namespace

GuardVerdict TrainingGuard::EndEpoch(const EpochObservation& obs) {
  if (!config_.enabled) {
    verdict_ = GuardVerdict::kHealthy;
    return verdict_;
  }
  GuardVerdict v = GuardVerdict::kHealthy;
  if (obs.aborted || obs.nan_steps > config_.max_nan_steps ||
      !obs.params_finite || !std::isfinite(obs.mean_loss) ||
      !std::isfinite(obs.valid_f1)) {
    v = GuardVerdict::kDiverged;
  }
  if (v == GuardVerdict::kHealthy && !window_.empty()) {
    const double reference = std::max(Median(window_), config_.loss_floor);
    if (obs.mean_loss > config_.explosion_factor * reference) {
      v = GuardVerdict::kDiverged;
    }
  }
  // GAN collapse: the discriminator separates the domains near-perfectly
  // while the model's target F1 has fallen well below its own best — the
  // Figure-8 pattern where adaptation destroyed the features.
  if (obs.disc_accuracy >= 0.0) {
    const bool collapse_pattern =
        obs.disc_accuracy >= config_.disc_collapse_acc && best_f1_ > 0.1 &&
        obs.valid_f1 < config_.collapse_f1_frac * best_f1_;
    disc_streak_ = collapse_pattern ? disc_streak_ + 1 : 0;
    if (disc_streak_ >= config_.disc_collapse_epochs) {
      v = GuardVerdict::kCollapsed;
    }
  }
  if (v == GuardVerdict::kHealthy) {
    window_.push_back(obs.mean_loss);
    while (static_cast<int>(window_.size()) > config_.loss_window) {
      window_.pop_front();
    }
    best_f1_ = std::max(best_f1_, obs.valid_f1);
  }
  verdict_ = v;
  VerdictCounter(v)->Increment();
  return v;
}

void TrainingGuard::Reset() {
  disc_streak_ = 0;
  verdict_ = GuardVerdict::kHealthy;
}

bool TrainingGuard::AllFinite(const std::vector<Tensor>& tensors) {
  for (const Tensor& t : tensors) {
    for (float v : t.vec()) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

bool TrainingGuard::GradsFinite(const std::vector<Tensor>& tensors) {
  for (const Tensor& t : tensors) {
    for (float g : t.grad()) {
      if (!std::isfinite(g)) return false;
    }
  }
  return true;
}

void BestSnapshot::Consider(double valid_f1, int epoch,
                            const nn::Module& extractor,
                            const nn::Module& matcher, GuardVerdict verdict) {
  // A flagged or non-finite epoch must never become "best", even when no
  // healthy epoch has been seen yet.
  if (verdict != GuardVerdict::kHealthy || !std::isfinite(valid_f1)) return;
  // >= keeps the latest epoch among ties: when validation is
  // uninformative (all-equal F1), longer training is the better default.
  if (best_epoch_ < 0 || valid_f1 >= best_f1_) {
    best_f1_ = valid_f1;
    best_epoch_ = epoch;
    extractor_weights_ = extractor.SnapshotWeights();
    matcher_weights_ = matcher.SnapshotWeights();
    if (!spill_path_.empty()) {
      std::map<std::string, Tensor> merged;
      for (const auto& [name, t] : extractor_weights_) merged["F." + name] = t;
      for (const auto& [name, t] : matcher_weights_) merged["M." + name] = t;
      Status st = SaveTensors(spill_path_, merged);
      if (!st.ok()) {
        DADER_LOG(Warning) << "best-model spill to " << spill_path_
                           << " failed: " << st.ToString();
      }
    }
  }
}

void BestSnapshot::Restore(nn::Module* extractor, nn::Module* matcher) const {
  if (best_epoch_ < 0) return;
  extractor->RestoreWeights(extractor_weights_).CheckOK();
  matcher->RestoreWeights(matcher_weights_).CheckOK();
}

Status SaveModules(const std::string& path,
                   const std::vector<ModuleBinding>& modules) {
  std::map<std::string, Tensor> merged;
  for (const auto& [name, module] : modules) {
    if (module == nullptr) {
      return Status::InvalidArgument("null module '" + name + "'");
    }
    for (const auto& [key, t] : module->SnapshotWeights()) {
      if (!merged.emplace(name + "." + key, t).second) {
        return Status::InvalidArgument("duplicate checkpoint key '" + name +
                                       "." + key + "'");
      }
    }
  }
  return SaveTensors(path, merged);
}

Status LoadModules(const std::string& path,
                   const std::vector<ModuleBinding>& modules) {
  DADER_ASSIGN_OR_RETURN(auto merged, LoadTensors(path));
  std::map<std::string, std::map<std::string, Tensor>> per_module;
  for (const auto& [key, tensor] : merged) {
    const size_t dot = key.find('.');
    if (dot == std::string::npos) {
      return Status::InvalidArgument("unprefixed checkpoint key '" + key +
                                     "' in " + path);
    }
    per_module[key.substr(0, dot)].emplace(key.substr(dot + 1), tensor);
  }
  // Validate the full key universe before restoring anything: either every
  // module round-trips or no module is touched.
  for (const auto& [prefix, weights] : per_module) {
    (void)weights;
    bool known = false;
    for (const auto& [name, module] : modules) {
      (void)module;
      known |= name == prefix;
    }
    if (!known) {
      return Status::InvalidArgument("checkpoint " + path +
                                     " has unknown module prefix '" + prefix +
                                     "'");
    }
  }
  for (const auto& [name, module] : modules) {
    auto it = per_module.find(name);
    if (it == per_module.end()) {
      return Status::NotFound("checkpoint " + path + " missing module '" +
                              name + "'");
    }
    const auto expected = module->NamedParameters();
    if (expected.size() != it->second.size()) {
      return Status::InvalidArgument(
          "checkpoint " + path + " module '" + name + "' has " +
          std::to_string(it->second.size()) + " tensors, model expects " +
          std::to_string(expected.size()));
    }
    for (const auto& [key, param] : expected) {
      auto w = it->second.find(key);
      if (w == it->second.end()) {
        return Status::NotFound("checkpoint " + path + " missing '" + name +
                                "." + key + "'");
      }
      if (w->second.shape() != param.shape()) {
        return Status::InvalidArgument("shape mismatch for '" + name + "." +
                                       key + "' in " + path);
      }
    }
  }
  for (const auto& [name, module] : modules) {
    DADER_RETURN_NOT_OK(module->RestoreWeights(per_module.at(name)));
  }
  return Status::OK();
}

void PoisonGradients(const std::vector<Tensor>& params) {
  for (Tensor p : params) {
    for (float& g : p.mutable_grad()) {
      g = std::numeric_limits<float>::quiet_NaN();
    }
  }
}

}  // namespace dader::core
