// Source-dataset selection — the research direction the paper's Finding 2
// points at: "choosing a 'close' domain for DA to improve the performance".
//
// Given a target dataset and a pool of candidate labeled sources, rank the
// sources by MMD distance between their feature distributions under a
// (pre-trained) extractor, without using any target labels.

#pragma once

#include <string>
#include <vector>

#include "core/config.h"
#include "core/feature_extractor.h"

namespace dader::core {

/// \brief One ranked candidate source.
struct SourceRanking {
  std::string source_name;
  double mmd = 0.0;
};

/// \brief Ranks candidate sources by ascending MMD distance to the target
/// (closest first) under `extractor`. `max_pairs` caps the per-dataset
/// sample used for the O(n^2) MMD estimate.
Result<std::vector<SourceRanking>> RankSourcesByDistance(
    const std::vector<std::string>& source_names,
    const std::string& target_name, const ExperimentScale& scale,
    FeatureExtractor* extractor, int64_t max_pairs, Rng* rng);

/// \brief Convenience: the closest source's short name.
Result<std::string> SelectClosestSource(
    const std::vector<std::string>& source_names,
    const std::string& target_name, const ExperimentScale& scale,
    FeatureExtractor* extractor, int64_t max_pairs, Rng* rng);

}  // namespace dader::core
