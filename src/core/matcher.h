// Matcher M (Section 4.2): an MLP binary classifier over features, the
// Ditto-style single fully-connected layer + softmax output.
//
// Also defines the parameterized Feature Aligner networks: the domain
// discriminator used by GRL / InvGAN / InvGAN+KD, and the reconstruction
// decoder used by ED.

#pragma once

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/layers.h"

namespace dader::core {

/// \brief Binary matcher: features [n,d] -> logits [n,2].
class Matcher : public nn::Module {
 public:
  Matcher(int64_t feature_dim, uint64_t seed);

  Tensor Forward(const Tensor& features, Rng* rng) const;

  /// \brief Matching probabilities p(match) per row (no tape).
  std::vector<float> PredictProbabilities(const Tensor& features, Rng* rng) const;

 private:
  std::unique_ptr<nn::Mlp> mlp_;
};

/// \brief Domain classifier A for the adversarial aligners.
///
/// GRL uses one fully connected layer (+sigmoid via BCE-with-logits);
/// InvGAN/InvGAN+KD use three LeakyReLU layers (Section 6.1). `deep=true`
/// selects the latter.
class DomainDiscriminator : public nn::Module {
 public:
  DomainDiscriminator(int64_t feature_dim, int64_t hidden, bool deep,
                      uint64_t seed);

  /// \brief features [n,d] -> domain logits [n,1] (source=1, target=0).
  Tensor Forward(const Tensor& features, Rng* rng) const;

 private:
  std::unique_ptr<nn::Mlp> mlp_;
};

/// \brief Reconstruction decoder for the ED aligner.
///
/// The paper uses a BART decoder; offline we use a bag-of-tokens decoder:
/// the feature must predict the multiset of input tokens through a linear
/// layer over the vocabulary (Eq. 15 with order dropped). See DESIGN.md.
class ReconstructionDecoder : public nn::Module {
 public:
  ReconstructionDecoder(int64_t feature_dim, int64_t vocab_size,
                        uint64_t seed);

  /// \brief features [n,d] -> vocabulary logits [n,V].
  Tensor Forward(const Tensor& features) const;

 private:
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace dader::core
