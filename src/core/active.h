// Maximum-entropy active label selection (Section 6.5.2 / Figure 11):
// pick the pairs whose current match probability is most uncertain.

#pragma once

#include <cstddef>
#include <vector>

namespace dader::core {

/// \brief Indices of the `k` unselected pairs with highest prediction
/// entropy (probability closest to 0.5). `already_selected[i]` marks pairs
/// that were labeled in earlier rounds.
std::vector<size_t> SelectMaxEntropy(const std::vector<float>& match_probs,
                                     const std::vector<bool>& already_selected,
                                     size_t k);

}  // namespace dader::core
