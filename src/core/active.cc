#include "core/active.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dader::core {

std::vector<size_t> SelectMaxEntropy(const std::vector<float>& match_probs,
                                     const std::vector<bool>& already_selected,
                                     size_t k) {
  DADER_CHECK_EQ(match_probs.size(), already_selected.size());
  // Entropy of Bernoulli(p) is monotone in -|p - 0.5|, so rank by that.
  std::vector<std::pair<float, size_t>> scored;
  for (size_t i = 0; i < match_probs.size(); ++i) {
    if (already_selected[i]) continue;
    scored.emplace_back(std::fabs(match_probs[i] - 0.5f), i);
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end());
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace dader::core
