#include "core/metrics.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace dader::core {

double ErMetrics::Precision() const {
  const int64_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double ErMetrics::Recall() const {
  const int64_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double ErMetrics::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ErMetrics::Accuracy() const {
  const int64_t total =
      true_positives + false_positives + false_negatives + true_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) / total;
}

std::string ErMetrics::ToString() const {
  return StrFormat("P=%.3f R=%.3f F1=%.3f (tp=%lld fp=%lld fn=%lld tn=%lld)",
                   Precision(), Recall(), F1(),
                   static_cast<long long>(true_positives),
                   static_cast<long long>(false_positives),
                   static_cast<long long>(false_negatives),
                   static_cast<long long>(true_negatives));
}

ErMetrics ComputeMetrics(const std::vector<int>& predictions,
                         const std::vector<int>& labels) {
  DADER_CHECK_EQ(predictions.size(), labels.size());
  ErMetrics m;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool pred = predictions[i] == 1;
    const bool gold = labels[i] == 1;
    if (pred && gold) ++m.true_positives;
    else if (pred && !gold) ++m.false_positives;
    else if (!pred && gold) ++m.false_negatives;
    else ++m.true_negatives;
  }
  return m;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / static_cast<double>(values.size()));
  return out;
}

}  // namespace dader::core
