#include "core/quantize.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/evaluator.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace dader::core {

namespace {

std::vector<nn::Linear*> CollectLinears(nn::Module* root) {
  std::vector<nn::Linear*> out;
  root->Apply([&out](nn::Module* m) {
    if (auto* linear = dynamic_cast<nn::Linear*>(m)) out.push_back(linear);
  });
  return out;
}

std::vector<nn::Linear*> CollectLinears(DaModel* model) {
  std::vector<nn::Linear*> all = CollectLinears(model->extractor.get());
  std::vector<nn::Linear*> m = CollectLinears(model->matcher.get());
  all.insert(all.end(), m.begin(), m.end());
  return all;
}

// First `want` indices, or everything when the dataset is smaller. An
// `offset` lets the agreement check prefer pairs the calibration pass
// never saw.
std::vector<size_t> SliceIndices(size_t dataset_size, int64_t offset,
                                 int64_t want) {
  std::vector<size_t> idx;
  if (dataset_size == 0 || want <= 0) return idx;
  const size_t start =
      offset > 0 && static_cast<size_t>(offset) < dataset_size
          ? static_cast<size_t>(offset)
          : 0;
  for (size_t i = start; i < dataset_size && idx.size() < static_cast<size_t>(want);
       ++i) {
    idx.push_back(i);
  }
  // Wrap to the front if the tail was short.
  for (size_t i = 0; i < start && idx.size() < static_cast<size_t>(want); ++i) {
    idx.push_back(i);
  }
  return idx;
}

}  // namespace

Result<QuantizeReport> QuantizeDaModel(DaModel* model,
                                       const data::ERDataset& calib,
                                       const QuantizeOptions& options) {
  if (model == nullptr || model->extractor == nullptr ||
      model->matcher == nullptr) {
    return Status::InvalidArgument("QuantizeDaModel: null model");
  }
  if (calib.size() == 0) {
    return Status::InvalidArgument(
        "QuantizeDaModel: empty calibration dataset");
  }
  std::vector<nn::Linear*> linears = CollectLinears(model);
  if (linears.empty()) {
    return Status::InvalidArgument(
        "QuantizeDaModel: model has no Linear layers");
  }
  ClearQuantization(model);

  const data::ERDataset calib_slice =
      calib.Subset(SliceIndices(calib.size(), 0, options.calib_pairs));
  const data::ERDataset eval_slice = calib.Subset(
      SliceIndices(calib.size(), options.calib_pairs, options.eval_pairs));

  // 1) Observed fp32 pass: every Linear records its input range.
  Rng rng(options.seed);
  for (nn::Linear* l : linears) {
    l->ResetObserver();
    l->SetCalibrating(true);
  }
  Predict(model->extractor.get(), model->matcher.get(), calib_slice,
          options.batch_size, &rng);
  for (nn::Linear* l : linears) l->SetCalibrating(false);

  // fp32 reference predictions before any state is attached.
  Rng rng_fp32(options.seed + 1);
  const Prediction fp32 =
      Predict(model->extractor.get(), model->matcher.get(), eval_slice,
              options.batch_size, &rng_fp32);

  // 2) Quantize weights against the observed ranges and attach.
  for (nn::Linear* l : linears) {
    const Tensor w = l->weight();
    const Tensor b = l->bias();
    l->AttachQuantState(quant::QuantizeLinearWeights(
        w.data(), l->in_features(), l->out_features(),
        b.defined() ? b.data() : nullptr, l->observer().min_v,
        l->observer().max_v));
  }

  // 3) Acceptance: quantized labels must agree with fp32 on almost every
  // held-out pair, else roll back to fp32 and fail.
  Rng rng_q(options.seed + 1);
  const Prediction quantized =
      Predict(model->extractor.get(), model->matcher.get(), eval_slice,
              options.batch_size, &rng_q);
  int64_t same = 0;
  for (size_t i = 0; i < fp32.labels.size(); ++i) {
    if (fp32.labels[i] == quantized.labels[i]) ++same;
  }
  QuantizeReport report;
  report.linears = static_cast<int64_t>(linears.size());
  report.eval_pairs = static_cast<int64_t>(fp32.labels.size());
  report.agreement = fp32.labels.empty()
                         ? 0.0
                         : static_cast<double>(same) /
                               static_cast<double>(fp32.labels.size());
  if (report.agreement < options.min_agreement) {
    ClearQuantization(model);
    return Status::InvalidArgument(
        "quantized model agrees with fp32 on only " +
        std::to_string(report.agreement) + " of " +
        std::to_string(report.eval_pairs) + " pairs (need " +
        std::to_string(options.min_agreement) + "); rolled back to fp32");
  }
  return report;
}

bool IsQuantized(const DaModel& model) {
  bool any = false;
  auto probe = [&any](nn::Module* m) {
    auto* linear = dynamic_cast<nn::Linear*>(m);
    if (linear != nullptr && linear->quant_state() != nullptr) any = true;
  };
  if (model.extractor != nullptr) model.extractor->Apply(probe);
  if (model.matcher != nullptr) model.matcher->Apply(probe);
  return any;
}

void ClearQuantization(DaModel* model) {
  for (nn::Linear* l : CollectLinears(model)) {
    l->AttachQuantState(nullptr);
    l->SetCalibrating(false);
  }
}

Result<DaModel> CloneQuantized(const DaModel& model, uint64_t seed) {
  DADER_ASSIGN_OR_RETURN(DaModel clone, CloneModel(model, seed));
  // CloneModel reproduces the architecture, so both trees enumerate their
  // Linears in the same order; share the frozen state pairwise.
  std::vector<nn::Linear*> src =
      CollectLinears(const_cast<DaModel*>(&model));
  std::vector<nn::Linear*> dst = CollectLinears(&clone);
  if (src.size() != dst.size()) {
    return Status::Internal("CloneQuantized: layer count mismatch (" +
                            std::to_string(src.size()) + " vs " +
                            std::to_string(dst.size()) + ")");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i]->AttachQuantState(src[i]->quant_state());
  }
  return clone;
}

}  // namespace dader::core
