// t-SNE (van der Maaten & Hinton) and a quantitative domain-mixing score,
// for the Figure-5 feature-distribution analysis.
//
// The exact O(n^2) formulation is used (sample sizes are a few hundred).
// Because a terminal cannot display a scatter plot, DomainMixingScore
// summarizes what Figure 5 shows visually: how interleaved source and
// target features are (1.0 = perfectly mixed, 0.0 = fully separated).

#pragma once

#include <array>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dader::core {

/// \brief t-SNE hyper-parameters.
struct TsneConfig {
  int iterations = 250;
  double perplexity = 20.0;
  double learning_rate = 100.0;
  double momentum = 0.8;
  double early_exaggeration = 4.0;  ///< applied for the first quarter
  uint64_t seed = 5;
};

/// \brief Embeds features [n, d] into 2-D.
std::vector<std::array<double, 2>> RunTsne(const Tensor& features,
                                           const TsneConfig& config);

/// \brief k-NN domain mixing of two feature sets (rows of xs vs rows of xt):
/// for every point, the fraction of its k nearest neighbors (in the pooled
/// set, by euclidean distance) from the *other* domain, averaged and
/// normalized by the expectation under perfect mixing.
double DomainMixingScore(const Tensor& xs, const Tensor& xt, int k = 10);

}  // namespace dader::core
