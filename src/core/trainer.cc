#include "core/trainer.h"

#include <cmath>

#include "data/sampler.h"
#include "tensor/da_losses.h"
#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/logging.h"

namespace dader::core {

namespace ops = ::dader::ops;

const char* AlignMethodName(AlignMethod method) {
  switch (method) {
    case AlignMethod::kNoDA:
      return "NoDA";
    case AlignMethod::kMMD:
      return "MMD";
    case AlignMethod::kKOrder:
      return "K-order";
    case AlignMethod::kGRL:
      return "GRL";
    case AlignMethod::kInvGAN:
      return "InvGAN";
    case AlignMethod::kInvGANKD:
      return "InvGAN+KD";
    case AlignMethod::kED:
      return "ED";
    case AlignMethod::kCMD:
      return "CMD";
  }
  return "?";
}

bool ParseAlignMethod(const std::string& name, AlignMethod* out) {
  for (AlignMethod m :
       {AlignMethod::kNoDA, AlignMethod::kMMD, AlignMethod::kKOrder,
        AlignMethod::kGRL, AlignMethod::kInvGAN, AlignMethod::kInvGANKD,
        AlignMethod::kED, AlignMethod::kCMD}) {
    if (name == AlignMethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const std::vector<AlignMethod>& AllAlignMethods() {
  static const std::vector<AlignMethod> kMethods = {
      AlignMethod::kMMD,    AlignMethod::kKOrder,   AlignMethod::kGRL,
      AlignMethod::kInvGAN, AlignMethod::kInvGANKD, AlignMethod::kED};
  return kMethods;
}

bool IsGanMethod(AlignMethod method) {
  return method == AlignMethod::kInvGAN || method == AlignMethod::kInvGANKD;
}

namespace {

// Source labels for a batch of pair indices.
std::vector<int64_t> BatchLabels(const data::ERDataset& dataset,
                                 const std::vector<size_t>& indices) {
  std::vector<int64_t> labels;
  labels.reserve(indices.size());
  for (size_t i : indices) {
    const data::LabeledPair& p = dataset.pair(i);
    DADER_CHECK_MSG(p.labeled(), "source pair without label");
    labels.push_back(p.label);
  }
  return labels;
}

std::vector<float> ConstantTargets(size_t n, float value) {
  return std::vector<float>(n, value);
}

// Tracks the best validation F1 and the corresponding weights.
class BestSnapshot {
 public:
  void Consider(double valid_f1, int epoch, const nn::Module& extractor,
                const nn::Module& matcher) {
    // >= keeps the latest epoch among ties: when validation is
    // uninformative (all-equal F1), longer training is the better default.
    if (best_epoch_ < 0 || valid_f1 >= best_f1_) {
      best_f1_ = valid_f1;
      best_epoch_ = epoch;
      extractor_weights_ = extractor.SnapshotWeights();
      matcher_weights_ = matcher.SnapshotWeights();
    }
  }

  void Restore(nn::Module* extractor, nn::Module* matcher) const {
    if (best_epoch_ < 0) return;
    extractor->RestoreWeights(extractor_weights_).CheckOK();
    matcher->RestoreWeights(matcher_weights_).CheckOK();
  }

  double best_f1() const { return best_f1_; }
  int best_epoch() const { return best_epoch_; }

 private:
  double best_f1_ = -1.0;
  int best_epoch_ = -1;
  std::map<std::string, Tensor> extractor_weights_;
  std::map<std::string, Tensor> matcher_weights_;
};

}  // namespace

DaTrainer::DaTrainer(AlignMethod method, const DaderConfig& config,
                     FeatureExtractor* extractor, Matcher* matcher)
    : method_(method),
      config_(config),
      extractor_(extractor),
      matcher_(matcher),
      rng_(config.seed ^ 0x7a11ULL) {
  DADER_CHECK(extractor_ != nullptr);
  DADER_CHECK(matcher_ != nullptr);
  if (method_ == AlignMethod::kGRL) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/false,
        config_.seed);
  } else if (IsGanMethod(method_)) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/true,
        config_.seed);
  } else if (method_ == AlignMethod::kED) {
    decoder_ = std::make_unique<ReconstructionDecoder>(
        extractor_->feature_dim(), config_.vocab_size, config_.seed);
  }
}

FeatureExtractor* DaTrainer::final_extractor() {
  return adapted_ != nullptr ? adapted_.get() : extractor_;
}

std::vector<std::vector<int64_t>> DaTrainer::TokenBags(
    const EncodedBatch& batch) {
  std::vector<std::vector<int64_t>> bags(static_cast<size_t>(batch.batch));
  for (int64_t b = 0; b < batch.batch; ++b) {
    for (int64_t t = 0; t < batch.max_len; ++t) {
      const int64_t id = batch.token_ids[static_cast<size_t>(b * batch.max_len + t)];
      if (id >= text::kNumSpecialTokens) {
        bags[static_cast<size_t>(b)].push_back(id);
      }
    }
  }
  return bags;
}

TrainResult DaTrainer::Train(const data::ERDataset& source,
                             const data::ERDataset& target_train,
                             const data::ERDataset& target_valid,
                             const data::ERDataset* source_eval,
                             EpochCallback callback) {
  DADER_CHECK_GT(source.size(), 0u);
  DADER_CHECK_GT(target_valid.size(), 0u);
  if (method_ != AlignMethod::kNoDA) {
    DADER_CHECK_GT(target_train.size(), 0u);
  }
  if (IsGanMethod(method_)) {
    return TrainAlgorithm2(source, target_train, target_valid, source_eval,
                           callback);
  }
  return TrainAlgorithm1(source, target_train, target_valid, source_eval,
                         callback);
}

TrainResult DaTrainer::TrainAlgorithm1(const data::ERDataset& source,
                                       const data::ERDataset& target_train,
                                       const data::ERDataset& target_valid,
                                       const data::ERDataset* source_eval,
                                       const EpochCallback& callback) {
  AdamOptimizer opt_f(extractor_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
  AdamOptimizer opt_m(matcher_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
  std::unique_ptr<AdamOptimizer> opt_a;
  if (discriminator_ != nullptr) {
    opt_a = std::make_unique<AdamOptimizer>(discriminator_->Parameters(),
                                            config_.learning_rate);
  } else if (decoder_ != nullptr) {
    opt_a = std::make_unique<AdamOptimizer>(decoder_->Parameters(),
                                            config_.learning_rate);
  }

  data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                     rng_.Fork(1));
  std::unique_ptr<data::MinibatchSampler> tgt_sampler;
  if (method_ != AlignMethod::kNoDA) {
    tgt_sampler = std::make_unique<data::MinibatchSampler>(
        &target_train, config_.batch_size, rng_.Fork(2));
  }
  const size_t iters = src_sampler.BatchesPerEpoch();

  extractor_->SetTraining(true);
  matcher_->SetTraining(true);

  TrainResult result;
  BestSnapshot best;
  Rng eval_rng = rng_.Fork(99);
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    double sum_lm = 0.0, sum_la = 0.0;
    for (size_t it = 0; it < iters; ++it) {
      // DANN-style warm-up: ramp the alignment weight from 0 to its target
      // as training progresses, so alignment cannot collapse the features
      // before the matcher has learned discriminative ones.
      const double progress =
          (static_cast<double>(epoch - 1) +
           static_cast<double>(it) / static_cast<double>(iters)) /
          static_cast<double>(config_.epochs);
      const float ramp =
          static_cast<float>(2.0 / (1.0 + std::exp(-10.0 * progress)) - 1.0);
      const std::vector<size_t> src_idx = src_sampler.NextBatch();
      const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
      Tensor fs = extractor_->Forward(bs, &rng_);
      Tensor logits = matcher_->Forward(fs, &rng_);
      Tensor loss_m =
          ops::CrossEntropyWithLogits(logits, BatchLabels(source, src_idx));
      Tensor total = loss_m;
      Tensor loss_a;

      if (method_ != AlignMethod::kNoDA) {
        const std::vector<size_t> tgt_idx = tgt_sampler->NextBatch();
        const EncodedBatch bt = extractor_->EncodePairs(target_train, tgt_idx);
        Tensor ft = extractor_->Forward(bt, &rng_);
        switch (method_) {
          case AlignMethod::kMMD:
            loss_a = ops::MmdLoss(fs, ft);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_mmd * config_.beta_scale * ramp));
            break;
          case AlignMethod::kCMD:
            loss_a = ops::CmdLoss(fs, ft);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_cmd * config_.beta_scale * ramp));
            break;
          case AlignMethod::kKOrder:
            loss_a = ops::CoralLoss(fs, ft);
            total = ops::Add(total, ops::MulScalar(loss_a, config_.beta_coral *
                                                               config_.beta_scale *
                                                               ramp));
            break;
          case AlignMethod::kGRL: {
            // Gradient reversal: A minimizes the domain loss while F
            // receives -beta times its gradient (Eq. 9 / Procedure 2).
            const float lambda = config_.beta_grl * config_.beta_scale * ramp;
            Tensor both = ops::Concat(
                {ops::GradReverse(fs, lambda), ops::GradReverse(ft, lambda)}, 0);
            Tensor dom_logits = discriminator_->Forward(both, &rng_);
            std::vector<float> targets = ConstantTargets(src_idx.size(), 1.0f);
            const auto t0 = ConstantTargets(tgt_idx.size(), 0.0f);
            targets.insert(targets.end(), t0.begin(), t0.end());
            loss_a = ops::BinaryCrossEntropyWithLogits(dom_logits, targets);
            total = ops::Add(total, loss_a);
            break;
          }
          case AlignMethod::kED: {
            // Reconstruction over both domains (Eq. 15).
            Tensor both = ops::Concat({fs, ft}, 0);
            Tensor rec_logits = decoder_->Forward(both);
            auto bags = TokenBags(bs);
            auto bags_t = TokenBags(bt);
            bags.insert(bags.end(), bags_t.begin(), bags_t.end());
            loss_a = ops::BagOfTokensCrossEntropy(rec_logits, bags);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_ed * config_.beta_scale));
            break;
          }
          default:
            DADER_CHECK_MSG(false, "unexpected method in Algorithm 1");
        }
        sum_la += loss_a.item();
      }
      sum_lm += loss_m.item();

      opt_f.ZeroGrad();
      opt_m.ZeroGrad();
      if (opt_a != nullptr) opt_a->ZeroGrad();
      total.Backward();
      opt_f.ClipGradNorm(config_.grad_clip_norm);
      opt_m.ClipGradNorm(config_.grad_clip_norm);
      opt_f.Step();
      opt_m.Step();
      if (opt_a != nullptr) {
        opt_a->ClipGradNorm(config_.grad_clip_norm);
        opt_a->Step();
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.matching_loss = sum_lm / static_cast<double>(iters);
    stats.alignment_loss =
        method_ == AlignMethod::kNoDA ? 0.0 : sum_la / static_cast<double>(iters);
    stats.valid_f1 = Evaluate(extractor_, matcher_, target_valid,
                              config_.batch_size, &eval_rng)
                         .F1();
    if (source_eval != nullptr) {
      stats.source_f1 =
          Evaluate(extractor_, matcher_, *source_eval, config_.batch_size,
                   &eval_rng)
              .F1();
    }
    best.Consider(stats.valid_f1, epoch, *extractor_, *matcher_);
    result.history.push_back(stats);
    if (callback) callback(stats);
  }

  best.Restore(extractor_, matcher_);
  result.best_valid_f1 = best.best_f1();
  result.best_epoch = best.best_epoch();
  return result;
}

TrainResult DaTrainer::TrainAlgorithm2(const data::ERDataset& source,
                                       const data::ERDataset& target_train,
                                       const data::ERDataset& target_valid,
                                       const data::ERDataset* source_eval,
                                       const EpochCallback& callback) {
  // ---- Step 1: train F and M on the labeled source (lines 2-7). ----
  {
    AdamOptimizer opt_f(extractor_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
    AdamOptimizer opt_m(matcher_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
    data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                       rng_.Fork(11));
    const size_t iters = src_sampler.BatchesPerEpoch();
    extractor_->SetTraining(true);
    matcher_->SetTraining(true);
    for (int epoch = 1; epoch <= config_.gan_pretrain_epochs; ++epoch) {
      for (size_t it = 0; it < iters; ++it) {
        const std::vector<size_t> src_idx = src_sampler.NextBatch();
        const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
        Tensor logits =
            matcher_->Forward(extractor_->Forward(bs, &rng_), &rng_);
        Tensor loss =
            ops::CrossEntropyWithLogits(logits, BatchLabels(source, src_idx));
        opt_f.ZeroGrad();
        opt_m.ZeroGrad();
        loss.Backward();
        opt_f.ClipGradNorm(config_.grad_clip_norm);
        opt_m.ClipGradNorm(config_.grad_clip_norm);
        opt_f.Step();
        opt_m.Step();
      }
    }
  }

  // ---- Step 2: adversarial adaptation of F' (lines 8-16). ----
  adapted_ = extractor_->CloneArchitecture(config_.seed ^ 0xf2f2ULL);
  adapted_->CopyWeightsFrom(*extractor_).CheckOK();
  adapted_->SetTraining(true);
  extractor_->SetTraining(false);  // F is frozen from here on

  AdamOptimizer opt_d(discriminator_->Parameters(), config_.learning_rate);
  AdamOptimizer opt_fp(adapted_->Parameters(), config_.learning_rate,
                       0.9f, 0.999f, 1e-8f, config_.weight_decay);
  data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                     rng_.Fork(21));
  data::MinibatchSampler tgt_sampler(&target_train, config_.batch_size,
                                     rng_.Fork(22));
  const size_t iters = std::max<size_t>(1, src_sampler.BatchesPerEpoch());

  TrainResult result;
  BestSnapshot best;
  Rng eval_rng = rng_.Fork(98);
  const bool use_kd = method_ == AlignMethod::kInvGANKD;

  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    double sum_gen = 0.0, sum_disc = 0.0;
    for (size_t it = 0; it < iters; ++it) {
      const std::vector<size_t> src_idx = src_sampler.NextBatch();
      const std::vector<size_t> tgt_idx = tgt_sampler.NextBatch();
      const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
      const EncodedBatch bt = extractor_->EncodePairs(target_train, tgt_idx);

      // "Real" source features: F(x^S) for InvGAN (Eq. 10), F'(x^S) for
      // InvGAN+KD (Eq. 13). Both detached — the discriminator step must not
      // move the generator.
      Tensor real = use_kd ? adapted_->Forward(bs, &rng_).Detach()
                           : extractor_->Forward(bs, &rng_).Detach();
      Tensor fake = adapted_->Forward(bt, &rng_);  // graph reused below

      // --- Discriminator update: min_A L_A. ---
      Tensor d_real = discriminator_->Forward(real, &rng_);
      Tensor d_fake = discriminator_->Forward(fake.Detach(), &rng_);
      Tensor loss_d = ops::MulScalar(
          ops::Add(ops::BinaryCrossEntropyWithLogits(
                       d_real, ConstantTargets(src_idx.size(), 1.0f)),
                   ops::BinaryCrossEntropyWithLogits(
                       d_fake, ConstantTargets(tgt_idx.size(), 0.0f))),
          0.5f);
      opt_d.ZeroGrad();
      loss_d.Backward();
      opt_d.ClipGradNorm(config_.grad_clip_norm);
      opt_d.Step();
      sum_disc += loss_d.item();

      // --- Generator update: F' fools A with inverted labels (Eq. 11/14).
      Tensor d_fooled = discriminator_->Forward(fake, &rng_);
      Tensor loss_fp = ops::BinaryCrossEntropyWithLogits(
          d_fooled, ConstantTargets(tgt_idx.size(), 1.0f));
      if (use_kd) {
        // Knowledge distillation (Eq. 12): keep M(F'(x^S)) close to the
        // frozen teacher M(F(x^S)).
        Tensor teacher_logits =
            matcher_->Forward(extractor_->Forward(bs, &rng_).Detach(), &rng_)
                .Detach();
        Tensor student_logits =
            matcher_->Forward(adapted_->Forward(bs, &rng_), &rng_);
        loss_fp = ops::Add(
            loss_fp, ops::KnowledgeDistillationLoss(
                         student_logits, teacher_logits, config_.kd_temperature));
      }
      opt_fp.ZeroGrad();
      // Matcher/discriminator gradients also accumulate here but their
      // optimizers never step in this phase; their grads are cleared at the
      // start of the next discriminator update (opt_d) or never used (M).
      loss_fp.Backward();
      opt_fp.ClipGradNorm(config_.grad_clip_norm);
      opt_fp.Step();
      sum_gen += loss_fp.item();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.matching_loss = sum_gen / static_cast<double>(iters);
    stats.alignment_loss = sum_disc / static_cast<double>(iters);
    stats.valid_f1 = Evaluate(adapted_.get(), matcher_, target_valid,
                              config_.batch_size, &eval_rng)
                         .F1();
    if (source_eval != nullptr) {
      stats.source_f1 = Evaluate(adapted_.get(), matcher_, *source_eval,
                                 config_.batch_size, &eval_rng)
                            .F1();
    }
    best.Consider(stats.valid_f1, epoch, *adapted_, *matcher_);
    result.history.push_back(stats);
    if (callback) callback(stats);
  }

  best.Restore(adapted_.get(), matcher_);
  result.best_valid_f1 = best.best_f1();
  result.best_epoch = best.best_epoch();
  return result;
}

}  // namespace dader::core
