#include "core/trainer.h"

#include <cmath>

#include "data/sampler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/da_losses.h"
#include "tensor/nn_ops.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/fault.h"
#include "util/logging.h"

namespace dader::core {

namespace ops = ::dader::ops;

const char* AlignMethodName(AlignMethod method) {
  switch (method) {
    case AlignMethod::kNoDA:
      return "NoDA";
    case AlignMethod::kMMD:
      return "MMD";
    case AlignMethod::kKOrder:
      return "K-order";
    case AlignMethod::kGRL:
      return "GRL";
    case AlignMethod::kInvGAN:
      return "InvGAN";
    case AlignMethod::kInvGANKD:
      return "InvGAN+KD";
    case AlignMethod::kED:
      return "ED";
    case AlignMethod::kCMD:
      return "CMD";
  }
  return "?";
}

bool ParseAlignMethod(const std::string& name, AlignMethod* out) {
  for (AlignMethod m :
       {AlignMethod::kNoDA, AlignMethod::kMMD, AlignMethod::kKOrder,
        AlignMethod::kGRL, AlignMethod::kInvGAN, AlignMethod::kInvGANKD,
        AlignMethod::kED, AlignMethod::kCMD}) {
    if (name == AlignMethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const std::vector<AlignMethod>& AllAlignMethods() {
  static const std::vector<AlignMethod> kMethods = {
      AlignMethod::kMMD,    AlignMethod::kKOrder,   AlignMethod::kGRL,
      AlignMethod::kInvGAN, AlignMethod::kInvGANKD, AlignMethod::kED};
  return kMethods;
}

bool IsGanMethod(AlignMethod method) {
  return method == AlignMethod::kInvGAN || method == AlignMethod::kInvGANKD;
}

const char* RunVerdictLabel(const TrainResult& result) {
  switch (result.verdict) {
    case GuardVerdict::kHealthy:
      return (result.retries > 0 || result.rollbacks > 0)
                 ? "recovered-after-retry"
                 : "converged";
    case GuardVerdict::kDiverged:
      return "diverged";
    case GuardVerdict::kCollapsed:
      return "collapsed";
  }
  return "?";
}

namespace {

// Source labels for a batch of pair indices.
std::vector<int64_t> BatchLabels(const data::ERDataset& dataset,
                                 const std::vector<size_t>& indices) {
  std::vector<int64_t> labels;
  labels.reserve(indices.size());
  for (size_t i : indices) {
    const data::LabeledPair& p = dataset.pair(i);
    DADER_CHECK_MSG(p.labeled(), "source pair without label");
    labels.push_back(p.label);
  }
  return labels;
}

std::vector<float> ConstantTargets(size_t n, float value) {
  return std::vector<float>(n, value);
}

bool AllValuesFinite(std::initializer_list<double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// In-memory copy of the trainable modules' weights at the last healthy
// epoch; restored by the guard's rollback path.
class LastGoodState {
 public:
  void Capture(const std::vector<nn::Module*>& modules) {
    snapshots_.clear();
    for (const nn::Module* m : modules) {
      snapshots_.push_back(m->SnapshotWeights());
    }
  }

  void Restore(const std::vector<nn::Module*>& modules) const {
    DADER_CHECK_EQ(modules.size(), snapshots_.size());
    for (size_t i = 0; i < modules.size(); ++i) {
      modules[i]->RestoreWeights(snapshots_[i]).CheckOK();
    }
  }

 private:
  std::vector<std::map<std::string, Tensor>> snapshots_;
};

// Process-wide training metric series; pointers fetched once per process
// (see docs/OBSERVABILITY.md "train.*").
struct TrainMetrics {
  obs::Counter* epochs;
  obs::Counter* nan_steps;
  obs::Counter* rollbacks;
  obs::Counter* retries;
  obs::Gauge* matching_loss;
  obs::Gauge* alignment_loss;
  obs::Gauge* valid_f1;
  obs::Gauge* grad_norm;
};

const TrainMetrics& Metrics() {
  static const TrainMetrics metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    TrainMetrics m;
    m.epochs = r.GetCounter("train.epochs.total",
                            "Training epochs completed, all attempts",
                            "epochs");
    m.nan_steps = r.GetCounter(
        "train.steps.nan.total",
        "Steps whose update was skipped for non-finite loss/gradients",
        "steps");
    m.rollbacks = r.GetCounter(
        "train.rollbacks.total",
        "Guard-triggered restores of the last-good weights", "rollbacks");
    m.retries = r.GetCounter(
        "train.retries.total",
        "Reseeded adaptation restarts performed by DaTrainer::Run",
        "restarts");
    m.matching_loss = r.GetGauge(
        "train.loss.matching", "Mean matching loss of the last epoch", "loss");
    m.alignment_loss =
        r.GetGauge("train.loss.alignment",
                   "Mean alignment loss of the last epoch", "loss");
    m.valid_f1 = r.GetGauge(
        "train.valid_f1", "Target validation F1 of the last epoch", "f1");
    m.grad_norm = r.GetGauge(
        "train.grad_norm",
        "Post-clip extractor gradient norm of the last step", "l2-norm");
    return m;
  }();
  return metrics;
}

// Epoch-end bookkeeping shared by both algorithms.
void ObserveEpoch(const EpochStats& stats) {
  const TrainMetrics& m = Metrics();
  m.epochs->Increment();
  m.nan_steps->Add(stats.nan_steps);
  m.matching_loss->Set(stats.matching_loss);
  m.alignment_loss->Set(stats.alignment_loss);
  m.valid_f1->Set(stats.valid_f1);
}

}  // namespace

DaTrainer::DaTrainer(AlignMethod method, const DaderConfig& config,
                     FeatureExtractor* extractor, Matcher* matcher)
    : method_(method),
      config_(config),
      extractor_(extractor),
      matcher_(matcher),
      rng_(config.seed ^ 0x7a11ULL) {
  DADER_CHECK(extractor_ != nullptr);
  DADER_CHECK(matcher_ != nullptr);
  if (method_ == AlignMethod::kGRL) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/false,
        config_.seed);
  } else if (IsGanMethod(method_)) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/true,
        config_.seed);
  } else if (method_ == AlignMethod::kED) {
    decoder_ = std::make_unique<ReconstructionDecoder>(
        extractor_->feature_dim(), config_.vocab_size, config_.seed);
  }
}

FeatureExtractor* DaTrainer::final_extractor() {
  return adapted_ != nullptr ? adapted_.get() : extractor_;
}

nn::Module* DaTrainer::aligner_module() {
  if (discriminator_ != nullptr) return discriminator_.get();
  if (decoder_ != nullptr) return decoder_.get();
  return nullptr;
}

void DaTrainer::ReseedForRetry(int attempt) {
  retry_salt_ = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt);
  rng_ = Rng(config_.seed ^ 0x7a11ULL ^ retry_salt_);
  const uint64_t seed = config_.seed ^ retry_salt_;
  if (method_ == AlignMethod::kGRL) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/false, seed);
  } else if (IsGanMethod(method_)) {
    discriminator_ = std::make_unique<DomainDiscriminator>(
        extractor_->feature_dim(), config_.disc_hidden, /*deep=*/true, seed);
  } else if (method_ == AlignMethod::kED) {
    decoder_ = std::make_unique<ReconstructionDecoder>(
        extractor_->feature_dim(), config_.vocab_size, seed);
  }
  adapted_.reset();
  lr_scale_ =
      static_cast<float>(std::pow(config_.guard.lr_backoff, attempt));
}

std::vector<std::vector<int64_t>> DaTrainer::TokenBags(
    const EncodedBatch& batch) {
  std::vector<std::vector<int64_t>> bags(static_cast<size_t>(batch.batch));
  for (int64_t b = 0; b < batch.batch; ++b) {
    for (int64_t t = 0; t < batch.max_len; ++t) {
      const int64_t id = batch.token_ids[static_cast<size_t>(b * batch.max_len + t)];
      if (id >= text::kNumSpecialTokens) {
        bags[static_cast<size_t>(b)].push_back(id);
      }
    }
  }
  return bags;
}

TrainResult DaTrainer::Train(const data::ERDataset& source,
                             const data::ERDataset& target_train,
                             const data::ERDataset& target_valid,
                             const data::ERDataset* source_eval,
                             EpochCallback callback) {
  DADER_CHECK_GT(source.size(), 0u);
  DADER_CHECK_GT(target_valid.size(), 0u);
  if (method_ != AlignMethod::kNoDA) {
    DADER_CHECK_GT(target_train.size(), 0u);
  }
  if (IsGanMethod(method_)) {
    PretrainSourceGan(source);
    return AdaptAlgorithm2(source, target_train, target_valid, source_eval,
                           callback);
  }
  return TrainAlgorithm1(source, target_train, target_valid, source_eval,
                         callback);
}

Result<TrainResult> DaTrainer::Run(const data::ERDataset& source,
                                   const data::ERDataset& target_train,
                                   const data::ERDataset& target_valid,
                                   const data::ERDataset* source_eval,
                                   EpochCallback callback) {
  if (source.size() == 0) {
    return Status::InvalidArgument("Run requires a non-empty labeled source");
  }
  if (target_valid.size() == 0) {
    return Status::InvalidArgument(
        "Run requires a non-empty target validation set");
  }
  if (method_ != AlignMethod::kNoDA && target_train.size() == 0) {
    return Status::InvalidArgument(std::string(AlignMethodName(method_)) +
                                   " requires non-empty target training data");
  }

  obs::TraceSpan run_span("train.run");

  // For GAN methods the source pre-training (Algorithm 2, step 1) runs once;
  // retries restart only the adaptation phase.
  if (IsGanMethod(method_)) PretrainSourceGan(source);

  // Pre-adaptation checkpoint: always in memory, durable when configured.
  const std::map<std::string, Tensor> ckpt_f = extractor_->SnapshotWeights();
  const std::map<std::string, Tensor> ckpt_m = matcher_->SnapshotWeights();
  std::string ckpt_path;
  if (!config_.guard.checkpoint_dir.empty()) {
    ckpt_path = config_.guard.checkpoint_dir + "/pre_adaptation_" +
                AlignMethodName(method_) + ".bin";
    Status st = SaveModules(ckpt_path, {{"F", extractor_}, {"M", matcher_}});
    if (!st.ok()) {
      DADER_LOG(Warning) << "pre-adaptation checkpoint failed ("
                         << st.ToString() << "); in-memory snapshot only";
      ckpt_path.clear();
    } else if (config_.fault != nullptr &&
               config_.fault->ShouldFire(FaultKind::kCorruptCheckpoint,
                                         /*epoch=*/0)) {
      (void)FaultInjector::TruncateFile(ckpt_path, 0.5);
    }
  }

  TrainResult result;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // Roll back to the pre-adaptation state, preferring the durable
      // checkpoint (it survives a crashed process; the in-memory copy is
      // the fallback when the file is missing or corrupt).
      bool restored = false;
      if (!ckpt_path.empty()) {
        Status st =
            LoadModules(ckpt_path, {{"F", extractor_}, {"M", matcher_}});
        if (st.ok()) {
          restored = true;
        } else {
          DADER_LOG(Warning)
              << "durable checkpoint " << ckpt_path << " unusable ("
              << st.ToString() << "); using in-memory snapshot";
        }
      }
      if (!restored) {
        extractor_->RestoreWeights(ckpt_f).CheckOK();
        matcher_->RestoreWeights(ckpt_m).CheckOK();
      }
      ReseedForRetry(attempt);
      Metrics().retries->Increment();
    }
    result = IsGanMethod(method_)
                 ? AdaptAlgorithm2(source, target_train, target_valid,
                                   source_eval, callback)
                 : TrainAlgorithm1(source, target_train, target_valid,
                                   source_eval, callback);
    result.retries = attempt;
    if (result.verdict == GuardVerdict::kHealthy ||
        attempt >= config_.guard.max_retries) {
      break;
    }
    DADER_LOG(Warning) << AlignMethodName(method_) << " adaptation "
                       << GuardVerdictName(result.verdict) << " on attempt "
                       << attempt + 1 << "; retrying with a fresh seed";
  }
  return result;
}

TrainResult DaTrainer::TrainAlgorithm1(const data::ERDataset& source,
                                       const data::ERDataset& target_train,
                                       const data::ERDataset& target_valid,
                                       const data::ERDataset* source_eval,
                                       const EpochCallback& callback) {
  float lr = config_.learning_rate * lr_scale_;
  float clip = config_.grad_clip_norm;
  std::unique_ptr<AdamOptimizer> opt_f, opt_m, opt_a;
  // Rebuilt after every rollback: Adam moments accumulated along a bad
  // trajectory must not steer the restored weights.
  auto rebuild_optimizers = [&]() {
    opt_f = std::make_unique<AdamOptimizer>(extractor_->Parameters(), lr,
                                            0.9f, 0.999f, 1e-8f,
                                            config_.weight_decay);
    opt_m = std::make_unique<AdamOptimizer>(matcher_->Parameters(), lr, 0.9f,
                                            0.999f, 1e-8f,
                                            config_.weight_decay);
    if (discriminator_ != nullptr) {
      opt_a = std::make_unique<AdamOptimizer>(discriminator_->Parameters(),
                                              lr);
    } else if (decoder_ != nullptr) {
      opt_a = std::make_unique<AdamOptimizer>(decoder_->Parameters(), lr);
    }
  };
  rebuild_optimizers();

  data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                     rng_.Fork(1));
  std::unique_ptr<data::MinibatchSampler> tgt_sampler;
  if (method_ != AlignMethod::kNoDA) {
    tgt_sampler = std::make_unique<data::MinibatchSampler>(
        &target_train, config_.batch_size, rng_.Fork(2));
  }
  const size_t iters = src_sampler.BatchesPerEpoch();

  extractor_->SetTraining(true);
  matcher_->SetTraining(true);

  TrainResult result;
  TrainingGuard guard(config_.guard);
  BestSnapshot best;
  if (!config_.guard.checkpoint_dir.empty()) {
    best.set_spill_path(config_.guard.checkpoint_dir + "/best_" +
                        AlignMethodName(method_) + ".bin");
  }
  Rng eval_rng = rng_.Fork(99);

  std::vector<nn::Module*> guarded = {extractor_, matcher_};
  if (aligner_module() != nullptr) guarded.push_back(aligner_module());
  LastGoodState last_good;
  last_good.Capture(guarded);  // epoch-1 divergence rolls back to init

  bool give_up = false;
  for (int epoch = 1; epoch <= config_.epochs && !give_up; ++epoch) {
    obs::TraceSpan epoch_span("train.algo1.epoch");
    double sum_lm = 0.0, sum_la = 0.0;
    size_t good_steps = 0;
    int nan_steps = 0;
    bool aborted = false;
    for (size_t it = 0; it < iters; ++it) {
      if (config_.fault != nullptr &&
          config_.fault->ShouldFire(FaultKind::kAbortStep, epoch,
                                    static_cast<int>(it))) {
        aborted = true;
        break;
      }
      // DANN-style warm-up: ramp the alignment weight from 0 to its target
      // as training progresses, so alignment cannot collapse the features
      // before the matcher has learned discriminative ones.
      const double progress =
          (static_cast<double>(epoch - 1) +
           static_cast<double>(it) / static_cast<double>(iters)) /
          static_cast<double>(config_.epochs);
      const float ramp =
          static_cast<float>(2.0 / (1.0 + std::exp(-10.0 * progress)) - 1.0);
      const std::vector<size_t> src_idx = src_sampler.NextBatch();
      const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
      Tensor fs = extractor_->Forward(bs, &rng_);
      Tensor logits = matcher_->Forward(fs, &rng_);
      Tensor loss_m =
          ops::CrossEntropyWithLogits(logits, BatchLabels(source, src_idx));
      Tensor total = loss_m;
      Tensor loss_a;

      if (method_ != AlignMethod::kNoDA) {
        const std::vector<size_t> tgt_idx = tgt_sampler->NextBatch();
        const EncodedBatch bt = extractor_->EncodePairs(target_train, tgt_idx);
        Tensor ft = extractor_->Forward(bt, &rng_);
        switch (method_) {
          case AlignMethod::kMMD:
            loss_a = ops::MmdLoss(fs, ft);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_mmd * config_.beta_scale * ramp));
            break;
          case AlignMethod::kCMD:
            loss_a = ops::CmdLoss(fs, ft);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_cmd * config_.beta_scale * ramp));
            break;
          case AlignMethod::kKOrder:
            loss_a = ops::CoralLoss(fs, ft);
            total = ops::Add(total, ops::MulScalar(loss_a, config_.beta_coral *
                                                               config_.beta_scale *
                                                               ramp));
            break;
          case AlignMethod::kGRL: {
            // Gradient reversal: A minimizes the domain loss while F
            // receives -beta times its gradient (Eq. 9 / Procedure 2).
            const float lambda = config_.beta_grl * config_.beta_scale * ramp;
            Tensor both = ops::Concat(
                {ops::GradReverse(fs, lambda), ops::GradReverse(ft, lambda)}, 0);
            Tensor dom_logits = discriminator_->Forward(both, &rng_);
            std::vector<float> targets = ConstantTargets(src_idx.size(), 1.0f);
            const auto t0 = ConstantTargets(tgt_idx.size(), 0.0f);
            targets.insert(targets.end(), t0.begin(), t0.end());
            loss_a = ops::BinaryCrossEntropyWithLogits(dom_logits, targets);
            total = ops::Add(total, loss_a);
            break;
          }
          case AlignMethod::kED: {
            // Reconstruction over both domains (Eq. 15).
            Tensor both = ops::Concat({fs, ft}, 0);
            Tensor rec_logits = decoder_->Forward(both);
            auto bags = TokenBags(bs);
            auto bags_t = TokenBags(bt);
            bags.insert(bags.end(), bags_t.begin(), bags_t.end());
            loss_a = ops::BagOfTokensCrossEntropy(rec_logits, bags);
            total = ops::Add(
                total,
                ops::MulScalar(loss_a, config_.beta_ed * config_.beta_scale));
            break;
          }
          default:
            DADER_CHECK_MSG(false, "unexpected method in Algorithm 1");
        }
      }
      const double lm_val = loss_m.item();
      const double la_val = loss_a.defined() ? loss_a.item() : 0.0;

      opt_f->ZeroGrad();
      opt_m->ZeroGrad();
      if (opt_a != nullptr) opt_a->ZeroGrad();
      total.Backward();
      if (config_.fault != nullptr &&
          config_.fault->ShouldFire(FaultKind::kNanGradient, epoch,
                                    static_cast<int>(it))) {
        PoisonGradients(extractor_->Parameters());
      }
      const double norm_f = opt_f->ClipGradNorm(clip);
      const double norm_m = opt_m->ClipGradNorm(clip);
      const double norm_a =
          opt_a != nullptr ? opt_a->ClipGradNorm(clip) : 0.0;
      Metrics().grad_norm->Set(norm_f);
      if (!AllValuesFinite({total.item(), norm_f, norm_m, norm_a})) {
        // Skip the update: a poisoned step must not touch the weights.
        ++nan_steps;
        continue;
      }
      opt_f->Step();
      opt_m->Step();
      if (opt_a != nullptr) opt_a->Step();
      sum_lm += lm_val;
      if (method_ != AlignMethod::kNoDA) sum_la += la_val;
      ++good_steps;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.nan_steps = nan_steps;
    if (good_steps > 0) {
      stats.matching_loss = sum_lm / static_cast<double>(good_steps);
      stats.alignment_loss = method_ == AlignMethod::kNoDA
                                 ? 0.0
                                 : sum_la / static_cast<double>(good_steps);
    }
    {
      obs::TraceSpan eval_span("train.eval");
      stats.valid_f1 = Evaluate(extractor_, matcher_, target_valid,
                                config_.batch_size, &eval_rng)
                           .F1();
      if (source_eval != nullptr) {
        stats.source_f1 =
            Evaluate(extractor_, matcher_, *source_eval, config_.batch_size,
                     &eval_rng)
                .F1();
      }
    }

    TrainingGuard::EpochObservation obs;
    obs.mean_loss = stats.matching_loss + stats.alignment_loss;
    obs.nan_steps = nan_steps;
    obs.aborted = aborted;
    obs.params_finite = TrainingGuard::AllFinite(extractor_->Parameters()) &&
                        TrainingGuard::AllFinite(matcher_->Parameters());
    obs.valid_f1 = stats.valid_f1;
    stats.verdict = guard.EndEpoch(obs);
    ObserveEpoch(stats);

    if (stats.verdict == GuardVerdict::kHealthy) {
      best.Consider(stats.valid_f1, epoch, *extractor_, *matcher_,
                    stats.verdict);
      last_good.Capture(guarded);
      const GuardConfig& g = config_.guard;
      if (!g.checkpoint_dir.empty() && g.checkpoint_every > 0 &&
          epoch % g.checkpoint_every == 0) {
        std::vector<ModuleBinding> mods = {{"F", extractor_}, {"M", matcher_}};
        if (aligner_module() != nullptr) mods.push_back({"A", aligner_module()});
        const std::string path = g.checkpoint_dir + "/last_good_" +
                                 AlignMethodName(method_) + ".bin";
        obs::TraceSpan ckpt_span("train.checkpoint");
        Status st = SaveModules(path, mods);
        if (!st.ok()) {
          DADER_LOG(Warning) << "periodic checkpoint failed: " << st.ToString();
        } else if (config_.fault != nullptr &&
                   config_.fault->ShouldFire(FaultKind::kCorruptCheckpoint,
                                             epoch)) {
          (void)FaultInjector::TruncateFile(path, 0.5);
        }
      }
    } else if (result.rollbacks < config_.guard.max_rollbacks) {
      last_good.Restore(guarded);
      lr *= static_cast<float>(config_.guard.lr_backoff);
      clip *= static_cast<float>(config_.guard.clip_backoff);
      rebuild_optimizers();
      guard.Reset();
      ++result.rollbacks;
      Metrics().rollbacks->Increment();
      stats.rolled_back = true;
      DADER_LOG(Warning) << AlignMethodName(method_) << " epoch " << epoch
                         << " " << GuardVerdictName(stats.verdict)
                         << "; rolled back to last good weights (lr -> " << lr
                         << ")";
    } else {
      result.verdict = stats.verdict;
      give_up = true;
    }
    result.history.push_back(stats);
    if (callback) callback(stats);
  }

  best.Restore(extractor_, matcher_);
  result.best_valid_f1 = best.best_f1();
  result.best_epoch = best.best_epoch();
  return result;
}

void DaTrainer::PretrainSourceGan(const data::ERDataset& source) {
  // ---- Algorithm 2, step 1: train F and M on the labeled source. ----
  obs::TraceSpan pretrain_span("train.gan.pretrain");
  AdamOptimizer opt_f(extractor_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
  AdamOptimizer opt_m(matcher_->Parameters(), config_.learning_rate,
                      0.9f, 0.999f, 1e-8f, config_.weight_decay);
  data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                     rng_.Fork(11));
  const size_t iters = src_sampler.BatchesPerEpoch();
  extractor_->SetTraining(true);
  matcher_->SetTraining(true);
  for (int epoch = 1; epoch <= config_.gan_pretrain_epochs; ++epoch) {
    for (size_t it = 0; it < iters; ++it) {
      const std::vector<size_t> src_idx = src_sampler.NextBatch();
      const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
      Tensor logits =
          matcher_->Forward(extractor_->Forward(bs, &rng_), &rng_);
      Tensor loss =
          ops::CrossEntropyWithLogits(logits, BatchLabels(source, src_idx));
      opt_f.ZeroGrad();
      opt_m.ZeroGrad();
      loss.Backward();
      opt_f.ClipGradNorm(config_.grad_clip_norm);
      opt_m.ClipGradNorm(config_.grad_clip_norm);
      opt_f.Step();
      opt_m.Step();
    }
  }
}

TrainResult DaTrainer::AdaptAlgorithm2(const data::ERDataset& source,
                                       const data::ERDataset& target_train,
                                       const data::ERDataset& target_valid,
                                       const data::ERDataset* source_eval,
                                       const EpochCallback& callback) {
  // ---- Algorithm 2, step 2: adversarial adaptation of F' (lines 8-16). ----
  adapted_ = extractor_->CloneArchitecture(config_.seed ^ 0xf2f2ULL ^
                                           retry_salt_);
  adapted_->CopyWeightsFrom(*extractor_).CheckOK();
  adapted_->SetTraining(true);
  extractor_->SetTraining(false);  // F is frozen from here on

  float lr = config_.learning_rate * lr_scale_;
  float clip = config_.grad_clip_norm;
  std::unique_ptr<AdamOptimizer> opt_d, opt_fp;
  auto rebuild_optimizers = [&]() {
    opt_d = std::make_unique<AdamOptimizer>(discriminator_->Parameters(), lr);
    opt_fp = std::make_unique<AdamOptimizer>(adapted_->Parameters(), lr, 0.9f,
                                             0.999f, 1e-8f,
                                             config_.weight_decay);
  };
  rebuild_optimizers();

  data::MinibatchSampler src_sampler(&source, config_.batch_size,
                                     rng_.Fork(21));
  data::MinibatchSampler tgt_sampler(&target_train, config_.batch_size,
                                     rng_.Fork(22));
  const size_t iters = std::max<size_t>(1, src_sampler.BatchesPerEpoch());

  TrainResult result;
  TrainingGuard guard(config_.guard);
  BestSnapshot best;
  if (!config_.guard.checkpoint_dir.empty()) {
    best.set_spill_path(config_.guard.checkpoint_dir + "/best_" +
                        AlignMethodName(method_) + ".bin");
  }
  Rng eval_rng = rng_.Fork(98);
  const bool use_kd = method_ == AlignMethod::kInvGANKD;

  std::vector<nn::Module*> guarded = {adapted_.get(), discriminator_.get()};
  LastGoodState last_good;
  last_good.Capture(guarded);  // epoch-1 divergence rolls back to F' = F

  bool give_up = false;
  for (int epoch = 1; epoch <= config_.epochs && !give_up; ++epoch) {
    obs::TraceSpan epoch_span("train.algo2.epoch");
    double sum_gen = 0.0, sum_disc = 0.0, sum_acc = 0.0;
    size_t good_steps = 0, acc_steps = 0;
    int nan_steps = 0;
    bool aborted = false;
    for (size_t it = 0; it < iters; ++it) {
      if (config_.fault != nullptr &&
          config_.fault->ShouldFire(FaultKind::kAbortStep, epoch,
                                    static_cast<int>(it))) {
        aborted = true;
        break;
      }
      const std::vector<size_t> src_idx = src_sampler.NextBatch();
      const std::vector<size_t> tgt_idx = tgt_sampler.NextBatch();
      const EncodedBatch bs = extractor_->EncodePairs(source, src_idx);
      const EncodedBatch bt = extractor_->EncodePairs(target_train, tgt_idx);

      // "Real" source features: F(x^S) for InvGAN (Eq. 10), F'(x^S) for
      // InvGAN+KD (Eq. 13). Both detached — the discriminator step must not
      // move the generator.
      Tensor real = use_kd ? adapted_->Forward(bs, &rng_).Detach()
                           : extractor_->Forward(bs, &rng_).Detach();
      Tensor fake = adapted_->Forward(bt, &rng_);  // graph reused below

      // --- Discriminator update: min_A L_A. ---
      Tensor d_real = discriminator_->Forward(real, &rng_);
      Tensor d_fake = discriminator_->Forward(fake.Detach(), &rng_);
      Tensor loss_d = ops::MulScalar(
          ops::Add(ops::BinaryCrossEntropyWithLogits(
                       d_real, ConstantTargets(src_idx.size(), 1.0f)),
                   ops::BinaryCrossEntropyWithLogits(
                       d_fake, ConstantTargets(tgt_idx.size(), 0.0f))),
          0.5f);
      // Discriminator accuracy feeds the guard's collapse classifier.
      {
        int correct = 0;
        for (float v : d_real.vec()) correct += v > 0.0f ? 1 : 0;
        for (float v : d_fake.vec()) correct += v < 0.0f ? 1 : 0;
        sum_acc += static_cast<double>(correct) /
                   static_cast<double>(src_idx.size() + tgt_idx.size());
        ++acc_steps;
      }
      opt_d->ZeroGrad();
      loss_d.Backward();
      const double norm_d = opt_d->ClipGradNorm(clip);
      const bool disc_ok = AllValuesFinite({loss_d.item(), norm_d});
      if (disc_ok) opt_d->Step();

      // --- Generator update: F' fools A with inverted labels (Eq. 11/14).
      Tensor d_fooled = discriminator_->Forward(fake, &rng_);
      Tensor loss_fp = ops::BinaryCrossEntropyWithLogits(
          d_fooled, ConstantTargets(tgt_idx.size(), 1.0f));
      if (use_kd) {
        // Knowledge distillation (Eq. 12): keep M(F'(x^S)) close to the
        // frozen teacher M(F(x^S)).
        Tensor teacher_logits =
            matcher_->Forward(extractor_->Forward(bs, &rng_).Detach(), &rng_)
                .Detach();
        Tensor student_logits =
            matcher_->Forward(adapted_->Forward(bs, &rng_), &rng_);
        loss_fp = ops::Add(
            loss_fp, ops::KnowledgeDistillationLoss(
                         student_logits, teacher_logits, config_.kd_temperature));
      }
      opt_fp->ZeroGrad();
      // Matcher/discriminator gradients also accumulate here but their
      // optimizers never step in this phase; their grads are cleared at the
      // start of the next discriminator update (opt_d) or never used (M).
      loss_fp.Backward();
      if (config_.fault != nullptr &&
          config_.fault->ShouldFire(FaultKind::kNanGradient, epoch,
                                    static_cast<int>(it))) {
        PoisonGradients(adapted_->Parameters());
      }
      const double norm_fp = opt_fp->ClipGradNorm(clip);
      Metrics().grad_norm->Set(norm_fp);
      const bool gen_ok = AllValuesFinite({loss_fp.item(), norm_fp});
      if (gen_ok) opt_fp->Step();

      if (!disc_ok || !gen_ok) {
        ++nan_steps;
        continue;
      }
      sum_disc += loss_d.item();
      sum_gen += loss_fp.item();
      ++good_steps;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.nan_steps = nan_steps;
    if (good_steps > 0) {
      stats.matching_loss = sum_gen / static_cast<double>(good_steps);
      stats.alignment_loss = sum_disc / static_cast<double>(good_steps);
    }
    if (acc_steps > 0) {
      stats.disc_accuracy = sum_acc / static_cast<double>(acc_steps);
    }
    {
      obs::TraceSpan eval_span("train.eval");
      stats.valid_f1 = Evaluate(adapted_.get(), matcher_, target_valid,
                                config_.batch_size, &eval_rng)
                           .F1();
      if (source_eval != nullptr) {
        stats.source_f1 = Evaluate(adapted_.get(), matcher_, *source_eval,
                                   config_.batch_size, &eval_rng)
                              .F1();
      }
    }

    TrainingGuard::EpochObservation obs;
    obs.mean_loss = stats.matching_loss + stats.alignment_loss;
    obs.nan_steps = nan_steps;
    obs.aborted = aborted;
    obs.params_finite = TrainingGuard::AllFinite(adapted_->Parameters()) &&
                        TrainingGuard::AllFinite(discriminator_->Parameters());
    obs.valid_f1 = stats.valid_f1;
    obs.disc_accuracy = stats.disc_accuracy;
    stats.verdict = guard.EndEpoch(obs);
    ObserveEpoch(stats);

    if (stats.verdict == GuardVerdict::kHealthy) {
      best.Consider(stats.valid_f1, epoch, *adapted_, *matcher_,
                    stats.verdict);
      last_good.Capture(guarded);
      const GuardConfig& g = config_.guard;
      if (!g.checkpoint_dir.empty() && g.checkpoint_every > 0 &&
          epoch % g.checkpoint_every == 0) {
        const std::string path = g.checkpoint_dir + "/last_good_" +
                                 AlignMethodName(method_) + ".bin";
        obs::TraceSpan ckpt_span("train.checkpoint");
        Status st = SaveModules(path, {{"F", adapted_.get()},
                                       {"M", matcher_},
                                       {"A", discriminator_.get()}});
        if (!st.ok()) {
          DADER_LOG(Warning) << "periodic checkpoint failed: " << st.ToString();
        } else if (config_.fault != nullptr &&
                   config_.fault->ShouldFire(FaultKind::kCorruptCheckpoint,
                                             epoch)) {
          (void)FaultInjector::TruncateFile(path, 0.5);
        }
      }
    } else if (result.rollbacks < config_.guard.max_rollbacks) {
      last_good.Restore(guarded);
      lr *= static_cast<float>(config_.guard.lr_backoff);
      clip *= static_cast<float>(config_.guard.clip_backoff);
      rebuild_optimizers();
      guard.Reset();
      ++result.rollbacks;
      Metrics().rollbacks->Increment();
      stats.rolled_back = true;
      DADER_LOG(Warning) << AlignMethodName(method_) << " epoch " << epoch
                         << " " << GuardVerdictName(stats.verdict)
                         << "; rolled back to last good weights (lr -> " << lr
                         << ")";
    } else {
      result.verdict = stats.verdict;
      give_up = true;
    }
    result.history.push_back(stats);
    if (callback) callback(stats);
  }

  best.Restore(adapted_.get(), matcher_);
  result.best_valid_f1 = best.best_f1();
  result.best_epoch = best.best_epoch();
  return result;
}

}  // namespace dader::core
