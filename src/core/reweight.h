// The Reweight baseline (Thirumuruganathan et al. [68]): instance-level
// transfer that re-weights source pairs by similarity to the target and
// trains a shallow classifier on fixed embeddings — contrasted against
// DADER's feature-level adaptation in Figure 10.
//
// Substitution note: the original uses 300-d fastText vectors and four ML
// classifiers (reporting the best). Offline we use fixed random hashed word
// embeddings (the standard fastText stand-in) and report the better of
// weighted logistic regression and a weighted linear SVM.

#pragma once

#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "data/dataset.h"

namespace dader::core {

/// \brief Reweight hyper-parameters.
struct ReweightConfig {
  int64_t embedding_dim = 64;
  int64_t knn = 5;            ///< target neighbors per source pair
  double sharpness = 4.0;     ///< weight = exp(sharpness * mean_topk_cosine)
  int64_t train_epochs = 60;
  float learning_rate = 0.1f;
  uint64_t seed = 31;
};

/// \brief Runs the full Reweight pipeline: embed -> weight source pairs ->
/// train weighted linear classifiers on source -> evaluate on target test.
ErMetrics RunReweightBaseline(const data::ERDataset& source,
                              const data::ERDataset& target_test,
                              const ReweightConfig& config);

/// \brief Fixed bag-of-hashed-words embedding of one pair (unit-normalized);
/// exposed for tests.
std::vector<float> EmbedPair(const data::LabeledPair& pair,
                             const data::Schema& schema_a,
                             const data::Schema& schema_b,
                             const ReweightConfig& config);

/// \brief Source-pair weights from mean top-k cosine similarity to the
/// target embeddings, normalized to mean 1; exposed for tests.
std::vector<double> ComputeSourceWeights(
    const std::vector<std::vector<float>>& source_embeddings,
    const std::vector<std::vector<float>>& target_embeddings,
    const ReweightConfig& config);

}  // namespace dader::core
