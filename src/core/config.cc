#include "core/config.h"

#include <cstdlib>

namespace dader::core {

ExperimentScale SmokeScale() {
  ExperimentScale s;
  s.name = "smoke";
  s.model = DaderConfig{};
  s.model.epochs = 12;
  s.model.batch_size = 32;
  s.data_scale = 0.05;
  s.min_pairs = 600;
  s.num_seeds = 2;
  s.valid_fraction = 0.2;
  return s;
}

ExperimentScale SmallScale() {
  ExperimentScale s;
  s.name = "small";
  s.model = DaderConfig{};
  s.model.max_len = 48;
  s.model.hidden_dim = 48;
  s.model.ffn_dim = 96;
  s.model.num_layers = 2;
  s.model.rnn_hidden = 32;
  s.model.epochs = 12;
  s.data_scale = 0.08;
  s.min_pairs = 500;
  s.num_seeds = 3;
  s.valid_fraction = 0.15;
  return s;
}

ExperimentScale FullScale() {
  ExperimentScale s;
  s.name = "full";
  s.model = DaderConfig{};
  s.model.vocab_size = 8192;
  s.model.max_len = 64;
  s.model.hidden_dim = 64;
  s.model.ffn_dim = 128;
  s.model.num_layers = 2;
  s.model.rnn_hidden = 48;
  s.model.epochs = 20;
  s.data_scale = 0.15;
  s.min_pairs = 700;
  s.num_seeds = 3;
  s.valid_fraction = 0.1;
  return s;
}

ExperimentScale ResolveScale(const std::string& name) {
  std::string n = name;
  if (n.empty()) {
    const char* env = std::getenv("DADER_SCALE");
    if (env != nullptr) n = env;
  }
  if (n == "small") return SmallScale();
  if (n == "full") return FullScale();
  return SmokeScale();
}

}  // namespace dader::core
