#include "core/source_selection.h"

#include <algorithm>

#include "core/dataset_distance.h"
#include "data/generators.h"

namespace dader::core {

Result<std::vector<SourceRanking>> RankSourcesByDistance(
    const std::vector<std::string>& source_names,
    const std::string& target_name, const ExperimentScale& scale,
    FeatureExtractor* extractor, int64_t max_pairs, Rng* rng) {
  if (source_names.empty()) {
    return Status::InvalidArgument("no candidate sources");
  }
  data::GenerateOptions opts;
  opts.scale = scale.data_scale;
  opts.min_pairs = scale.min_pairs;
  DADER_ASSIGN_OR_RETURN(data::ERDataset target,
                         data::GenerateDataset(target_name, opts));

  std::vector<SourceRanking> out;
  for (const auto& name : source_names) {
    DADER_ASSIGN_OR_RETURN(data::ERDataset source,
                           data::GenerateDataset(name, opts));
    SourceRanking r;
    r.source_name = name;
    r.mmd = DatasetMmdDistance(extractor, source, target, max_pairs, rng);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const SourceRanking& a, const SourceRanking& b) {
              return a.mmd < b.mmd;
            });
  return out;
}

Result<std::string> SelectClosestSource(
    const std::vector<std::string>& source_names,
    const std::string& target_name, const ExperimentScale& scale,
    FeatureExtractor* extractor, int64_t max_pairs, Rng* rng) {
  DADER_ASSIGN_OR_RETURN(
      std::vector<SourceRanking> ranking,
      RankSourcesByDistance(source_names, target_name, scale, extractor,
                            max_pairs, rng));
  return ranking.front().source_name;
}

}  // namespace dader::core
