#include "core/feature_extractor.h"

#include "tensor/ops.h"
#include "tensor/nn_ops.h"

namespace dader::core {

namespace ops = ::dader::ops;

EncodedBatch FeatureExtractor::EncodePairs(
    const data::ERDataset& dataset, const std::vector<size_t>& indices) const {
  EncodedBatch out;
  out.batch = static_cast<int64_t>(indices.size());
  out.max_len = config_.max_len;
  out.token_ids.reserve(indices.size() * static_cast<size_t>(config_.max_len));
  out.mask.reserve(out.token_ids.capacity());
  for (size_t idx : indices) {
    const data::LabeledPair& p = dataset.pair(idx);
    text::EncodedSequence seq = text::EncodePair(
        p.a.ToAttrValues(dataset.schema_a()), p.b.ToAttrValues(dataset.schema_b()),
        vocab_, config_.max_len);
    out.token_ids.insert(out.token_ids.end(), seq.ids.begin(), seq.ids.end());
    out.mask.insert(out.mask.end(), seq.mask.begin(), seq.mask.end());
    out.overlap.insert(out.overlap.end(), seq.overlap.begin(),
                       seq.overlap.end());
  }
  return out;
}

LMFeatureExtractor::LMFeatureExtractor(const DaderConfig& config,
                                       uint64_t seed)
    : FeatureExtractor(config) {
  Rng rng(seed);
  nn::TransformerConfig tc;
  tc.vocab_size = config.vocab_size;
  tc.max_len = config.max_len;
  tc.hidden_dim = config.hidden_dim;
  tc.num_heads = config.num_heads;
  tc.num_layers = config.num_layers;
  tc.ffn_dim = config.ffn_dim;
  tc.dropout = config.dropout;
  encoder_ = std::make_unique<nn::TransformerEncoder>(tc, &rng);
  pooler_ = std::make_unique<nn::Linear>(config.hidden_dim, config.hidden_dim,
                                         &rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("pooler", pooler_.get());
}

Tensor LMFeatureExtractor::EncodeSequence(const EncodedBatch& batch,
                                          Rng* rng) const {
  static const std::vector<float> kNoOverlap;
  return encoder_->Forward(batch.token_ids, batch.mask,
                           config_.use_overlap_flags ? batch.overlap
                                                     : kNoOverlap,
                           batch.batch, rng);
}

Tensor LMFeatureExtractor::Forward(const EncodedBatch& batch, Rng* rng) const {
  Tensor hidden = EncodeSequence(batch, rng);        // [B, L, d]
  Tensor cls = ops::SelectAxis(hidden, 1, 0);        // [B, d] ([CLS])
  return ops::Tanh(pooler_->Forward(cls));
}

std::unique_ptr<FeatureExtractor> LMFeatureExtractor::CloneArchitecture(
    uint64_t seed) const {
  return std::make_unique<LMFeatureExtractor>(config_, seed);
}

RNNFeatureExtractor::RNNFeatureExtractor(const DaderConfig& config,
                                         uint64_t seed)
    : FeatureExtractor(config) {
  Rng rng(seed);
  embedding_ = std::make_unique<nn::Embedding>(config.vocab_size,
                                               config.hidden_dim, &rng);
  overlap_emb_ = std::make_unique<nn::Embedding>(2, config.hidden_dim, &rng);
  bigru_ = std::make_unique<nn::BiGru>(config.hidden_dim, config.rnn_hidden,
                                       &rng);
  projection_ = std::make_unique<nn::Linear>(2 * config.rnn_hidden,
                                             config.hidden_dim, &rng);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("overlap_emb", overlap_emb_.get());
  RegisterModule("bigru", bigru_.get());
  RegisterModule("projection", projection_.get());
}

Tensor RNNFeatureExtractor::Forward(const EncodedBatch& batch,
                                    Rng* rng) const {
  const int64_t b = batch.batch, l = batch.max_len;
  Tensor emb = embedding_->Forward(batch.token_ids);  // [B*L, d]
  if (config_.use_overlap_flags && !batch.overlap.empty()) {
    std::vector<int64_t> flags(batch.overlap.size());
    for (size_t i = 0; i < batch.overlap.size(); ++i) {
      flags[i] = batch.overlap[i] != 0.0f ? 1 : 0;
    }
    emb = ops::Add(emb, overlap_emb_->Forward(flags));
  }
  emb = ops::Dropout(emb, config_.dropout, rng, training());
  emb = ops::Reshape(emb, {b, l, config_.hidden_dim});
  Tensor states = bigru_->Forward(emb);               // [B, L, 2h]
  const int64_t h2 = bigru_->output_dim();

  // Masked mean pooling: zero padded states, then rescale the plain mean by
  // L / num_real per row.
  std::vector<float> mask3(static_cast<size_t>(b * l * h2));
  std::vector<float> scale(static_cast<size_t>(b * h2));
  for (int64_t bi = 0; bi < b; ++bi) {
    float real = 0.0f;
    for (int64_t t = 0; t < l; ++t) real += batch.mask[static_cast<size_t>(bi * l + t)];
    if (real < 1.0f) real = 1.0f;
    const float row_scale = static_cast<float>(l) / real;
    for (int64_t t = 0; t < l; ++t) {
      const float mv = batch.mask[static_cast<size_t>(bi * l + t)];
      for (int64_t j = 0; j < h2; ++j) {
        mask3[static_cast<size_t>((bi * l + t) * h2 + j)] = mv;
      }
    }
    for (int64_t j = 0; j < h2; ++j) {
      scale[static_cast<size_t>(bi * h2 + j)] = row_scale;
    }
  }
  Tensor masked = ops::Mul(states, Tensor::FromVector({b, l, h2}, std::move(mask3)));
  Tensor pooled = ops::MeanAxis(masked, 1);  // [B, 2h], mean over all L
  pooled = ops::Mul(pooled, Tensor::FromVector({b, h2}, std::move(scale)));
  return ops::Tanh(projection_->Forward(pooled));
}

std::unique_ptr<FeatureExtractor> RNNFeatureExtractor::CloneArchitecture(
    uint64_t seed) const {
  return std::make_unique<RNNFeatureExtractor>(config_, seed);
}

std::unique_ptr<FeatureExtractor> MakeExtractor(ExtractorKind kind,
                                                const DaderConfig& config,
                                                uint64_t seed) {
  switch (kind) {
    case ExtractorKind::kLM:
      return std::make_unique<LMFeatureExtractor>(config, seed);
    case ExtractorKind::kRNN:
      return std::make_unique<RNNFeatureExtractor>(config, seed);
  }
  return nullptr;
}

}  // namespace dader::core
