// Source-target dataset distance (Section 6.2.2 / Figure 6): MMD between
// the feature distributions of two datasets under a (pre-trained) extractor.

#pragma once

#include "core/feature_extractor.h"

namespace dader::core {

/// \brief MMD between features of up to `max_pairs` pairs of each dataset
/// under `extractor` (median-heuristic bandwidths). Smaller = closer
/// domains; Finding 2 relates this to DA gains.
double DatasetMmdDistance(FeatureExtractor* extractor,
                          const data::ERDataset& source,
                          const data::ERDataset& target, int64_t max_pairs,
                          Rng* rng);

}  // namespace dader::core
